//! Umbrella crate for the ENTANGLE reproduction workspace.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! directories. It re-exports the member crates so examples and integration
//! tests can refer to everything through one import root.
//!
//! The actual library surface lives in the member crates:
//!
//! - [`entangle`] — the refinement checker (the paper's contribution)
//! - [`entangle_ir`] — tensor computation-graph IR
//! - [`entangle_egraph`] — equality-saturation engine
//! - [`entangle_symbolic`] — symbolic scalar decision procedure
//! - [`entangle_runtime`] — concrete dense-tensor interpreter
//! - [`entangle_lemmas`] — rewrite-lemma corpus
//! - [`entangle_models`] — sequential model zoo
//! - [`entangle_parallel`] — distribution strategies and bug injectors

pub use entangle;
pub use entangle_autodiff;
pub use entangle_egraph;
pub use entangle_ir;
pub use entangle_lemmas;
pub use entangle_models;
pub use entangle_parallel;
pub use entangle_runtime;
pub use entangle_symbolic;
