//! The foreign-IR bridge: serialize computation graphs to the JSON
//! interchange format and verify graphs loaded back from it.
//!
//! This plays the role of the paper's §5 translation utility (the 377 lines
//! of Python converting XLA/HLO output into the tool's intermediate format):
//! any front end that can emit this JSON can be checked.
//!
//! Run with: `cargo run --example graph_interchange`

use entangle::{check_refinement, CheckOptions};
use entangle_ir::Graph;
use entangle_models::{llama3, Arch, ModelConfig};
use entangle_parallel::{parallelize, Strategy};

fn main() {
    let cfg = ModelConfig::tiny();
    let gs = llama3(&cfg);
    let dist = parallelize(&cfg, Arch::Llama, &Strategy::tp(2));

    // Serialize both graphs — this is what a TorchDynamo/XLA exporter would
    // hand to the checker.
    let gs_json = gs.to_json().expect("serializes");
    let gd_json = dist.graph.to_json().expect("serializes");
    println!(
        "serialized G_s: {} bytes, G_d: {} bytes",
        gs_json.len(),
        gd_json.len()
    );

    // Load them back (with full validation) and verify as usual.
    let gs2 = Graph::from_json(&gs_json).expect("G_s roundtrips");
    let gd2 = Graph::from_json(&gd_json).expect("G_d roundtrips");
    assert_eq!(gs2.num_nodes(), gs.num_nodes());

    let mut ri = entangle::Relation::builder(&gs2, &gd2);
    for (name, expr) in &dist.input_maps {
        ri.map(name, expr)
            .expect("maps validate against loaded graphs");
    }
    let outcome = check_refinement(&gs2, &gd2, &ri.build(), &CheckOptions::default())
        .expect("loaded graphs verify");
    println!(
        "verification over deserialized graphs succeeded: {} outputs mapped, {} lemma applications",
        outcome.output_relation.len(),
        outcome.lemma_stats.total()
    );

    // Corrupted interchange files are rejected with validation errors.
    let corrupt = gd_json.replacen("\"Matmul\"", "\"Gelu\"", 1);
    match Graph::from_json(&corrupt) {
        Err(e) => println!("corrupted graph correctly rejected: {e}"),
        Ok(_) => panic!("corrupted graph must not validate"),
    }
}
