//! Verify a Megatron-style tensor+sequence+vocab-parallel GPT against its
//! sequential specification — the paper's flagship workload (§6.3–6.4).
//!
//! Run with: `cargo run --example gpt_tensor_parallel [-- <tp> <layers>]`

use entangle::{check_refinement, CheckOptions};
use entangle_models::{gpt, Arch, ModelConfig};
use entangle_parallel::{parallelize, Strategy};

fn main() {
    let mut args = std::env::args().skip(1);
    let tp: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let layers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    let cfg = ModelConfig {
        layers,
        seq: 16,
        hidden: 32,
        heads: 8,
        ffn: 64,
        ..ModelConfig::tiny()
    };
    println!(
        "Building sequential GPT ({layers} layer(s), hidden {})...",
        cfg.hidden
    );
    let gs = gpt(&cfg);
    println!(
        "  G_s: {} operators, {} tensors",
        gs.num_nodes(),
        gs.num_tensors()
    );

    println!("Applying TP+SP+VP at degree {tp} (Megatron-style)...");
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp_sp_vp(tp));
    println!(
        "  G_d: {} operators, {} tensors, {} input mappings",
        dist.graph.num_nodes(),
        dist.graph.num_tensors(),
        dist.input_maps.len()
    );

    let ri = dist
        .relation(&gs)
        .expect("strategy emits a valid input relation");
    let start = std::time::Instant::now();
    let outcome = check_refinement(&gs, &dist.graph, &ri, &CheckOptions::default())
        .expect("the strategy output refines the model");
    println!(
        "\nRefinement verification succeeded in {:.3}s",
        start.elapsed().as_secs_f64()
    );

    println!("\nLogits reconstruction:");
    for &out in gs.outputs() {
        for m in outcome.output_relation.mappings(out).unwrap() {
            println!("  {} -> {m}", gs.tensor(out).name);
        }
    }

    println!("\nSlowest operators:");
    let mut reports = outcome.op_reports.clone();
    reports.sort_by_key(|r| std::cmp::Reverse(r.elapsed));
    for r in reports.iter().take(5) {
        println!(
            "  {:<24} {:>8.3}ms  ({} e-nodes, {} mappings)",
            r.name,
            r.elapsed.as_secs_f64() * 1e3,
            r.egraph_nodes,
            r.mappings
        );
    }

    println!("\nMost-applied lemmas:");
    let mut stats: Vec<(&str, u64)> = outcome.lemma_stats.iter().collect();
    stats.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (name, count) in stats.iter().take(8) {
        println!("  {name:<32} {count}");
    }
}
