//! Verify a mixture-of-experts transformer (the ByteDance-model stand-in)
//! under TP + SP + expert parallelism, including the auxiliary-loss
//! discipline whose absence is the paper's Bug 2.
//!
//! Run with: `cargo run --example moe_expert_parallel`

use entangle::{check_refinement, CheckOptions};
use entangle_models::{moe, ModelConfig, MoeConfig};
use entangle_parallel::{parallelize_moe, Strategy};

fn main() {
    let cfg = MoeConfig {
        base: ModelConfig {
            seq: 16,
            hidden: 32,
            heads: 8,
            ffn: 64,
            ..ModelConfig::tiny()
        },
        experts: 8,
    };
    println!(
        "Building MoE transformer: {} experts, hidden {}...",
        cfg.experts, cfg.base.hidden
    );
    let gs = moe(&cfg);
    println!(
        "  G_s: {} operators, outputs: logits + auxiliary loss",
        gs.num_nodes()
    );

    println!("Applying TP+SP with expert parallelism at degree 2...");
    let dist = parallelize_moe(&cfg, &Strategy::tp_sp(2));
    println!("  G_d: {} operators", dist.graph.num_nodes());

    let ri = dist.relation(&gs).expect("valid relation");
    let start = std::time::Instant::now();
    let outcome = check_refinement(&gs, &dist.graph, &ri, &CheckOptions::default())
        .expect("EP distribution refines the model");
    println!(
        "\nRefinement verification succeeded in {:.3}s",
        start.elapsed().as_secs_f64()
    );

    println!("\nOutput reconstructions:");
    for &out in gs.outputs() {
        for m in outcome.output_relation.mappings(out).unwrap() {
            println!("  {} -> {m}", gs.tensor(out).name);
        }
    }
    println!(
        "\nNote the auxiliary loss maps to the all-reduce of the 1/T-scaled\n\
         per-rank losses — remove the scaling and this check fails (Bug 2;\n\
         see `cargo run --example bug_hunt`)."
    );
}
