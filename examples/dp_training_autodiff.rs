//! Fully generated data-parallel training verification.
//!
//! The paper could not evaluate data parallelism because TorchDynamo never
//! exposed its graphs (§6.1). Here both sides are *generated*: the
//! sequential training step comes from reverse-mode autodiff over the
//! forward graph (with a sum-semantics loss, so shard gradients add up
//! exactly), and the distributed implementation instantiates the same
//! differentiated graph per replica with gradient summation. ENTANGLE then
//! has to prove the two agree — floating the scale factors autodiff
//! introduces through the scalar-linearity lemmas.
//!
//! Run with: `cargo run --example dp_training_autodiff`

use entangle::{check_refinement, CheckOptions};
use entangle_models::{regression_sum_loss, RegressionConfig};
use entangle_parallel::data_parallel_training;

fn main() {
    let cfg = RegressionConfig {
        batch: 8,
        features: 4,
    };
    let fwd = regression_sum_loss(&cfg);
    let loss = fwd.outputs()[0];
    println!(
        "forward graph: {} operators; differentiating at {:?}...",
        fwd.num_nodes(),
        fwd.tensor(loss).name
    );

    let dp = data_parallel_training(&fwd, loss, &["x", "y"], 2, false)
        .expect("regression training differentiates and reshards");
    let gs = &dp.sequential.graph;
    println!(
        "G_s (training step): {} operators, {} outputs (loss + gradients)",
        gs.num_nodes(),
        gs.outputs().len()
    );
    println!(
        "G_d (2 replicas):    {} operators",
        dp.distributed.graph.num_nodes()
    );

    let ri = dp.distributed.relation(gs).expect("valid relation");
    let start = std::time::Instant::now();
    let outcome = check_refinement(gs, &dp.distributed.graph, &ri, &CheckOptions::default())
        .expect("generated DP training refines the sequential step");
    println!(
        "\nRefinement verification succeeded in {:.3}s",
        start.elapsed().as_secs_f64()
    );

    println!("\nGradient reconstructions:");
    for &out in gs.outputs() {
        for m in outcome.output_relation.mappings(out).unwrap() {
            println!("  {} -> {m}", gs.tensor(out).name);
        }
    }
}
