//! Reproduce real distribution bugs and watch ENTANGLE localize them.
//!
//! Runs three of the paper's Table 3 bugs — the RoPE offset bug (Figure 7),
//! the missing all-reduce after a row-parallel linear, and the unscaled
//! gradient accumulation — and prints the checker's actionable output, then
//! confirms the fixed twins verify.
//!
//! Run with: `cargo run --example bug_hunt`

use entangle::CheckOptions;
use entangle_parallel::bugs::{bug, BugVerdict};

fn main() {
    let opts = CheckOptions::default();
    for id in [1usize, 7, 6] {
        let case = bug(id, true);
        println!("==============================================================");
        println!("Bug {}: {}", case.id, case.name);
        println!("  {}", case.description);
        println!("--------------------------------------------------------------");
        match case.run(&opts) {
            BugVerdict::Clean => println!("  UNEXPECTED: not detected!"),
            BugVerdict::RefinementBug(e) => println!("{e}"),
            BugVerdict::ExpectationBug(e) => println!("{e}"),
        }
        let fixed = bug(id, false);
        match fixed.run(&opts) {
            BugVerdict::Clean => println!("\n  fixed twin: verified (no false alarm)"),
            other => println!("\n  fixed twin: UNEXPECTED verdict {other:?}"),
        }
        println!();
    }
}
