//! Quickstart: the paper's Figure 1/2 running example.
//!
//! A sequential model `F = (A × B) − E` is distributed across two ranks by
//! splitting the matmul along its contraction dimension and reduce-
//! scattering the partial products. ENTANGLE proves the implementation
//! refines the model and prints the clean output relation.
//!
//! Run with: `cargo run --example quickstart`

use entangle::{check_refinement, CheckOptions, Relation};
use entangle_ir::{DType, GraphBuilder, Op};

fn main() {
    // ---- the sequential specification G_s ----
    let mut gs = GraphBuilder::new("sequential");
    let a = gs.input("A", &[4, 8], DType::F32);
    let b = gs.input("B", &[8, 4], DType::F32);
    let e = gs.input("E", &[4, 4], DType::F32);
    let c = gs.apply("C", Op::Matmul, &[a, b]).unwrap();
    let f = gs.apply("F", Op::Sub, &[c, e]).unwrap();
    gs.mark_output(f);
    let gs = gs.finish().unwrap();

    // ---- the distributed implementation G_d (2 ranks) ----
    let mut gd = GraphBuilder::new("distributed");
    let a1 = gd.input("A1", &[4, 4], DType::F32);
    let a2 = gd.input("A2", &[4, 4], DType::F32);
    let b1 = gd.input("B1", &[4, 4], DType::F32);
    let b2 = gd.input("B2", &[4, 4], DType::F32);
    let e1 = gd.input("E1", &[2, 4], DType::F32);
    let e2 = gd.input("E2", &[2, 4], DType::F32);
    let c1 = gd.apply("C1", Op::Matmul, &[a1, b1]).unwrap();
    let c2 = gd.apply("C2", Op::Matmul, &[a2, b2]).unwrap();
    let d1 = gd
        .apply(
            "D1",
            Op::ReduceScatter {
                dim: 0,
                rank: 0,
                world: 2,
            },
            &[c1, c2],
        )
        .unwrap();
    let d2 = gd
        .apply(
            "D2",
            Op::ReduceScatter {
                dim: 0,
                rank: 1,
                world: 2,
            },
            &[c1, c2],
        )
        .unwrap();
    let f1 = gd.apply("F1", Op::Sub, &[d1, e1]).unwrap();
    let f2 = gd.apply("F2", Op::Sub, &[d2, e2]).unwrap();
    gd.mark_output(f1);
    gd.mark_output(f2);
    let gd = gd.finish().unwrap();

    // ---- the user-provided clean input relation R_i ----
    let mut ri = Relation::builder(&gs, &gd);
    ri.map("A", "(concat A1 A2 1)").unwrap();
    ri.map("B", "(concat B1 B2 0)").unwrap();
    ri.map("E", "(concat E1 E2 0)").unwrap();
    let ri = ri.build();

    // ---- check refinement ----
    match check_refinement(&gs, &gd, &ri, &CheckOptions::default()) {
        Ok(outcome) => {
            println!("Refinement verification succeeded for {}!", gd.name());
            println!("\nOutput relation R_o:");
            print!("{}", outcome.output_relation.display(&gs));
            println!("\nFull relation (including intermediates):");
            print!("{}", outcome.full_relation.display(&gs));
            println!(
                "\n{} lemma applications across {} operators",
                outcome.lemma_stats.total(),
                outcome.op_reports.len()
            );
        }
        Err(err) => {
            eprintln!("Refinement FAILED:\n{err}");
            std::process::exit(1);
        }
    }
}
