use entangle::{check_refinement, CheckOptions};
use entangle_models::{gpt, llama3, moe, qwen2, Arch, ModelConfig, MoeConfig, RegressionConfig};

use crate::bugs::{all_bugs, bug, BugVerdict};
use crate::{grad_accumulation, parallelize, parallelize_moe, Distributed, Strategy};

fn verify(gs: &entangle_ir::Graph, dist: &Distributed) -> entangle::CheckOutcome {
    let ri = dist.relation(gs).expect("relation builds");
    check_refinement(gs, &dist.graph, &ri, &CheckOptions::default())
        .unwrap_or_else(|e| panic!("{} should refine {}: {e}", dist.graph.name(), gs.name()))
}

#[test]
fn identity_distribution_refines() {
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = Distributed::identity(&gs);
    let outcome = verify(&gs, &dist);
    assert!(outcome.output_relation.is_complete_for(gs.outputs()));
}

#[test]
fn gpt_tp2_refines() {
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
    let outcome = verify(&gs, &dist);
    // The logits map to the single all-reduced/full logits tensor.
    let maps: Vec<String> = outcome
        .output_relation
        .mappings(gs.outputs()[0])
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(maps.contains(&"logits".to_owned()), "logit maps: {maps:?}");
}

#[test]
fn gpt_tp_sp_refines() {
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp_sp(2));
    verify(&gs, &dist);
}

#[test]
fn gpt_tp_sp_vp_refines() {
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp_sp_vp(2));
    let outcome = verify(&gs, &dist);
    let maps: Vec<String> = outcome
        .output_relation
        .mappings(gs.outputs()[0])
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(
        maps.contains(&"logits_gather".to_owned()),
        "logit maps: {maps:?}"
    );
}

#[test]
fn llama3_tp2_refines() {
    let cfg = ModelConfig::tiny();
    let gs = llama3(&cfg);
    let dist = parallelize(&cfg, Arch::Llama, &Strategy::tp(2));
    verify(&gs, &dist);
}

#[test]
fn qwen2_tp2_refines() {
    let cfg = ModelConfig::tiny();
    let gs = qwen2(&cfg);
    let dist = parallelize(&cfg, Arch::Qwen2, &Strategy::tp(2));
    verify(&gs, &dist);
}

#[test]
fn gpt_tp4_refines() {
    let cfg = ModelConfig::tiny();
    let gs = gpt(&cfg);
    let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(4));
    verify(&gs, &dist);
}

#[test]
fn moe_tp_sp_ep_refines() {
    let cfg = MoeConfig::tiny();
    let gs = moe(&cfg);
    let dist = parallelize_moe(&cfg, &Strategy::tp_sp(2));
    let outcome = verify(&gs, &dist);
    assert!(outcome.output_relation.is_complete_for(gs.outputs()));
}

#[test]
fn grad_accumulation_refines_when_scaled() {
    let cfg = RegressionConfig::tiny();
    let gs = entangle_models::regression(&cfg);
    for m in [1, 2, 4] {
        let dist = grad_accumulation(&cfg, m, true);
        verify(&gs, &dist);
    }
}

#[test]
fn data_parallel_training_step_refines() {
    // DP over the explicit-gradient training step: gradient *averaging*
    // (the correct discipline) collapses back to the sequential gradient.
    let cfg = RegressionConfig::tiny();
    let gs = entangle_models::regression_training(&cfg);
    for replicas in [1usize, 2, 4] {
        let dist = crate::data_parallel(&cfg, replicas, true);
        let outcome = verify(&gs, &dist);
        assert!(outcome.output_relation.is_complete_for(gs.outputs()));
    }
}

#[test]
fn data_parallel_sum_instead_of_average_is_a_bug() {
    // Summing gradients instead of averaging them is the classic DP fault:
    // the deployed gradient is R x the sequential one.
    let cfg = RegressionConfig::tiny();
    let gs = entangle_models::regression_training(&cfg);
    let dist = crate::data_parallel(&cfg, 2, false);
    let ri = dist.relation(&gs).unwrap();
    let err = check_refinement(&gs, &dist.graph, &ri, &CheckOptions::default());
    assert!(err.is_err(), "unaveraged DP gradients must not refine");
}

#[test]
fn generated_dp_training_refines() {
    // Fully generated test: G_s = autodiff of the sum-loss regression
    // graph, G_d = per-replica instantiation with gradient *summation*
    // (exact for sum losses). The checker relates the two through the
    // scalar-linearity lemmas.
    let cfg = RegressionConfig::tiny();
    let fwd = entangle_models::regression_sum_loss(&cfg);
    let loss = fwd.outputs()[0];
    for replicas in [1usize, 2] {
        let dp = crate::data_parallel_training(&fwd, loss, &["x", "y"], replicas, false).unwrap();
        let gs = &dp.sequential.graph;
        let ri = dp.distributed.relation(gs).unwrap();
        let outcome = check_refinement(gs, &dp.distributed.graph, &ri, &CheckOptions::default())
            .unwrap_or_else(|e| panic!("generated DP training should refine (r={replicas}): {e}"));
        assert!(outcome.output_relation.is_complete_for(gs.outputs()));
        // The parameter gradient maps to the all-reduced sum.
        let w = gs.tensor_by_name("w").unwrap().id;
        let gw = dp.sequential.grad_of(w).unwrap();
        let maps: Vec<String> = outcome
            .output_relation
            .mappings(gw)
            .unwrap()
            .iter()
            .map(|m| m.to_string())
            .collect();
        if replicas > 1 {
            assert!(
                maps.iter().any(|m| m.contains("grad_w_allreduce")),
                "grad_w maps: {maps:?}"
            );
        }
    }
}

#[test]
fn generated_dp_over_norm_mlp_refines() {
    // The capstone generated workload: an RMSNorm + SwiGLU-ish block with a
    // sum loss, differentiated by autodiff (norm gradients included) and
    // data-parallelized. Exercises the rsqrt/mean_dim gradient expressions
    // under batch sharding.
    use entangle_ir::{DType, GraphBuilder, Op};
    let mut g = GraphBuilder::new("norm-mlp");
    let x = g.input("x", &[4, 6], DType::F32);
    let w_ln = g.input("w_ln", &[6], DType::F32);
    let w1 = g.input("w1", &[6, 8], DType::F32);
    let w2 = g.input("w2", &[8, 6], DType::F32);
    let n = g.apply("n", Op::RmsNorm, &[x, w_ln]).unwrap();
    let h = g.apply("h", Op::Matmul, &[n, w1]).unwrap();
    let a = g.apply("a", Op::Silu, &[h]).unwrap();
    let o = g.apply("o", Op::Matmul, &[a, w2]).unwrap();
    let res = g.apply("res", Op::Add, &[x, o]).unwrap();
    let sq = g.apply("sq", Op::Mul, &[res, res]).unwrap();
    let loss = g.apply("loss", Op::SumAll, &[sq]).unwrap();
    g.mark_output(loss);
    let fwd = g.finish().unwrap();

    let dp = crate::data_parallel_training(&fwd, loss, &["x"], 2, false).unwrap();
    let gs = &dp.sequential.graph;
    let ri = dp.distributed.relation(gs).unwrap();
    let outcome = check_refinement(gs, &dp.distributed.graph, &ri, &CheckOptions::default())
        .unwrap_or_else(|e| panic!("DP over norm-MLP should refine: {e}"));
    assert!(outcome.output_relation.is_complete_for(gs.outputs()));
    // The norm-weight gradient (the bug 5/9 tensor!) maps to its all-reduce.
    let wln = gs.tensor_by_name("w_ln").unwrap().id;
    let gw = dp.sequential.grad_of(wln).unwrap();
    let maps: Vec<String> = outcome
        .output_relation
        .mappings(gw)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(
        maps.iter().any(|m| m.contains("grad_w_ln_allreduce")),
        "w_ln grad maps: {maps:?}"
    );
}

#[test]
fn dp_mean_loss_average_is_a_documented_false_alarm() {
    // With a *mean* loss and gradient averaging, the implementation is
    // numerically correct, but every per-replica gradient differs from the
    // sequential one by a batch-size scale: the paper's assumption 3
    // (§3.3) is violated and ENTANGLE (by design) reports a bug. This test
    // pins that incompleteness so a future change that silently "fixes" it
    // gets a second look.
    let cfg = RegressionConfig::tiny();
    let fwd = entangle_models::regression(&cfg); // mean-semantics MSE
    let loss = fwd.outputs()[0];
    let dp = crate::data_parallel_training(&fwd, loss, &["x", "y"], 2, true).unwrap();
    let gs = &dp.sequential.graph;
    let ri = dp.distributed.relation(gs).unwrap();
    assert!(check_refinement(gs, &dp.distributed.graph, &ri, &CheckOptions::default()).is_err());
}

#[test]
fn generated_dp_training_rejects_bad_batch_inputs() {
    let cfg = RegressionConfig::tiny();
    let fwd = entangle_models::regression(&cfg);
    let loss = fwd.outputs()[0];
    assert!(matches!(
        crate::data_parallel_training(&fwd, loss, &["nonexistent"], 2, true),
        Err(crate::DpError::BadBatchInput(_))
    ));
    // Batch of 8 does not divide by 3.
    assert!(matches!(
        crate::data_parallel_training(&fwd, loss, &["x", "y"], 3, true),
        Err(crate::DpError::BadBatchInput(_))
    ));
}

#[test]
fn pipeline_parallel_refines() {
    let cfg = ModelConfig::tiny();
    for arch in [Arch::Gpt, Arch::Llama] {
        let gs = match arch {
            Arch::Gpt => gpt(&cfg),
            _ => llama3(&cfg),
        };
        let dist = crate::pipeline(&cfg, arch, 2);
        let outcome = verify(&gs, &dist);
        let maps: Vec<String> = outcome
            .output_relation
            .mappings(gs.outputs()[0])
            .unwrap()
            .iter()
            .map(|m| m.to_string())
            .collect();
        assert!(
            maps.contains(&"logits_gather".to_owned()),
            "{arch:?}: {maps:?}"
        );
    }
}

#[test]
fn operator_counts_grow_with_parallelism() {
    let cfg = ModelConfig::tiny();
    let n2 = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2))
        .graph
        .num_nodes();
    let n4 = parallelize(&cfg, Arch::Gpt, &Strategy::tp(4))
        .graph
        .num_nodes();
    assert!(
        n4 > n2,
        "tp4 ({n4}) should have more operators than tp2 ({n2})"
    );
}

#[test]
#[should_panic(expected = "heads must divide")]
fn strategy_validates_divisibility() {
    let mut cfg = ModelConfig::tiny();
    cfg.heads = 3;
    cfg.hidden = 12;
    cfg.ffn = 24;
    // 3 heads do not divide by tp=2 — the Figure 4 footnote situation
    // ("no data for parallelism size 6" on Llama-3).
    parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
}

#[test]
fn all_nine_bugs_detected() {
    for case in all_bugs(true) {
        let verdict = case.run(&CheckOptions::default());
        assert!(
            verdict.detected(),
            "bug {} ({}) was not detected: {verdict:?}",
            case.id,
            case.name
        );
    }
}

#[test]
fn no_false_alarms_on_fixed_twins() {
    for case in all_bugs(false) {
        let verdict = case.run(&CheckOptions::default());
        assert!(
            !verdict.detected(),
            "fixed twin of bug {} ({}) raised a false alarm: {verdict:?}",
            case.id,
            case.name
        );
    }
}

#[test]
fn bug1_localizes_to_rope_operator() {
    // With shard hints on (the default), the sharding-propagation pass
    // catches the misaligned rotary tables *before* saturation, anchored at
    // the rope operator in G_d.
    let case = bug(1, true);
    match case.run(&CheckOptions::default()) {
        BugVerdict::RefinementBug(entangle::RefinementError::ShardViolation {
            diagnostics,
            ..
        }) => {
            assert_eq!(diagnostics[0].code, "SH02");
            let anchored = case.dist.graph.nodes().iter().any(|n| {
                diagnostics[0].anchor == entangle_lint::Anchor::Node(n.id)
                    && n.name.starts_with("apply_rotary")
            });
            assert!(anchored, "SH02 must anchor at a rope operator");
        }
        other => panic!("expected SH02 rope localization, got {other:?}"),
    }
    // Pure saturation (hints ablated) still localizes to the same operator.
    let opts = CheckOptions {
        shard_hints: false,
        ..CheckOptions::default()
    };
    match case.run(&opts) {
        BugVerdict::RefinementBug(entangle::RefinementError::OperatorUnmapped {
            operator,
            op,
            ..
        }) => {
            assert_eq!(operator, "apply_rotary");
            assert_eq!(op, "rope");
        }
        other => panic!("expected rope localization, got {other:?}"),
    }
}

#[test]
fn bug2_manifests_as_unscalable_output() {
    // The per-rank auxiliary losses are themselves clean maps of the
    // sequential loss, but the deployed (unscaled) total is 2x too large:
    // the output filter (Listing 1 line 9) rejects it.
    let case = bug(2, true);
    match case.run(&CheckOptions::default()) {
        BugVerdict::RefinementBug(entangle::RefinementError::OutputUnmapped { .. }) => {}
        other => panic!("bug 2: expected OutputUnmapped, got {other:?}"),
    }
}

#[test]
fn bug6_fails_at_the_loss_operator() {
    // "The accumulated loss in G_d cannot cleanly represent the loss in G_s
    // without computation" — the mse_loss operator itself is unmappable
    // because relating it to the unscaled sum needs a (non-clean) scale.
    let case = bug(6, true);
    match case.run(&CheckOptions::default()) {
        BugVerdict::RefinementBug(entangle::RefinementError::OperatorUnmapped {
            operator,
            op,
            ..
        }) => {
            assert_eq!(operator, "loss");
            assert_eq!(op, "mse_loss");
        }
        other => panic!("bug 6: expected OperatorUnmapped at loss, got {other:?}"),
    }
}

#[test]
fn bug7_localizes_to_second_matmul() {
    // Shard propagation flags the second matmul consuming an unreduced
    // partial sum (the missing all-reduce) pre-saturation.
    let case = bug(7, true);
    match case.run(&CheckOptions::default()) {
        BugVerdict::RefinementBug(entangle::RefinementError::ShardViolation {
            diagnostics,
            ..
        }) => {
            assert_eq!(diagnostics[0].code, "SH04");
            let anchored = case.dist.graph.nodes().iter().any(|n| {
                diagnostics[0].anchor == entangle_lint::Anchor::Node(n.id)
                    && n.name.starts_with("y.")
            });
            assert!(anchored, "SH04 must anchor at the per-rank second matmul");
        }
        other => panic!("expected SH04 partial-sum localization, got {other:?}"),
    }
    let opts = CheckOptions {
        shard_hints: false,
        ..CheckOptions::default()
    };
    match case.run(&opts) {
        BugVerdict::RefinementBug(entangle::RefinementError::OperatorUnmapped {
            operator, ..
        }) => assert_eq!(operator, "y"),
        other => panic!("expected localization at y, got {other:?}"),
    }
}

#[test]
fn expectation_bugs_are_expectation_violations() {
    for id in [5, 8, 9] {
        let case = bug(id, true);
        match case.run(&CheckOptions::default()) {
            BugVerdict::ExpectationBug(entangle::ExpectationError::Violated { .. }) => {}
            other => panic!("bug {id}: expected expectation violation, got {other:?}"),
        }
    }
}

#[test]
fn bug_metadata_is_complete() {
    let bugs = all_bugs(true);
    assert_eq!(bugs.len(), 9);
    for (i, b) in bugs.iter().enumerate() {
        assert_eq!(b.id, i + 1);
        assert!(!b.description.is_empty());
        assert!(b.relation().is_ok());
    }
    // Expectation-style bugs are exactly 5, 8, 9 (Table 3 / §4.4).
    let with_expectation: Vec<usize> = bugs
        .iter()
        .filter(|b| b.expectation.is_some())
        .map(|b| b.id)
        .collect();
    assert_eq!(with_expectation, vec![5, 8, 9]);
}

mod differential {
    //! End-to-end differential testing: evaluate `G_s` and `G_d` on inputs
    //! related by `R_i`, reconstruct `G_s`'s outputs through the relation
    //! `R_o` the checker produced, and compare — the executable version of
    //! the §3.3 soundness certificate.

    use std::collections::HashMap;

    use entangle_ir::{DType, Graph, TensorId};
    use entangle_runtime::{eval_graph, eval_op, random_ids, random_value, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    /// Evaluates an expression over `G_d` tensor names given `G_d`'s env.
    fn eval_expr(
        expr: &entangle_egraph::RecExpr,
        gd: &Graph,
        env: &HashMap<TensorId, Value>,
    ) -> Value {
        let mut vals: Vec<Value> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let v = match node {
                entangle_egraph::ENode::Int(i) => Value::scalar(*i as f64),
                entangle_egraph::ENode::Sym(_) => unreachable!("concrete graphs"),
                entangle_egraph::ENode::Op(sym, ch) if ch.is_empty() => {
                    let t = gd.tensor_by_name(sym.as_str()).expect("leaf exists");
                    env[&t.id].clone()
                }
                entangle_egraph::ENode::Op(sym, ch) => {
                    let metas: Vec<entangle_lemmas::Meta> = ch
                        .iter()
                        .map(|c| meta_of(&vals[c.index()], expr, *c))
                        .collect();
                    let (op, tcount) =
                        entangle_lemmas::decode_op(sym.as_str(), &metas).expect("known op");
                    let inputs: Vec<&Value> =
                        ch[..tcount].iter().map(|c| &vals[c.index()]).collect();
                    eval_op(&op, &inputs).expect("clean expr evaluates")
                }
            };
            vals.push(v);
        }
        vals.last().expect("non-empty").clone()
    }

    fn meta_of(
        val: &Value,
        expr: &entangle_egraph::RecExpr,
        id: entangle_egraph::Id,
    ) -> entangle_lemmas::Meta {
        match expr.node(id) {
            entangle_egraph::ENode::Int(i) => {
                entangle_lemmas::Meta::scalar(entangle_symbolic::SymExpr::constant(*i))
            }
            _ => entangle_lemmas::Meta::tensor(
                entangle_ir::Shape::of(&val.shape().iter().map(|&d| d as i64).collect::<Vec<_>>()),
                DType::F32,
            ),
        }
    }

    /// Random inputs for `G_s`, then `G_d` inputs derived through `R_i` by
    /// *inverting* the concat/identity maps (shards = slices of the full
    /// tensors).
    fn related_inputs(
        gs: &Graph,
        dist: &Distributed,
        seed: u64,
    ) -> (HashMap<TensorId, Value>, HashMap<TensorId, Value>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gs_env = HashMap::new();
        for &i in gs.inputs() {
            let t = gs.tensor(i);
            let dims: Vec<usize> = t
                .shape
                .as_concrete()
                .unwrap()
                .iter()
                .map(|&d| d as usize)
                .collect();
            let v = match t.dtype {
                DType::I64 => random_ids(&mut rng, &dims, 8),
                _ => random_value(&mut rng, &dims),
            };
            gs_env.insert(i, v);
        }
        // Derive G_d inputs: walk each map; identity or concat-of-shards.
        let mut gd_env = HashMap::new();
        for (gs_name, expr) in &dist.input_maps {
            let gs_t = gs.tensor_by_name(gs_name).unwrap();
            let full = gs_env[&gs_t.id].clone();
            assign_shards(&dist.graph, expr, &full, &mut gd_env);
        }
        (gs_env, gd_env)
    }

    /// Splits `full` according to the concat structure of `expr`, assigning
    /// each leaf its shard.
    fn assign_shards(gd: &Graph, expr: &str, full: &Value, out: &mut HashMap<TensorId, Value>) {
        let parsed: entangle_egraph::RecExpr = expr.parse().unwrap();
        split_rec(gd, &parsed, parsed.root_id(), full, out);
    }

    fn split_rec(
        gd: &Graph,
        expr: &entangle_egraph::RecExpr,
        id: entangle_egraph::Id,
        val: &Value,
        out: &mut HashMap<TensorId, Value>,
    ) {
        match expr.node(id) {
            entangle_egraph::ENode::Op(sym, ch) if ch.is_empty() => {
                let t = gd.tensor_by_name(sym.as_str()).expect("leaf exists");
                out.insert(t.id, val.clone());
            }
            entangle_egraph::ENode::Op(sym, ch) if sym.as_str() == "concat" => {
                let dim = expr.node(ch[2]).as_int().expect("concat dim is concrete") as usize;
                // Left child size: total minus right child leaf count…
                // simpler: recurse by computing the left subtree's dim size
                // from the graph's recorded shapes.
                let left_size = subtree_dim_size(gd, expr, ch[0], dim);
                let n = val.shape()[dim];
                let left = slice_val(val, dim, 0, left_size);
                let right = slice_val(val, dim, left_size, n);
                split_rec(gd, expr, ch[0], &left, out);
                split_rec(gd, expr, ch[1], &right, out);
            }
            other => panic!("unsupported input-map node {other:?}"),
        }
    }

    fn subtree_dim_size(
        gd: &Graph,
        expr: &entangle_egraph::RecExpr,
        id: entangle_egraph::Id,
        dim: usize,
    ) -> usize {
        match expr.node(id) {
            entangle_egraph::ENode::Op(sym, ch) if ch.is_empty() => {
                gd.tensor_by_name(sym.as_str())
                    .unwrap()
                    .shape
                    .dim(dim)
                    .as_const()
                    .unwrap() as usize
            }
            entangle_egraph::ENode::Op(_, ch) => {
                subtree_dim_size(gd, expr, ch[0], dim) + subtree_dim_size(gd, expr, ch[1], dim)
            }
            _ => unreachable!(),
        }
    }

    fn slice_val(v: &Value, dim: usize, lo: usize, hi: usize) -> Value {
        eval_op(
            &entangle_ir::Op::Slice {
                dim,
                start: (lo as i64).into(),
                end: (hi as i64).into(),
            },
            &[v],
        )
        .unwrap()
    }

    fn differential_check(gs: &Graph, dist: &Distributed, seed: u64) {
        let ri = dist.relation(gs).unwrap();
        let outcome = check_refinement(gs, &dist.graph, &ri, &CheckOptions::default()).unwrap();
        let (gs_env, gd_in) = related_inputs(gs, dist, seed);
        let gs_out = eval_graph(gs, &gs_env).unwrap();
        let gd_out = eval_graph(&dist.graph, &gd_in).unwrap();
        for &out in gs.outputs() {
            let expected = &gs_out[&out];
            for mapping in outcome.output_relation.mappings(out).unwrap() {
                let reconstructed = eval_expr(mapping, &dist.graph, &gd_out);
                assert!(
                    reconstructed.allclose(expected, 1e-6),
                    "output {} reconstruction {} differs (max diff {:?})",
                    gs.tensor(out).name,
                    mapping,
                    reconstructed.max_abs_diff(expected)
                );
            }
        }
    }

    #[test]
    fn gpt_tp2_relation_is_numerically_sound() {
        let cfg = ModelConfig::tiny();
        let gs = gpt(&cfg);
        let dist = parallelize(&cfg, Arch::Gpt, &Strategy::tp(2));
        differential_check(&gs, &dist, 17);
    }

    #[test]
    fn grad_accum_relation_is_numerically_sound() {
        let cfg = RegressionConfig::tiny();
        let gs = entangle_models::regression(&cfg);
        let dist = grad_accumulation(&cfg, 2, true);
        differential_check(&gs, &dist, 23);
    }
}
