//! The output of a distribution strategy: `G_d` plus the input relation.

use entangle::Relation;
use entangle_ir::{DeclaredLayout, Graph, IrError, TensorId};

/// A distributed implementation together with the clean input-relation
/// specification relating it back to the sequential model.
#[derive(Debug, Clone)]
pub struct Distributed {
    /// The distributed computation graph `G_d`.
    pub graph: Graph,
    /// `(G_s tensor name, s-expression over G_d tensor names)` pairs — the
    /// user-provided input relation `R_i`, emitted mechanically by the
    /// strategy that performed the partitioning.
    pub input_maps: Vec<(String, String)>,
    /// Layouts the strategy declared for the inputs it created, for
    /// cross-checking against the layouts the input relation implies
    /// (`entangle-shard`, code `SH06`). Strategies that predate the
    /// annotation simply leave this empty.
    pub declared: Vec<(TensorId, DeclaredLayout)>,
}

impl Distributed {
    /// Builds the validated [`Relation`] against the sequential graph.
    ///
    /// # Errors
    ///
    /// Propagates name/shape mismatches between the recorded maps and the
    /// two graphs (which would indicate a strategy bug).
    pub fn relation(&self, gs: &Graph) -> Result<Relation, IrError> {
        let mut b = Relation::builder(gs, &self.graph);
        for (gs_name, expr) in &self.input_maps {
            b.map(gs_name, expr)?;
        }
        Ok(b.build())
    }

    /// The identity "distribution": `G_d = G_s`, every input mapped to
    /// itself. The degenerate world-size-1 case.
    pub fn identity(gs: &Graph) -> Distributed {
        Distributed {
            graph: gs.clone(),
            input_maps: gs
                .inputs()
                .iter()
                .map(|&t| {
                    let name = gs.tensor(t).name.clone();
                    (name.clone(), name)
                })
                .collect(),
            declared: gs
                .inputs()
                .iter()
                .map(|&t| (t, DeclaredLayout::Replicated))
                .collect(),
        }
    }
}
