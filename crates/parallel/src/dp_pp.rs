//! Data parallelism and pipeline parallelism.
//!
//! The paper could not evaluate either strategy — not because of any
//! limitation of the approach, but because TorchDynamo could not capture
//! their graphs ("DP is optimized with contiguous buffers … not exposed to
//! TorchDynamo; PP relies on intermediate leaf tensors … resulting in a
//! disconnected graph", §6.1). This reproduction builds the graphs
//! directly, so both strategies can be checked; this goes *beyond* the
//! paper's evaluation while staying squarely within its formalism.

use entangle_ir::{DType, GraphBuilder, Op, TensorId};
use entangle_models::{Arch, ModelConfig, RegressionConfig};

use crate::dist::Distributed;

/// Data parallelism over the regression *training step*: each replica
/// computes its loss and weight gradient on a batch shard; losses and
/// gradients are combined by weighted all-reduce (gradient averaging).
///
/// With equal shards of size `N/R`, the replica gradient `(2R/N)·xᵣᵀeᵣ`
/// averaged over `R` replicas equals the sequential `(2/N)·xᵀe` — the
/// correctness fact DP rests on (§2.1). Set `average` to `false` to inject
/// the classic DP bug: summing instead of averaging gradients.
///
/// # Panics
///
/// Panics when the batch does not divide evenly.
pub fn data_parallel(cfg: &RegressionConfig, replicas: usize, average: bool) -> Distributed {
    assert!(replicas >= 1);
    assert_eq!(cfg.batch % replicas, 0, "batch must divide by replicas");
    let (n, f) = (cfg.batch as i64, cfg.features as i64);
    let r = replicas as i64;
    let nm = n / r;

    let mut g = GraphBuilder::new(if average {
        "regression-dp"
    } else {
        "regression-dp-sum"
    });
    let mut maps = Vec::new();
    let w = g.input("w", &[f, 1], DType::F32);
    let b = g.input("b", &[1], DType::F32);
    maps.push(("w".to_owned(), "w".to_owned()));
    maps.push(("b".to_owned(), "b".to_owned()));

    let mut x_expr = "x.0".to_owned();
    let mut y_expr = "y.0".to_owned();
    let mut losses = Vec::with_capacity(replicas);
    let mut grads = Vec::with_capacity(replicas);
    for i in 0..replicas {
        let x = g.input(&format!("x.{i}"), &[nm, f], DType::F32);
        let y = g.input(&format!("y.{i}"), &[nm, 1], DType::F32);
        if i > 0 {
            x_expr = format!("(concat {x_expr} x.{i} 0)");
            y_expr = format!("(concat {y_expr} y.{i} 0)");
        }
        let xw = g
            .apply(&format!("xw.{i}"), Op::Matmul, &[x, w])
            .expect("valid");
        let pred = g
            .apply(&format!("pred.{i}"), Op::Add, &[xw, b])
            .expect("valid");
        let loss = g
            .apply(&format!("loss.{i}"), Op::MseLoss, &[pred, y])
            .expect("valid");
        let err = g
            .apply(&format!("err.{i}"), Op::Sub, &[pred, y])
            .expect("valid");
        let xt = g
            .apply(&format!("xT.{i}"), Op::Transpose { d0: 0, d1: 1 }, &[x])
            .expect("valid");
        let xte = g
            .apply(&format!("xTe.{i}"), Op::Matmul, &[xt, err])
            .expect("valid");
        let grad = g
            .apply(
                &format!("grad.{i}"),
                Op::ScalarMul {
                    numer: 2,
                    denom: nm,
                },
                &[xte],
            )
            .expect("valid");
        losses.push(loss);
        grads.push(grad);
    }
    maps.push(("x".to_owned(), x_expr));
    maps.push(("y".to_owned(), y_expr));

    // Loss: equal-share average of replica losses.
    let total_loss = weighted_average(&mut g, "loss", &losses, r, true);
    // Gradient: the all-reduce, averaged (correct) or raw-summed (buggy).
    let total_grad = weighted_average(&mut g, "grad_w", &grads, r, average);
    g.mark_output(total_loss);
    g.mark_output(total_grad);
    Distributed {
        declared: Vec::new(),
        graph: g.finish().expect("DP graph validates"),
        input_maps: maps,
    }
}

fn weighted_average(
    g: &mut GraphBuilder,
    name: &str,
    parts: &[TensorId],
    r: i64,
    average: bool,
) -> TensorId {
    let reduced = if parts.len() == 1 {
        parts[0]
    } else {
        g.apply(&format!("{name}_allreduce"), Op::AllReduce, parts)
            .expect("valid all-reduce")
    };
    if average && parts.len() > 1 {
        g.apply(
            &format!("{name}_avg"),
            Op::ScalarMul { numer: 1, denom: r },
            &[reduced],
        )
        .expect("valid scale")
    } else {
        reduced
    }
}

/// Pipeline parallelism with microbatching: the batch is split into
/// microbatches that flow through the (conceptually stage-partitioned)
/// layers; the logits are gathered back along the batch dimension.
///
/// In graph terms, stage assignment is scheduling metadata — the dataflow is
/// the per-microbatch forward with shared weights plus the final gather,
/// which is exactly what refinement checking consumes.
///
/// # Panics
///
/// Panics when the batch does not divide by `microbatches`.
pub fn pipeline(cfg: &ModelConfig, arch: Arch, microbatches: usize) -> Distributed {
    assert!(microbatches >= 1);
    assert_eq!(cfg.batch % microbatches, 0, "batch must divide evenly");
    let m = microbatches;
    let (s, h, v) = (cfg.seq as i64, cfg.hidden as i64, cfg.vocab as i64);
    let bm = (cfg.batch / m) as i64;

    let mut g = GraphBuilder::new("dist-pp");
    let mut maps: Vec<(String, String)> = Vec::new();
    let weight =
        |g: &mut GraphBuilder, maps: &mut Vec<(String, String)>, name: &str, dims: &[i64]| {
            let id = g.input(name, dims, DType::F32);
            maps.push((name.to_owned(), name.to_owned()));
            id
        };

    let wtok = weight(&mut g, &mut maps, "wtok", &[v, h]);
    let rope = if matches!(arch, Arch::Llama | Arch::Qwen2) {
        let cos = weight(&mut g, &mut maps, "rope_cos", &[s, h]);
        let sin = weight(&mut g, &mut maps, "rope_sin", &[s, h]);
        Some((cos, sin))
    } else {
        None
    };
    let wpos = matches!(arch, Arch::Gpt).then(|| weight(&mut g, &mut maps, "wpos", &[s, h]));

    // Per-layer weights, shared by every microbatch.
    struct LayerW {
        ln1: (TensorId, Option<TensorId>),
        wq: TensorId,
        wk: TensorId,
        wv: TensorId,
        bq: Option<TensorId>,
        bk: Option<TensorId>,
        wo: TensorId,
        ln2: (TensorId, Option<TensorId>),
        w1: TensorId,
        w3: Option<TensorId>,
        w2: TensorId,
    }
    let f = cfg.ffn as i64;
    let mut layer_weights = Vec::with_capacity(cfg.layers);
    for l in 0..cfg.layers {
        let p = format!("L{l}");
        let norm_w = |g: &mut GraphBuilder, maps: &mut Vec<(String, String)>, which: &str| {
            let w = {
                let id = g.input(&format!("{p}.{which}_w"), &[h], DType::F32);
                maps.push((format!("{p}.{which}_w"), format!("{p}.{which}_w")));
                id
            };
            let b = matches!(arch, Arch::Gpt).then(|| {
                let id = g.input(&format!("{p}.{which}_b"), &[h], DType::F32);
                maps.push((format!("{p}.{which}_b"), format!("{p}.{which}_b")));
                id
            });
            (w, b)
        };
        let ln1 = norm_w(&mut g, &mut maps, "ln1");
        let wq = weight(&mut g, &mut maps, &format!("{p}.wq"), &[h, h]);
        let wk = weight(&mut g, &mut maps, &format!("{p}.wk"), &[h, h]);
        let wv = weight(&mut g, &mut maps, &format!("{p}.wv"), &[h, h]);
        let (bq, bk) = if matches!(arch, Arch::Qwen2) {
            (
                Some(weight(&mut g, &mut maps, &format!("{p}.bq"), &[h])),
                Some(weight(&mut g, &mut maps, &format!("{p}.bk"), &[h])),
            )
        } else {
            (None, None)
        };
        let wo = weight(&mut g, &mut maps, &format!("{p}.wo"), &[h, h]);
        let ln2 = norm_w(&mut g, &mut maps, "ln2");
        let w1 = weight(&mut g, &mut maps, &format!("{p}.w1"), &[h, f]);
        let w3 = matches!(arch, Arch::Llama | Arch::Qwen2)
            .then(|| weight(&mut g, &mut maps, &format!("{p}.w3"), &[h, f]));
        let w2 = weight(&mut g, &mut maps, &format!("{p}.w2"), &[f, h]);
        layer_weights.push(LayerW {
            ln1,
            wq,
            wk,
            wv,
            bq,
            bk,
            wo,
            ln2,
            w1,
            w3,
            w2,
        });
    }
    let lnf = {
        let w = weight(&mut g, &mut maps, "ln_f_w", &[h]);
        let b = matches!(arch, Arch::Gpt).then(|| weight(&mut g, &mut maps, "ln_f_b", &[h]));
        (w, b)
    };
    let wlm = weight(&mut g, &mut maps, "wlm", &[h, v]);

    let mut ids_expr = String::new();
    let mut outputs = Vec::with_capacity(m);
    for i in 0..m {
        let ids = g.input(&format!("ids.{i}"), &[bm, s], DType::I64);
        ids_expr = if i == 0 {
            format!("ids.{i}")
        } else {
            format!("(concat {ids_expr} ids.{i} 0)")
        };
        let mut x = g
            .apply(&format!("mb{i}.embed"), Op::Embedding, &[wtok, ids])
            .expect("valid");
        if let Some(wpos) = wpos {
            x = g
                .apply(&format!("mb{i}.pos_embed"), Op::Add, &[x, wpos])
                .expect("valid");
        }
        for (l, lw) in layer_weights.iter().enumerate() {
            let p = format!("mb{i}.L{l}");
            let norm = |g: &mut GraphBuilder,
                        name: &str,
                        x: TensorId,
                        (w, b): (TensorId, Option<TensorId>)| {
                match b {
                    Some(b) => g.apply(name, Op::LayerNorm, &[x, w, b]).expect("valid"),
                    None => g.apply(name, Op::RmsNorm, &[x, w]).expect("valid"),
                }
            };
            let n1 = norm(&mut g, &format!("{p}.ln1"), x, lw.ln1);
            let mut q = g
                .apply(&format!("{p}.q"), Op::Matmul, &[n1, lw.wq])
                .expect("valid");
            let mut k = g
                .apply(&format!("{p}.k"), Op::Matmul, &[n1, lw.wk])
                .expect("valid");
            let vv = g
                .apply(&format!("{p}.v"), Op::Matmul, &[n1, lw.wv])
                .expect("valid");
            if let (Some(bq), Some(bk)) = (lw.bq, lw.bk) {
                q = g
                    .apply(&format!("{p}.qb"), Op::Add, &[q, bq])
                    .expect("valid");
                k = g
                    .apply(&format!("{p}.kb"), Op::Add, &[k, bk])
                    .expect("valid");
            }
            if let Some((cos, sin)) = rope {
                q = g
                    .apply(&format!("{p}.q_rope"), Op::Rope, &[q, cos, sin])
                    .expect("valid");
                k = g
                    .apply(&format!("{p}.k_rope"), Op::Rope, &[k, cos, sin])
                    .expect("valid");
            }
            let attn = g
                .apply(
                    &format!("{p}.attn"),
                    Op::Attention {
                        heads: cfg.heads,
                        causal: cfg.causal,
                    },
                    &[q, k, vv],
                )
                .expect("valid");
            let o = g
                .apply(&format!("{p}.attn_out"), Op::Matmul, &[attn, lw.wo])
                .expect("valid");
            x = g
                .apply(&format!("{p}.res1"), Op::Add, &[x, o])
                .expect("valid");
            let n2 = norm(&mut g, &format!("{p}.ln2"), x, lw.ln2);
            let mlp = match lw.w3 {
                None => {
                    let up = g
                        .apply(&format!("{p}.mlp_up"), Op::Matmul, &[n2, lw.w1])
                        .expect("valid");
                    let act = g
                        .apply(&format!("{p}.mlp_act"), Op::Gelu, &[up])
                        .expect("valid");
                    g.apply(&format!("{p}.mlp_down"), Op::Matmul, &[act, lw.w2])
                        .expect("valid")
                }
                Some(w3) => {
                    let gate = g
                        .apply(&format!("{p}.mlp_gate"), Op::Matmul, &[n2, lw.w1])
                        .expect("valid");
                    let up = g
                        .apply(&format!("{p}.mlp_upproj"), Op::Matmul, &[n2, w3])
                        .expect("valid");
                    let act = g
                        .apply(&format!("{p}.mlp_silu"), Op::Silu, &[gate])
                        .expect("valid");
                    let prod = g
                        .apply(&format!("{p}.mlp_mul"), Op::Mul, &[act, up])
                        .expect("valid");
                    g.apply(&format!("{p}.mlp_down"), Op::Matmul, &[prod, lw.w2])
                        .expect("valid")
                }
            };
            x = g
                .apply(&format!("{p}.res2"), Op::Add, &[x, mlp])
                .expect("valid");
        }
        let nf = match lnf.1 {
            Some(b) => g
                .apply(&format!("mb{i}.ln_f"), Op::LayerNorm, &[x, lnf.0, b])
                .expect("valid"),
            None => g
                .apply(&format!("mb{i}.ln_f"), Op::RmsNorm, &[x, lnf.0])
                .expect("valid"),
        };
        outputs.push(
            g.apply(&format!("mb{i}.logits"), Op::Matmul, &[nf, wlm])
                .expect("valid"),
        );
    }
    maps.push(("ids".to_owned(), ids_expr));
    let logits = if m == 1 {
        outputs[0]
    } else {
        g.apply("logits_gather", Op::AllGather { dim: 0 }, &outputs)
            .expect("valid")
    };
    g.mark_output(logits);
    Distributed {
        declared: Vec::new(),
        graph: g.finish().expect("PP graph validates"),
        input_maps: maps,
    }
}
