//! Gradient accumulation for the regression workload (Table 2's
//! HuggingFace-trainer row).

use entangle_ir::{DType, GraphBuilder, Op, TensorId};
use entangle_models::RegressionConfig;

use crate::dist::Distributed;

/// Splits the batch into `microbatches` and accumulates per-microbatch
/// losses, scaled by `1/microbatches` — the correct discipline whose absence
/// is Bug 6.
///
/// Set `scaled` to `false` to reproduce the bug (the raw sum of microbatch
/// losses, which is `M×` the sequential loss).
///
/// # Panics
///
/// Panics when the batch does not divide evenly.
pub fn grad_accumulation(cfg: &RegressionConfig, microbatches: usize, scaled: bool) -> Distributed {
    assert!(microbatches >= 1);
    assert_eq!(cfg.batch % microbatches, 0, "batch must divide evenly");
    let (n, f) = (cfg.batch as i64, cfg.features as i64);
    let m = microbatches as i64;
    let nm = n / m;

    let mut g = GraphBuilder::new(if scaled {
        "regression-accum"
    } else {
        "regression-accum-unscaled"
    });
    let mut maps = Vec::new();
    let w = g.input("w", &[f, 1], DType::F32);
    let b = g.input("b", &[1], DType::F32);
    maps.push(("w".to_owned(), "w".to_owned()));
    maps.push(("b".to_owned(), "b".to_owned()));

    let mut x_expr = "x.0".to_owned();
    let mut y_expr = "y.0".to_owned();
    let mut losses: Vec<TensorId> = Vec::with_capacity(microbatches);
    for i in 0..microbatches {
        let x = g.input(&format!("x.{i}"), &[nm, f], DType::F32);
        let y = g.input(&format!("y.{i}"), &[nm, 1], DType::F32);
        if i > 0 {
            x_expr = format!("(concat {x_expr} x.{i} 0)");
            y_expr = format!("(concat {y_expr} y.{i} 0)");
        }
        let xw = g
            .apply(&format!("xw.{i}"), Op::Matmul, &[x, w])
            .expect("valid");
        let pred = g
            .apply(&format!("pred.{i}"), Op::Add, &[xw, b])
            .expect("valid");
        losses.push(
            g.apply(&format!("loss.{i}"), Op::MseLoss, &[pred, y])
                .expect("valid"),
        );
    }
    maps.push(("x".to_owned(), x_expr));
    maps.push(("y".to_owned(), y_expr));

    let mut acc = losses[0];
    for (i, &l) in losses.iter().enumerate().skip(1) {
        acc = g
            .apply(&format!("acc.{i}"), Op::Add, &[acc, l])
            .expect("valid");
    }
    let total = if scaled && microbatches > 1 {
        g.apply("total", Op::ScalarMul { numer: 1, denom: m }, &[acc])
            .expect("valid")
    } else {
        acc
    };
    g.mark_output(total);
    Distributed {
        declared: Vec::new(),
        graph: g.finish().expect("accumulation graph must validate"),
        input_maps: maps,
    }
}
