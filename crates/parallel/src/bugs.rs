//! The nine real-world bugs of the paper's Table 3 / Appendix A, each
//! reproduced as a graph-level fault with a correct twin.
//!
//! | # | Source | Bug | Detection |
//! |---|--------|-----|-----------|
//! | 1 | ByteDance | incorrect offset in RoPE with SP | refinement fails at the rope operator |
//! | 2 | ByteDance | missing `1/T` scaling of the auxiliary loss with TP | output reconstructible only via a (non-clean) scale |
//! | 3 | ByteDance | mismatched padding/slicing around all-gather | refinement fails at the consumer matmul |
//! | 4 | ByteDance | expert weights sharded instead of replicated under SP | refinement fails at the first matmul |
//! | 5 | ByteDance | layernorm weight gradient not registered with the SP optimizer | user expectation violated |
//! | 6 | HF transformers | unscaled gradient accumulation | output reconstructible only via a scale |
//! | 7 | Megatron-LM | missing all-reduce after a row-parallel linear | refinement fails at the next parallel matmul |
//! | 8 | Megatron-LM | missing all-reduce for the MoE router's gradients under TP+SP | user expectation violated |
//! | 9 | TransformerEngine | missing all-reduce for SP layernorm weight gradients | user expectation violated |

use entangle::{
    check_expectation, check_refinement, CheckOptions, ExpectationError, RefinementError, Relation,
};
use entangle_ir::{DType, Graph, GraphBuilder, IrError, Op};
use entangle_models::RegressionConfig;

use crate::accum::grad_accumulation;
use crate::dist::Distributed;

/// A reproduced bug: sequential model, distributed implementation (buggy or
/// fixed), input relation, and the optional §4.4 expectation.
pub struct BugCase {
    /// Table 3 bug number (1–9).
    pub id: usize,
    /// Short name.
    pub name: &'static str,
    /// What went wrong, per Appendix A.
    pub description: &'static str,
    /// The sequential model `G_s`.
    pub gs: Graph,
    /// The distributed implementation `G_d` and its input maps.
    pub dist: Distributed,
    /// User expectation `(f_s, f_d)` as s-expressions, when the bug is only
    /// visible through §4.4 expectation checking.
    pub expectation: Option<(String, String)>,
    /// Whether this instance carries the fault.
    pub buggy: bool,
}

/// What running the checker on a [`BugCase`] produced.
#[derive(Debug)]
pub enum BugVerdict {
    /// Refinement (and the expectation, if any) verified.
    Clean,
    /// Refinement failed — a bug, with the localization report.
    RefinementBug(RefinementError),
    /// The user expectation was violated.
    ExpectationBug(ExpectationError),
}

impl BugVerdict {
    /// `true` when the checker flagged a bug.
    pub fn detected(&self) -> bool {
        !matches!(self, BugVerdict::Clean)
    }
}

impl BugCase {
    /// The validated input relation.
    ///
    /// # Errors
    ///
    /// Propagates relation-construction failures (a case-construction bug).
    pub fn relation(&self) -> Result<Relation, IrError> {
        self.dist.relation(&self.gs)
    }

    /// Runs the appropriate check (refinement or expectation).
    ///
    /// # Panics
    ///
    /// Panics if the case's relation or expectation expressions are
    /// malformed (construction bugs, not model bugs).
    pub fn run(&self, opts: &CheckOptions) -> BugVerdict {
        let ri = self.relation().expect("bug-case relation is valid");
        match &self.expectation {
            None => match check_refinement(&self.gs, &self.dist.graph, &ri, opts) {
                Ok(_) => BugVerdict::Clean,
                Err(e) => BugVerdict::RefinementBug(e),
            },
            Some((fs, fd)) => {
                let fs = fs.parse().expect("f_s parses");
                let fd = fd.parse().expect("f_d parses");
                match check_expectation(&self.gs, &self.dist.graph, &ri, &fs, &fd, opts) {
                    Ok(_) => BugVerdict::Clean,
                    Err(ExpectationError::Refinement(e)) => BugVerdict::RefinementBug(e),
                    Err(e) => BugVerdict::ExpectationBug(e),
                }
            }
        }
    }
}

/// Builds bug `id` (1–9), buggy or fixed.
///
/// # Panics
///
/// Panics for ids outside 1–9.
pub fn bug(id: usize, buggy: bool) -> BugCase {
    match id {
        1 => bug1_rope_offset(buggy),
        2 => bug2_aux_loss_scale(buggy),
        3 => bug3_pad_slice_mismatch(buggy),
        4 => bug4_sharded_expert_weights(buggy),
        5 => bug5_layernorm_weight_aggregation(buggy),
        6 => bug6_grad_accumulation_scale(buggy),
        7 => bug7_missing_all_reduce_linear(buggy),
        8 => bug8_moe_router_all_reduce(buggy),
        9 => bug9_sp_layernorm_all_reduce(buggy),
        other => panic!("no bug #{other}; Table 3 has bugs 1-9"),
    }
}

/// All nine bugs, buggy or fixed.
pub fn all_bugs(buggy: bool) -> Vec<BugCase> {
    (1..=9).map(|id| bug(id, buggy)).collect()
}

const B: i64 = 2;
const S: i64 = 8;
const H: i64 = 8;

/// Bug 1 (Figure 7): under SP, each rank must take *its* slice of the
/// pre-computed cos/sin tables; the backward implementation forgot the
/// offset and rank 1 reused rank 0's slice.
fn bug1_rope_offset(buggy: bool) -> BugCase {
    let mut gs = GraphBuilder::new("rope-seq");
    let q = gs.input("q", &[B, S, H], DType::F32);
    let cos = gs.input("full_cos", &[S, H], DType::F32);
    let sin = gs.input("full_sin", &[S, H], DType::F32);
    let out = gs.apply("apply_rotary", Op::Rope, &[q, cos, sin]).unwrap();
    gs.mark_output(out);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("rope-seq-sp2");
    let half = S / 2;
    let cos_d = gd.input("full_cos", &[S, H], DType::F32);
    let sin_d = gd.input("full_sin", &[S, H], DType::F32);
    let maps = vec![
        ("q".to_owned(), "(concat q.0 q.1 1)".to_owned()),
        ("full_cos".to_owned(), "full_cos".to_owned()),
        ("full_sin".to_owned(), "full_sin".to_owned()),
    ];
    for r in 0..2i64 {
        let qr = gd.input(&format!("q.{r}"), &[B, half, H], DType::F32);
        // Correct: rank r slices [r·S/2, (r+1)·S/2). Buggy: both ranks
        // slice [0, S/2) — the forgotten offset in the backward method.
        let off = if buggy { 0 } else { r * half };
        let cos_r = gd
            .apply(
                &format!("cos.{r}"),
                Op::Slice {
                    dim: 0,
                    start: off.into(),
                    end: (off + half).into(),
                },
                &[cos_d],
            )
            .unwrap();
        let sin_r = gd
            .apply(
                &format!("sin.{r}"),
                Op::Slice {
                    dim: 0,
                    start: off.into(),
                    end: (off + half).into(),
                },
                &[sin_d],
            )
            .unwrap();
        let out_r = gd
            .apply(&format!("apply_rotary.{r}"), Op::Rope, &[qr, cos_r, sin_r])
            .unwrap();
        gd.mark_output(out_r);
    }
    let gd = gd.finish().unwrap();
    BugCase {
        id: 1,
        name: "rope-offset-sp",
        description: "incorrect offset in RoPE cos/sin slices with sequence parallelism",
        gs,
        dist: Distributed {
            declared: Vec::new(),
            graph: gd,
            input_maps: maps,
        },
        expectation: None,
        buggy,
    }
}

/// Bug 2: the MoE auxiliary loss must be scaled by `1/T` under TP so the
/// subsequent reduction recovers the sequential loss; unscaled, the result
/// is `T×` too large — and `scalar_mul` is not clean, so refinement fails.
fn bug2_aux_loss_scale(buggy: bool) -> BugCase {
    let e = 4i64;
    let mut gs = GraphBuilder::new("aux-loss");
    let load = gs.input("load", &[e], DType::F32);
    let sq = gs.apply("load_sq", Op::Mul, &[load, load]).unwrap();
    let aux = gs.apply("aux", Op::SumAll, &[sq]).unwrap();
    gs.mark_output(aux);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("aux-loss-tp2");
    let load_d = gd.input("load", &[e], DType::F32);
    let mut contributions = Vec::new();
    for r in 0..2 {
        let sq = gd
            .apply(&format!("load_sq.{r}"), Op::Mul, &[load_d, load_d])
            .unwrap();
        let aux = gd.apply(&format!("aux.{r}"), Op::SumAll, &[sq]).unwrap();
        let c = if buggy {
            aux // BUG: forgot the 1/T scale
        } else {
            gd.apply(
                &format!("aux_scaled.{r}"),
                Op::ScalarMul { numer: 1, denom: 2 },
                &[aux],
            )
            .unwrap()
        };
        contributions.push(c);
    }
    let total = gd
        .apply("aux_total", Op::AllReduce, &contributions)
        .unwrap();
    gd.mark_output(total);
    let gd = gd.finish().unwrap();

    BugCase {
        id: 2,
        name: "aux-loss-scale-tp",
        description: "auxiliary loss not scaled down by the TP world size",
        gs,
        dist: Distributed {
            declared: Vec::new(),
            graph: gd,
            input_maps: vec![("load".to_owned(), "load".to_owned())],
        },
        expectation: None,
        buggy,
    }
}

/// Bug 3: the all-gather requires equal shard shapes, so shards are padded —
/// but the slice removing the padding used inconsistent offsets, dropping a
/// real element and keeping a padded zero.
fn bug3_pad_slice_mismatch(buggy: bool) -> BugCase {
    let (seq, h) = (6i64, 4i64);
    let mut gs = GraphBuilder::new("pad-slice");
    let x = gs.input("x", &[seq, h], DType::F32);
    let w = gs.input("w", &[h, h], DType::F32);
    let y = gs.apply("proj", Op::Matmul, &[x, w]).unwrap();
    gs.mark_output(y);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("pad-slice-sp2");
    let half = seq / 2; // 3, padded to 4 for the all-gather
    let x0 = gd.input("x.0", &[half, h], DType::F32);
    let x1 = gd.input("x.1", &[half, h], DType::F32);
    let w_d = gd.input("w", &[h, h], DType::F32);
    let p0 = gd
        .apply(
            "pad.0",
            Op::Pad {
                dim: 0,
                before: 0.into(),
                after: 1.into(),
            },
            &[x0],
        )
        .unwrap();
    let p1 = gd
        .apply(
            "pad.1",
            Op::Pad {
                dim: 0,
                before: 0.into(),
                after: 1.into(),
            },
            &[x1],
        )
        .unwrap();
    let gathered = gd
        .apply("gather", Op::AllGather { dim: 0 }, &[p0, p1])
        .unwrap();
    // Correct: drop the padding at positions 3 and 7. Buggy: slice [0,3)
    // and [3,6) — keeps the padded zero at 3, drops the element at 4.
    let (b0, b1) = if buggy { (3, 6) } else { (4, 7) };
    let s0 = gd
        .apply(
            "unpad.0",
            Op::Slice {
                dim: 0,
                start: 0.into(),
                end: 3.into(),
            },
            &[gathered],
        )
        .unwrap();
    let s1 = gd
        .apply(
            "unpad.1",
            Op::Slice {
                dim: 0,
                start: b0.into(),
                end: b1.into(),
            },
            &[gathered],
        )
        .unwrap();
    let full = gd
        .apply("unpadded", Op::Concat { dim: 0 }, &[s0, s1])
        .unwrap();
    let y = gd.apply("proj", Op::Matmul, &[full, w_d]).unwrap();
    gd.mark_output(y);
    let gd = gd.finish().unwrap();

    BugCase {
        id: 3,
        name: "pad-slice-mismatch",
        description: "mismatched padding and slicing parameters in data processing",
        gs,
        dist: Distributed {
            declared: Vec::new(),
            graph: gd,
            input_maps: vec![
                ("x".to_owned(), "(concat x.0 x.1 0)".to_owned()),
                ("w".to_owned(), "w".to_owned()),
            ],
        },
        expectation: None,
        buggy,
    }
}

/// Bug 4 (§2.2): switching the MoE sharding from TP to SP requires expert
/// weights to be *replicated*, but a stale configuration left them sharded:
/// each rank applies only its own expert slice to its sequence shard, and
/// the off-diagonal blocks are never computed. The intermediate keeps its
/// shape, so shape checking cannot catch this.
fn bug4_sharded_expert_weights(buggy: bool) -> BugCase {
    let mut gs = GraphBuilder::new("expert");
    let x = gs.input("x", &[S, H], DType::F32);
    let a = gs.input("a", &[H, H], DType::F32);
    let c = gs.apply("xa", Op::Matmul, &[x, a]).unwrap();
    gs.mark_output(c);
    let gs = gs.finish().unwrap();

    let half = S / 2;
    let mut gd = GraphBuilder::new("expert-sp2");
    let x0 = gd.input("x.0", &[half, H], DType::F32);
    let x1 = gd.input("x.1", &[half, H], DType::F32);
    let mut maps = vec![("x".to_owned(), "(concat x.0 x.1 0)".to_owned())];
    let (y0, y1) = if buggy {
        // BUG: the ranks hold *different* weights (the old TP sharding);
        // rank r computes X_r × A_r and X_1 × A_0 etc. never exist.
        let a0 = gd.input("a.0", &[H, H], DType::F32);
        let a1 = gd.input("a.1", &[H, H], DType::F32);
        // The honest input relation: rank 0 holds the configured weight
        // (what SP semantics *should* replicate).
        maps.push(("a".to_owned(), "a.0".to_owned()));
        (
            gd.apply("xa.0", Op::Matmul, &[x0, a0]).unwrap(),
            gd.apply("xa.1", Op::Matmul, &[x1, a1]).unwrap(),
        )
    } else {
        let a_d = gd.input("a", &[H, H], DType::F32);
        maps.push(("a".to_owned(), "a".to_owned()));
        (
            gd.apply("xa.0", Op::Matmul, &[x0, a_d]).unwrap(),
            gd.apply("xa.1", Op::Matmul, &[x1, a_d]).unwrap(),
        )
    };
    let full = gd.apply("xa", Op::AllGather { dim: 0 }, &[y0, y1]).unwrap();
    gd.mark_output(full);
    let gd = gd.finish().unwrap();

    BugCase {
        id: 4,
        name: "sharded-expert-weights-sp",
        description:
            "incompatible configuration: expert weights sharded instead of replicated under SP",
        gs,
        dist: Distributed {
            declared: Vec::new(),
            graph: gd,
            input_maps: maps,
        },
        expectation: None,
        buggy,
    }
}

/// Bug 5: a layernorm's weight was never registered with the SP-group
/// optimizer, so its gradient is missing the all-reduce. Refinement *can*
/// relate the per-rank partials, but the user's expectation — the optimizer
/// reads an already-aggregated gradient — is violated.
fn bug5_layernorm_weight_aggregation(buggy: bool) -> BugCase {
    let mut gs = GraphBuilder::new("ln-weight-grad");
    // Gradient of a layernorm weight: sum over all positions of
    // (normalized activation × upstream gradient); positions are
    // sequence-sharded under SP.
    let contrib = gs.input("contrib", &[S, H], DType::F32);
    let grad = gs
        .apply(
            "ln_w_grad",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[contrib],
        )
        .unwrap();
    gs.mark_output(grad);
    let gs = gs.finish().unwrap();

    let half = S / 2;
    let mut gd = GraphBuilder::new("ln-weight-grad-sp2");
    let c0 = gd.input("contrib.0", &[half, H], DType::F32);
    let c1 = gd.input("contrib.1", &[half, H], DType::F32);
    let g0 = gd
        .apply(
            "grad.0",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[c0],
        )
        .unwrap();
    let g1 = gd
        .apply(
            "grad.1",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[c1],
        )
        .unwrap();
    gd.mark_output(g0);
    gd.mark_output(g1);
    let expected = if buggy {
        // BUG: the weight was never registered, so the optimizer consumes
        // the rank-local partial as if it were the full gradient.
        "grad.0".to_owned()
    } else {
        let agg = gd.apply("grad_agg", Op::AllReduce, &[g0, g1]).unwrap();
        gd.mark_output(agg);
        "grad_agg".to_owned()
    };
    let gd = gd.finish().unwrap();

    BugCase {
        id: 5,
        name: "ln-weight-missing-aggregation",
        description: "layernorm weight not registered with the SP optimizer group",
        gs,
        dist: Distributed {
            declared: Vec::new(),
            graph: gd,
            input_maps: vec![(
                "contrib".to_owned(),
                "(concat contrib.0 contrib.1 0)".to_owned(),
            )],
        },
        expectation: Some(("ln_w_grad".to_owned(), expected)),
        buggy,
    }
}

/// Bug 6: gradient accumulation without the `1/M` loss scaling.
fn bug6_grad_accumulation_scale(buggy: bool) -> BugCase {
    let cfg = RegressionConfig::tiny();
    let gs = entangle_models::regression(&cfg);
    let dist = grad_accumulation(&cfg, 2, !buggy);
    BugCase {
        id: 6,
        name: "grad-accumulation-scale",
        description: "wrong (missing) scaling in gradient accumulation",
        gs,
        dist,
        expectation: None,
        buggy,
    }
}

/// Bug 7: a mis-configuration dropped the all-reduce after a row-parallel
/// linear layer; the partial sums flow into the next column-parallel matmul
/// and the off-diagonal products are never computed.
fn bug7_missing_all_reduce_linear(buggy: bool) -> BugCase {
    let mut gs = GraphBuilder::new("two-linears");
    let x = gs.input("x", &[S, H], DType::F32);
    let a = gs.input("a", &[H, H], DType::F32);
    let bw = gs.input("bmat", &[H, H], DType::F32);
    let h = gs.apply("h", Op::Matmul, &[x, a]).unwrap();
    let y = gs.apply("y", Op::Matmul, &[h, bw]).unwrap();
    gs.mark_output(y);
    let gs = gs.finish().unwrap();

    let hh = H / 2;
    let mut gd = GraphBuilder::new("two-linears-tp2");
    let x0 = gd.input("x.0", &[S, hh], DType::F32);
    let x1 = gd.input("x.1", &[S, hh], DType::F32);
    let a0 = gd.input("a.0", &[hh, H], DType::F32);
    let a1 = gd.input("a.1", &[hh, H], DType::F32);
    let b0 = gd.input("bmat.0", &[H, hh], DType::F32);
    let b1 = gd.input("bmat.1", &[H, hh], DType::F32);
    let h0 = gd.apply("h.0", Op::Matmul, &[x0, a0]).unwrap();
    let h1 = gd.apply("h.1", Op::Matmul, &[x1, a1]).unwrap();
    let (in0, in1) = if buggy {
        (h0, h1) // BUG: partial sums flow on, unreduced
    } else {
        let hf0 = gd.apply("h_full.0", Op::AllReduce, &[h0, h1]).unwrap();
        let hf1 = gd.apply("h_full.1", Op::AllReduce, &[h0, h1]).unwrap();
        (hf0, hf1)
    };
    let y0 = gd.apply("y.0", Op::Matmul, &[in0, b0]).unwrap();
    let y1 = gd.apply("y.1", Op::Matmul, &[in1, b1]).unwrap();
    let y = gd.apply("y", Op::AllGather { dim: 1 }, &[y0, y1]).unwrap();
    gd.mark_output(y);
    let gd = gd.finish().unwrap();

    BugCase {
        id: 7,
        name: "missing-all-reduce-linear",
        description: "missing all-reduce in a parallel linear layer due to mis-configuration",
        gs,
        dist: Distributed {
            declared: Vec::new(),
            graph: gd,
            input_maps: vec![
                ("x".to_owned(), "(concat x.0 x.1 1)".to_owned()),
                ("a".to_owned(), "(concat a.0 a.1 0)".to_owned()),
                ("bmat".to_owned(), "(concat bmat.0 bmat.1 1)".to_owned()),
            ],
        },
        expectation: None,
        buggy,
    }
}

/// Bug 8: the MoE router's weight gradients were not all-reduced when both
/// TP and SP were enabled — another expectation-style bug: refinement can
/// still relate the partials, but Megatron's optimizer expected the reduced
/// value.
fn bug8_moe_router_all_reduce(buggy: bool) -> BugCase {
    let e = 4i64;
    let mut gs = GraphBuilder::new("router-grad");
    let x = gs.input("x", &[S, H], DType::F32);
    let d = gs.input("delta", &[S, e], DType::F32);
    let xt = gs
        .apply("xT", Op::Transpose { d0: 0, d1: 1 }, &[x])
        .unwrap();
    let grad = gs.apply("wr_grad", Op::Matmul, &[xt, d]).unwrap();
    gs.mark_output(grad);
    let gs = gs.finish().unwrap();

    let half = S / 2;
    let mut gd = GraphBuilder::new("router-grad-sp2");
    let mut partials = Vec::new();
    for r in 0..2 {
        let xr = gd.input(&format!("x.{r}"), &[half, H], DType::F32);
        let dr = gd.input(&format!("delta.{r}"), &[half, e], DType::F32);
        let xt = gd
            .apply(&format!("xT.{r}"), Op::Transpose { d0: 0, d1: 1 }, &[xr])
            .unwrap();
        let p = gd
            .apply(&format!("wr_grad.{r}"), Op::Matmul, &[xt, dr])
            .unwrap();
        gd.mark_output(p);
        partials.push(p);
    }
    let expected = if buggy {
        "wr_grad.0".to_owned() // BUG: rank-local partial used directly
    } else {
        let agg = gd.apply("wr_grad_agg", Op::AllReduce, &partials).unwrap();
        gd.mark_output(agg);
        "wr_grad_agg".to_owned()
    };
    let gd = gd.finish().unwrap();

    BugCase {
        id: 8,
        name: "moe-router-missing-all-reduce",
        description: "missing all-reduce in the optimizer for the TP+SP MoE router",
        gs,
        dist: Distributed {
            declared: Vec::new(),
            graph: gd,
            input_maps: vec![
                ("x".to_owned(), "(concat x.0 x.1 0)".to_owned()),
                ("delta".to_owned(), "(concat delta.0 delta.1 0)".to_owned()),
            ],
        },
        expectation: Some(("wr_grad".to_owned(), expected)),
        buggy,
    }
}

/// Bug 9: TransformerEngine's new LayerNorm/RMSNorm API forgot to all-reduce
/// the weight gradients under SP. ENTANGLE finds a refinement (through an
/// all-reduce), but the user expected none to be necessary.
fn bug9_sp_layernorm_all_reduce(buggy: bool) -> BugCase {
    let mut gs = GraphBuilder::new("rms-weight-grad");
    // RMSNorm weight gradient: elementwise product of normalized input and
    // upstream gradient, summed over positions.
    let normed = gs.input("normed", &[S, H], DType::F32);
    let up = gs.input("upstream", &[S, H], DType::F32);
    let prod = gs.apply("prod", Op::Mul, &[normed, up]).unwrap();
    let grad = gs
        .apply(
            "rms_w_grad",
            Op::SumDim {
                dim: 0,
                keepdim: false,
            },
            &[prod],
        )
        .unwrap();
    gs.mark_output(grad);
    let gs = gs.finish().unwrap();

    let half = S / 2;
    let mut gd = GraphBuilder::new("rms-weight-grad-sp2");
    let mut partials = Vec::new();
    for r in 0..2 {
        let n = gd.input(&format!("normed.{r}"), &[half, H], DType::F32);
        let u = gd.input(&format!("upstream.{r}"), &[half, H], DType::F32);
        let prod = gd.apply(&format!("prod.{r}"), Op::Mul, &[n, u]).unwrap();
        let p = gd
            .apply(
                &format!("rms_w_grad.{r}"),
                Op::SumDim {
                    dim: 0,
                    keepdim: false,
                },
                &[prod],
            )
            .unwrap();
        gd.mark_output(p);
        partials.push(p);
    }
    let expected = if buggy {
        "rms_w_grad.0".to_owned()
    } else {
        let agg = gd
            .apply("rms_w_grad_agg", Op::AllReduce, &partials)
            .unwrap();
        gd.mark_output(agg);
        "rms_w_grad_agg".to_owned()
    };
    let gd = gd.finish().unwrap();

    BugCase {
        id: 9,
        name: "sp-layernorm-missing-all-reduce",
        description: "missing all-reduce in the optimizer for SP layernorm/RMSNorm weights",
        gs,
        dist: Distributed {
            declared: Vec::new(),
            graph: gd,
            input_maps: vec![
                (
                    "normed".to_owned(),
                    "(concat normed.0 normed.1 0)".to_owned(),
                ),
                (
                    "upstream".to_owned(),
                    "(concat upstream.0 upstream.1 0)".to_owned(),
                ),
            ],
        },
        expectation: Some(("rms_w_grad".to_owned(), expected)),
        buggy,
    }
}
