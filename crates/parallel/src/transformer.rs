//! Distributed transformer builders: TP / SP / VP / EP applied to the zoo
//! models, the way Megatron-LM (and the ByteDance framework) apply them.

use entangle_ir::{DType, DeclaredLayout, GraphBuilder, Op, TensorId};
use entangle_models::{Arch, ModelConfig, MoeConfig};

use crate::dist::Distributed;

/// A combination of distribution strategies.
///
/// `tp` is the tensor-parallel world size; `sp` adds Megatron-style sequence
/// parallelism on top (requires `tp > 1`); `vp` splits the vocabulary
/// projection (vocab parallelism, "similar to TP" per §6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strategy {
    /// Tensor-parallel world size (1 = no TP).
    pub tp: usize,
    /// Sequence parallelism (Megatron SP; requires `tp > 1`).
    pub sp: bool,
    /// Vocabulary parallelism for the output head.
    pub vp: bool,
}

impl Strategy {
    /// Pure tensor parallelism of the given degree.
    pub fn tp(tp: usize) -> Strategy {
        Strategy {
            tp,
            sp: false,
            vp: false,
        }
    }

    /// TP + SP of the given degree.
    pub fn tp_sp(tp: usize) -> Strategy {
        Strategy {
            tp,
            sp: true,
            vp: false,
        }
    }

    /// TP + SP + VP (the Figure 4 GPT configuration).
    pub fn tp_sp_vp(tp: usize) -> Strategy {
        Strategy {
            tp,
            sp: true,
            vp: true,
        }
    }

    fn validate(&self, cfg: &ModelConfig) {
        assert!(self.tp >= 1, "tp must be at least 1");
        assert!(!self.sp || self.tp > 1, "SP requires TP > 1");
        assert_eq!(cfg.heads % self.tp, 0, "heads must divide by tp");
        assert_eq!(cfg.ffn % self.tp, 0, "ffn must divide by tp");
        assert_eq!(cfg.hidden % self.tp, 0, "hidden must divide by tp");
        if self.sp {
            assert_eq!(cfg.seq % self.tp, 0, "seq must divide by tp for SP");
        }
        if self.vp {
            assert_eq!(cfg.vocab % self.tp, 0, "vocab must divide by tp for VP");
        }
    }
}

/// Either a full activation tensor or per-rank sequence shards.
#[derive(Clone)]
enum Act {
    Full(TensorId),
    Shards(Vec<TensorId>),
}

struct DistBuilder<'a> {
    g: GraphBuilder,
    cfg: &'a ModelConfig,
    arch: Arch,
    s: Strategy,
    maps: Vec<(String, String)>,
    declared: Vec<(TensorId, DeclaredLayout)>,
    /// Per-rank (cos, sin) hidden shards, if the architecture uses rope.
    rope: Vec<(TensorId, TensorId)>,
}

impl<'a> DistBuilder<'a> {
    fn new(name: &str, cfg: &'a ModelConfig, arch: Arch, s: Strategy) -> Self {
        DistBuilder {
            g: GraphBuilder::new(name),
            cfg,
            arch,
            s,
            maps: Vec::new(),
            declared: Vec::new(),
            rope: Vec::new(),
        }
    }

    fn t(&self) -> usize {
        self.s.tp
    }

    /// A weight kept whole and shared by all ranks.
    fn replicated(&mut self, name: &str, dims: &[i64], dtype: DType) -> TensorId {
        let id = self.g.input(name, dims, dtype);
        self.maps.push((name.to_owned(), name.to_owned()));
        self.declared.push((id, DeclaredLayout::Replicated));
        id
    }

    /// A weight split into `t` shards along `dim`; records the concat map.
    fn sharded(&mut self, name: &str, full_dims: &[i64], dim: usize) -> Vec<TensorId> {
        let t = self.t();
        let mut dims = full_dims.to_vec();
        assert_eq!(
            dims[dim] % t as i64,
            0,
            "{name} dim {dim} must divide by tp"
        );
        dims[dim] /= t as i64;
        let shards: Vec<TensorId> = (0..t)
            .map(|r| {
                let id = self.g.input(&format!("{name}.{r}"), &dims, DType::F32);
                self.declared.push((
                    id,
                    DeclaredLayout::Sharded {
                        dim,
                        index: r,
                        parts: t,
                    },
                ));
                id
            })
            .collect();
        let mut expr = format!("{name}.0");
        for r in 1..t {
            expr = format!("(concat {expr} {name}.{r} {dim})");
        }
        self.maps.push((name.to_owned(), expr));
        shards
    }

    fn apply(&mut self, name: &str, op: Op, inputs: &[TensorId]) -> TensorId {
        self.g
            .apply(name, op, inputs)
            .unwrap_or_else(|e| panic!("strategy produced invalid op {name}: {e}"))
    }

    fn norm_one(&mut self, name: &str, x: TensorId, w: TensorId, b: Option<TensorId>) -> TensorId {
        match b {
            Some(b) => self.apply(name, Op::LayerNorm, &[x, w, b]),
            None => self.apply(name, Op::RmsNorm, &[x, w]),
        }
    }

    /// Norm + (for SP) all-gather: returns the full-sequence normed tensor
    /// and, when SP, also the per-shard normed tensors.
    fn norm_region(&mut self, prefix: &str, x: &Act) -> TensorId {
        let h = self.cfg.hidden as i64;
        let w = self.replicated(&format!("{prefix}_w"), &[h], DType::F32);
        let b = matches!(self.arch, Arch::Gpt)
            .then(|| self.replicated(&format!("{prefix}_b"), &[h], DType::F32));
        match x {
            Act::Full(x) => self.norm_one(&format!("{prefix}.norm"), *x, w, b),
            Act::Shards(shards) => {
                let normed: Vec<TensorId> = shards
                    .iter()
                    .enumerate()
                    .map(|(r, &xr)| self.norm_one(&format!("{prefix}.norm.{r}"), xr, w, b))
                    .collect();
                self.apply(
                    &format!("{prefix}.gather"),
                    Op::AllGather { dim: 1 },
                    &normed,
                )
            }
        }
    }

    /// Combines per-rank partial sums back into the activation: all-reduce
    /// (TP) or reduce-scatter (TP+SP), then the residual add.
    fn combine_partials(&mut self, prefix: &str, x: &Act, partials: &[TensorId]) -> Act {
        match x {
            Act::Full(x) => {
                let reduced = if partials.len() == 1 {
                    partials[0]
                } else {
                    self.apply(&format!("{prefix}.allreduce"), Op::AllReduce, partials)
                };
                Act::Full(self.apply(&format!("{prefix}.res"), Op::Add, &[*x, reduced]))
            }
            Act::Shards(shards) => {
                let world = shards.len();
                let mut out = Vec::with_capacity(world);
                for (r, &xr) in shards.iter().enumerate() {
                    let shard = self.apply(
                        &format!("{prefix}.rs.{r}"),
                        Op::ReduceScatter {
                            dim: 1,
                            rank: r,
                            world,
                        },
                        partials,
                    );
                    out.push(self.apply(&format!("{prefix}.res.{r}"), Op::Add, &[xr, shard]));
                }
                Act::Shards(out)
            }
        }
    }

    fn attention_block(&mut self, l: usize, x: Act) -> Act {
        let cfg = self.cfg;
        let t = self.t();
        let h = cfg.hidden as i64;
        let p = format!("L{l}");
        let n1 = self.norm_region(&format!("{p}.ln1"), &x);

        let wq = self.sharded(&format!("{p}.wq"), &[h, h], 1);
        let wk = self.sharded(&format!("{p}.wk"), &[h, h], 1);
        let wv = self.sharded(&format!("{p}.wv"), &[h, h], 1);
        let (bq, bk) = if matches!(self.arch, Arch::Qwen2) {
            (
                self.sharded(&format!("{p}.bq"), &[h], 0),
                self.sharded(&format!("{p}.bk"), &[h], 0),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let wo = self.sharded(&format!("{p}.wo"), &[h, h], 0);

        let mut partials = Vec::with_capacity(t);
        for r in 0..t {
            let mut q = self.apply(&format!("{p}.q.{r}"), Op::Matmul, &[n1, wq[r]]);
            let mut k = self.apply(&format!("{p}.k.{r}"), Op::Matmul, &[n1, wk[r]]);
            let v = self.apply(&format!("{p}.v.{r}"), Op::Matmul, &[n1, wv[r]]);
            if !bq.is_empty() {
                q = self.apply(&format!("{p}.qb.{r}"), Op::Add, &[q, bq[r]]);
                k = self.apply(&format!("{p}.kb.{r}"), Op::Add, &[k, bk[r]]);
            }
            if !self.rope.is_empty() {
                let (cos, sin) = self.rope[r];
                q = self.apply(&format!("{p}.q_rope.{r}"), Op::Rope, &[q, cos, sin]);
                k = self.apply(&format!("{p}.k_rope.{r}"), Op::Rope, &[k, cos, sin]);
            }
            let attn = self.apply(
                &format!("{p}.attn.{r}"),
                Op::Attention {
                    heads: cfg.heads / t,
                    causal: cfg.causal,
                },
                &[q, k, v],
            );
            partials.push(self.apply(&format!("{p}.attn_out.{r}"), Op::Matmul, &[attn, wo[r]]));
        }
        self.combine_partials(&format!("{p}.attn"), &x, &partials)
    }

    fn mlp_block(&mut self, l: usize, x: Act) -> Act {
        let cfg = self.cfg;
        let t = self.t();
        let (h, f) = (cfg.hidden as i64, cfg.ffn as i64);
        let p = format!("L{l}");
        let n2 = self.norm_region(&format!("{p}.ln2"), &x);
        let mut partials = Vec::with_capacity(t);
        match self.arch {
            Arch::Gpt => {
                let w1 = self.sharded(&format!("{p}.w1"), &[h, f], 1);
                let w2 = self.sharded(&format!("{p}.w2"), &[f, h], 0);
                for r in 0..t {
                    let up = self.apply(&format!("{p}.mlp_up.{r}"), Op::Matmul, &[n2, w1[r]]);
                    let act = self.apply(&format!("{p}.mlp_act.{r}"), Op::Gelu, &[up]);
                    partials.push(self.apply(
                        &format!("{p}.mlp_down.{r}"),
                        Op::Matmul,
                        &[act, w2[r]],
                    ));
                }
            }
            Arch::Llama | Arch::Qwen2 => {
                let w1 = self.sharded(&format!("{p}.w1"), &[h, f], 1);
                let w3 = self.sharded(&format!("{p}.w3"), &[h, f], 1);
                let w2 = self.sharded(&format!("{p}.w2"), &[f, h], 0);
                for r in 0..t {
                    let gate = self.apply(&format!("{p}.mlp_gate.{r}"), Op::Matmul, &[n2, w1[r]]);
                    let up = self.apply(&format!("{p}.mlp_upproj.{r}"), Op::Matmul, &[n2, w3[r]]);
                    let act = self.apply(&format!("{p}.mlp_silu.{r}"), Op::Silu, &[gate]);
                    let prod = self.apply(&format!("{p}.mlp_mul.{r}"), Op::Mul, &[act, up]);
                    partials.push(self.apply(
                        &format!("{p}.mlp_down.{r}"),
                        Op::Matmul,
                        &[prod, w2[r]],
                    ));
                }
            }
        }
        self.combine_partials(&format!("{p}.mlp"), &x, &partials)
    }

    /// The expert-parallel MoE block: each rank owns a contiguous block of
    /// experts (weights replicated on their owner), computes its partial
    /// gate-weighted sum over the full sequence, and the partials are
    /// all-reduced. The auxiliary loss is computed per rank, scaled by
    /// `1/T`, and all-reduced (the correct Bug 2 discipline).
    fn moe_block(&mut self, l: usize, x: Act, experts: usize) -> (Act, TensorId) {
        let cfg = self.cfg;
        let t = self.t();
        let (h, f, e) = (cfg.hidden as i64, cfg.ffn as i64, experts as i64);
        assert_eq!(experts % t, 0, "experts must divide by tp for EP");
        let p = format!("L{l}");
        let n2 = self.norm_region(&format!("{p}.ln2"), &x);
        let wr = self.replicated(&format!("{p}.wr"), &[h, e], DType::F32);
        let router = self.apply(&format!("{p}.router"), Op::Matmul, &[n2, wr]);
        let gates = self.apply(&format!("{p}.gates"), Op::Softmax { dim: 2 }, &[router]);

        let per_rank = experts / t;
        let mut partials = Vec::with_capacity(t);
        for r in 0..t {
            let mut acc: Option<TensorId> = None;
            for ex in r * per_rank..(r + 1) * per_rank {
                let gate = self.apply(
                    &format!("{p}.gate{ex}"),
                    Op::Slice {
                        dim: 2,
                        start: (ex as i64).into(),
                        end: (ex as i64 + 1).into(),
                    },
                    &[gates],
                );
                let w1 = self.replicated(&format!("{p}.e{ex}_w1"), &[h, f], DType::F32);
                let w2 = self.replicated(&format!("{p}.e{ex}_w2"), &[f, h], DType::F32);
                let up = self.apply(&format!("{p}.e{ex}_gateproj"), Op::Matmul, &[n2, w1]);
                let act = self.apply(&format!("{p}.e{ex}_silu"), Op::Silu, &[up]);
                let down = self.apply(&format!("{p}.e{ex}_down"), Op::Matmul, &[act, w2]);
                let weighted = self.apply(&format!("{p}.e{ex}_weighted"), Op::Mul, &[down, gate]);
                acc = Some(match acc {
                    None => weighted,
                    Some(a) => self.apply(&format!("{p}.moe_sum{ex}"), Op::Add, &[a, weighted]),
                });
            }
            partials.push(acc.expect("each rank owns at least one expert"));
        }
        let out = self.combine_partials(&format!("{p}.moe"), &x, &partials);

        // Per-rank auxiliary loss (replicated computation — each rank's
        // trace has its own nodes), scaled by 1/T before the all-reduce.
        let mut scaled = Vec::with_capacity(t);
        for r in 0..t {
            let load_b = self.apply(
                &format!("{p}.load_b.{r}"),
                Op::MeanDim {
                    dim: 0,
                    keepdim: false,
                },
                &[gates],
            );
            let load = self.apply(
                &format!("{p}.load.{r}"),
                Op::MeanDim {
                    dim: 0,
                    keepdim: false,
                },
                &[load_b],
            );
            let sq = self.apply(&format!("{p}.load_sq.{r}"), Op::Mul, &[load, load]);
            let aux = self.apply(&format!("{p}.aux.{r}"), Op::SumAll, &[sq]);
            scaled.push(self.apply(
                &format!("{p}.aux_scaled.{r}"),
                Op::ScalarMul {
                    numer: 1,
                    denom: t as i64,
                },
                &[aux],
            ));
        }
        let aux = if t == 1 {
            scaled[0]
        } else {
            self.apply(&format!("{p}.aux_allreduce"), Op::AllReduce, &scaled)
        };
        (out, aux)
    }

    fn embed(&mut self) -> Act {
        let cfg = self.cfg;
        let (b, s, h, v) = (
            cfg.batch as i64,
            cfg.seq as i64,
            cfg.hidden as i64,
            cfg.vocab as i64,
        );
        let t = self.t();
        let wtok = self.replicated("wtok", &[v, h], DType::F32);
        if matches!(self.arch, Arch::Llama | Arch::Qwen2) {
            // Rope tables are hidden-sharded per TP rank.
            if t > 1 {
                let hs = h / t as i64;
                let mut cos_expr = "rope_cos.0".to_owned();
                let mut sin_expr = "rope_sin.0".to_owned();
                for r in 0..t {
                    let cos = self.g.input(&format!("rope_cos.{r}"), &[s, hs], DType::F32);
                    let sin = self.g.input(&format!("rope_sin.{r}"), &[s, hs], DType::F32);
                    for id in [cos, sin] {
                        self.declared.push((
                            id,
                            DeclaredLayout::Sharded {
                                dim: 1,
                                index: r,
                                parts: t,
                            },
                        ));
                    }
                    self.rope.push((cos, sin));
                    if r > 0 {
                        cos_expr = format!("(concat {cos_expr} rope_cos.{r} 1)");
                        sin_expr = format!("(concat {sin_expr} rope_sin.{r} 1)");
                    }
                }
                self.maps.push(("rope_cos".to_owned(), cos_expr));
                self.maps.push(("rope_sin".to_owned(), sin_expr));
            } else {
                let cos = self.replicated("rope_cos", &[s, h], DType::F32);
                let sin = self.replicated("rope_sin", &[s, h], DType::F32);
                self.rope.push((cos, sin));
            }
        }
        if self.s.sp {
            let t = self.t();
            let ss = s / t as i64;
            let mut ids_expr = "ids.0".to_owned();
            let mut shards = Vec::with_capacity(t);
            for r in 0..t {
                let ids = self.g.input(&format!("ids.{r}"), &[b, ss], DType::I64);
                self.declared.push((
                    ids,
                    DeclaredLayout::Sharded {
                        dim: 1,
                        index: r,
                        parts: t,
                    },
                ));
                if r > 0 {
                    ids_expr = format!("(concat {ids_expr} ids.{r} 1)");
                }
                shards.push(self.apply(&format!("embed.{r}"), Op::Embedding, &[wtok, ids]));
            }
            self.maps.push(("ids".to_owned(), ids_expr));
            if matches!(self.arch, Arch::Gpt) {
                let wpos = self.sharded("wpos", &[s, h], 0);
                // `sharded` made F32 inputs named wpos.r of [ss, h].
                for (r, shard) in shards.iter_mut().enumerate() {
                    *shard = self.apply(&format!("pos_embed.{r}"), Op::Add, &[*shard, wpos[r]]);
                }
            }
            Act::Shards(shards)
        } else {
            let ids = self.g.input("ids", &[b, s], DType::I64);
            self.maps.push(("ids".to_owned(), "ids".to_owned()));
            let mut x = self.apply("embed", Op::Embedding, &[wtok, ids]);
            if matches!(self.arch, Arch::Gpt) {
                let wpos = self.replicated("wpos", &[s, h], DType::F32);
                x = self.apply("pos_embed", Op::Add, &[x, wpos]);
            }
            Act::Full(x)
        }
    }

    fn head(&mut self, x: Act) -> TensorId {
        let cfg = self.cfg;
        let (h, v) = (cfg.hidden as i64, cfg.vocab as i64);
        let nf = self.norm_region("ln_f", &x);
        if self.s.vp {
            let wlm = self.sharded("wlm", &[h, v], 1);
            let shards: Vec<TensorId> = (0..self.t())
                .map(|r| self.apply(&format!("logits.{r}"), Op::Matmul, &[nf, wlm[r]]))
                .collect();
            self.apply("logits_gather", Op::AllGather { dim: 2 }, &shards)
        } else {
            let wlm = self.replicated("wlm", &[h, v], DType::F32);
            self.apply("logits", Op::Matmul, &[nf, wlm])
        }
    }
}

/// Applies the strategy to a dense transformer, producing `G_d` and `R_i`.
///
/// # Panics
///
/// Panics when the strategy does not divide the model's dimensions (the
/// same constraint real frameworks enforce; cf. Figure 4's missing
/// parallelism-6 Llama point).
pub fn parallelize(cfg: &ModelConfig, arch: Arch, s: &Strategy) -> Distributed {
    s.validate(cfg);
    let name = format!(
        "dist-tp{}{}{}",
        s.tp,
        if s.sp { "-sp" } else { "" },
        if s.vp { "-vp" } else { "" }
    );
    let mut b = DistBuilder::new(&name, cfg, arch, *s);
    let mut x = b.embed();
    for l in 0..cfg.layers {
        x = b.attention_block(l, x);
        x = b.mlp_block(l, x);
    }
    let logits = b.head(x);
    b.g.mark_output(logits);
    let graph = b.g.finish().expect("strategy output must validate");
    Distributed {
        graph,
        input_maps: b.maps,
        declared: b.declared,
    }
}

/// Applies TP(+SP) to the attention blocks and expert parallelism to the
/// MoE blocks of the ByteDance-style model, producing `G_d` and `R_i`.
///
/// # Panics
///
/// Panics when dimensions or expert counts do not divide by the strategy.
pub fn parallelize_moe(cfg: &MoeConfig, s: &Strategy) -> Distributed {
    s.validate(&cfg.base);
    let name = format!("dist-moe-tp{}{}-ep", s.tp, if s.sp { "-sp" } else { "" });
    let mut b = DistBuilder::new(&name, &cfg.base, Arch::Llama, *s);
    let mut x = b.embed();
    let mut aux_total: Option<TensorId> = None;
    for l in 0..cfg.base.layers {
        x = b.attention_block(l, x);
        let (out, aux) = b.moe_block(l, x, cfg.experts);
        x = out;
        aux_total = Some(match aux_total {
            None => aux,
            Some(acc) => b.apply(&format!("aux_acc{l}"), Op::Add, &[acc, aux]),
        });
    }
    let logits = b.head(x);
    b.g.mark_output(logits);
    if let Some(aux) = aux_total {
        b.g.mark_output(aux);
    }
    let graph = b.g.finish().expect("strategy output must validate");
    Distributed {
        graph,
        input_maps: b.maps,
        declared: b.declared,
    }
}
