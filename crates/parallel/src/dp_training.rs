//! Generic data parallelism over *generated* training graphs.
//!
//! Where [`crate::data_parallel`] hand-writes the distributed regression
//! training step, this module derives everything: the sequential training
//! graph comes from [`entangle_autodiff::backward`], and the distributed
//! implementation is produced by instantiating the same (differentiated)
//! graph once per replica over batch shards, then combining losses and
//! gradients with the all-reduce-and-average discipline.
//!
//! This is the strongest version of the paper's workflow: both `G_s` and
//! `G_d` are *generated*, and the checker still has to relate them through
//! the lemma corpus — including the scalar-linearity lemmas that float the
//! `2/N`-style factors autodiff introduces.

use std::collections::HashMap;

use entangle_autodiff::{backward, AutodiffError, GradGraph};
use entangle_ir::{Dim, Graph, GraphBuilder, IrError, Op, TensorId};

use crate::dist::Distributed;

/// Errors from the generated-DP transform.
#[derive(Debug)]
pub enum DpError {
    /// Differentiation of the forward graph failed.
    Autodiff(AutodiffError),
    /// Graph construction failed (e.g. a batch dim that does not divide).
    Ir(IrError),
    /// A named batch input does not exist or cannot be sharded.
    BadBatchInput(String),
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::Autodiff(e) => write!(f, "autodiff failed: {e}"),
            DpError::Ir(e) => write!(f, "graph construction failed: {e}"),
            DpError::BadBatchInput(m) => write!(f, "bad batch input: {m}"),
        }
    }
}

impl std::error::Error for DpError {}

impl From<AutodiffError> for DpError {
    fn from(e: AutodiffError) -> Self {
        DpError::Autodiff(e)
    }
}

impl From<IrError> for DpError {
    fn from(e: IrError) -> Self {
        DpError::Ir(e)
    }
}

/// The result of [`data_parallel_training`]: the generated sequential
/// training graph and its generated distributed implementation.
#[derive(Debug)]
pub struct DpTraining {
    /// `G_s`: the forward graph extended with gradients (loss and every
    /// gradient are outputs).
    pub sequential: GradGraph,
    /// `G_d` + input relation.
    pub distributed: Distributed,
}

/// Differentiates `fwd` at `loss` and data-parallelizes the resulting
/// training step across `replicas` batch shards.
///
/// `batch_inputs` names the inputs sharded on dim 0 (data and labels);
/// every other input is treated as a replicated parameter. Losses and
/// gradients are all-reduced; with `average` they are additionally scaled
/// by `1/R`. Gradients of batch inputs are gathered (scaled per shard when
/// averaging).
///
/// Use `average = false` with *sum*-semantics losses (see
/// [`entangle_models::regression_sum_loss`]): shard quantities then add up
/// exactly and every backward intermediate maps cleanly. Mean-semantics
/// losses with `average = true` are numerically correct too, but bake a
/// batch-size scale into every per-replica gradient — intermediate tensors
/// then relate to the sequential ones only through a (non-clean) scale, and
/// the checker reports a violation of the paper's §3.3 assumptions. That
/// expected false alarm is kept as a test
/// (`dp_mean_loss_average_is_a_documented_false_alarm`).
///
/// # Errors
///
/// Fails when differentiation is unsupported, a batch input is unknown or
/// does not divide by `replicas`, or the shard instantiation produces an
/// invalid graph (e.g. an operator whose attributes bake in the full batch
/// size).
pub fn data_parallel_training(
    fwd: &Graph,
    loss: TensorId,
    batch_inputs: &[&str],
    replicas: usize,
    average: bool,
) -> Result<DpTraining, DpError> {
    assert!(replicas >= 1);
    let r = replicas as i64;

    // G_s: the full-batch training step.
    let sequential = backward(fwd, loss)?;

    // The shard template: the same forward graph at batch/R, differentiated.
    let shard_fwd = reshard(fwd, batch_inputs, replicas)?;
    let shard_loss = shard_fwd
        .tensor_by_name(&fwd.tensor(loss).name)
        .expect("loss survives resharding")
        .id;
    let shard_train = backward(&shard_fwd, shard_loss)?;

    // Instantiate the shard-training template once per replica into one
    // global graph, sharing parameter inputs.
    let mut g = GraphBuilder::new("dist-dp-training");
    let mut maps: Vec<(String, String)> = Vec::new();
    let mut shared: HashMap<String, TensorId> = HashMap::new();
    let mut instances: Vec<HashMap<TensorId, TensorId>> = Vec::new();

    for rep in 0..replicas {
        let mut map: HashMap<TensorId, TensorId> = HashMap::new();
        for &input in shard_train.graph.inputs() {
            let t = shard_train.graph.tensor(input);
            let id = if batch_inputs.contains(&t.name.as_str()) {
                let name = format!("{}.{rep}", t.name);
                g.input_shaped(&name, t.shape.clone(), t.dtype)
            } else {
                match shared.get(&t.name) {
                    Some(&id) => id,
                    None => {
                        let id = g.input_shaped(&t.name, t.shape.clone(), t.dtype);
                        shared.insert(t.name.clone(), id);
                        maps.push((t.name.clone(), t.name.clone()));
                        id
                    }
                }
            };
            map.insert(input, id);
        }
        for node in shard_train.graph.nodes() {
            let inputs: Vec<TensorId> = node.inputs.iter().map(|t| map[t]).collect();
            let out = g
                .apply(&format!("r{rep}.{}", node.name), node.op.clone(), &inputs)
                .map_err(DpError::Ir)?;
            map.insert(node.output, out);
        }
        instances.push(map);
    }

    // Input maps for the sharded batch inputs.
    for name in batch_inputs {
        let mut expr = format!("{name}.0");
        for rep in 1..replicas {
            expr = format!("(concat {expr} {name}.{rep} 0)");
        }
        maps.push(((*name).to_owned(), expr));
    }

    // Combine: average the losses and the parameter gradients; scale and
    // gather the batch-input gradients.
    let combine =
        |g: &mut GraphBuilder, name: &str, parts: &[TensorId]| -> Result<TensorId, DpError> {
            let red = if parts.len() == 1 {
                parts[0]
            } else {
                g.apply(&format!("{name}_allreduce"), Op::AllReduce, parts)?
            };
            Ok(if average && parts.len() > 1 {
                g.apply(
                    &format!("{name}_avg"),
                    Op::ScalarMul { numer: 1, denom: r },
                    &[red],
                )?
            } else {
                red
            })
        };

    let losses: Vec<TensorId> = instances.iter().map(|m| m[&shard_loss]).collect();
    let total_loss = combine(&mut g, "loss", &losses)?;
    g.mark_output(total_loss);

    for &input in shard_train.graph.inputs() {
        let Some(grad) = shard_train.grad_of(input) else {
            continue;
        };
        let name = &shard_train.graph.tensor(input).name;
        let parts: Vec<TensorId> = instances.iter().map(|m| m[&grad]).collect();
        if batch_inputs.contains(&name.as_str()) {
            // d loss_total / d x_r = (1/R) · d loss_r / d x_r, gathered.
            let scaled: Result<Vec<TensorId>, DpError> = parts
                .iter()
                .enumerate()
                .map(|(rep, &p)| {
                    Ok(if average && replicas > 1 {
                        g.apply(
                            &format!("grad_{name}.{rep}_scaled"),
                            Op::ScalarMul { numer: 1, denom: r },
                            &[p],
                        )?
                    } else {
                        p
                    })
                })
                .collect();
            let scaled = scaled?;
            let gathered = if replicas == 1 {
                scaled[0]
            } else {
                g.apply(
                    &format!("grad_{name}_gather"),
                    Op::AllGather { dim: 0 },
                    &scaled,
                )?
            };
            g.mark_output(gathered);
        } else {
            let combined = combine(&mut g, &format!("grad_{name}"), &parts)?;
            g.mark_output(combined);
        }
    }

    let graph = g.finish()?;
    Ok(DpTraining {
        sequential,
        distributed: Distributed {
            declared: Vec::new(),
            graph,
            input_maps: maps,
        },
    })
}

/// Rebuilds `graph` with the named inputs' leading dimension divided by
/// `replicas` (all other inputs unchanged); shapes are re-inferred, so any
/// operator whose attributes bake in the full batch size fails loudly.
fn reshard(graph: &Graph, batch_inputs: &[&str], replicas: usize) -> Result<Graph, DpError> {
    let mut g = GraphBuilder::new(&format!("{}-shard", graph.name()));
    let mut map: HashMap<TensorId, TensorId> = HashMap::new();
    for &input in graph.inputs() {
        let t = graph.tensor(input);
        let shape = if batch_inputs.contains(&t.name.as_str()) {
            let full = t.shape.dim(0).as_const().ok_or_else(|| {
                DpError::BadBatchInput(format!("{} has a symbolic batch dim", t.name))
            })?;
            if full % replicas as i64 != 0 {
                return Err(DpError::BadBatchInput(format!(
                    "{}'s batch {full} does not divide by {replicas}",
                    t.name
                )));
            }
            t.shape.with_dim(0, Dim::from(full / replicas as i64))
        } else {
            t.shape.clone()
        };
        map.insert(input, g.input_shaped(&t.name, shape, t.dtype));
    }
    for name in batch_inputs {
        if graph.tensor_by_name(name).is_none() {
            return Err(DpError::BadBatchInput(format!(
                "{name} is not a graph input"
            )));
        }
    }
    for node in graph.nodes() {
        let inputs: Vec<TensorId> = node.inputs.iter().map(|t| map[t]).collect();
        let out = g.apply(&node.name, node.op.clone(), &inputs)?;
        map.insert(node.output, out);
    }
    for &o in graph.outputs() {
        g.mark_output(map[&o]);
    }
    Ok(g.finish()?)
}
