//! Distribution strategies and the Table 3 bug injectors.
//!
//! The paper's workflow (§1): "an implementer converts the specification into
//! a distributed version by deciding how to partition model state and
//! computation", adding communication and transformation operators along the
//! way. This crate is that implementer, mechanized: given a sequential model
//! from `entangle-models` and a [`Strategy`], it emits the distributed graph
//! `G_d` a framework like Megatron-LM would produce — column/row-parallel
//! linear layers with all-reduces (TP), sequence sharding with
//! all-gather/reduce-scatter around the norm regions (SP), vocab-parallel
//! output heads (VP), expert sharding (EP), and microbatched gradient
//! accumulation — **together with the input relation `R_i`** mapping the
//! sequential inputs onto the distributed ones.
//!
//! The [`bugs`] module re-introduces the nine real-world bugs of the paper's
//! Table 3 / Appendix A as graph-level faults, each with a correct twin so
//! the no-false-alarm claim can be tested too.
//!
//! # Examples
//!
//! ```
//! use entangle::{check_refinement, CheckOptions};
//! use entangle_models::{gpt, ModelConfig};
//! use entangle_parallel::{parallelize, Strategy};
//!
//! let cfg = ModelConfig::tiny();
//! let gs = gpt(&cfg);
//! let dist = parallelize(&cfg, entangle_models::Arch::Gpt, &Strategy::tp(2));
//! let ri = dist.relation(&gs).unwrap();
//! let outcome = check_refinement(&gs, &dist.graph, &ri, &CheckOptions::default()).unwrap();
//! assert!(outcome.output_relation.is_complete_for(gs.outputs()));
//! ```

#![forbid(unsafe_code)]

mod accum;
pub mod bugs;
mod dist;
mod dp_pp;
mod dp_training;
mod transformer;

pub use accum::grad_accumulation;
pub use dist::Distributed;
pub use dp_pp::{data_parallel, pipeline};
pub use dp_training::{data_parallel_training, DpError, DpTraining};
pub use transformer::{parallelize, parallelize_moe, Strategy};

#[cfg(test)]
mod tests;
