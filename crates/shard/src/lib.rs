//! Abstract sharding-propagation analysis for ENTANGLE (`entangle-shard`).
//!
//! ENTANGLE's refinement checker discovers a distribution bug only after
//! equality saturation fails to extend the output relation — expensive, and
//! the failure is a *symptom* (an unmappable operator), not a cause. This
//! crate front-loads a whole-graph dataflow pass in the style of
//! production graph verifiers: every tensor of the distributed program is
//! assigned an abstract layout — replicated, a window of slices and
//! padding along one dimension, a partial sum, or unknown — seeded from the
//! input relation and pushed through per-operator transfer functions for
//! the full operator vocabulary, collectives included.
//!
//! Two products come out of one pass:
//!
//! 1. **Localized diagnostics** (`SH##` codes, [`codes`]): provable layout
//!    violations — misaligned element-wise/fused combinations, partial-sum
//!    groups that fail to tile, slices straddling padding, unreduced
//!    partials consumed by a contraction — anchored at the *first*
//!    inconsistent operator, through the `entangle-lint` diagnostic
//!    machinery. Most of the paper's Table-3 bug suite is decidable here,
//!    before any e-graph exists.
//! 2. **Relation hints** ([`Hint`]): when layouts *prove* a mapping (shards
//!    tile a dimension, partials tile a range, a tensor is an exact
//!    replica), the proof is exported as a candidate mapping the checker
//!    can use to seed — or skip — per-operator saturation
//!    (`CheckOptions::shard_hints`).
//!
//! Soundness: the analysis only ever *claims* something when the claim is
//! forced (hash-consed logical terms built over `G_s` names must coincide);
//! anything unprovable widens to `Unknown`, over which the saturation
//! checker retains full authority. Unseeded inputs get opaque fresh terms
//! that match nothing.
//!
//! # Examples
//!
//! Localizing the paper's bug 1 (rope applied with rank-0's rotary tables
//! on every rank) without saturation:
//!
//! ```
//! use entangle_parallel::bugs::all_bugs;
//! use entangle_shard::analyze_pair;
//!
//! let bug = all_bugs(true).remove(0); // "bug1-rope-offset"
//! let maps: Vec<(String, entangle_egraph::RecExpr)> = bug
//!     .dist
//!     .input_maps
//!     .iter()
//!     .map(|(gs, expr)| (gs.clone(), expr.parse().unwrap()))
//!     .collect();
//! let analysis = analyze_pair(&bug.gs, &bug.dist.graph, &maps, &bug.dist.declared);
//! assert!(!analysis.is_clean());
//! let first = analysis.report.errors().next().unwrap();
//! assert_eq!(first.code, entangle_shard::codes::WINDOW_MISALIGNED);
//! ```

#![forbid(unsafe_code)]

mod analyze;
mod domain;
mod hints;
mod transfer;

pub use analyze::{analyze_graph, analyze_pair, ShardAnalysis};
pub use domain::{AbsVal, Head, TermId, TermNode, TermTable, CONTRACTION_AXIS};
pub use hints::Hint;

/// The `SH##` diagnostic-code catalogue (stable, like `entangle_lint::codes`).
pub mod codes {
    /// A collective combines partial sums whose pieces do not tile the
    /// reduced range (gap, overlap, or missing addend).
    pub const PARTIAL_TILE: &str = "SH01";
    /// An element-wise or fused operator combines windows of different
    /// tensors with mismatched slices (misaligned shards).
    pub const WINDOW_MISALIGNED: &str = "SH02";
    /// A slice straddles a padding boundary, mixing padding zeros with
    /// data.
    pub const SLICE_STRADDLES_PAD: &str = "SH03";
    /// A matrix multiply consumes an unreduced partial sum together with a
    /// sharded operand.
    pub const PARTIAL_CONSUMED: &str = "SH04";
    /// An input reachable from the outputs appears in no input mapping.
    pub const UNMAPPED_INPUT: &str = "SH05";
    /// A strategy-declared layout disagrees with the layout the input
    /// relation implies.
    pub const DECLARED_MISMATCH: &str = "SH06";
}

#[cfg(test)]
mod tests;
