//! Unit tests: the abstract domain, per-operator transfer functions,
//! diagnostics, and hint generation on hand-built graph pairs, plus the
//! model zoo as a cleanliness regression.

use entangle_egraph::RecExpr;
use entangle_ir::layout::Seg;
use entangle_ir::{DType, DeclaredLayout, Graph, GraphBuilder, Op};
use entangle_models::{gpt, llama3, moe, qwen2, Arch, ModelConfig, MoeConfig};
use entangle_parallel::{parallelize, parallelize_moe, Distributed, Strategy};

use crate::domain::{AbsVal, TermTable};
use crate::{analyze_graph, analyze_pair, codes, ShardAnalysis};

fn parse_maps(maps: &[(String, String)]) -> Vec<(String, RecExpr)> {
    maps.iter()
        .map(|(gs, expr)| (gs.clone(), expr.parse().expect("map must parse")))
        .collect()
}

fn run(gs: &Graph, dist: &Distributed) -> ShardAnalysis {
    analyze_pair(
        gs,
        &dist.graph,
        &parse_maps(&dist.input_maps),
        &dist.declared,
    )
}

fn first_error_node<'g>(a: &ShardAnalysis, gd: &'g Graph) -> &'g str {
    match a.report.errors().next().expect("expected an error").anchor {
        entangle_lint::Anchor::Node(id) => &gd.node(id).name,
        ref other => panic!("error anchored at {other:?}, expected a node"),
    }
}

// ---------------------------------------------------------------- domain

#[test]
fn window_normalizes_to_rep_and_unknown() {
    let mut t = TermTable::new();
    let a = t.leaf("a");
    assert_eq!(
        AbsVal::window(a, 1, 8, vec![Seg::Piece { start: 0, end: 8 }]),
        AbsVal::Rep(a)
    );
    assert_eq!(AbsVal::window(a, 1, 8, Vec::new()), AbsVal::Unknown);
    // Adjacent pieces coalesce back into the full extent.
    assert_eq!(
        AbsVal::window(
            a,
            0,
            8,
            vec![
                Seg::Piece { start: 0, end: 4 },
                Seg::Piece { start: 4, end: 8 },
            ],
        ),
        AbsVal::Rep(a)
    );
}

#[test]
fn partial_covering_the_range_is_replicated() {
    let mut t = TermTable::new();
    let a = t.leaf("a");
    assert_eq!(AbsVal::partial(a, 0, 8, 8, 1), AbsVal::Rep(a));
    assert!(matches!(
        AbsVal::partial(a, 0, 4, 8, 1),
        AbsVal::Partial { .. }
    ));
}

#[test]
fn scaled_terms_reduce_and_cancel() {
    let mut t = TermTable::new();
    let a = t.leaf("a");
    let half = t.scaled(a, 1, 2);
    assert_ne!(half, a);
    assert_eq!(t.scaled(half, 2, 1), a);
    assert_eq!(t.scaled(a, 3, 3), a);
    // `all_reduce(½a, ½a)` is `2 · ½a = a`.
    assert_eq!(t.fold_add(&[half, half]), a);
}

#[test]
fn hash_consing_gives_pointer_equality() {
    let mut t = TermTable::new();
    let a = t.leaf("a");
    let b = t.leaf("b");
    assert_eq!(
        t.op("matmul", vec![a, b], Vec::new()),
        t.op("matmul", vec![a, b], Vec::new())
    );
    assert_eq!(a, t.leaf("a"));
    assert_ne!(t.fresh_term(), t.fresh_term());
}

// ---------------------------------------------------- transfer functions

/// `G_s`: y = x · w with x `[4,8]`, w `[8,6]`.
fn matmul_gs() -> Graph {
    let mut b = GraphBuilder::new("gs");
    let x = b.input("x", &[4, 8], DType::F32);
    let w = b.input("w", &[8, 6], DType::F32);
    let y = b.apply("y", Op::Matmul, &[x, w]).unwrap();
    b.mark_output(y);
    b.finish().unwrap()
}

#[test]
fn column_sharded_matmul_is_clean_and_hinted() {
    let gs = matmul_gs();
    let mut b = GraphBuilder::new("gd");
    let x = b.input("x", &[4, 8], DType::F32);
    let w0 = b.input("w.0", &[8, 3], DType::F32);
    let w1 = b.input("w.1", &[8, 3], DType::F32);
    let y0 = b.apply("y0", Op::Matmul, &[x, w0]).unwrap();
    let y1 = b.apply("y1", Op::Matmul, &[x, w1]).unwrap();
    let y = b.apply("y", Op::Concat { dim: 1 }, &[y0, y1]).unwrap();
    b.mark_output(y);
    let dist = Distributed {
        graph: b.finish().unwrap(),
        input_maps: vec![
            ("x".to_owned(), "x".to_owned()),
            ("w".to_owned(), "(concat w.0 w.1 1)".to_owned()),
        ],
        declared: Vec::new(),
    };
    let a = run(&gs, &dist);
    assert!(a.is_clean(), "{}", a.report.render(Some(&dist.graph)));
    // The concatenated halves reconstitute the sequential product exactly.
    let y_id = dist.graph.tensor_by_name("y").unwrap().id;
    assert!(matches!(a.value(y_id), AbsVal::Rep(_)));
    // Both the whole tensor and the shard tiling are exported as hints.
    let y_hints: Vec<&str> = a
        .hints
        .iter()
        .filter(|h| h.gs_tensor == "y")
        .map(|h| h.expr.as_str())
        .collect();
    assert!(y_hints.contains(&"y"), "hints: {y_hints:?}");
    assert!(y_hints.contains(&"(concat y0 y1 1)"), "hints: {y_hints:?}");
}

#[test]
fn row_sharded_matmul_partials_reduce_to_replicated() {
    let gs = matmul_gs();
    let mut b = GraphBuilder::new("gd");
    let x0 = b.input("x.0", &[4, 4], DType::F32);
    let x1 = b.input("x.1", &[4, 4], DType::F32);
    let w0 = b.input("w.0", &[4, 6], DType::F32);
    let w1 = b.input("w.1", &[4, 6], DType::F32);
    let p0 = b.apply("p0", Op::Matmul, &[x0, w0]).unwrap();
    let p1 = b.apply("p1", Op::Matmul, &[x1, w1]).unwrap();
    let y = b.apply("y", Op::AllReduce, &[p0, p1]).unwrap();
    b.mark_output(y);
    let dist = Distributed {
        graph: b.finish().unwrap(),
        input_maps: vec![
            ("x".to_owned(), "(concat x.0 x.1 1)".to_owned()),
            ("w".to_owned(), "(concat w.0 w.1 0)".to_owned()),
        ],
        declared: Vec::new(),
    };
    let a = run(&gs, &dist);
    assert!(a.is_clean(), "{}", a.report.render(Some(&dist.graph)));
    let p0_id = dist.graph.tensor_by_name("p0").unwrap().id;
    assert!(matches!(a.value(p0_id), AbsVal::Partial { .. }));
    let y_id = dist.graph.tensor_by_name("y").unwrap().id;
    assert!(matches!(a.value(y_id), AbsVal::Rep(_)));
    let y_hints: Vec<&str> = a
        .hints
        .iter()
        .filter(|h| h.gs_tensor == "y")
        .map(|h| h.expr.as_str())
        .collect();
    assert!(y_hints.contains(&"(add p0 p1)"), "hints: {y_hints:?}");
}

#[test]
fn sh01_partial_group_that_does_not_tile() {
    let gs = matmul_gs();
    let mut b = GraphBuilder::new("gd");
    let x0 = b.input("x.0", &[4, 4], DType::F32);
    let x1 = b.input("x.1", &[4, 4], DType::F32);
    let w0 = b.input("w.0", &[4, 6], DType::F32);
    let w1 = b.input("w.1", &[4, 6], DType::F32);
    // Both ranks multiply rank-0's operands: two copies of the same addend.
    let p0 = b.apply("p0", Op::Matmul, &[x0, w0]).unwrap();
    let p1 = b.apply("p1", Op::Matmul, &[x0, w0]).unwrap();
    let y = b.apply("y", Op::AllReduce, &[p0, p1]).unwrap();
    b.mark_output(y);
    let _ = (x1, w1);
    let dist = Distributed {
        graph: b.finish().unwrap(),
        input_maps: vec![
            ("x".to_owned(), "(concat x.0 x.1 1)".to_owned()),
            ("w".to_owned(), "(concat w.0 w.1 0)".to_owned()),
        ],
        declared: Vec::new(),
    };
    let a = run(&gs, &dist);
    let first = a.report.errors().next().expect("SH01 expected");
    assert_eq!(first.code, codes::PARTIAL_TILE);
    assert_eq!(first_error_node(&a, &dist.graph), "y");
}

#[test]
fn sh02_misaligned_elementwise_shards() {
    let mut b = GraphBuilder::new("gs");
    let x = b.input("a", &[8], DType::F32);
    let y = b.input("b", &[8], DType::F32);
    let c = b.apply("c", Op::Add, &[x, y]).unwrap();
    b.mark_output(c);
    let gs = b.finish().unwrap();

    let mut b = GraphBuilder::new("gd");
    let a0 = b.input("a.0", &[4], DType::F32);
    let a1 = b.input("a.1", &[4], DType::F32);
    let b0 = b.input("b.0", &[4], DType::F32);
    let b1 = b.input("b.1", &[4], DType::F32);
    // Rank 0 adds its own half of `a` to rank 1's half of `b`.
    let bad = b.apply("bad", Op::Add, &[a0, b1]).unwrap();
    let ok = b.apply("ok", Op::Add, &[a1, b0]).unwrap();
    b.mark_output(bad);
    b.mark_output(ok);
    let dist = Distributed {
        graph: b.finish().unwrap(),
        input_maps: vec![
            ("a".to_owned(), "(concat a.0 a.1 0)".to_owned()),
            ("b".to_owned(), "(concat b.0 b.1 0)".to_owned()),
        ],
        declared: Vec::new(),
    };
    let a = run(&gs, &dist);
    assert_eq!(a.report.error_count(), 2);
    let first = a.report.errors().next().unwrap();
    assert_eq!(first.code, codes::WINDOW_MISALIGNED);
    assert_eq!(first_error_node(&a, &dist.graph), "bad");
}

#[test]
fn sh03_slice_straddling_padding() {
    let mut b = GraphBuilder::new("gs");
    let x = b.input("x", &[8], DType::F32);
    let y = b.apply("y", Op::Identity, &[x]).unwrap();
    b.mark_output(y);
    let gs = b.finish().unwrap();

    let mut b = GraphBuilder::new("gd");
    let x0 = b.input("x.0", &[4], DType::F32);
    let x1 = b.input("x.1", &[4], DType::F32);
    let padded = b
        .apply(
            "padded",
            Op::Pad {
                dim: 0,
                before: 0.into(),
                after: 4.into(),
            },
            &[x0],
        )
        .unwrap();
    let sl = b
        .apply(
            "sl",
            Op::Slice {
                dim: 0,
                start: 2.into(),
                end: 6.into(),
            },
            &[padded],
        )
        .unwrap();
    let out = b.apply("out", Op::Add, &[sl, x1]).unwrap();
    b.mark_output(out);
    let dist = Distributed {
        graph: b.finish().unwrap(),
        input_maps: vec![("x".to_owned(), "(concat x.0 x.1 0)".to_owned())],
        declared: Vec::new(),
    };
    let a = run(&gs, &dist);
    let first = a.report.errors().next().expect("SH03 expected");
    assert_eq!(first.code, codes::SLICE_STRADDLES_PAD);
    assert_eq!(first_error_node(&a, &dist.graph), "sl");
}

#[test]
fn sh04_contraction_consumes_unreduced_partial() {
    let mut b = GraphBuilder::new("gs");
    let x = b.input("x", &[4, 8], DType::F32);
    let w = b.input("w", &[8, 6], DType::F32);
    let v = b.input("v", &[6, 2], DType::F32);
    let y = b.apply("y", Op::Matmul, &[x, w]).unwrap();
    let z = b.apply("z", Op::Matmul, &[y, v]).unwrap();
    b.mark_output(z);
    let gs = b.finish().unwrap();

    let mut b = GraphBuilder::new("gd");
    let x0 = b.input("x.0", &[4, 4], DType::F32);
    let x1 = b.input("x.1", &[4, 4], DType::F32);
    let w0 = b.input("w.0", &[4, 6], DType::F32);
    let w1 = b.input("w.1", &[4, 6], DType::F32);
    let v0 = b.input("v.0", &[6, 1], DType::F32);
    let v1 = b.input("v.1", &[6, 1], DType::F32);
    let p0 = b.apply("p0", Op::Matmul, &[x0, w0]).unwrap();
    let p1 = b.apply("p1", Op::Matmul, &[x1, w1]).unwrap();
    // Missing all-reduce: the partial flows straight into the next matmul.
    let z0 = b.apply("z0", Op::Matmul, &[p0, v0]).unwrap();
    let z1 = b.apply("z1", Op::Matmul, &[p1, v1]).unwrap();
    let z = b.apply("z", Op::Concat { dim: 1 }, &[z0, z1]).unwrap();
    b.mark_output(z);
    let dist = Distributed {
        graph: b.finish().unwrap(),
        input_maps: vec![
            ("x".to_owned(), "(concat x.0 x.1 1)".to_owned()),
            ("w".to_owned(), "(concat w.0 w.1 0)".to_owned()),
            ("v".to_owned(), "(concat v.0 v.1 1)".to_owned()),
        ],
        declared: Vec::new(),
    };
    let a = run(&gs, &dist);
    let first = a.report.errors().next().expect("SH04 expected");
    assert_eq!(first.code, codes::PARTIAL_CONSUMED);
    assert_eq!(first_error_node(&a, &dist.graph), "z0");
}

#[test]
fn sh05_live_unmapped_input_is_flagged() {
    let mut b = GraphBuilder::new("gs");
    let x = b.input("x", &[4], DType::F32);
    let y = b.apply("y", Op::Identity, &[x]).unwrap();
    b.mark_output(y);
    let gs = b.finish().unwrap();

    let mut b = GraphBuilder::new("gd");
    let x = b.input("x", &[4], DType::F32);
    let extra = b.input("extra", &[4], DType::F32);
    let out = b.apply("out", Op::Add, &[x, extra]).unwrap();
    b.mark_output(out);
    let dist = Distributed {
        graph: b.finish().unwrap(),
        input_maps: vec![("x".to_owned(), "x".to_owned())],
        declared: Vec::new(),
    };
    let a = run(&gs, &dist);
    assert_eq!(a.report.error_count(), 0);
    assert!(a
        .report
        .diagnostics
        .iter()
        .any(|d| d.code == codes::UNMAPPED_INPUT));
}

#[test]
fn sh06_declared_layout_contradicting_the_relation() {
    let mut b = GraphBuilder::new("gs");
    let x = b.input("x", &[8], DType::F32);
    let y = b.apply("y", Op::Identity, &[x]).unwrap();
    b.mark_output(y);
    let gs = b.finish().unwrap();

    let mut b = GraphBuilder::new("gd");
    let x = b.input("x", &[8], DType::F32);
    let y = b.apply("y", Op::Identity, &[x]).unwrap();
    b.mark_output(y);
    let gd = b.finish().unwrap();
    let x_id = gd.tensor_by_name("x").unwrap().id;
    let dist = Distributed {
        graph: gd,
        input_maps: vec![("x".to_owned(), "x".to_owned())],
        declared: vec![(
            x_id,
            DeclaredLayout::Sharded {
                dim: 0,
                index: 0,
                parts: 2,
            },
        )],
    };
    let a = run(&gs, &dist);
    assert_eq!(a.report.error_count(), 0);
    assert!(a
        .report
        .diagnostics
        .iter()
        .any(|d| d.code == codes::DECLARED_MISMATCH));
}

// ------------------------------------------------------------ self-seeded

#[test]
fn self_seeded_analysis_tracks_forms() {
    let cfg = ModelConfig::tiny();
    let a = analyze_graph(&gpt(&cfg));
    assert!(a.is_clean());
    let (rep, _, _, _) = a.form_counts();
    assert!(rep > 0, "inputs are their own replicated leaves");
    assert!(a.hints.is_empty(), "self-seeded mode exports no hints");
}

// ------------------------------------------------------------------- zoo

#[test]
fn zoo_tp_strategies_are_clean_and_hinted() {
    let cfg = ModelConfig::tiny();
    let models: [(Arch, Graph); 3] = [
        (Arch::Gpt, gpt(&cfg)),
        (Arch::Llama, llama3(&cfg)),
        (Arch::Qwen2, qwen2(&cfg)),
    ];
    for (arch, gs) in &models {
        for s in [Strategy::tp(2), Strategy::tp_sp(2)] {
            let dist = parallelize(&cfg, *arch, &s);
            let a = run(gs, &dist);
            assert!(
                a.is_clean(),
                "{arch:?} {s:?}:\n{}",
                a.report.render(Some(&dist.graph))
            );
            assert_eq!(
                a.report.warning_count(),
                0,
                "{arch:?} {s:?}:\n{}",
                a.report.render(Some(&dist.graph))
            );
            assert!(!a.hints.is_empty(), "{arch:?} {s:?} produced no hints");
        }
    }
}

#[test]
fn moe_expert_parallel_is_clean() {
    let cfg = MoeConfig::tiny();
    let gs = moe(&cfg);
    let dist = parallelize_moe(&cfg, &Strategy::tp(2));
    let a = run(&gs, &dist);
    assert!(a.is_clean(), "{}", a.report.render(Some(&dist.graph)));
}
