//! The analysis driver: seed abstract layouts from the input relation,
//! interpret `G_s` into logical terms, propagate through `G_d` in one
//! topological pass, and report violations / export hints.

use std::collections::{HashMap, HashSet};

use entangle_egraph::{ENode, RecExpr};
use entangle_ir::layout::Seg;
use entangle_ir::{DeclaredLayout, Graph, Op, TensorId};
use entangle_lint::{Anchor, Diagnostic, LintReport};

use crate::domain::{AbsVal, TermId, TermTable};
use crate::hints::{self, Hint};
use crate::transfer;

/// The result of a sharding-propagation analysis over one `G_d`.
#[derive(Debug)]
pub struct ShardAnalysis {
    /// The shared term table (for rendering values).
    pub table: TermTable,
    /// Abstract layout per `G_d` tensor, indexed by [`TensorId`].
    pub values: Vec<AbsVal>,
    /// Diagnostics: `SH##` errors in topological order, then warnings.
    pub report: LintReport,
    /// Relation hints for the refinement checker (empty in self-seeded
    /// mode).
    pub hints: Vec<Hint>,
}

impl ShardAnalysis {
    /// The abstract layout of a tensor.
    pub fn value(&self, t: TensorId) -> &AbsVal {
        &self.values[t.0 as usize]
    }

    /// `true` when no layout errors were found.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// Counts of `(replicated, window, partial, unknown)` tensors.
    pub fn form_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for v in &self.values {
            match v {
                AbsVal::Rep(_) => c.0 += 1,
                AbsVal::Window { .. } => c.1 += 1,
                AbsVal::Partial { .. } => c.2 += 1,
                AbsVal::Unknown => c.3 += 1,
            }
        }
        c
    }

    /// One-line summary for `entangle info`.
    pub fn summary(&self) -> String {
        let (r, w, p, u) = self.form_counts();
        format!(
            "{r} replicated / {w} windowed / {p} partial / {u} unknown; {}",
            self.report.summary()
        )
    }

    /// Renders the analysis as a JSON object with a stable field order:
    /// `graph`, `clean`, `forms` (`replicated`/`window`/`partial`/`unknown`
    /// counts), `layouts` (tensor name → rendered layout), `hints`
    /// (a list of `{tensor, expr}` proven mappings), `diagnostics`.
    pub fn to_json(&self, gd: &Graph) -> String {
        use entangle_lint::json_str;
        let (r, w, p, u) = self.form_counts();
        let mut out = String::from("{");
        out.push_str(&format!("\"graph\":{}", json_str(gd.name())));
        out.push_str(&format!(",\"clean\":{}", self.is_clean()));
        out.push_str(&format!(
            ",\"forms\":{{\"replicated\":{r},\"window\":{w},\"partial\":{p},\"unknown\":{u}}}"
        ));
        let layouts: Vec<String> = gd
            .tensors()
            .iter()
            .map(|t| {
                format!(
                    "{}:{}",
                    json_str(&t.name),
                    json_str(&self.value(t.id).describe(&self.table))
                )
            })
            .collect();
        out.push_str(&format!(",\"layouts\":{{{}}}", layouts.join(",")));
        let hints: Vec<String> = self
            .hints
            .iter()
            .map(|h| {
                format!(
                    "{{\"tensor\":{},\"expr\":{}}}",
                    json_str(&h.gs_tensor),
                    json_str(&h.expr)
                )
            })
            .collect();
        out.push_str(&format!(",\"hints\":[{}]", hints.join(",")));
        let diags: Vec<String> = self
            .report
            .diagnostics
            .iter()
            .map(|d| d.to_json(Some(gd)))
            .collect();
        out.push_str(&format!(",\"diagnostics\":[{}]}}", diags.join(",")));
        out
    }

    /// Renders the per-tensor layout table.
    pub fn describe(&self, gd: &Graph) -> String {
        let mut out = String::new();
        for t in gd.tensors() {
            out.push_str(&format!(
                "  {:<24} {}\n",
                t.name,
                self.value(t.id).describe(&self.table)
            ));
        }
        out
    }
}

/// Self-seeded analysis of a single graph: every input is its own
/// replicated leaf. Useful for structural layout inspection and CI sweeps;
/// cross-rank consistency checks need [`analyze_pair`]'s relation seeds.
pub fn analyze_graph(gd: &Graph) -> ShardAnalysis {
    let mut table = TermTable::new();
    let mut seeds: HashMap<TensorId, AbsVal> = HashMap::new();
    for &i in gd.inputs() {
        let t = table.leaf(&gd.tensor(i).name);
        seeds.insert(i, AbsVal::Rep(t));
    }
    let mut report = LintReport::default();
    let values = propagate(gd, &mut table, &seeds, &mut report);
    ShardAnalysis {
        table,
        values,
        report,
        hints: Vec::new(),
    }
}

/// Full paired analysis: interpret `gs` into logical terms, seed `gd`
/// inputs from the input-relation `maps` (pairs of `G_s` tensor name and
/// mapping expression over `G_d` tensor names), propagate, cross-check any
/// `declared` builder layouts, and derive relation hints.
pub fn analyze_pair(
    gs: &Graph,
    gd: &Graph,
    maps: &[(String, RecExpr)],
    declared: &[(TensorId, DeclaredLayout)],
) -> ShardAnalysis {
    let mut table = TermTable::new();
    let gs_terms = gs_terms(gs, &mut table);

    let mut seeds: HashMap<TensorId, AbsVal> = HashMap::new();
    let mut mentioned: HashSet<TensorId> = HashSet::new();
    for (gs_name, expr) in maps {
        seed_one(gs, gd, &gs_terms, gs_name, expr, &mut seeds, &mut mentioned);
    }

    let mut warnings: Vec<Diagnostic> = Vec::new();
    check_declared(gd, &table, &seeds, declared, &mut warnings);

    // SH05: an input that feeds the outputs but appears in no mapping can
    // silently absorb a missing shard (bug-4 shape); flag it before the
    // checker discovers an unmappable operator downstream.
    let live = live_tensors(gd);
    for &i in gd.inputs() {
        if live.contains(&i) && !seeds.contains_key(&i) && !mentioned.contains(&i) {
            warnings.push(
                Diagnostic::warning(
                    crate::codes::UNMAPPED_INPUT,
                    Anchor::Tensor(i),
                    format!(
                        "input {:?} is reachable from the outputs but no input \
                         mapping mentions it; its layout is unknown",
                        gd.tensor(i).name
                    ),
                )
                .with_suggestion("add it to the input relation (or remove it)"),
            );
        }
    }

    let mut report = LintReport::default();
    let values = propagate(gd, &mut table, &seeds, &mut report);
    report.diagnostics.extend(warnings);

    let hints = hints::generate(gs, gd, &gs_terms, &values, &table);
    ShardAnalysis {
        table,
        values,
        report,
        hints,
    }
}

/// One topological pass of the transfer functions; unseeded inputs get
/// fresh opaque terms (sound: fresh terms match nothing).
fn propagate(
    gd: &Graph,
    table: &mut TermTable,
    seeds: &HashMap<TensorId, AbsVal>,
    report: &mut LintReport,
) -> Vec<AbsVal> {
    let mut values = vec![AbsVal::Unknown; gd.num_tensors()];
    for &i in gd.inputs() {
        values[i.0 as usize] = match seeds.get(&i) {
            Some(v) => v.clone(),
            None => AbsVal::Rep(table.fresh_term()),
        };
    }
    for node in gd.nodes() {
        let ins: Vec<AbsVal> = node
            .inputs
            .iter()
            .map(|&t| values[t.0 as usize].clone())
            .collect();
        let out = match transfer::transfer(table, gd, node, &ins) {
            Ok(v) => v,
            Err(e) => {
                let mut d = Diagnostic::error(e.code, Anchor::Node(node.id), e.message);
                if let Some(s) = e.suggestion {
                    d = d.with_suggestion(s);
                }
                report.diagnostics.push(d);
                // Widening to Unknown silences downstream cascades: every
                // transfer error requires known operand layouts.
                AbsVal::Unknown
            }
        };
        values[node.output.0 as usize] = out;
    }
    values
}

/// Interprets `G_s` into logical terms, one per tensor. Operators with
/// symbolic attributes become opaque fresh terms.
fn gs_terms(gs: &Graph, table: &mut TermTable) -> Vec<TermId> {
    let mut terms: Vec<TermId> = vec![0; gs.num_tensors()];
    for &i in gs.inputs() {
        terms[i.0 as usize] = table.leaf(&gs.tensor(i).name);
    }
    for node in gs.nodes() {
        let children: Vec<TermId> = node.inputs.iter().map(|&t| terms[t.0 as usize]).collect();
        let t = match &node.op {
            Op::Identity => children[0],
            Op::ScalarMul { numer, denom } => table.scaled(children[0], *numer, *denom),
            Op::OnesLike => match gs.tensor(node.output).shape.as_concrete() {
                Some(dims) => table.op("ones", Vec::new(), dims),
                None => table.fresh_term(),
            },
            Op::Concat { dim } | Op::AllGather { dim } => table.fold_concat(&children, *dim),
            Op::AllReduce => table.fold_add(&children),
            op => {
                let attrs: Option<Vec<i64>> =
                    op.attr_scalars().iter().map(|e| e.as_const()).collect();
                match attrs {
                    Some(attrs) => table.op(op.name(), children, attrs),
                    None => table.fresh_term(),
                }
            }
        };
        terms[node.output.0 as usize] = t;
    }
    terms
}

/// The shape of one mapping expression, as far as seeding understands it.
enum Flat {
    /// A bare `G_d` tensor name: the tensor holds the full value.
    Identity(String),
    /// A (possibly nested, same-dim) concat of `G_d` tensor names, in
    /// order.
    Shards(usize, Vec<String>),
    /// Anything else: leaves are only *mentioned*, not seeded.
    Other,
}

fn flatten_map(expr: &RecExpr) -> Flat {
    fn collect(expr: &RecExpr, id: entangle_egraph::Id, dim: i64, out: &mut Vec<String>) -> bool {
        match expr.node(id) {
            ENode::Op(sym, ch) if ch.is_empty() => {
                out.push(sym.as_str().to_owned());
                true
            }
            ENode::Op(sym, ch) if sym.as_str() == "concat" && ch.len() == 3 => {
                expr.node(ch[2]).as_int() == Some(dim)
                    && collect(expr, ch[0], dim, out)
                    && collect(expr, ch[1], dim, out)
            }
            _ => false,
        }
    }
    match expr.root() {
        ENode::Op(sym, ch) if ch.is_empty() => Flat::Identity(sym.as_str().to_owned()),
        ENode::Op(sym, ch) if sym.as_str() == "concat" && ch.len() == 3 => {
            let Some(dim) = expr.node(ch[2]).as_int() else {
                return Flat::Other;
            };
            let mut leaves = Vec::new();
            if collect(expr, ch[0], dim, &mut leaves) && collect(expr, ch[1], dim, &mut leaves) {
                Flat::Shards(dim as usize, leaves)
            } else {
                Flat::Other
            }
        }
        _ => Flat::Other,
    }
}

#[allow(clippy::too_many_arguments)]
fn seed_one(
    gs: &Graph,
    gd: &Graph,
    gs_terms: &[TermId],
    gs_name: &str,
    expr: &RecExpr,
    seeds: &mut HashMap<TensorId, AbsVal>,
    mentioned: &mut HashSet<TensorId>,
) {
    let mention_all = |mentioned: &mut HashSet<TensorId>| {
        for sym in expr.leaf_symbols() {
            if let Some(t) = gd.tensor_by_name(sym.as_str()) {
                mentioned.insert(t.id);
            }
        }
    };
    let Some(gs_t) = gs.tensor_by_name(gs_name) else {
        mention_all(mentioned);
        return;
    };
    let term = gs_terms[gs_t.id.0 as usize];
    match flatten_map(expr) {
        Flat::Identity(leaf) => {
            if let Some(t) = gd.tensor_by_name(&leaf) {
                mentioned.insert(t.id);
                seeds.entry(t.id).or_insert(AbsVal::Rep(term));
            }
        }
        Flat::Shards(dim, leaves) => {
            mention_all(mentioned);
            let full = gs_t.shape.dims().get(dim).and_then(|d| d.as_const());
            let gd_ts: Option<Vec<&entangle_ir::Tensor>> = leaves
                .iter()
                .map(|n| gd.tensor_by_name(n.as_str()))
                .collect();
            let (Some(full), Some(gd_ts)) = (full, gd_ts) else {
                return;
            };
            let extents: Option<Vec<i64>> = gd_ts
                .iter()
                .map(|t| t.shape.dims().get(dim).and_then(|d| d.as_const()))
                .collect();
            let Some(extents) = extents else { return };
            if extents.iter().sum::<i64>() != full {
                return;
            }
            let mut off = 0i64;
            for (t, len) in gd_ts.iter().zip(extents) {
                seeds.entry(t.id).or_insert_with(|| {
                    AbsVal::window(
                        term,
                        dim,
                        full,
                        vec![Seg::Piece {
                            start: off,
                            end: off + len,
                        }],
                    )
                });
                off += len;
            }
        }
        Flat::Other => mention_all(mentioned),
    }
}

/// SH06: compare what the distribution strategy *declared* against what
/// the input relation *implies*.
fn check_declared(
    gd: &Graph,
    table: &TermTable,
    seeds: &HashMap<TensorId, AbsVal>,
    declared: &[(TensorId, DeclaredLayout)],
    warnings: &mut Vec<Diagnostic>,
) {
    for (tid, decl) in declared {
        let Some(seeded) = seeds.get(tid) else {
            continue;
        };
        let agrees = match (decl, seeded) {
            (DeclaredLayout::Replicated, AbsVal::Rep(_)) => true,
            (
                DeclaredLayout::Sharded { dim, index, parts },
                AbsVal::Window {
                    dim: wd,
                    full,
                    segs,
                    ..
                },
            ) => {
                let p = *parts as i64;
                *wd == *dim
                    && full % p == 0
                    && entangle_ir::layout::pure_piece(segs)
                        == Some((*index as i64 * (full / p), (*index as i64 + 1) * (full / p)))
            }
            _ => false,
        };
        if !agrees {
            warnings.push(
                Diagnostic::warning(
                    crate::codes::DECLARED_MISMATCH,
                    Anchor::Tensor(*tid),
                    format!(
                        "strategy declares {:?} as {decl}, but the input \
                         relation implies {}",
                        gd.tensor(*tid).name,
                        seeded.describe(table)
                    ),
                )
                .with_suggestion("the declaration or the input relation is stale"),
            );
        }
    }
}

/// Tensors backward-reachable from the graph outputs.
fn live_tensors(gd: &Graph) -> HashSet<TensorId> {
    let mut live: HashSet<TensorId> = HashSet::new();
    let mut stack: Vec<TensorId> = gd.outputs().to_vec();
    while let Some(t) = stack.pop() {
        if live.insert(t) {
            if let Some(node) = gd.producer(t) {
                stack.extend(node.inputs.iter().copied());
            }
        }
    }
    live
}
