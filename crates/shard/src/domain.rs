//! The abstract domain: hash-consed logical terms and per-tensor abstract
//! layouts.
//!
//! Every distributed tensor is described *relative to the sequential
//! program*: an [`AbsVal`] pairs a logical term (a node in the shared
//! [`TermTable`], built over `G_s` tensor names) with a *form* — replicated,
//! a window (sharded/padded/halo slices along one dimension), or a partial
//! sum awaiting reduction. Because both the `G_s` interpretation and the
//! `G_d` transfer functions intern terms through the same table, two
//! tensors denote the same logical value exactly when their `TermId`s are
//! pointer-equal — the analysis never needs structural matching after
//! construction.

use std::collections::HashMap;

use entangle_ir::layout::{self, Seg};

/// Index of an interned term in a [`TermTable`].
pub type TermId = u32;

/// Sentinel `axis` for partial sums produced by matrix-multiply contraction
/// (the decomposed dimension is internal to the contraction, not a
/// dimension of the result).
pub const CONTRACTION_AXIS: usize = usize::MAX;

/// The head symbol of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Head {
    /// A `G_s` tensor (or, in self-seeded mode, `G_d` input) by name.
    Leaf(String),
    /// An operator application, by s-expression head.
    Op(&'static str),
    /// An opaque term that matches nothing, not even itself across
    /// allocations — used for unseeded inputs and inexpressible results.
    Fresh(u32),
}

/// One interned term: `head(children…; attrs…)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TermNode {
    /// Head symbol.
    pub head: Head,
    /// Scalar attributes (dims, bounds, scale factors), all concrete.
    pub attrs: Vec<i64>,
    /// Child terms.
    pub children: Vec<TermId>,
}

/// Hash-consing table of logical terms.
#[derive(Debug, Default)]
pub struct TermTable {
    nodes: Vec<TermNode>,
    index: HashMap<TermNode, TermId>,
    fresh: u32,
}

impl TermTable {
    /// An empty table.
    pub fn new() -> TermTable {
        TermTable::default()
    }

    fn intern(&mut self, node: TermNode) -> TermId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = self.nodes.len() as TermId;
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// The term for a named leaf tensor.
    pub fn leaf(&mut self, name: &str) -> TermId {
        self.intern(TermNode {
            head: Head::Leaf(name.to_owned()),
            attrs: Vec::new(),
            children: Vec::new(),
        })
    }

    /// An operator application term.
    pub fn op(&mut self, name: &'static str, children: Vec<TermId>, attrs: Vec<i64>) -> TermId {
        self.intern(TermNode {
            head: Head::Op(name),
            attrs,
            children,
        })
    }

    /// A fresh opaque term, distinct from every other term.
    pub fn fresh_term(&mut self) -> TermId {
        self.fresh += 1;
        let tag = self.fresh;
        self.intern(TermNode {
            head: Head::Fresh(tag),
            attrs: Vec::new(),
            children: Vec::new(),
        })
    }

    /// The term node for an id.
    pub fn node(&self, id: TermId) -> &TermNode {
        &self.nodes[id as usize]
    }

    /// `numer/denom · t`, normalized: the fraction is reduced, nested
    /// `scalar_mul`s compose, and a unit scale is the identity. This is what
    /// lets `all_reduce(½·aux, ½·aux)` collapse back to `aux`.
    pub fn scaled(&mut self, t: TermId, numer: i64, denom: i64) -> TermId {
        let (mut n, mut d) = (numer, denom);
        if d < 0 {
            n = -n;
            d = -d;
        }
        if let Head::Op("scalar_mul") = self.node(t).head {
            let inner = self.node(t);
            let (n2, d2) = (inner.attrs[0], inner.attrs[1]);
            let child = inner.children[0];
            return self.scaled(child, n * n2, d * d2);
        }
        let g = gcd(n.unsigned_abs(), d.unsigned_abs()).max(1) as i64;
        let (n, d) = (n / g, d / g);
        if n == 1 && d == 1 {
            return t;
        }
        self.op("scalar_mul", vec![t], vec![n, d])
    }

    /// Left-folded binary sum of `terms`; a sum of `k` copies of the same
    /// term is normalized to `k · t` so it can later cancel against `1/k`
    /// scaling.
    pub fn fold_add(&mut self, terms: &[TermId]) -> TermId {
        assert!(!terms.is_empty());
        if terms.iter().all(|&t| t == terms[0]) && terms.len() > 1 {
            return self.scaled(terms[0], terms.len() as i64, 1);
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = self.op("add", vec![acc, t], Vec::new());
        }
        acc
    }

    /// Left-folded binary concatenation of `terms` along `dim`, matching
    /// the e-graph lowering of variadic concat/all-gather.
    pub fn fold_concat(&mut self, terms: &[TermId], dim: usize) -> TermId {
        assert!(!terms.is_empty());
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = self.op("concat", vec![acc, t], vec![dim as i64]);
        }
        acc
    }

    /// Renders a term as an s-expression (for diagnostics and debugging).
    pub fn render(&self, id: TermId) -> String {
        let node = self.node(id);
        match &node.head {
            Head::Leaf(name) => name.clone(),
            Head::Fresh(tag) => format!("?{tag}"),
            Head::Op(op) => {
                let mut out = format!("({op}");
                for &c in &node.children {
                    out.push(' ');
                    out.push_str(&self.render(c));
                }
                for a in &node.attrs {
                    out.push_str(&format!(" {a}"));
                }
                out.push(')');
                out
            }
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The abstract layout of one distributed tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// Nothing is known; the lattice top. Always sound.
    Unknown,
    /// The tensor *is* the logical term — every rank holding it holds the
    /// full value (replication).
    Rep(TermId),
    /// The tensor is, along dimension `dim` of logical extent `full`, the
    /// concatenation of `segs` — slices of the logical term and padding
    /// zeros. Covers sharding (one piece), padded sharding, halo/offset
    /// windows, and gather results.
    Window {
        /// The logical term being windowed.
        term: TermId,
        /// The windowed dimension (all other dimensions are whole).
        dim: usize,
        /// Logical extent of `dim`.
        full: i64,
        /// The window, in physical order.
        segs: Vec<Seg>,
    },
    /// The tensor is one addend of the logical term: summing the group
    /// members whose pieces `[start, end)` tile `[0, total)` along `axis`
    /// yields the term. `axis` is [`CONTRACTION_AXIS`] for matmul-style
    /// contraction partials.
    Partial {
        /// The logical term the group sums to.
        term: TermId,
        /// This addend's piece start.
        start: i64,
        /// This addend's piece end.
        end: i64,
        /// The decomposed extent.
        total: i64,
        /// The decomposed dimension (group key).
        axis: usize,
    },
}

impl AbsVal {
    /// Builds a window, normalizing: segments are coalesced, a window that
    /// is exactly the full extent collapses to [`AbsVal::Rep`], and an
    /// empty window degrades to [`AbsVal::Unknown`].
    pub fn window(term: TermId, dim: usize, full: i64, segs: Vec<Seg>) -> AbsVal {
        let segs = layout::coalesce(segs);
        match layout::pure_piece(&segs) {
            Some((0, e)) if e == full => AbsVal::Rep(term),
            _ if segs.is_empty() => AbsVal::Unknown,
            _ => AbsVal::Window {
                term,
                dim,
                full,
                segs,
            },
        }
    }

    /// Builds a partial sum, normalizing: a piece covering the whole range
    /// *is* the full sum and collapses to [`AbsVal::Rep`].
    pub fn partial(term: TermId, start: i64, end: i64, total: i64, axis: usize) -> AbsVal {
        if start == 0 && end == total {
            AbsVal::Rep(term)
        } else {
            AbsVal::Partial {
                term,
                start,
                end,
                total,
                axis,
            }
        }
    }

    /// The logical term this value references, if any.
    pub fn term(&self) -> Option<TermId> {
        match self {
            AbsVal::Unknown => None,
            AbsVal::Rep(t) | AbsVal::Window { term: t, .. } | AbsVal::Partial { term: t, .. } => {
                Some(*t)
            }
        }
    }

    /// A short human-readable form label.
    pub fn form(&self) -> &'static str {
        match self {
            AbsVal::Unknown => "unknown",
            AbsVal::Rep(_) => "replicated",
            AbsVal::Window { .. } => "window",
            AbsVal::Partial { .. } => "partial-sum",
        }
    }

    /// Renders the value with its term resolved through `table`.
    pub fn describe(&self, table: &TermTable) -> String {
        match self {
            AbsVal::Unknown => "unknown".to_owned(),
            AbsVal::Rep(t) => format!("replicated = {}", table.render(*t)),
            AbsVal::Window {
                term,
                dim,
                full,
                segs,
            } => format!(
                "window dim={dim} of {} (full {full}): {}",
                table.render(*term),
                layout::render_segs(segs)
            ),
            AbsVal::Partial {
                term,
                start,
                end,
                total,
                axis,
            } => {
                let axis = if *axis == CONTRACTION_AXIS {
                    "contraction".to_owned()
                } else {
                    format!("axis {axis}")
                };
                format!(
                    "partial-sum [{start},{end}) of [0,{total}) ({axis}) of {}",
                    table.render(*term)
                )
            }
        }
    }
}
