//! Relation hints: inferred layouts exported as candidate mappings for the
//! refinement checker.
//!
//! When the analysis proves a set of `G_d` tensors reconstructs a `G_s`
//! tensor — identical replicas, shards tiling a dimension, or partial sums
//! tiling a range — that proof *is* a relation mapping, and the checker can
//! seed (or entirely skip) equality saturation with it.

use std::collections::HashMap;

use entangle_ir::{Graph, TensorId};

use crate::domain::{AbsVal, TermId, TermTable};

/// `(start, end, gd tensor name)` pieces grouped by a shard/partial key.
type PieceGroups<K> = HashMap<K, Vec<(i64, i64, String)>>;

/// One exported mapping candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hint {
    /// The `G_s` tensor being mapped.
    pub gs_tensor: String,
    /// Mapping expression over `G_d` tensor names (paper s-expression
    /// syntax).
    pub expr: String,
    /// The clean operator the expression is built from (`None` for a bare
    /// identity leaf) — lets the checker respect a restricted clean-op set.
    pub op: Option<&'static str>,
}

/// Derives hints for every `G_s` operator output whose logical term is
/// reconstructible from `G_d` tensor layouts. Deterministic: `G_d` tensors
/// are considered in id order.
pub(crate) fn generate(
    gs: &Graph,
    gd: &Graph,
    gs_terms: &[TermId],
    values: &[AbsVal],
    table: &TermTable,
) -> Vec<Hint> {
    let mut by_term: HashMap<TermId, Vec<TensorId>> = HashMap::new();
    for t in gd.tensors() {
        if let Some(term) = values[t.id.0 as usize].term() {
            by_term.entry(term).or_default().push(t.id);
        }
    }

    let mut hints = Vec::new();
    for gs_tensor in gs.tensors() {
        if gs_tensor.producer.is_none() {
            continue; // inputs are already mapped by the input relation
        }
        let term = gs_terms[gs_tensor.id.0 as usize];
        let Some(gd_ids) = by_term.get(&term) else {
            continue;
        };
        // (dim) -> pieces; (axis, total) -> pieces
        let mut shard_groups: PieceGroups<usize> = HashMap::new();
        let mut partial_groups: PieceGroups<(usize, i64)> = HashMap::new();
        for &id in gd_ids {
            let name = gd.tensor(id).name.clone();
            match &values[id.0 as usize] {
                AbsVal::Rep(_) => hints.push(Hint {
                    gs_tensor: gs_tensor.name.clone(),
                    expr: name,
                    op: None,
                }),
                AbsVal::Window {
                    dim, full, segs, ..
                } => {
                    let gs_extent = gs_tensor.shape.dims().get(*dim).and_then(|d| d.as_const());
                    if gs_extent != Some(*full) {
                        continue;
                    }
                    if let Some((s, e)) = entangle_ir::layout::pure_piece(segs) {
                        shard_groups.entry(*dim).or_default().push((s, e, name));
                    }
                }
                AbsVal::Partial {
                    start,
                    end,
                    total,
                    axis,
                    ..
                } => partial_groups
                    .entry((*axis, *total))
                    .or_default()
                    .push((*start, *end, name)),
                AbsVal::Unknown => {}
            }
        }
        for (dim, mut pieces) in sorted_groups(shard_groups) {
            let full = gs_tensor
                .shape
                .dims()
                .get(dim)
                .and_then(|d| d.as_const())
                .expect("checked above");
            if let Some(names) = tiling(&mut pieces, full) {
                hints.push(Hint {
                    gs_tensor: gs_tensor.name.clone(),
                    expr: fold(&names, &format!(" {dim})"), "(concat "),
                    op: Some("concat"),
                });
            }
        }
        for ((_axis, total), mut pieces) in sorted_groups(partial_groups) {
            if let Some(names) = tiling(&mut pieces, total) {
                hints.push(Hint {
                    gs_tensor: gs_tensor.name.clone(),
                    expr: fold(&names, ")", "(add "),
                    op: Some("add"),
                });
            }
        }
    }
    let _ = table; // terms already resolved; kept for future diagnostics
    hints
}

/// Deterministic iteration over a small hash-keyed group map.
fn sorted_groups<K: Ord + Copy, V>(groups: HashMap<K, Vec<V>>) -> Vec<(K, Vec<V>)> {
    let mut out: Vec<_> = groups.into_iter().collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

/// Sorts pieces, drops duplicates, and returns the member names when they
/// tile `[0, full)` exactly.
fn tiling(pieces: &mut Vec<(i64, i64, String)>, full: i64) -> Option<Vec<String>> {
    pieces.sort();
    pieces.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    if pieces.len() < 2 {
        return None;
    }
    let mut cursor = 0i64;
    for (s, e, _) in pieces.iter() {
        if *s != cursor {
            return None;
        }
        cursor = *e;
    }
    (cursor == full).then(|| pieces.iter().map(|(_, _, n)| n.clone()).collect())
}

/// Left-folded binary s-expression: `(head (head a b suffix) c suffix)`.
fn fold(names: &[String], suffix: &str, head: &str) -> String {
    let mut acc = names[0].clone();
    for n in &names[1..] {
        acc = format!("{head}{acc} {n}{suffix}");
    }
    acc
}
