//! Per-operator transfer functions over [`AbsVal`].
//!
//! Each function answers: given the abstract layouts of an operator's
//! inputs, what is the layout of its output — and is the combination
//! *provably wrong*? Wrongness is reported as a [`ShardErr`] carrying one
//! of the `SH##` codes; everything merely unprovable widens to
//! [`AbsVal::Unknown`], which is always sound (the downstream saturation
//! checker retains full authority over unknowns).

use entangle_ir::layout::{self, Seg};
use entangle_ir::{Graph, Node, Op, Shape};

use crate::domain::{AbsVal, TermId, TermTable, CONTRACTION_AXIS};

/// A provable layout violation found while transferring one operator.
#[derive(Debug, Clone)]
pub struct ShardErr {
    /// Stable `SH##` code (see `entangle_shard::codes`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Optional remediation hint.
    pub suggestion: Option<String>,
}

impl ShardErr {
    fn new(code: &'static str, message: String) -> ShardErr {
        ShardErr {
            code,
            message,
            suggestion: None,
        }
    }

    fn suggest(mut self, s: impl Into<String>) -> ShardErr {
        self.suggestion = Some(s.into());
        self
    }
}

type Transfer = Result<AbsVal, ShardErr>;

fn extent(shape: &Shape, dim: usize) -> Option<i64> {
    shape.dims().get(dim).and_then(|d| d.as_const())
}

/// Concrete attribute scalars of an operator, or `None` when any attribute
/// is symbolic (symbolic attributes make the term inexpressible).
fn concrete_attrs(op: &Op) -> Option<Vec<i64>> {
    op.attr_scalars().iter().map(|e| e.as_const()).collect()
}

/// Transfers one `G_d` operator. `vals` are the input layouts in operator
/// order; shapes are read from `gd`.
pub(crate) fn transfer(
    table: &mut TermTable,
    gd: &Graph,
    node: &Node,
    vals: &[AbsVal],
) -> Transfer {
    let out_shape = &gd.tensor(node.output).shape;
    let in_shapes: Vec<&Shape> = node.inputs.iter().map(|&t| &gd.tensor(t).shape).collect();
    let op = &node.op;

    match op {
        Op::Identity => Ok(vals[0].clone()),
        Op::OnesLike => Ok(ones_like(table, out_shape)),
        _ if op.is_elementwise_unary() => Ok(unary(table, op, &vals[0])),
        _ if op.is_elementwise_binary() => zip(table, op, vals, &in_shapes, out_shape),
        Op::SumDim { dim, keepdim } => Ok(sum_dim(table, op, &vals[0], *dim, *keepdim)),
        Op::MeanDim { dim, .. } => Ok(mean_dim(table, op, &vals[0], *dim)),
        Op::SumAll => Ok(sum_all(table, op, &vals[0])),
        Op::MeanAll => Ok(linear_only(table, op, &vals[0])),
        Op::Softmax { dim } => Ok(softmax(table, op, &vals[0], *dim)),
        Op::Reshape { .. } => Ok(rep_only(table, op, &vals[0])),
        Op::Transpose { d0, d1 } => Ok(permute_like(table, op, &vals[0], |d| {
            if d == *d0 {
                *d1
            } else if d == *d1 {
                *d0
            } else {
                d
            }
        })),
        Op::Permute { perm } => {
            let perm = perm.clone();
            Ok(permute_like(table, op, &vals[0], move |d| {
                perm.iter().position(|&p| p == d).unwrap_or(usize::MAX)
            }))
        }
        Op::Slice { dim, start, end } => slice(
            table,
            op,
            &vals[0],
            in_shapes[0],
            *dim,
            start.as_const(),
            end.as_const(),
        ),
        Op::Pad { dim, before, after } => Ok(pad(
            table,
            op,
            &vals[0],
            in_shapes[0],
            *dim,
            before.as_const(),
            after.as_const(),
        )),
        Op::Concat { dim } | Op::AllGather { dim } => Ok(concat(table, vals, &in_shapes, *dim)),
        Op::AllReduce => all_reduce(table, gd, node, vals),
        Op::ReduceScatter { dim, rank, world } => {
            reduce_scatter(table, gd, node, vals, *dim, *rank, *world, out_shape)
        }
        Op::Matmul => matmul(
            table,
            &vals[0],
            &vals[1],
            in_shapes[0],
            in_shapes[1],
            out_shape,
        ),
        Op::Embedding => Ok(embedding(table, &vals[0], &vals[1], out_shape)),
        Op::EmbeddingGrad { vocab } => Ok(embedding_grad(table, &vals[0], &vals[1], *vocab)),
        Op::LayerNorm => Ok(norm(table, op, vals, in_shapes[0])),
        Op::RmsNorm => Ok(norm(table, op, vals, in_shapes[0])),
        Op::Rope => rope(table, vals, &in_shapes),
        Op::Attention { heads, causal } => attention(table, vals, &in_shapes, *heads, *causal),
        Op::MseLoss | Op::CrossEntropy => Ok(rep_pair(table, op, vals)),
        // The guarded element-wise arms above are exhaustive over the
        // remaining variants; widening keeps any future operator sound.
        _ => Ok(AbsVal::Unknown),
    }
}

/// `op(t…)` term with the operator's (concrete) attributes; `None` if any
/// attribute is symbolic.
fn op_term(table: &mut TermTable, op: &Op, children: Vec<TermId>) -> Option<TermId> {
    match op {
        Op::ScalarMul { numer, denom } => Some(table.scaled(children[0], *numer, *denom)),
        _ => {
            let attrs = concrete_attrs(op)?;
            Some(table.op(op.name(), children, attrs))
        }
    }
}

fn ones_like(table: &mut TermTable, out_shape: &Shape) -> AbsVal {
    // A ones tensor depends only on its shape, so even an `Unknown` input
    // yields a known output — the gs-side interpretation builds the same
    // shape-keyed term, letting the two sides meet.
    match out_shape.as_concrete() {
        Some(dims) => AbsVal::Rep(table.op("ones", Vec::new(), dims)),
        None => AbsVal::Unknown,
    }
}

fn unary(table: &mut TermTable, op: &Op, v: &AbsVal) -> AbsVal {
    match v {
        AbsVal::Unknown => AbsVal::Unknown,
        AbsVal::Rep(t) => match op_term(table, op, vec![*t]) {
            Some(t2) => AbsVal::Rep(t2),
            None => AbsVal::Unknown,
        },
        AbsVal::Window {
            term,
            dim,
            full,
            segs,
        } => {
            if layout::has_pad(segs) && !op.preserves_zero() {
                return AbsVal::Unknown;
            }
            match op_term(table, op, vec![*term]) {
                Some(t2) => AbsVal::window(t2, *dim, *full, segs.clone()),
                None => AbsVal::Unknown,
            }
        }
        AbsVal::Partial {
            term,
            start,
            end,
            total,
            axis,
        } => {
            if !op.is_linear_unary() {
                return AbsVal::Unknown;
            }
            match op_term(table, op, vec![*term]) {
                Some(t2) => AbsVal::partial(t2, *start, *end, *total, *axis),
                None => AbsVal::Unknown,
            }
        }
    }
}

/// Broadcasting element-wise combination. All window operands must window
/// the same (right-aligned) output dimension with the same segments;
/// windows of *different* terms with mismatching segments are the classic
/// misaligned-shard bug and raise `SH02`.
fn zip(
    table: &mut TermTable,
    op: &Op,
    vals: &[AbsVal],
    in_shapes: &[&Shape],
    out_shape: &Shape,
) -> Transfer {
    // `add` of partial sums from one group is manual aggregation — the
    // elementwise form of an all-reduce (e.g. an explicit
    // `grad.0 + grad.1` combiner).
    if matches!(op, Op::Add) {
        if let Some(combined) = combine_partials(vals) {
            return Ok(combined);
        }
    }

    let out_rank = out_shape.rank();
    let mut terms: Vec<TermId> = Vec::with_capacity(vals.len());
    // (operand index, out dim, full, segs, term)
    let mut windows: Vec<(usize, usize, i64, Vec<Seg>, TermId)> = Vec::new();
    for (i, v) in vals.iter().enumerate() {
        match v {
            AbsVal::Unknown | AbsVal::Partial { .. } => return Ok(AbsVal::Unknown),
            AbsVal::Rep(t) => terms.push(*t),
            AbsVal::Window {
                term,
                dim,
                full,
                segs,
            } => {
                let od = dim + (out_rank - in_shapes[i].rank());
                match extent(out_shape, od) {
                    Some(e) if e == layout::segs_len(segs) => {}
                    // A window that broadcast-expands along its own
                    // dimension is no longer a window of the term.
                    _ => return Ok(AbsVal::Unknown),
                }
                windows.push((i, od, *full, segs.clone(), *term));
                terms.push(*term);
            }
        }
    }
    let Some((_, od, full, segs, wterm)) = windows.first().cloned() else {
        // All replicated.
        return Ok(match op_term(table, op, terms) {
            Some(t) => AbsVal::Rep(t),
            None => AbsVal::Unknown,
        });
    };
    if windows.iter().any(|(_, d, f, ..)| *d != od || *f != full) {
        return Ok(AbsVal::Unknown);
    }
    if windows.iter().any(|(_, _, _, s, _)| *s != segs) {
        if windows.iter().all(|(.., t)| *t == wterm) {
            // Same term, different pieces: a legitimate chunked fold
            // (e.g. add(x[0:4], x[4:8])), just not a window of anything.
            return Ok(AbsVal::Unknown);
        }
        let detail = windows
            .iter()
            .map(|(i, _, _, s, _)| format!("input {}: {}", i, layout::render_segs(s)))
            .collect::<Vec<_>>()
            .join("; ");
        return Err(ShardErr::new(
            crate::codes::WINDOW_MISALIGNED,
            format!(
                "element-wise {} combines windows of different tensors with \
                 mismatched slices along dim {od} ({detail})",
                op.name()
            ),
        )
        .suggest("re-shard the operands so each rank combines the same logical slice"));
    }
    // Replicated operands must broadcast *along* the windowed dimension
    // (lack it or have extent 1); a replicated operand materialized at the
    // window's physical extent is positionally ambiguous.
    for (i, v) in vals.iter().enumerate() {
        if let AbsVal::Rep(_) = v {
            let r = in_shapes[i].rank();
            if od + r >= out_rank {
                let j = od + r - out_rank;
                if extent(in_shapes[i], j) != Some(1) {
                    return Ok(AbsVal::Unknown);
                }
            }
        }
    }
    if layout::has_pad(&segs) {
        let pads_ok = match op {
            // 0 · y = 0 regardless of the other operand.
            Op::Mul => true,
            // f(0,…,0) = 0 only when every operand is zero in the pad
            // region, i.e. every operand is a window (same segs, checked).
            Op::Add | Op::Sub | Op::Maximum => windows.len() == vals.len(),
            _ => false,
        };
        if !pads_ok {
            return Ok(AbsVal::Unknown);
        }
    }
    Ok(match op_term(table, op, terms) {
        Some(t) => AbsVal::window(t, od, full, segs),
        None => AbsVal::Unknown,
    })
}

/// Sums partial addends of one `(term, axis, total)` group: disjoint
/// adjacent pieces merge into the partial covering their union (the full
/// value once everything is covered). `None` when the operands are not all
/// partials of one group or the pieces do not abut.
fn combine_partials(vals: &[AbsVal]) -> Option<AbsVal> {
    let mut key: Option<(TermId, usize, i64)> = None;
    let mut pieces: Vec<(i64, i64)> = Vec::with_capacity(vals.len());
    for v in vals {
        let AbsVal::Partial {
            term,
            start,
            end,
            total,
            axis,
        } = v
        else {
            return None;
        };
        match key {
            None => key = Some((*term, *axis, *total)),
            Some(k) if k == (*term, *axis, *total) => {}
            Some(_) => return None,
        }
        pieces.push((*start, *end));
    }
    let (term, axis, total) = key?;
    pieces.sort_unstable();
    let mut cur = pieces[0];
    for &(s, e) in &pieces[1..] {
        if s != cur.1 {
            return None;
        }
        cur.1 = e;
    }
    Some(AbsVal::partial(term, cur.0, cur.1, total, axis))
}

fn sum_dim(table: &mut TermTable, op: &Op, v: &AbsVal, dim: usize, keepdim: bool) -> AbsVal {
    match v {
        AbsVal::Window {
            term,
            dim: wdim,
            full,
            segs,
        } if *wdim == dim => {
            // Reducing over the windowed dimension: pads contribute zero to
            // the sum, so only the pieces matter; a contiguous piece range
            // makes this a partial sum of the logical reduction.
            match contiguous_pieces(segs) {
                Some((s, e)) => match op_term(table, op, vec![*term]) {
                    Some(t) => AbsVal::partial(t, s, e, *full, dim),
                    None => AbsVal::Unknown,
                },
                None => AbsVal::Unknown,
            }
        }
        AbsVal::Window {
            term,
            dim: wdim,
            full,
            segs,
        } => {
            // Reducing another dimension: an all-zero (pad) slab sums to
            // zero, so the window survives with its dim index adjusted.
            let nd = if keepdim || dim > *wdim {
                *wdim
            } else {
                *wdim - 1
            };
            match op_term(table, op, vec![*term]) {
                Some(t) => AbsVal::window(t, nd, *full, segs.clone()),
                None => AbsVal::Unknown,
            }
        }
        _ => linear_only(table, op, v),
    }
}

fn mean_dim(table: &mut TermTable, op: &Op, v: &AbsVal, dim: usize) -> AbsVal {
    match v {
        // A mean over the windowed dimension divides by the wrong count;
        // over another dimension the window survives (mean of zeros = 0).
        AbsVal::Window { dim: wdim, .. } if *wdim == dim => AbsVal::Unknown,
        AbsVal::Window {
            term,
            dim: wdim,
            full,
            segs,
        } => {
            let keepdim = matches!(op, Op::MeanDim { keepdim: true, .. });
            let nd = if keepdim || dim > *wdim {
                *wdim
            } else {
                *wdim - 1
            };
            match op_term(table, op, vec![*term]) {
                Some(t) => AbsVal::window(t, nd, *full, segs.clone()),
                None => AbsVal::Unknown,
            }
        }
        _ => linear_only(table, op, v),
    }
}

fn sum_all(table: &mut TermTable, op: &Op, v: &AbsVal) -> AbsVal {
    match v {
        AbsVal::Window {
            term,
            dim,
            full,
            segs,
        } => match contiguous_pieces(segs) {
            Some((s, e)) => match op_term(table, op, vec![*term]) {
                Some(t) => AbsVal::partial(t, s, e, *full, *dim),
                None => AbsVal::Unknown,
            },
            None => AbsVal::Unknown,
        },
        _ => linear_only(table, op, v),
    }
}

/// Rep passes through; Partial passes through when the op is linear;
/// everything else widens.
fn linear_only(table: &mut TermTable, op: &Op, v: &AbsVal) -> AbsVal {
    match v {
        AbsVal::Rep(t) => match op_term(table, op, vec![*t]) {
            Some(t2) => AbsVal::Rep(t2),
            None => AbsVal::Unknown,
        },
        AbsVal::Partial {
            term,
            start,
            end,
            total,
            axis,
        } if op.is_linear_unary() => match op_term(table, op, vec![*term]) {
            Some(t2) => AbsVal::partial(t2, *start, *end, *total, *axis),
            None => AbsVal::Unknown,
        },
        _ => AbsVal::Unknown,
    }
}

/// Rep in, Rep out; everything else widens.
fn rep_only(table: &mut TermTable, op: &Op, v: &AbsVal) -> AbsVal {
    match v {
        AbsVal::Rep(t) => match op_term(table, op, vec![*t]) {
            Some(t2) => AbsVal::Rep(t2),
            None => AbsVal::Unknown,
        },
        _ => AbsVal::Unknown,
    }
}

fn rep_pair(table: &mut TermTable, op: &Op, vals: &[AbsVal]) -> AbsVal {
    match (&vals[0], &vals[1]) {
        (AbsVal::Rep(a), AbsVal::Rep(b)) => match op_term(table, op, vec![*a, *b]) {
            Some(t) => AbsVal::Rep(t),
            None => AbsVal::Unknown,
        },
        _ => AbsVal::Unknown,
    }
}

fn softmax(table: &mut TermTable, op: &Op, v: &AbsVal, dim: usize) -> AbsVal {
    match v {
        AbsVal::Rep(t) => match op_term(table, op, vec![*t]) {
            Some(t2) => AbsVal::Rep(t2),
            None => AbsVal::Unknown,
        },
        AbsVal::Window {
            term,
            dim: wdim,
            full,
            segs,
        } if *wdim != dim && !layout::has_pad(segs) => {
            // Softmax over a zero (pad) row is uniform, not zero, so pads
            // do not survive; slices along another dim commute with it.
            match op_term(table, op, vec![*term]) {
                Some(t) => AbsVal::window(t, *wdim, *full, segs.clone()),
                None => AbsVal::Unknown,
            }
        }
        _ => AbsVal::Unknown,
    }
}

fn permute_like(
    table: &mut TermTable,
    op: &Op,
    v: &AbsVal,
    map: impl Fn(usize) -> usize,
) -> AbsVal {
    match v {
        AbsVal::Window {
            term,
            dim,
            full,
            segs,
        } => {
            let nd = map(*dim);
            if nd == usize::MAX {
                return AbsVal::Unknown;
            }
            match op_term(table, op, vec![*term]) {
                Some(t) => AbsVal::window(t, nd, *full, segs.clone()),
                None => AbsVal::Unknown,
            }
        }
        AbsVal::Partial {
            term,
            start,
            end,
            total,
            axis,
        } => {
            let na = if *axis == CONTRACTION_AXIS {
                CONTRACTION_AXIS
            } else {
                map(*axis)
            };
            match op_term(table, op, vec![*term]) {
                Some(t) => AbsVal::partial(t, *start, *end, *total, na),
                None => AbsVal::Unknown,
            }
        }
        _ => rep_only(table, op, v),
    }
}

fn slice(
    table: &mut TermTable,
    op: &Op,
    v: &AbsVal,
    in_shape: &Shape,
    dim: usize,
    start: Option<i64>,
    end: Option<i64>,
) -> Transfer {
    let (Some(s), Some(e)) = (start, end) else {
        return Ok(AbsVal::Unknown);
    };
    match v {
        AbsVal::Rep(t) => {
            let Some(full) = extent(in_shape, dim) else {
                return Ok(AbsVal::Unknown);
            };
            Ok(AbsVal::window(
                *t,
                dim,
                full,
                vec![Seg::Piece { start: s, end: e }],
            ))
        }
        AbsVal::Window {
            term,
            dim: wdim,
            full,
            segs,
        } if *wdim == dim => {
            // Walk the physical layout, intersecting with [s, e).
            let mut out: Vec<Seg> = Vec::new();
            let mut p = 0i64;
            for seg in segs {
                let len = seg.len();
                let lo = s.max(p);
                let hi = e.min(p + len);
                if lo < hi {
                    out.push(match seg {
                        Seg::Pad(_) => Seg::Pad(hi - lo),
                        Seg::Piece { start: ps, .. } => Seg::Piece {
                            start: ps + (lo - p),
                            end: ps + (hi - p),
                        },
                    });
                }
                p += len;
            }
            let has_data = out.iter().any(|x| !x.is_pad());
            let has_pad = out.iter().any(Seg::is_pad);
            if has_data && has_pad {
                return Err(ShardErr::new(
                    crate::codes::SLICE_STRADDLES_PAD,
                    format!(
                        "slice [{s},{e}) along dim {dim} straddles a padding \
                         boundary of window {} — the result mixes padding \
                         zeros with data",
                        layout::render_segs(segs)
                    ),
                )
                .suggest(
                    "adjust the slice bounds to skip the padded region \
                     (account for padding inserted upstream)",
                ));
            }
            if !has_data {
                return Ok(AbsVal::Unknown);
            }
            Ok(AbsVal::window(*term, dim, *full, out))
        }
        AbsVal::Window {
            term,
            dim: wdim,
            full,
            segs,
        } => {
            // Slicing another dimension commutes with the window (pads stay
            // zero under slicing).
            Ok(match op_term(table, op, vec![*term]) {
                Some(t) => AbsVal::window(t, *wdim, *full, segs.clone()),
                None => AbsVal::Unknown,
            })
        }
        _ => Ok(linear_only(table, op, v)),
    }
}

fn pad(
    table: &mut TermTable,
    op: &Op,
    v: &AbsVal,
    in_shape: &Shape,
    dim: usize,
    before: Option<i64>,
    after: Option<i64>,
) -> AbsVal {
    let (Some(b), Some(a)) = (before, after) else {
        return AbsVal::Unknown;
    };
    match v {
        AbsVal::Rep(t) => {
            let Some(full) = extent(in_shape, dim) else {
                return AbsVal::Unknown;
            };
            AbsVal::window(
                *t,
                dim,
                full,
                vec![
                    Seg::Pad(b),
                    Seg::Piece {
                        start: 0,
                        end: full,
                    },
                    Seg::Pad(a),
                ],
            )
        }
        AbsVal::Window {
            term,
            dim: wdim,
            full,
            segs,
        } if *wdim == dim => {
            let mut out = vec![Seg::Pad(b)];
            out.extend(segs.iter().copied());
            out.push(Seg::Pad(a));
            AbsVal::window(*term, dim, *full, out)
        }
        AbsVal::Window {
            term,
            dim: wdim,
            full,
            segs,
        } => match op_term(table, op, vec![*term]) {
            Some(t) => AbsVal::window(t, *wdim, *full, segs.clone()),
            None => AbsVal::Unknown,
        },
        _ => linear_only(table, op, v),
    }
}

/// Shared transfer for `concat` and `all_gather` (a gather *is* a concat of
/// the per-rank operands along `dim`).
fn concat(table: &mut TermTable, vals: &[AbsVal], in_shapes: &[&Shape], dim: usize) -> AbsVal {
    if vals
        .iter()
        .any(|v| matches!(v, AbsVal::Unknown | AbsVal::Partial { .. }))
    {
        return AbsVal::Unknown;
    }
    // All replicated: the result is the logical concatenation term.
    if vals.iter().all(|v| matches!(v, AbsVal::Rep(_))) {
        let terms: Vec<TermId> = vals.iter().filter_map(AbsVal::term).collect();
        return AbsVal::Rep(table.fold_concat(&terms, dim));
    }
    // Gather along the windowed dimension: same term, same full extent;
    // replicated operands whose extent equals the full extent contribute a
    // whole-tensor piece. Out-of-order or duplicated gathers simply stay
    // windows.
    let first_term = vals.iter().find_map(|v| match v {
        AbsVal::Window { term, dim: d, .. } if *d == dim => Some(*term),
        _ => None,
    });
    if let Some(t) = first_term {
        let full = vals.iter().find_map(|v| match v {
            AbsVal::Window {
                dim: d, full, term, ..
            } if *d == dim && *term == t => Some(*full),
            _ => None,
        });
        if let Some(full) = full {
            let mut segs: Vec<Seg> = Vec::new();
            let mut ok = true;
            for (i, v) in vals.iter().enumerate() {
                match v {
                    AbsVal::Window {
                        term,
                        dim: d,
                        full: f,
                        segs: s,
                    } if *term == t && *d == dim && *f == full => segs.extend(s.iter().copied()),
                    AbsVal::Rep(rt) if *rt == t && extent(in_shapes[i], dim) == Some(full) => segs
                        .push(Seg::Piece {
                            start: 0,
                            end: full,
                        }),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                return AbsVal::window(t, dim, full, segs);
            }
        }
    }
    // Concat along a *different* dimension of identically-windowed tensors:
    // the window distributes over the concatenation.
    let mut key: Option<(usize, i64, Vec<Seg>)> = None;
    let mut terms: Vec<TermId> = Vec::new();
    for v in vals {
        match v {
            AbsVal::Window {
                term,
                dim: wdim,
                full,
                segs,
            } if *wdim != dim => {
                match &key {
                    None => key = Some((*wdim, *full, segs.clone())),
                    Some((kd, kf, ks)) if *kd == *wdim && *kf == *full && ks == segs => {}
                    _ => return AbsVal::Unknown,
                }
                terms.push(*term);
            }
            _ => return AbsVal::Unknown,
        }
    }
    match key {
        Some((wdim, full, segs)) => {
            let t = table.fold_concat(&terms, dim);
            AbsVal::window(t, wdim, full, segs)
        }
        None => AbsVal::Unknown,
    }
}

/// The reduced value of an all-reduce's operands (also the virtual first
/// stage of reduce-scatter). Errors when a partial-sum group provably fails
/// to tile its range.
fn reduced_value(table: &mut TermTable, gd: &Graph, node: &Node, vals: &[AbsVal]) -> Transfer {
    if vals.iter().any(|v| matches!(v, AbsVal::Unknown)) {
        return Ok(AbsVal::Unknown);
    }
    if vals.iter().all(|v| matches!(v, AbsVal::Rep(_))) {
        let terms: Vec<TermId> = vals.iter().filter_map(AbsVal::term).collect();
        return Ok(AbsVal::Rep(table.fold_add(&terms)));
    }
    if vals.iter().all(|v| matches!(v, AbsVal::Partial { .. })) {
        let mut pieces: Vec<(i64, i64)> = Vec::new();
        let mut group: Option<(TermId, usize, i64)> = None;
        for v in vals {
            let AbsVal::Partial {
                term,
                start,
                end,
                total,
                axis,
            } = v
            else {
                unreachable!()
            };
            match &group {
                None => group = Some((*term, *axis, *total)),
                Some((t, a, tot)) if t == term && a == axis && tot == total => {}
                // Partials of different quantities: conservatively unknown
                // (summing partials of A and of B is a legal sum of A+B).
                _ => return Ok(AbsVal::Unknown),
            }
            pieces.push((*start, *end));
        }
        let (term, _, total) = group.expect("at least one operand");
        pieces.sort_unstable();
        let mut cursor = 0i64;
        for &(s, e) in &pieces {
            if s != cursor {
                let names: Vec<&str> = node
                    .inputs
                    .iter()
                    .map(|&t| gd.tensor(t).name.as_str())
                    .collect();
                let kind = if s < cursor { "overlap" } else { "gap" };
                return Err(ShardErr::new(
                    crate::codes::PARTIAL_TILE,
                    format!(
                        "{} combines partial sums of {} whose pieces {} do \
                         not tile [0,{total}): {kind} at {}",
                        node.op.name(),
                        table.render(term),
                        pieces
                            .iter()
                            .map(|(s, e)| format!("[{s},{e})"))
                            .collect::<Vec<_>>()
                            .join("+"),
                        cursor.min(s),
                    ),
                )
                .suggest(format!(
                    "each rank must contribute a distinct addend covering \
                     the whole range (operands: {})",
                    names.join(", ")
                )));
            }
            cursor = e;
        }
        if cursor != total {
            return Err(ShardErr::new(
                crate::codes::PARTIAL_TILE,
                format!(
                    "{} combines partial sums of {} covering only [0,{cursor}) \
                     of [0,{total})",
                    node.op.name(),
                    table.render(term),
                ),
            ));
        }
        return Ok(AbsVal::Rep(term));
    }
    Ok(AbsVal::Unknown)
}

fn all_reduce(table: &mut TermTable, gd: &Graph, node: &Node, vals: &[AbsVal]) -> Transfer {
    reduced_value(table, gd, node, vals)
}

#[allow(clippy::too_many_arguments)]
fn reduce_scatter(
    table: &mut TermTable,
    gd: &Graph,
    node: &Node,
    vals: &[AbsVal],
    dim: usize,
    rank: usize,
    world: usize,
    out_shape: &Shape,
) -> Transfer {
    let summed = reduced_value(table, gd, node, vals)?;
    let AbsVal::Rep(t) = summed else {
        return Ok(AbsVal::Unknown);
    };
    let Some(chunk) = extent(out_shape, dim) else {
        return Ok(AbsVal::Unknown);
    };
    let full = chunk * world as i64;
    let start = chunk * rank as i64;
    Ok(AbsVal::window(
        t,
        dim,
        full,
        vec![Seg::Piece {
            start,
            end: start + chunk,
        }],
    ))
}

fn matmul(
    table: &mut TermTable,
    a: &AbsVal,
    b: &AbsVal,
    sa: &Shape,
    sb: &Shape,
    out_shape: &Shape,
) -> Transfer {
    let (ra, rb, ro) = (sa.rank(), sb.rank(), out_shape.rank());
    // Output dim of a window on operand A/B; None = the contraction dim.
    let a_out = |d: usize| -> Option<usize> {
        if d + 1 == ra {
            None
        } else if d + 2 == ra {
            Some(ro - 2)
        } else {
            Some(d + (ro - ra))
        }
    };
    let b_out = |d: usize| -> Option<usize> {
        if d + 2 == rb {
            None
        } else if d + 1 == rb {
            Some(ro - 1)
        } else {
            Some(d + (ro - rb))
        }
    };
    match (a, b) {
        (AbsVal::Unknown, _) | (_, AbsVal::Unknown) => Ok(AbsVal::Unknown),
        // An unreduced partial flowing into a second matmul together with a
        // windowed operand: the contraction consumes an incomplete sum
        // (bug 7's shape-preserving confusion).
        (AbsVal::Partial { term, .. }, AbsVal::Window { .. })
        | (AbsVal::Window { .. }, AbsVal::Partial { term, .. }) => Err(ShardErr::new(
            crate::codes::PARTIAL_CONSUMED,
            format!(
                "matmul consumes an unreduced partial sum of {} together \
                 with a sharded operand",
                table.render(*term)
            ),
        )
        .suggest("insert an all_reduce before the matmul to complete the sum")),
        (AbsVal::Partial { .. }, AbsVal::Partial { .. }) => Ok(AbsVal::Unknown),
        (
            AbsVal::Partial {
                term,
                start,
                end,
                total,
                axis,
            },
            AbsVal::Rep(tb),
        ) => {
            let t = table.op("matmul", vec![*term, *tb], Vec::new());
            Ok(AbsVal::partial(t, *start, *end, *total, *axis))
        }
        (
            AbsVal::Rep(ta),
            AbsVal::Partial {
                term,
                start,
                end,
                total,
                axis,
            },
        ) => {
            let t = table.op("matmul", vec![*ta, *term], Vec::new());
            Ok(AbsVal::partial(t, *start, *end, *total, *axis))
        }
        (AbsVal::Rep(ta), AbsVal::Rep(tb)) => {
            Ok(AbsVal::Rep(table.op("matmul", vec![*ta, *tb], Vec::new())))
        }
        (
            AbsVal::Window {
                term: ta,
                dim,
                full,
                segs,
            },
            AbsVal::Rep(tb),
        ) => Ok(match a_out(*dim) {
            // Rows/batch of A shard the output; zero rows stay zero.
            Some(od) => {
                let t = table.op("matmul", vec![*ta, *tb], Vec::new());
                AbsVal::window(t, od, *full, segs.clone())
            }
            None => AbsVal::Unknown,
        }),
        (
            AbsVal::Rep(ta),
            AbsVal::Window {
                term: tb,
                dim,
                full,
                segs,
            },
        ) => Ok(match b_out(*dim) {
            Some(od) => {
                let t = table.op("matmul", vec![*ta, *tb], Vec::new());
                AbsVal::window(t, od, *full, segs.clone())
            }
            None => AbsVal::Unknown,
        }),
        (
            AbsVal::Window {
                term: ta,
                dim: da,
                full: fa,
                segs: ga,
            },
            AbsVal::Window {
                term: tb,
                dim: db,
                full: fb,
                segs: gb,
            },
        ) => match (a_out(*da), b_out(*db)) {
            (None, None) => {
                // Both operands sharded along the contraction: each rank
                // computes a partial sum over its slice of K.
                match (layout::pure_piece(ga), layout::pure_piece(gb)) {
                    (Some((s1, e1)), Some((s2, e2))) if s1 == s2 && e1 == e2 && fa == fb => {
                        let t = table.op("matmul", vec![*ta, *tb], Vec::new());
                        Ok(AbsVal::partial(t, s1, e1, *fa, CONTRACTION_AXIS))
                    }
                    _ => Ok(AbsVal::Unknown),
                }
            }
            (Some(oa), Some(ob)) if oa == ob && fa == fb && ga == gb => {
                // Identically-windowed batch dimensions.
                let t = table.op("matmul", vec![*ta, *tb], Vec::new());
                Ok(AbsVal::window(t, oa, *fa, ga.clone()))
            }
            _ => Ok(AbsVal::Unknown),
        },
    }
}

fn embedding(table: &mut TermTable, w: &AbsVal, ids: &AbsVal, out_shape: &Shape) -> AbsVal {
    match (w, ids) {
        (AbsVal::Rep(tw), AbsVal::Rep(ti)) => {
            AbsVal::Rep(table.op("embedding", vec![*tw, *ti], Vec::new()))
        }
        (
            AbsVal::Rep(tw),
            AbsVal::Window {
                term,
                dim,
                full,
                segs,
            },
        ) if !layout::has_pad(segs) => {
            // A pad in the ids would look up row 0, which is data; only
            // pure slices of the id tensor slice the lookup result.
            let t = table.op("embedding", vec![*tw, *term], Vec::new());
            AbsVal::window(t, *dim, *full, segs.clone())
        }
        (
            AbsVal::Window {
                term,
                dim,
                full,
                segs,
            },
            AbsVal::Rep(ti),
        ) if *dim == 1 && !layout::has_pad(segs) => {
            // Hidden-sharded embedding table: the lookup is sharded along
            // the last output dimension.
            let t = table.op("embedding", vec![*term, *ti], Vec::new());
            AbsVal::window(t, out_shape.rank() - 1, *full, segs.clone())
        }
        _ => AbsVal::Unknown,
    }
}

fn embedding_grad(table: &mut TermTable, ids: &AbsVal, grad: &AbsVal, vocab: usize) -> AbsVal {
    match (ids, grad) {
        (AbsVal::Rep(ti), AbsVal::Rep(tg)) => {
            AbsVal::Rep(table.op("embedding_grad", vec![*ti, *tg], vec![vocab as i64]))
        }
        (
            AbsVal::Window {
                term: ti,
                dim: di,
                full: fi,
                segs: si,
            },
            AbsVal::Window {
                term: tg,
                dim: dg,
                full: fg,
                segs: sg,
            },
        ) if di == dg && fi == fg && si == sg => {
            // Scatter-add over an aligned slice of the positions is a
            // partial sum of the full gradient. Aligned pads are harmless:
            // id 0 receives a zero gradient row.
            match contiguous_pieces(si) {
                Some((s, e)) => {
                    let t = table.op("embedding_grad", vec![*ti, *tg], vec![vocab as i64]);
                    AbsVal::partial(t, s, e, *fi, *di)
                }
                None => AbsVal::Unknown,
            }
        }
        _ => AbsVal::Unknown,
    }
}

/// LayerNorm / RMSNorm: normalizes the last dimension, so only windows on
/// *other* dimensions (and with no pads — a normalized zero row is not
/// zero) commute with it. Weight/bias must be replicated.
fn norm(table: &mut TermTable, op: &Op, vals: &[AbsVal], x_shape: &Shape) -> AbsVal {
    let params_rep = vals[1..].iter().all(|v| matches!(v, AbsVal::Rep(_)));
    if !params_rep {
        return AbsVal::Unknown;
    }
    let param_terms: Vec<TermId> = vals[1..].iter().filter_map(AbsVal::term).collect();
    match &vals[0] {
        AbsVal::Rep(tx) => {
            let mut children = vec![*tx];
            children.extend(param_terms);
            AbsVal::Rep(table.op(op.name(), children, Vec::new()))
        }
        AbsVal::Window {
            term,
            dim,
            full,
            segs,
        } if *dim + 1 != x_shape.rank() && !layout::has_pad(segs) => {
            let mut children = vec![*term];
            children.extend(param_terms);
            let t = table.op(op.name(), children, Vec::new());
            AbsVal::window(t, *dim, *full, segs.clone())
        }
        _ => AbsVal::Unknown,
    }
}

fn rope(table: &mut TermTable, vals: &[AbsVal], in_shapes: &[&Shape]) -> Transfer {
    let rx = in_shapes[0].rank();
    if vals.iter().all(|v| matches!(v, AbsVal::Rep(_))) {
        let terms: Vec<TermId> = vals.iter().filter_map(AbsVal::term).collect();
        return Ok(AbsVal::Rep(table.op("rope", terms, Vec::new())));
    }
    // Right-align cos/sin dims with x dims.
    let mut windows: Vec<(usize, usize, i64, Vec<Seg>)> = Vec::new(); // (operand, x-dim, full, segs)
    let mut terms: Vec<TermId> = Vec::with_capacity(3);
    for (i, v) in vals.iter().enumerate() {
        match v {
            AbsVal::Unknown | AbsVal::Partial { .. } => return Ok(AbsVal::Unknown),
            AbsVal::Rep(t) => terms.push(*t),
            AbsVal::Window {
                term,
                dim,
                full,
                segs,
            } => {
                let od = dim + (rx - in_shapes[i].rank());
                windows.push((i, od, *full, segs.clone()));
                terms.push(*term);
            }
        }
    }
    let (_, od, full, segs) = windows.first().cloned().expect("non-rep case has a window");
    if windows.iter().any(|(_, d, f, ..)| *d != od || *f != full) {
        return Ok(AbsVal::Unknown);
    }
    if od >= rx - 2 {
        // Sequence or hidden dimension: the rotation pairs x with the
        // cos/sin row for the *same* logical position, so every operand
        // must carry the same window.
        if windows.len() != vals.len() || windows.iter().any(|(_, _, _, s)| *s != segs) {
            let detail = windows
                .iter()
                .map(|(i, _, _, s)| format!("input {}: {}", i, layout::render_segs(s)))
                .collect::<Vec<_>>()
                .join("; ");
            let reps = vals.len() - windows.len();
            let rep_note = if reps > 0 {
                format!("; {reps} operand(s) replicated")
            } else {
                String::new()
            };
            return Err(ShardErr::new(
                crate::codes::WINDOW_MISALIGNED,
                format!(
                    "rope combines mismatched slices along dim {od}: each \
                     rank must apply the cos/sin rows of its own shard \
                     ({detail}{rep_note})"
                ),
            )
            .suggest(
                "slice the rotary tables with this rank's offset so they \
                 align with the activation shard",
            ));
        }
        if od == rx - 1 {
            // Hidden shard: the rotate-half pairing needs an even piece.
            match layout::pure_piece(&segs) {
                Some((s, e)) if (e - s) % 2 == 0 => {}
                _ => return Ok(AbsVal::Unknown),
            }
        }
    } else {
        // Batch window on x; cos/sin have no batch dim and must be windows
        // of nothing — i.e. they must be replicated.
        if windows.len() != 1 || windows[0].0 != 0 {
            return Ok(AbsVal::Unknown);
        }
    }
    let t = table.op("rope", terms, Vec::new());
    Ok(AbsVal::window(t, od, full, segs))
}

fn attention(
    table: &mut TermTable,
    vals: &[AbsVal],
    in_shapes: &[&Shape],
    heads: usize,
    causal: bool,
) -> Transfer {
    let rank = in_shapes[0].rank();
    if vals.iter().all(|v| matches!(v, AbsVal::Rep(_))) {
        let terms: Vec<TermId> = vals.iter().filter_map(AbsVal::term).collect();
        return Ok(AbsVal::Rep(table.op(
            "attention",
            terms,
            vec![heads as i64, causal as i64],
        )));
    }
    let mut windows: Vec<(usize, i64, Vec<Seg>, TermId)> = Vec::new();
    for v in vals {
        match v {
            AbsVal::Window {
                term,
                dim,
                full,
                segs,
            } => windows.push((*dim, *full, segs.clone(), *term)),
            _ => return Ok(AbsVal::Unknown),
        }
    }
    let (dim, full, segs, _) = windows[0].clone();
    if windows.iter().any(|(d, f, ..)| *d != dim || *f != full) {
        return Ok(AbsVal::Unknown);
    }
    if dim + 1 == rank {
        // Head-sharded attention: q/k/v must carry the *same* head range.
        if windows.iter().any(|(_, _, s, _)| *s != segs) {
            let detail = windows
                .iter()
                .enumerate()
                .map(|(i, (_, _, s, _))| format!("input {}: {}", i, layout::render_segs(s)))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(ShardErr::new(
                crate::codes::WINDOW_MISALIGNED,
                format!(
                    "attention combines q/k/v shards covering different \
                     head ranges along dim {dim} ({detail})"
                ),
            )
            .suggest("shard q, k and v with the same per-rank head range"));
        }
        let Some((s, e)) = layout::pure_piece(&segs) else {
            return Ok(AbsVal::Unknown);
        };
        let m = heads as i64;
        if (e - s) % m != 0 {
            return Ok(AbsVal::Unknown);
        }
        let head_size = (e - s) / m;
        if head_size == 0 || s % head_size != 0 || full % head_size != 0 {
            return Ok(AbsVal::Unknown);
        }
        let logical_heads = full / head_size;
        let terms: Vec<TermId> = vals.iter().filter_map(AbsVal::term).collect();
        let t = table.op("attention", terms, vec![logical_heads, causal as i64]);
        Ok(AbsVal::window(t, dim, full, segs))
    } else if dim + 2 < rank {
        // Batch windows: attention is independent per batch element; zero
        // batch slabs stay zero.
        if windows.iter().any(|(_, _, s, _)| *s != segs) {
            return Ok(AbsVal::Unknown);
        }
        let terms: Vec<TermId> = vals.iter().filter_map(AbsVal::term).collect();
        let t = table.op("attention", terms, vec![heads as i64, causal as i64]);
        Ok(AbsVal::window(t, dim, full, segs))
    } else {
        // Sequence-sharded attention does not decompose (causal mixing).
        Ok(AbsVal::Unknown)
    }
}

/// Pads dropped, remaining pieces coalesced; `Some((s, e))` when they form
/// one contiguous range.
fn contiguous_pieces(segs: &[Seg]) -> Option<(i64, i64)> {
    let pieces: Vec<Seg> = segs.iter().copied().filter(|s| !s.is_pad()).collect();
    layout::pure_piece(&layout::coalesce(pieces))
}
