//! Property tests for the shape algebra and the slice-tiling law the
//! distribution linter relies on.

use entangle_ir::{infer_output, DType, Dim, Op, Shape};
use proptest::prelude::*;

/// Arbitrary concrete shapes of rank 0..=4 with dims drawn from a set that
/// exercises both the broadcast-1 rule and genuine conflicts.
fn arb_shape() -> impl Strategy<Value = Shape> {
    proptest::collection::vec(prop_oneof![Just(1i64), Just(2), Just(3), Just(5)], 0..4)
        .prop_map(|dims| Shape::of(&dims))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `broadcast` is commutative, including in *whether* it is defined.
    #[test]
    fn broadcast_is_commutative(a in arb_shape(), b in arb_shape()) {
        prop_assert_eq!(a.broadcast(&b), b.broadcast(&a));
    }

    /// `broadcast` is associative: conflicts survive regrouping, and when
    /// defined both groupings agree dim for dim.
    #[test]
    fn broadcast_is_associative(a in arb_shape(), b in arb_shape(), c in arb_shape()) {
        let left = a.broadcast(&b).and_then(|ab| ab.broadcast(&c));
        let right = b.broadcast(&c).and_then(|bc| a.broadcast(&bc));
        prop_assert_eq!(left, right);
    }

    /// `broadcast` is idempotent and the result absorbs both operands.
    #[test]
    fn broadcast_absorbs_its_operands(a in arb_shape(), b in arb_shape()) {
        if let Some(r) = a.broadcast(&b) {
            prop_assert_eq!(a.broadcast(&r), Some(r.clone()));
            prop_assert_eq!(b.broadcast(&r), Some(r.clone()));
            prop_assert_eq!(r.broadcast(&r), Some(r.clone()));
        }
    }

    /// Slice-tiling exactness: any partition of `[0, size)` into contiguous
    /// pieces concatenates back to the original tensor shape — the law the
    /// linter's E009 sharding check enforces.
    #[test]
    fn slice_tiling_reconstructs_the_tensor(
        size_idx in 0usize..3,
        other in 1i64..5,
        cuts in proptest::collection::vec(1i64..12, 0..3),
    ) {
        let size = [6i64, 8, 12][size_idx];
        let shape = Shape::of(&[size, other]);
        // Sorted, deduped interior cut points partition [0, size).
        let mut bounds: Vec<i64> = cuts.into_iter().map(|c| c % size).filter(|&c| c > 0).collect();
        bounds.push(0);
        bounds.push(size);
        bounds.sort_unstable();
        bounds.dedup();

        // Slice every piece, then infer the shape of the re-concatenation.
        let meta = (shape.clone(), DType::F32);
        let mut pieces: Vec<(Shape, DType)> = Vec::new();
        for w in bounds.windows(2) {
            let op = Op::Slice { dim: 0, start: Dim::from(w[0]), end: Dim::from(w[1]) };
            pieces.push(infer_output(&op, std::slice::from_ref(&meta)).unwrap());
        }
        let mut acc = pieces[0].clone();
        for piece in &pieces[1..] {
            acc = infer_output(&Op::Concat { dim: 0 }, &[acc, piece.clone()]).unwrap();
        }
        prop_assert_eq!(&acc.0, &shape, "tiling with bounds {:?} must be exact", bounds);

        // And a deliberate gap (dropping the first piece when there are
        // several) must *not* reconstruct the shape.
        if pieces.len() > 1 {
            let mut acc = pieces[1].clone();
            for piece in &pieces[2..] {
                acc = infer_output(&Op::Concat { dim: 0 }, &[acc, piece.clone()]).unwrap();
            }
            prop_assert!(acc.0 != shape, "a gapped tiling cannot be exact");
        }
    }
}
