//! Tensor computation-graph IR for ENTANGLE.
//!
//! The paper represents both the sequential model `G_s` and the distributed
//! implementation `G_d` as computation graphs: "a directed acyclic graph
//! whose vertices are operators (i.e., computation or communication kernels)
//! and whose edges are tensors" (§3.2), captured from PyTorch via
//! TorchDynamo in torch.fx form with ATen IR operators, or translated from
//! HLO (§5).
//!
//! This crate is that representation: an ATen-flavoured operator vocabulary
//! ([`Op`]), tensors with (possibly symbolic) shapes and dtypes, a validated
//! DAG ([`Graph`]) built through [`GraphBuilder`] with eager shape
//! inference, and a JSON interchange format playing the role of the
//! paper's fx/HLO bridge (the "377 lines of Python" that translated XLA
//! output into the tool's intermediate format).
//!
//! Collective communication appears as ordinary operators — [`Op::AllReduce`],
//! [`Op::AllGather`], [`Op::ReduceScatter`] — exactly as captured graphs
//! contain communication kernels as vertices.
//!
//! # Examples
//!
//! The sequential side of the paper's Figure 1:
//!
//! ```
//! use entangle_ir::{DType, GraphBuilder, Op};
//!
//! let mut g = GraphBuilder::new("figure1-sequential");
//! let a = g.input("A", &[4, 8], DType::F32);
//! let b = g.input("B", &[8, 4], DType::F32);
//! let e = g.input("E", &[4, 4], DType::F32);
//! let c = g.apply("C", Op::Matmul, &[a, b]).unwrap();
//! let f = g.apply("F", Op::Sub, &[c, e]).unwrap();
//! g.mark_output(f);
//! let graph = g.finish().unwrap();
//! assert_eq!(graph.num_nodes(), 2);
//! assert_eq!(graph.outputs(), &[f]);
//! ```

mod dtype;
mod graph;
mod infer;
pub mod json;
pub mod layout;
mod op;
mod shape;

pub use dtype::DType;
pub use graph::{Graph, GraphBuilder, IrError, Node, NodeId, Tensor, TensorId};
pub use infer::infer_output;
pub use layout::DeclaredLayout;
pub use op::Op;
pub use shape::{Dim, Shape};

#[cfg(test)]
mod tests;
