//! The JSON interchange format, hand-rolled.
//!
//! This module plays the role of the paper's fx/HLO bridge: graphs cross
//! process boundaries as JSON. The build environment has no crates.io
//! access, so instead of serde the format is implemented directly — a small
//! recursive-descent parser, a pretty printer, and a validating
//! graph codec.
//!
//! Operators keep serde's externally-tagged shape: unit variants are bare
//! strings (`"Matmul"`), variants with attributes are single-key objects
//! (`{"Slice": {"dim": 0, "start": 0, "end": 4}}`). Dimensions are plain
//! integers when constant, or `{"constant": c, "terms": [[var, coeff], ...]}`
//! when symbolic.
//!
//! Decoding checks every cross-reference (tensor ids, node ids, producers)
//! before a [`Graph`] is built, so malformed input yields a descriptive
//! [`IrError`] rather than a panic in a later lookup.

use entangle_symbolic::{SymExpr, SymVar};

use crate::dtype::DType;
use crate::graph::{Graph, IrError, Node, NodeId, Tensor, TensorId};
use crate::op::Op;
use crate::shape::{Dim, Shape};

// ---------------------------------------------------------------------------
// JSON value model, parser and printer
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects preserve key order; the interchange formats
/// built on it have no floating-point fields, so numbers are `i64`.
///
/// Public so sibling crates (e.g. the certificate format in
/// `entangle-cert`) can share one hand-rolled, dependency-free codec.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A short name for the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Field lookup on objects (`None` for other variants or missing keys).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => self.parse_null(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key {key:?}")));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so this is valid.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(Json::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(Json::Bool(false))
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_null(&mut self) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Ok(Json::Null)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("the interchange format has no floating-point numbers"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Parses one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Json, indent: usize) {
    const STEP: usize = 2;
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            // Scalars-only arrays print inline; nested structures one-per-line.
            let flat = items
                .iter()
                .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
            if flat {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(out, item, indent);
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&" ".repeat(indent + STEP));
                    write_value(out, item, indent + STEP);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, val, indent + STEP);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints a JSON value.
pub fn to_string_pretty(v: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0);
    out
}

// ---------------------------------------------------------------------------
// Encoding: Graph -> Json
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn encode_expr(e: &SymExpr) -> Json {
    if let Some(c) = e.as_const() {
        return Json::Int(c);
    }
    let terms = e
        .terms()
        .map(|(v, c)| Json::Arr(vec![Json::Int(v.index() as i64), Json::Int(c)]))
        .collect();
    obj(vec![
        ("constant", Json::Int(e.constant_part())),
        ("terms", Json::Arr(terms)),
    ])
}

fn encode_dim(d: &Dim) -> Json {
    encode_expr(d.expr())
}

fn encode_shape(s: &Shape) -> Json {
    Json::Arr(s.dims().iter().map(encode_dim).collect())
}

fn encode_usize(u: usize) -> Json {
    Json::Int(u as i64)
}

fn encode_op(op: &Op) -> Json {
    let unit = |tag: &str| Json::Str(tag.to_owned());
    let tagged =
        |tag: &str, fields: Vec<(&str, Json)>| Json::Obj(vec![(tag.to_owned(), obj(fields))]);
    match op {
        Op::Add => unit("Add"),
        Op::Sub => unit("Sub"),
        Op::Mul => unit("Mul"),
        Op::Div => unit("Div"),
        Op::Maximum => unit("Maximum"),
        Op::Neg => unit("Neg"),
        Op::Exp => unit("Exp"),
        Op::Sqrt => unit("Sqrt"),
        Op::Rsqrt => unit("Rsqrt"),
        Op::Tanh => unit("Tanh"),
        Op::Gelu => unit("Gelu"),
        Op::Silu => unit("Silu"),
        Op::Relu => unit("Relu"),
        Op::Sigmoid => unit("Sigmoid"),
        Op::Step => unit("Step"),
        Op::GeluGrad => unit("GeluGrad"),
        Op::SiluGrad => unit("SiluGrad"),
        Op::OnesLike => unit("OnesLike"),
        Op::Cos => unit("Cos"),
        Op::Sin => unit("Sin"),
        Op::ScalarMul { numer, denom } => tagged(
            "ScalarMul",
            vec![("numer", Json::Int(*numer)), ("denom", Json::Int(*denom))],
        ),
        Op::SumDim { dim, keepdim } => tagged(
            "SumDim",
            vec![
                ("dim", encode_usize(*dim)),
                ("keepdim", Json::Bool(*keepdim)),
            ],
        ),
        Op::MeanDim { dim, keepdim } => tagged(
            "MeanDim",
            vec![
                ("dim", encode_usize(*dim)),
                ("keepdim", Json::Bool(*keepdim)),
            ],
        ),
        Op::SumAll => unit("SumAll"),
        Op::MeanAll => unit("MeanAll"),
        Op::Softmax { dim } => tagged("Softmax", vec![("dim", encode_usize(*dim))]),
        Op::Identity => unit("Identity"),
        Op::Reshape { shape } => tagged(
            "Reshape",
            vec![("shape", Json::Arr(shape.iter().map(encode_dim).collect()))],
        ),
        Op::Transpose { d0, d1 } => tagged(
            "Transpose",
            vec![("d0", encode_usize(*d0)), ("d1", encode_usize(*d1))],
        ),
        Op::Permute { perm } => tagged(
            "Permute",
            vec![(
                "perm",
                Json::Arr(perm.iter().map(|&p| encode_usize(p)).collect()),
            )],
        ),
        Op::Slice { dim, start, end } => tagged(
            "Slice",
            vec![
                ("dim", encode_usize(*dim)),
                ("start", encode_dim(start)),
                ("end", encode_dim(end)),
            ],
        ),
        Op::Concat { dim } => tagged("Concat", vec![("dim", encode_usize(*dim))]),
        Op::Pad { dim, before, after } => tagged(
            "Pad",
            vec![
                ("dim", encode_usize(*dim)),
                ("before", encode_dim(before)),
                ("after", encode_dim(after)),
            ],
        ),
        Op::Matmul => unit("Matmul"),
        Op::Embedding => unit("Embedding"),
        Op::EmbeddingGrad { vocab } => {
            tagged("EmbeddingGrad", vec![("vocab", encode_usize(*vocab))])
        }
        Op::LayerNorm => unit("LayerNorm"),
        Op::RmsNorm => unit("RmsNorm"),
        Op::Rope => unit("Rope"),
        Op::Attention { heads, causal } => tagged(
            "Attention",
            vec![
                ("heads", encode_usize(*heads)),
                ("causal", Json::Bool(*causal)),
            ],
        ),
        Op::MseLoss => unit("MseLoss"),
        Op::CrossEntropy => unit("CrossEntropy"),
        Op::AllReduce => unit("AllReduce"),
        Op::AllGather { dim } => tagged("AllGather", vec![("dim", encode_usize(*dim))]),
        Op::ReduceScatter { dim, rank, world } => tagged(
            "ReduceScatter",
            vec![
                ("dim", encode_usize(*dim)),
                ("rank", encode_usize(*rank)),
                ("world", encode_usize(*world)),
            ],
        ),
    }
}

fn encode_dtype(d: DType) -> Json {
    Json::Str(
        match d {
            DType::F32 => "F32",
            DType::I64 => "I64",
            DType::Bool => "Bool",
        }
        .to_owned(),
    )
}

/// Encodes a graph into the interchange format.
pub(crate) fn encode_graph(g: &Graph) -> String {
    let tensors = g
        .tensors()
        .iter()
        .map(|t| {
            obj(vec![
                ("id", Json::Int(t.id.0 as i64)),
                ("name", Json::Str(t.name.clone())),
                ("shape", encode_shape(&t.shape)),
                ("dtype", encode_dtype(t.dtype)),
                (
                    "producer",
                    match t.producer {
                        Some(n) => Json::Int(n.0 as i64),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let nodes = g
        .nodes()
        .iter()
        .map(|n| {
            obj(vec![
                ("id", Json::Int(n.id.0 as i64)),
                ("name", Json::Str(n.name.clone())),
                ("op", encode_op(&n.op)),
                (
                    "inputs",
                    Json::Arr(n.inputs.iter().map(|t| Json::Int(t.0 as i64)).collect()),
                ),
                ("output", Json::Int(n.output.0 as i64)),
            ])
        })
        .collect();
    let ids = |list: &[TensorId]| Json::Arr(list.iter().map(|t| Json::Int(t.0 as i64)).collect());
    let doc = obj(vec![
        ("name", Json::Str(g.name().to_owned())),
        ("tensors", Json::Arr(tensors)),
        ("nodes", Json::Arr(nodes)),
        ("inputs", ids(g.inputs())),
        ("outputs", ids(g.outputs())),
    ]);
    to_string_pretty(&doc)
}

// ---------------------------------------------------------------------------
// Decoding: Json -> Graph (with reference validation)
// ---------------------------------------------------------------------------

fn want<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing field {key:?}"))
}

fn as_str<'a>(v: &'a Json, ctx: &str) -> Result<&'a str, String> {
    match v {
        Json::Str(s) => Ok(s),
        other => Err(format!("{ctx}: expected string, found {}", other.kind())),
    }
}

fn as_int(v: &Json, ctx: &str) -> Result<i64, String> {
    match v {
        Json::Int(n) => Ok(*n),
        other => Err(format!("{ctx}: expected number, found {}", other.kind())),
    }
}

fn as_bool(v: &Json, ctx: &str) -> Result<bool, String> {
    match v {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("{ctx}: expected bool, found {}", other.kind())),
    }
}

fn as_arr<'a>(v: &'a Json, ctx: &str) -> Result<&'a [Json], String> {
    match v {
        Json::Arr(items) => Ok(items),
        other => Err(format!("{ctx}: expected array, found {}", other.kind())),
    }
}

fn as_usize(v: &Json, ctx: &str) -> Result<usize, String> {
    let n = as_int(v, ctx)?;
    usize::try_from(n).map_err(|_| format!("{ctx}: expected non-negative number, found {n}"))
}

fn as_u32(v: &Json, ctx: &str) -> Result<u32, String> {
    let n = as_int(v, ctx)?;
    u32::try_from(n).map_err(|_| format!("{ctx}: id {n} out of range"))
}

fn decode_expr(v: &Json, ctx: &str) -> Result<SymExpr, String> {
    match v {
        Json::Int(c) => Ok(SymExpr::constant(*c)),
        Json::Obj(_) => {
            let constant = as_int(want(v, "constant", ctx)?, ctx)?;
            let mut terms = Vec::new();
            for (i, t) in as_arr(want(v, "terms", ctx)?, ctx)?.iter().enumerate() {
                let pair = as_arr(t, ctx)?;
                if pair.len() != 2 {
                    return Err(format!("{ctx}: term {i} must be a [var, coeff] pair"));
                }
                let var = as_u32(&pair[0], ctx)?;
                let coeff = as_int(&pair[1], ctx)?;
                terms.push((SymVar::from_index(var), coeff));
            }
            Ok(SymExpr::from_terms(constant, terms))
        }
        other => Err(format!(
            "{ctx}: expected dimension (number or object), found {}",
            other.kind()
        )),
    }
}

fn decode_dim(v: &Json, ctx: &str) -> Result<Dim, String> {
    decode_expr(v, ctx).map(Dim)
}

fn decode_shape(v: &Json, ctx: &str) -> Result<Shape, String> {
    let dims = as_arr(v, ctx)?
        .iter()
        .map(|d| decode_dim(d, ctx))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Shape(dims))
}

fn decode_dtype(v: &Json, ctx: &str) -> Result<DType, String> {
    match as_str(v, ctx)? {
        "F32" => Ok(DType::F32),
        "I64" => Ok(DType::I64),
        "Bool" => Ok(DType::Bool),
        other => Err(format!("{ctx}: unknown dtype {other:?}")),
    }
}

fn decode_op(v: &Json, ctx: &str) -> Result<Op, String> {
    let unit_of = |tag: &str| -> Option<Op> {
        Some(match tag {
            "Add" => Op::Add,
            "Sub" => Op::Sub,
            "Mul" => Op::Mul,
            "Div" => Op::Div,
            "Maximum" => Op::Maximum,
            "Neg" => Op::Neg,
            "Exp" => Op::Exp,
            "Sqrt" => Op::Sqrt,
            "Rsqrt" => Op::Rsqrt,
            "Tanh" => Op::Tanh,
            "Gelu" => Op::Gelu,
            "Silu" => Op::Silu,
            "Relu" => Op::Relu,
            "Sigmoid" => Op::Sigmoid,
            "Step" => Op::Step,
            "GeluGrad" => Op::GeluGrad,
            "SiluGrad" => Op::SiluGrad,
            "OnesLike" => Op::OnesLike,
            "Cos" => Op::Cos,
            "Sin" => Op::Sin,
            "SumAll" => Op::SumAll,
            "MeanAll" => Op::MeanAll,
            "Identity" => Op::Identity,
            "Matmul" => Op::Matmul,
            "Embedding" => Op::Embedding,
            "LayerNorm" => Op::LayerNorm,
            "RmsNorm" => Op::RmsNorm,
            "Rope" => Op::Rope,
            "MseLoss" => Op::MseLoss,
            "CrossEntropy" => Op::CrossEntropy,
            "AllReduce" => Op::AllReduce,
            _ => return None,
        })
    };
    match v {
        Json::Str(tag) => {
            unit_of(tag).ok_or_else(|| format!("{ctx}: {tag:?} is not a unit operator"))
        }
        Json::Obj(fields) if fields.len() == 1 => {
            let (tag, body) = &fields[0];
            let ctx = &format!("{ctx}.{tag}");
            match tag.as_str() {
                "ScalarMul" => Ok(Op::ScalarMul {
                    numer: as_int(want(body, "numer", ctx)?, ctx)?,
                    denom: as_int(want(body, "denom", ctx)?, ctx)?,
                }),
                "SumDim" => Ok(Op::SumDim {
                    dim: as_usize(want(body, "dim", ctx)?, ctx)?,
                    keepdim: as_bool(want(body, "keepdim", ctx)?, ctx)?,
                }),
                "MeanDim" => Ok(Op::MeanDim {
                    dim: as_usize(want(body, "dim", ctx)?, ctx)?,
                    keepdim: as_bool(want(body, "keepdim", ctx)?, ctx)?,
                }),
                "Softmax" => Ok(Op::Softmax {
                    dim: as_usize(want(body, "dim", ctx)?, ctx)?,
                }),
                "Reshape" => {
                    let dims = as_arr(want(body, "shape", ctx)?, ctx)?
                        .iter()
                        .map(|d| decode_dim(d, ctx))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Op::Reshape { shape: dims })
                }
                "Transpose" => Ok(Op::Transpose {
                    d0: as_usize(want(body, "d0", ctx)?, ctx)?,
                    d1: as_usize(want(body, "d1", ctx)?, ctx)?,
                }),
                "Permute" => {
                    let perm = as_arr(want(body, "perm", ctx)?, ctx)?
                        .iter()
                        .map(|p| as_usize(p, ctx))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Op::Permute { perm })
                }
                "Slice" => Ok(Op::Slice {
                    dim: as_usize(want(body, "dim", ctx)?, ctx)?,
                    start: decode_dim(want(body, "start", ctx)?, ctx)?,
                    end: decode_dim(want(body, "end", ctx)?, ctx)?,
                }),
                "Concat" => Ok(Op::Concat {
                    dim: as_usize(want(body, "dim", ctx)?, ctx)?,
                }),
                "Pad" => Ok(Op::Pad {
                    dim: as_usize(want(body, "dim", ctx)?, ctx)?,
                    before: decode_dim(want(body, "before", ctx)?, ctx)?,
                    after: decode_dim(want(body, "after", ctx)?, ctx)?,
                }),
                "EmbeddingGrad" => Ok(Op::EmbeddingGrad {
                    vocab: as_usize(want(body, "vocab", ctx)?, ctx)?,
                }),
                "Attention" => Ok(Op::Attention {
                    heads: as_usize(want(body, "heads", ctx)?, ctx)?,
                    causal: as_bool(want(body, "causal", ctx)?, ctx)?,
                }),
                "AllGather" => Ok(Op::AllGather {
                    dim: as_usize(want(body, "dim", ctx)?, ctx)?,
                }),
                "ReduceScatter" => Ok(Op::ReduceScatter {
                    dim: as_usize(want(body, "dim", ctx)?, ctx)?,
                    rank: as_usize(want(body, "rank", ctx)?, ctx)?,
                    world: as_usize(want(body, "world", ctx)?, ctx)?,
                }),
                other => Err(format!("{ctx}: unknown operator {other:?}")),
            }
        }
        other => Err(format!(
            "{ctx}: expected operator (string or single-key object), found {}",
            other.kind()
        )),
    }
}

/// Decodes the interchange format into a [`Graph`].
///
/// Every id cross-reference is range-checked here; [`Graph::from_json`]
/// additionally runs full [`Graph::validate`] afterwards.
pub(crate) fn decode_graph(text: &str) -> Result<Graph, IrError> {
    decode_graph_inner(text).map_err(IrError::Serde)
}

fn decode_graph_inner(text: &str) -> Result<Graph, String> {
    let doc = parse(text)?;
    let name = as_str(want(&doc, "name", "graph")?, "graph.name")?.to_owned();

    let tensor_items = as_arr(want(&doc, "tensors", "graph")?, "graph.tensors")?;
    let node_items = as_arr(want(&doc, "nodes", "graph")?, "graph.nodes")?;
    let n_tensors = tensor_items.len();
    let n_nodes = node_items.len();

    let check_tensor_ref = |id: u32, ctx: &str| -> Result<TensorId, String> {
        if (id as usize) < n_tensors {
            Ok(TensorId(id))
        } else {
            Err(format!(
                "{ctx}: tensor id {id} out of range (graph has {n_tensors} tensors)"
            ))
        }
    };
    let check_node_ref = |id: u32, ctx: &str| -> Result<NodeId, String> {
        if (id as usize) < n_nodes {
            Ok(NodeId(id))
        } else {
            Err(format!(
                "{ctx}: node id {id} out of range (graph has {n_nodes} nodes)"
            ))
        }
    };

    let mut tensors = Vec::with_capacity(n_tensors);
    for (i, t) in tensor_items.iter().enumerate() {
        let ctx = format!("tensor[{i}]");
        let id = as_u32(want(t, "id", &ctx)?, &ctx)?;
        if id as usize != i {
            return Err(format!("{ctx}: id {id} does not match its position"));
        }
        let tname = as_str(want(t, "name", &ctx)?, &ctx)?.to_owned();
        if tensors.iter().any(|prev: &Tensor| prev.name == tname) {
            return Err(format!("{ctx}: duplicate tensor name {tname:?}"));
        }
        let shape = decode_shape(want(t, "shape", &ctx)?, &ctx)?;
        let dtype = decode_dtype(want(t, "dtype", &ctx)?, &ctx)?;
        let producer = match want(t, "producer", &ctx)? {
            Json::Null => None,
            v => Some(check_node_ref(as_u32(v, &ctx)?, &ctx)?),
        };
        tensors.push(Tensor {
            id: TensorId(id),
            name: tname,
            shape,
            dtype,
            producer,
        });
    }

    let mut nodes = Vec::with_capacity(n_nodes);
    for (i, n) in node_items.iter().enumerate() {
        let ctx = format!("node[{i}]");
        let id = as_u32(want(n, "id", &ctx)?, &ctx)?;
        if id as usize != i {
            return Err(format!("{ctx}: id {id} does not match its position"));
        }
        let nname = as_str(want(n, "name", &ctx)?, &ctx)?.to_owned();
        let op = decode_op(want(n, "op", &ctx)?, &format!("{ctx}.op"))?;
        let inputs = as_arr(want(n, "inputs", &ctx)?, &ctx)?
            .iter()
            .map(|v| check_tensor_ref(as_u32(v, &ctx)?, &ctx))
            .collect::<Result<Vec<_>, _>>()?;
        let output = check_tensor_ref(as_u32(want(n, "output", &ctx)?, &ctx)?, &ctx)?;
        nodes.push(Node {
            id: NodeId(id),
            name: nname,
            op,
            inputs,
            output,
        });
    }

    let id_list = |key: &str| -> Result<Vec<TensorId>, String> {
        as_arr(want(&doc, key, "graph")?, key)?
            .iter()
            .map(|v| check_tensor_ref(as_u32(v, key)?, key))
            .collect()
    };
    let inputs = id_list("inputs")?;
    let outputs = id_list("outputs")?;

    Ok(Graph::from_parts_unchecked(
        name, tensors, nodes, inputs, outputs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_values() {
        let text = r#"{"a": [1, -2, 3], "b": "x\"y", "c": null, "d": true, "e": {}}"#;
        let v = parse(text).unwrap();
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn op_codec_round_trips() {
        let ops = vec![
            Op::Matmul,
            Op::ScalarMul { numer: 3, denom: 4 },
            Op::SumDim {
                dim: 1,
                keepdim: true,
            },
            Op::Slice {
                dim: 0,
                start: Dim::from(0),
                end: Dim::from(4),
            },
            Op::Reshape {
                shape: vec![Dim::from(2), Dim::from(6)],
            },
            Op::Permute { perm: vec![1, 0] },
            Op::ReduceScatter {
                dim: 1,
                rank: 0,
                world: 2,
            },
            Op::Attention {
                heads: 4,
                causal: true,
            },
        ];
        for op in ops {
            let enc = encode_op(&op);
            let dec = decode_op(&enc, "op").unwrap();
            assert_eq!(dec, op);
        }
    }

    #[test]
    fn unknown_operator_is_rejected() {
        assert!(decode_op(&Json::Str("Matmul2".into()), "op").is_err());
        // A unit tag where an attribute-carrying op was expected.
        assert!(decode_op(&Json::Str("Softmax".into()), "op").is_err());
    }
}
