//! Shape and dtype inference for each operator.
//!
//! Validation rules follow the input constraints of the corresponding ATen
//! operators — the same source the paper used when writing lemmas ("the
//! lemmas we implemented de novo were based on input constraints specified
//! in the PyTorch documentation", §5).

use entangle_symbolic::SymExpr;

use crate::dtype::DType;
use crate::graph::IrError;
use crate::op::Op;
use crate::shape::{Dim, Shape};

/// Infers the output `(shape, dtype)` of `op` applied to `inputs`.
///
/// # Errors
///
/// Returns [`IrError::Shape`] when the inputs violate the operator's
/// constraints (wrong arity, mismatched dims, invalid attributes).
pub fn infer_output(op: &Op, inputs: &[(Shape, DType)]) -> Result<(Shape, DType), IrError> {
    let err = |msg: String| Err(IrError::Shape(format!("{op}: {msg}")));
    if let Some(arity) = op.arity() {
        if inputs.len() != arity {
            return err(format!("expected {arity} inputs, got {}", inputs.len()));
        }
    } else if inputs.is_empty() {
        return err("variadic operator needs at least one input".into());
    }

    match op {
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Maximum => {
            let (a, da) = &inputs[0];
            let (b, db) = &inputs[1];
            if da != db {
                return err(format!("dtype mismatch {da} vs {db}"));
            }
            match a.broadcast(b) {
                Some(s) => Ok((s, *da)),
                None => err(format!("shapes {a} and {b} do not broadcast")),
            }
        }
        Op::Neg
        | Op::Exp
        | Op::Sqrt
        | Op::Rsqrt
        | Op::Tanh
        | Op::Gelu
        | Op::Silu
        | Op::Relu
        | Op::Sigmoid
        | Op::Cos
        | Op::Sin
        | Op::Step
        | Op::GeluGrad
        | Op::SiluGrad
        | Op::OnesLike
        | Op::Identity => Ok(inputs[0].clone()),
        Op::ScalarMul { denom, .. } => {
            if *denom == 0 {
                return err("zero denominator".into());
            }
            Ok(inputs[0].clone())
        }
        Op::SumDim { dim, keepdim } | Op::MeanDim { dim, keepdim } => {
            let (s, d) = &inputs[0];
            if *dim >= s.rank() {
                return err(format!("dim {dim} out of range for {s}"));
            }
            let mut dims = s.dims().to_vec();
            if *keepdim {
                dims[*dim] = Dim::from(1i64);
            } else {
                dims.remove(*dim);
            }
            Ok((Shape(dims), *d))
        }
        Op::SumAll | Op::MeanAll => Ok((Shape::scalar(), inputs[0].1)),
        Op::Softmax { dim } => {
            let (s, d) = &inputs[0];
            if *dim >= s.rank() {
                return err(format!("dim {dim} out of range for {s}"));
            }
            Ok((s.clone(), *d))
        }
        Op::Reshape { shape } => {
            let (s, d) = &inputs[0];
            let target = Shape(shape.clone());
            match (s.numel(), target.numel()) {
                (Some(a), Some(b)) if a != b => {
                    return err(format!("reshape {s} -> {target} changes element count"));
                }
                _ => {}
            }
            Ok((target, *d))
        }
        Op::Transpose { d0, d1 } => {
            let (s, d) = &inputs[0];
            if *d0 >= s.rank() || *d1 >= s.rank() {
                return err(format!("dims ({d0},{d1}) out of range for {s}"));
            }
            let mut dims = s.dims().to_vec();
            dims.swap(*d0, *d1);
            Ok((Shape(dims), *d))
        }
        Op::Permute { perm } => {
            let (s, d) = &inputs[0];
            if perm.len() != s.rank() {
                return err(format!("perm {perm:?} has wrong length for {s}"));
            }
            let mut seen = vec![false; perm.len()];
            for &p in perm {
                if p >= perm.len() || seen[p] {
                    return err(format!("invalid permutation {perm:?}"));
                }
                seen[p] = true;
            }
            let dims = perm.iter().map(|&p| s.dim(p).clone()).collect();
            Ok((Shape(dims), *d))
        }
        Op::Slice { dim, start, end } => {
            let (s, d) = &inputs[0];
            if *dim >= s.rank() {
                return err(format!("dim {dim} out of range for {s}"));
            }
            if let (Some(st), Some(en)) = (start.as_const(), end.as_const()) {
                if st < 0 || en < st {
                    return err(format!("invalid bounds [{st}, {en})"));
                }
                if let Some(size) = s.dim(*dim).as_const() {
                    if en > size {
                        return err(format!("slice end {en} exceeds dim size {size}"));
                    }
                }
            }
            let len = Dim(end.0.clone() - start.0.clone());
            Ok((s.with_dim(*dim, len), *d))
        }
        Op::Concat { dim } => {
            let (first, d) = &inputs[0];
            if *dim >= first.rank() {
                return err(format!("dim {dim} out of range for {first}"));
            }
            let mut total = SymExpr::zero();
            for (s, dt) in inputs {
                if dt != d {
                    return err("dtype mismatch among concat inputs".into());
                }
                if s.rank() != first.rank() {
                    return err(format!("rank mismatch {s} vs {first}"));
                }
                for (i, (a, b)) in s.dims().iter().zip(first.dims()).enumerate() {
                    if i != *dim && a != b {
                        return err(format!("non-concat dim {i} mismatch: {s} vs {first}"));
                    }
                }
                total = total + s.dim(*dim).0.clone();
            }
            Ok((first.with_dim(*dim, Dim(total)), *d))
        }
        Op::Pad { dim, before, after } => {
            let (s, d) = &inputs[0];
            if *dim >= s.rank() {
                return err(format!("dim {dim} out of range for {s}"));
            }
            if let (Some(b), Some(a)) = (before.as_const(), after.as_const()) {
                if b < 0 || a < 0 {
                    return err("negative padding".into());
                }
            }
            let new = Dim(s.dim(*dim).0.clone() + before.0.clone() + after.0.clone());
            Ok((s.with_dim(*dim, new), *d))
        }
        Op::Matmul => {
            let (a, da) = &inputs[0];
            let (b, db) = &inputs[1];
            if da != db {
                return err(format!("dtype mismatch {da} vs {db}"));
            }
            if a.rank() < 2 || b.rank() < 2 {
                return err(format!("matmul needs rank >= 2, got {a} x {b}"));
            }
            let (am, ak) = (a.dim(a.rank() - 2), a.dim(a.rank() - 1));
            let (bk, bn) = (b.dim(b.rank() - 2), b.dim(b.rank() - 1));
            if ak != bk {
                return err(format!("inner dims differ: {a} x {b}"));
            }
            let abatch = Shape(a.dims()[..a.rank() - 2].to_vec());
            let bbatch = Shape(b.dims()[..b.rank() - 2].to_vec());
            let Some(batch) = abatch.broadcast(&bbatch) else {
                return err(format!("batch dims do not broadcast: {a} x {b}"));
            };
            let mut dims = batch.0;
            dims.push(am.clone());
            dims.push(bn.clone());
            Ok((Shape(dims), *da))
        }
        Op::Embedding => {
            let (w, dw) = &inputs[0];
            let (ids, dids) = &inputs[1];
            if w.rank() != 2 {
                return err(format!("weight must be rank 2, got {w}"));
            }
            if *dids != DType::I64 {
                return err(format!("indices must be i64, got {dids}"));
            }
            let mut dims = ids.dims().to_vec();
            dims.push(w.dim(1).clone());
            Ok((Shape(dims), *dw))
        }
        Op::EmbeddingGrad { vocab } => {
            let (ids, dids) = &inputs[0];
            let (grad, dg) = &inputs[1];
            if *dids != DType::I64 {
                return err(format!("indices must be i64, got {dids}"));
            }
            if grad.rank() != ids.rank() + 1 {
                return err(format!("grad rank must be ids rank + 1: {grad} vs {ids}"));
            }
            if grad.dims()[..grad.rank() - 1] != ids.dims()[..] {
                return err(format!("grad batch dims mismatch: {grad} vs {ids}"));
            }
            let h = grad.dim(grad.rank() - 1).clone();
            Ok((Shape(vec![Dim::from(*vocab as i64), h]), *dg))
        }
        Op::LayerNorm => {
            let (x, d) = &inputs[0];
            let (w, _) = &inputs[1];
            let (b, _) = &inputs[2];
            if x.rank() == 0 {
                return err("layer_norm input must have rank >= 1".into());
            }
            let last = x.dim(x.rank() - 1);
            if w.rank() != 1 || w.dim(0) != last || b.rank() != 1 || b.dim(0) != last {
                return err(format!(
                    "weight/bias must be rank-1 of size {last}, got {w} and {b}"
                ));
            }
            Ok((x.clone(), *d))
        }
        Op::RmsNorm => {
            let (x, d) = &inputs[0];
            let (w, _) = &inputs[1];
            if x.rank() == 0 {
                return err("rms_norm input must have rank >= 1".into());
            }
            let last = x.dim(x.rank() - 1);
            if w.rank() != 1 || w.dim(0) != last {
                return err(format!("weight must be rank-1 of size {last}, got {w}"));
            }
            Ok((x.clone(), *d))
        }
        Op::Rope => {
            let (x, d) = &inputs[0];
            let (cos, _) = &inputs[1];
            let (sin, _) = &inputs[2];
            if x.rank() < 2 {
                return err("rope input must have rank >= 2".into());
            }
            if cos != sin {
                return err(format!("cos/sin shape mismatch: {cos} vs {sin}"));
            }
            // cos/sin must be [seq, head] matching x's trailing dims.
            if cos.rank() != 2 {
                return err(format!("cos/sin must be rank 2, got {cos}"));
            }
            let (xs, xh) = (x.dim(x.rank() - 2), x.dim(x.rank() - 1));
            if cos.dim(0) != xs || cos.dim(1) != xh {
                return err(format!("cos table {cos} does not match input {x}"));
            }
            Ok((x.clone(), *d))
        }
        Op::Attention { heads, .. } => {
            let (q, d) = &inputs[0];
            let (k, _) = &inputs[1];
            let (v, _) = &inputs[2];
            if q.rank() < 2 {
                return err("attention inputs must have rank >= 2".into());
            }
            if k != q || v != q {
                return err(format!("q/k/v shapes must match: {q} vs {k} vs {v}"));
            }
            if *heads == 0 {
                return err("heads must be positive".into());
            }
            if let Some(h) = q.dim(q.rank() - 1).as_const() {
                if h % (*heads as i64) != 0 {
                    return err(format!("hidden {h} not divisible by {heads} heads"));
                }
            }
            Ok((q.clone(), *d))
        }
        Op::MseLoss => {
            let (a, d) = &inputs[0];
            let (b, _) = &inputs[1];
            if a != b {
                return err(format!("pred/target shape mismatch: {a} vs {b}"));
            }
            Ok((Shape::scalar(), *d))
        }
        Op::CrossEntropy => {
            let (logits, d) = &inputs[0];
            let (targets, dt) = &inputs[1];
            if logits.rank() != targets.rank() + 1 {
                return err(format!(
                    "logits rank must be targets rank + 1: {logits} vs {targets}"
                ));
            }
            if *dt != DType::I64 {
                return err(format!("targets must be i64, got {dt}"));
            }
            if logits.dims()[..logits.rank() - 1] != targets.dims()[..] {
                return err(format!("batch dims mismatch: {logits} vs {targets}"));
            }
            Ok((Shape::scalar(), *d))
        }
        Op::AllReduce => {
            let (first, d) = &inputs[0];
            for (s, _) in inputs {
                if s != first {
                    return err(format!("all_reduce inputs differ: {s} vs {first}"));
                }
            }
            Ok((first.clone(), *d))
        }
        Op::AllGather { dim } => {
            // Same combination rule as concat, but inputs must in addition
            // share the gathered dimension size (the constraint bug 3's
            // padding was trying to satisfy).
            let (first, _) = &inputs[0];
            if *dim >= first.rank() {
                return err(format!("dim {dim} out of range for {first}"));
            }
            for (s, _) in inputs {
                if s != first {
                    return err(format!("all_gather inputs differ: {s} vs {first}"));
                }
            }
            infer_output(&Op::Concat { dim: *dim }, inputs)
        }
        Op::ReduceScatter { dim, rank, world } => {
            let (first, d) = &inputs[0];
            if inputs.len() != *world {
                return err(format!(
                    "reduce_scatter expects {world} inputs, got {}",
                    inputs.len()
                ));
            }
            if *rank >= *world {
                return err(format!("rank {rank} out of range for world {world}"));
            }
            if *dim >= first.rank() {
                return err(format!("dim {dim} out of range for {first}"));
            }
            for (s, _) in inputs {
                if s != first {
                    return err(format!("reduce_scatter inputs differ: {s} vs {first}"));
                }
            }
            if let Some(size) = first.dim(*dim).as_const() {
                if size % (*world as i64) != 0 {
                    return err(format!(
                        "dim {dim} of size {size} not divisible by world {world}"
                    ));
                }
                let chunk = size / (*world as i64);
                Ok((first.with_dim(*dim, Dim::from(chunk)), *d))
            } else {
                err("reduce_scatter over symbolic dim not supported".into())
            }
        }
    }
}
