//! Shard-layout metadata: the vocabulary shared between the distribution
//! strategies in `entangle-parallel` (which *declare* how they lay tensors
//! out) and the `entangle-shard` abstract interpreter (which *infers*
//! layouts and cross-checks the declarations).
//!
//! A distributed tensor's relationship to a logical tensor along one
//! dimension is described by a list of [`Seg`]ments: the tensor is the
//! concatenation of the segments, where a [`Seg::Piece`] is a contiguous
//! slice `[start, end)` of the logical dimension and a [`Seg::Pad`] is a
//! run of zeros (the padding real frameworks insert so equal-shape
//! collectives apply). This single representation covers classic sharding
//! (`one piece`), padded sharding (`piece + pad`), halo/offset windows
//! (`overlapping pieces across ranks`), and gather results (`many pieces`).

use std::fmt;

/// One segment of a windowed dimension: either a contiguous piece of the
/// logical tensor or a run of padding zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seg {
    /// `len` zero elements inserted by padding.
    Pad(i64),
    /// The logical elements `[start, end)`.
    Piece {
        /// Inclusive start in logical coordinates.
        start: i64,
        /// Exclusive end in logical coordinates.
        end: i64,
    },
}

impl Seg {
    /// The number of elements the segment occupies.
    pub fn len(&self) -> i64 {
        match self {
            Seg::Pad(n) => *n,
            Seg::Piece { start, end } => end - start,
        }
    }

    /// `true` for zero-length segments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for padding segments.
    pub fn is_pad(&self) -> bool {
        matches!(self, Seg::Pad(_))
    }
}

impl fmt::Display for Seg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Seg::Pad(n) => write!(f, "pad({n})"),
            Seg::Piece { start, end } => write!(f, "[{start},{end})"),
        }
    }
}

/// Total element count of a segment list.
pub fn segs_len(segs: &[Seg]) -> i64 {
    segs.iter().map(Seg::len).sum()
}

/// `true` when any segment is padding.
pub fn has_pad(segs: &[Seg]) -> bool {
    segs.iter().any(Seg::is_pad)
}

/// Normalizes a segment list: drops empty segments, merges adjacent pads,
/// and merges adjacent pieces that are contiguous in logical coordinates
/// (`[a,b)` followed by `[b,c)` becomes `[a,c)`).
pub fn coalesce(segs: Vec<Seg>) -> Vec<Seg> {
    let mut out: Vec<Seg> = Vec::with_capacity(segs.len());
    for seg in segs {
        if seg.is_empty() {
            continue;
        }
        match (out.last_mut(), seg) {
            (Some(Seg::Pad(a)), Seg::Pad(b)) => *a += b,
            (Some(Seg::Piece { end, .. }), Seg::Piece { start: s2, end: e2 }) if *end == s2 => {
                *end = e2;
            }
            (_, seg) => out.push(seg),
        }
    }
    out
}

/// If the list is exactly one padding-free piece, its `(start, end)`.
pub fn pure_piece(segs: &[Seg]) -> Option<(i64, i64)> {
    match segs {
        [Seg::Piece { start, end }] => Some((*start, *end)),
        _ => None,
    }
}

/// Renders a segment list as `seg+seg+…`.
pub fn render_segs(segs: &[Seg]) -> String {
    segs.iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join("+")
}

/// The layout a distribution strategy *declares* for a tensor it creates —
/// recorded by the `entangle-parallel` builders and cross-checked against
/// the inferred layout by `entangle-shard` (code `SH06`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclaredLayout {
    /// Every rank holds the full logical tensor.
    Replicated,
    /// The tensor is shard `index` of `parts` equal slices along `dim`.
    Sharded {
        /// The sharded dimension.
        dim: usize,
        /// This shard's index (`0 <= index < parts`).
        index: usize,
        /// Number of equal parts.
        parts: usize,
    },
}

impl fmt::Display for DeclaredLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclaredLayout::Replicated => write!(f, "replicated"),
            DeclaredLayout::Sharded { dim, index, parts } => {
                write!(f, "sharded(dim={dim}, {index}/{parts})")
            }
        }
    }
}
