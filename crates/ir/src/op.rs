//! The operator vocabulary.
//!
//! Modeled on PyTorch's ATen IR (the operator set TorchDynamo emits), plus
//! explicit collective-communication operators, plus a few fused kernels
//! (RoPE, RMSNorm) of the kind the paper's users add lemmas for (§6.5).

use entangle_symbolic::SymExpr;

use crate::shape::Dim;

/// An operator: the label of a computation-graph vertex.
///
/// Every operator produces exactly one output tensor (multi-output kernels
/// are decomposed, as TorchDynamo does). Attributes (dims, bounds, scale
/// factors) are carried inline and surface as scalar children in the
/// e-graph encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    // ----- element-wise binary (broadcasting) -----
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication.
    Mul,
    /// Element-wise division.
    Div,
    /// Element-wise maximum.
    Maximum,

    // ----- element-wise unary -----
    /// Negation.
    Neg,
    /// Exponential.
    Exp,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Hyperbolic tangent.
    Tanh,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Sigmoid linear unit (`x * sigmoid(x)`).
    Silu,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Heaviside step (`1` where `x > 0`, else `0`) — the ReLU derivative.
    Step,
    /// The pointwise derivative of [`Op::Gelu`] (ATen's `gelu_backward`
    /// without the upstream factor).
    GeluGrad,
    /// The pointwise derivative of [`Op::Silu`].
    SiluGrad,
    /// A tensor of ones with the input's shape — the broadcast seed used by
    /// reverse-mode differentiation.
    OnesLike,
    /// Cosine (RoPE tables).
    Cos,
    /// Sine (RoPE tables).
    Sin,

    /// Multiplication by a compile-time rational constant `numer/denom`.
    ///
    /// Loss scaling (auxiliary-loss ÷ TP-size, gradient-accumulation ÷
    /// #microbatches) is exactly this operator; bugs 2 and 6 are a missing
    /// `ScalarMul`.
    ScalarMul {
        /// Numerator of the scale factor.
        numer: i64,
        /// Denominator of the scale factor (non-zero).
        denom: i64,
    },

    // ----- reductions -----
    /// Sum over one dimension.
    SumDim {
        /// The reduced dimension.
        dim: usize,
        /// Keep the reduced dimension as size 1.
        keepdim: bool,
    },
    /// Mean over one dimension.
    MeanDim {
        /// The reduced dimension.
        dim: usize,
        /// Keep the reduced dimension as size 1.
        keepdim: bool,
    },
    /// Sum of all elements, producing a rank-0 tensor.
    SumAll,
    /// Mean of all elements, producing a rank-0 tensor.
    MeanAll,
    /// Softmax along a dimension.
    Softmax {
        /// The normalized dimension.
        dim: usize,
    },

    // ----- shape / data movement -----
    /// Identity (view).
    Identity,
    /// Reshape to an explicit target shape.
    Reshape {
        /// The target shape; must preserve element count.
        shape: Vec<Dim>,
    },
    /// Swap two dimensions.
    Transpose {
        /// First dimension.
        d0: usize,
        /// Second dimension.
        d1: usize,
    },
    /// Arbitrary dimension permutation.
    Permute {
        /// `perm[i]` is the source dimension of output dimension `i`.
        perm: Vec<usize>,
    },
    /// Contiguous slice `[start, end)` along one dimension.
    Slice {
        /// The sliced dimension.
        dim: usize,
        /// Inclusive start (symbolic allowed).
        start: Dim,
        /// Exclusive end (symbolic allowed).
        end: Dim,
    },
    /// Concatenation of all inputs along one dimension.
    Concat {
        /// The concatenated dimension.
        dim: usize,
    },
    /// Zero-padding along one dimension.
    Pad {
        /// The padded dimension.
        dim: usize,
        /// Elements added before.
        before: Dim,
        /// Elements added after.
        after: Dim,
    },

    // ----- linear algebra -----
    /// Batched matrix multiplication (`[..., m, k] × [..., k, n]`).
    Matmul,

    // ----- lookups -----
    /// Row gather: `(weight [V, H], ids [..]) → [.., H]`.
    Embedding,
    /// Scatter-add: the gradient of [`Op::Embedding`] with respect to its
    /// weight. `(ids [..], grad [.., H]) → [vocab, H]`.
    EmbeddingGrad {
        /// The vocabulary size (rows of the produced gradient).
        vocab: usize,
    },

    // ----- normalization (fused kernels) -----
    /// Layer normalization over the last dimension: `(x, weight, bias)`.
    LayerNorm,
    /// RMS normalization over the last dimension: `(x, weight)`.
    RmsNorm,

    // ----- attention helpers (fused kernels) -----
    /// Rotary position embedding: `(x, cos, sin) → x'` (same shape as `x`).
    Rope,
    /// Fused multi-head attention: `(q, k, v) → out`, all `[..., S, H]`.
    ///
    /// This models optimized kernels like FlashAttention; the paper assumes
    /// the same fused kernels appear in `G_s` and `G_d` (§3.3) and has users
    /// supply lemmas for them (§6.5).
    Attention {
        /// Number of attention heads (`H % heads == 0`).
        heads: usize,
        /// Apply a causal mask.
        causal: bool,
    },

    // ----- losses -----
    /// Mean squared error: `(pred, target) → scalar`.
    MseLoss,
    /// Cross entropy: `(logits [.., V], targets [..] i64) → scalar`.
    CrossEntropy,

    // ----- collectives (communication kernels) -----
    /// All-reduce (sum): `k` rank-local inputs → the reduced tensor.
    ///
    /// Each rank's copy is a distinct graph node over the same inputs; the
    /// e-graph hash-conses them together.
    AllReduce,
    /// All-gather: `k` rank-local inputs → their concatenation along `dim`.
    AllGather {
        /// Gather dimension.
        dim: usize,
    },
    /// Reduce-scatter (sum): `k` inputs → this rank's shard of the sum.
    ReduceScatter {
        /// Scatter dimension.
        dim: usize,
        /// This rank's index.
        rank: usize,
        /// World size (must equal the input count).
        world: usize,
    },
}

impl Op {
    /// The operator's s-expression head symbol, used in lemmas and in the
    /// e-graph encoding.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Maximum => "maximum",
            Op::Neg => "neg",
            Op::Exp => "exp",
            Op::Sqrt => "sqrt",
            Op::Rsqrt => "rsqrt",
            Op::Tanh => "tanh",
            Op::Gelu => "gelu",
            Op::Silu => "silu",
            Op::Relu => "relu",
            Op::Sigmoid => "sigmoid",
            Op::Step => "step",
            Op::GeluGrad => "gelu_grad",
            Op::SiluGrad => "silu_grad",
            Op::OnesLike => "ones_like",
            Op::Cos => "cos",
            Op::Sin => "sin",
            Op::ScalarMul { .. } => "scalar_mul",
            Op::SumDim { .. } => "sum_dim",
            Op::MeanDim { .. } => "mean_dim",
            Op::SumAll => "sum_all",
            Op::MeanAll => "mean_all",
            Op::Softmax { .. } => "softmax",
            Op::Identity => "identity",
            Op::Reshape { .. } => "reshape",
            Op::Transpose { .. } => "transpose",
            Op::Permute { .. } => "permute",
            Op::Slice { .. } => "slice",
            Op::Concat { .. } => "concat",
            Op::Pad { .. } => "pad",
            Op::Matmul => "matmul",
            Op::Embedding => "embedding",
            Op::EmbeddingGrad { .. } => "embedding_grad",
            Op::LayerNorm => "layer_norm",
            Op::RmsNorm => "rms_norm",
            Op::Rope => "rope",
            Op::Attention { .. } => "attention",
            Op::MseLoss => "mse_loss",
            Op::CrossEntropy => "cross_entropy",
            Op::AllReduce => "all_reduce",
            Op::AllGather { .. } => "all_gather",
            Op::ReduceScatter { .. } => "reduce_scatter",
        }
    }

    /// The attribute scalars appended after tensor children in the
    /// e-graph encoding (dims, bounds, scale factors).
    pub fn attr_scalars(&self) -> Vec<SymExpr> {
        fn c(v: i64) -> SymExpr {
            SymExpr::constant(v)
        }
        match self {
            Op::ScalarMul { numer, denom } => vec![c(*numer), c(*denom)],
            Op::SumDim { dim, keepdim } | Op::MeanDim { dim, keepdim } => {
                vec![c(*dim as i64), c(*keepdim as i64)]
            }
            Op::Softmax { dim } | Op::Concat { dim } | Op::AllGather { dim } => {
                vec![c(*dim as i64)]
            }
            Op::Reshape { shape } => shape.iter().map(|d| d.0.clone()).collect(),
            Op::Transpose { d0, d1 } => vec![c(*d0 as i64), c(*d1 as i64)],
            Op::Permute { perm } => perm.iter().map(|&p| c(p as i64)).collect(),
            Op::Slice { dim, start, end } => {
                vec![c(*dim as i64), start.0.clone(), end.0.clone()]
            }
            Op::Pad { dim, before, after } => {
                vec![c(*dim as i64), before.0.clone(), after.0.clone()]
            }
            Op::ReduceScatter { dim, rank, world } => {
                vec![c(*dim as i64), c(*rank as i64), c(*world as i64)]
            }
            Op::Attention { heads, causal } => vec![c(*heads as i64), c(*causal as i64)],
            Op::EmbeddingGrad { vocab } => vec![c(*vocab as i64)],
            _ => Vec::new(),
        }
    }

    /// The number of tensor inputs this operator accepts; `None` means
    /// variadic (at least one).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Maximum
            | Op::Matmul
            | Op::Embedding
            | Op::EmbeddingGrad { .. }
            | Op::RmsNorm
            | Op::MseLoss
            | Op::CrossEntropy => Some(2),
            Op::LayerNorm | Op::Rope | Op::Attention { .. } => Some(3),
            Op::Neg
            | Op::Exp
            | Op::Sqrt
            | Op::Rsqrt
            | Op::Tanh
            | Op::Gelu
            | Op::Silu
            | Op::Relu
            | Op::Sigmoid
            | Op::Step
            | Op::GeluGrad
            | Op::SiluGrad
            | Op::OnesLike
            | Op::Cos
            | Op::Sin
            | Op::ScalarMul { .. }
            | Op::SumDim { .. }
            | Op::MeanDim { .. }
            | Op::SumAll
            | Op::MeanAll
            | Op::Softmax { .. }
            | Op::Identity
            | Op::Reshape { .. }
            | Op::Transpose { .. }
            | Op::Permute { .. }
            | Op::Slice { .. }
            | Op::Pad { .. } => Some(1),
            Op::Concat { .. } | Op::AllReduce | Op::AllGather { .. } | Op::ReduceScatter { .. } => {
                None
            }
        }
    }

    /// `true` for communication kernels (collectives).
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            Op::AllReduce | Op::AllGather { .. } | Op::ReduceScatter { .. }
        )
    }

    /// `true` for broadcasting element-wise binary operators.
    pub fn is_elementwise_binary(&self) -> bool {
        matches!(self, Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Maximum)
    }

    /// `true` for pointwise unary operators (each output element depends on
    /// exactly the corresponding input element).
    pub fn is_elementwise_unary(&self) -> bool {
        matches!(
            self,
            Op::Neg
                | Op::Exp
                | Op::Sqrt
                | Op::Rsqrt
                | Op::Tanh
                | Op::Gelu
                | Op::Silu
                | Op::Relu
                | Op::Sigmoid
                | Op::Step
                | Op::GeluGrad
                | Op::SiluGrad
                | Op::Cos
                | Op::Sin
                | Op::ScalarMul { .. }
        )
    }

    /// `true` for pointwise unary operators with `f(0) == 0`: padding zeros
    /// survive the operator unchanged, so sharding analyses may carry padded
    /// windows through. (`exp(0) = 1`, `sigmoid(0) = ½`, `cos(0) = 1`,
    /// `rsqrt(0) = ∞`, `gelu'(0) = ½`, `silu'(0) = ½` are all excluded.)
    pub fn preserves_zero(&self) -> bool {
        matches!(
            self,
            Op::Neg
                | Op::Sqrt
                | Op::Tanh
                | Op::Gelu
                | Op::Silu
                | Op::Relu
                | Op::Step
                | Op::Sin
                | Op::ScalarMul { .. }
        )
    }

    /// `true` for unary operators linear in their input: they commute with
    /// summation, so partial sums pass through (`f(Σxᵢ) = Σf(xᵢ)`).
    pub fn is_linear_unary(&self) -> bool {
        matches!(
            self,
            Op::Neg
                | Op::ScalarMul { .. }
                | Op::Identity
                | Op::Transpose { .. }
                | Op::Permute { .. }
                | Op::SumDim { .. }
                | Op::MeanDim { .. }
                | Op::SumAll
                | Op::MeanAll
        )
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
