//! The computation graph: tensors, operator nodes, builder and validation.

use std::collections::HashMap;
use std::fmt;

use crate::dtype::DType;
use crate::infer::infer_output;
use crate::op::Op;
use crate::shape::Shape;

/// Identifies a tensor (edge) within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TensorId(pub u32);

/// Identifies an operator node (vertex) within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A tensor: an edge of the computation graph.
#[derive(Debug, Clone)]
pub struct Tensor {
    /// Unique id within the graph.
    pub id: TensorId,
    /// Human-readable name (unique within the graph).
    pub name: String,
    /// Shape, possibly symbolic.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
    /// The node producing this tensor; `None` for graph inputs.
    pub producer: Option<NodeId>,
}

/// An operator node: a vertex of the computation graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Unique id within the graph.
    pub id: NodeId,
    /// Human-readable name (used in refinement-error reports).
    pub name: String,
    /// The operator.
    pub op: Op,
    /// Input tensors in operator order.
    pub inputs: Vec<TensorId>,
    /// The single output tensor.
    pub output: TensorId,
}

/// Errors raised while building or validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Shape or type inference rejected an operator application.
    Shape(String),
    /// A referenced tensor does not exist.
    UnknownTensor(String),
    /// Duplicate tensor name.
    DuplicateName(String),
    /// The graph failed a structural validity check.
    Invalid(String),
    /// JSON (de)serialization failure.
    Serde(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Shape(m) => write!(f, "shape error: {m}"),
            IrError::UnknownTensor(m) => write!(f, "unknown tensor: {m}"),
            IrError::DuplicateName(m) => write!(f, "duplicate tensor name: {m}"),
            IrError::Invalid(m) => write!(f, "invalid graph: {m}"),
            IrError::Serde(m) => write!(f, "serialization error: {m}"),
        }
    }
}

impl std::error::Error for IrError {}

/// A validated computation graph.
///
/// Nodes are stored in a valid topological order (the construction order);
/// every tensor is produced exactly once (single static assignment).
///
/// # Examples
///
/// See the [crate-level example](crate) and [`GraphBuilder`].
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    tensors: Vec<Tensor>,
    nodes: Vec<Node>,
    inputs: Vec<TensorId>,
    outputs: Vec<TensorId>,
    /// Name → vector-position index, maintained by every construction path
    /// (positions, not ids: unvalidated graphs may carry misindexed ids).
    /// Duplicate names — possible in unvalidated graphs, and for nodes
    /// after tensor-name uniquification — keep the *first* occurrence,
    /// matching a forward linear scan.
    tensor_index: HashMap<String, usize>,
    node_index: HashMap<String, usize>,
}

impl Graph {
    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Graph inputs `I(G)` — data inputs and weights alike.
    pub fn inputs(&self) -> &[TensorId] {
        &self.inputs
    }

    /// Graph outputs `O(G)`.
    pub fn outputs(&self) -> &[TensorId] {
        &self.outputs
    }

    /// All tensors `T(G)`.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// A tensor by id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn tensor(&self, id: TensorId) -> &Tensor {
        &self.tensors[id.0 as usize]
    }

    /// A tensor by name, if present. O(1).
    pub fn tensor_by_name(&self, name: &str) -> Option<&Tensor> {
        self.tensor_index.get(name).map(|&i| &self.tensors[i])
    }

    /// A node by name (first occurrence for duplicates), if present. O(1).
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.node_index.get(name).map(|&i| &self.nodes[i])
    }

    /// The operator nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of operator nodes (the paper's "total number of operators").
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of tensors.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// The node producing `tensor`, or `None` for a graph input.
    pub fn producer(&self, tensor: TensorId) -> Option<&Node> {
        self.tensor(tensor).producer.map(|n| self.node(n))
    }

    /// All nodes consuming `tensor`.
    pub fn consumers(&self, tensor: TensorId) -> Vec<&Node> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&tensor))
            .collect()
    }

    /// Nodes in topological order (construction order is one; imported
    /// graphs are re-sorted by [`Graph::validate`]).
    pub fn topological_order(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Re-validates the whole graph: structural integrity, SSA, topological
    /// order, and shape inference on every node.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut produced: HashMap<TensorId, ()> = HashMap::new();
        for (i, t) in self.tensors.iter().enumerate() {
            if t.id.0 as usize != i {
                return Err(IrError::Invalid(format!("tensor {} misindexed", t.id)));
            }
        }
        let mut names: HashMap<&str, ()> = HashMap::new();
        for t in &self.tensors {
            if names.insert(&t.name, ()).is_some() {
                return Err(IrError::DuplicateName(t.name.clone()));
            }
        }
        for &i in &self.inputs {
            self.check_tensor(i)?;
            produced.insert(i, ());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id.0 as usize != i {
                return Err(IrError::Invalid(format!("node {} misindexed", node.id)));
            }
            let mut metas = Vec::with_capacity(node.inputs.len());
            for &input in &node.inputs {
                self.check_tensor(input)?;
                if !produced.contains_key(&input) {
                    return Err(IrError::Invalid(format!(
                        "node {} consumes {} before it is produced (not topological)",
                        node.name,
                        self.tensor(input).name
                    )));
                }
                let t = self.tensor(input);
                metas.push((t.shape.clone(), t.dtype));
            }
            let (shape, dtype) = infer_output(&node.op, &metas)?;
            let out = self.tensor(node.output);
            if out.shape != shape || out.dtype != dtype {
                return Err(IrError::Shape(format!(
                    "node {}: recorded output {} {} but inferred {} {}",
                    node.name, out.shape, out.dtype, shape, dtype
                )));
            }
            if out.producer != Some(node.id) {
                return Err(IrError::Invalid(format!(
                    "tensor {} producer mismatch",
                    out.name
                )));
            }
            if produced.insert(node.output, ()).is_some() {
                return Err(IrError::Invalid(format!(
                    "tensor {} produced twice",
                    out.name
                )));
            }
        }
        for &o in &self.outputs {
            self.check_tensor(o)?;
            if !produced.contains_key(&o) {
                return Err(IrError::Invalid(format!(
                    "output {} is never produced",
                    self.tensor(o).name
                )));
            }
        }
        Ok(())
    }

    fn check_tensor(&self, id: TensorId) -> Result<(), IrError> {
        if (id.0 as usize) < self.tensors.len() {
            Ok(())
        } else {
            Err(IrError::UnknownTensor(format!("{id}")))
        }
    }

    /// Appends an operator node to the graph, inferring its output tensor.
    ///
    /// Used by user-expectation checking (§4.4), which extends `G_s` and
    /// `G_d` with the combiner expressions `f_s` and `f_d`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the inputs violate the operator's
    /// constraints, or an unknown-tensor error for foreign ids.
    pub fn append(&mut self, name: &str, op: Op, inputs: &[TensorId]) -> Result<TensorId, IrError> {
        let mut metas = Vec::with_capacity(inputs.len());
        for &i in inputs {
            self.check_tensor(i)?;
            let t = self.tensor(i);
            metas.push((t.shape.clone(), t.dtype));
        }
        let (shape, dtype) = infer_output(&op, &metas)?;
        let id = TensorId(self.tensors.len() as u32);
        let mut unique = name.to_owned();
        if self.tensor_by_name(&unique).is_some() {
            unique = format!("{name}#{}", id.0);
        }
        let node_id = NodeId(self.nodes.len() as u32);
        self.tensor_index
            .entry(unique.clone())
            .or_insert(self.tensors.len());
        self.tensors.push(Tensor {
            id,
            name: unique,
            shape,
            dtype,
            producer: Some(node_id),
        });
        self.node_index
            .entry(name.to_owned())
            .or_insert(self.nodes.len());
        self.nodes.push(Node {
            id: node_id,
            name: name.to_owned(),
            op,
            inputs: inputs.to_vec(),
            output: id,
        });
        Ok(id)
    }

    /// Marks an existing tensor as a graph output.
    pub fn add_output(&mut self, tensor: TensorId) {
        if !self.outputs.contains(&tensor) {
            self.outputs.push(tensor);
        }
    }

    /// Renders the graph in Graphviz DOT format (operators as boxes,
    /// tensors as edges labeled with shapes), for debugging refinement
    /// failures visually.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {:?} {{", self.name);
        let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=10];");
        for &i in &self.inputs {
            let t = self.tensor(i);
            let _ = writeln!(
                out,
                "  \"t{}\" [shape=ellipse, label=\"{}\\n{}\"];",
                i.0, t.name, t.shape
            );
        }
        for node in &self.nodes {
            let _ = writeln!(
                out,
                "  \"n{}\" [label=\"{}\\n({})\"];",
                node.id.0,
                node.name,
                node.op.name()
            );
            for &input in &node.inputs {
                let t = self.tensor(input);
                let src = match t.producer {
                    Some(p) => format!("n{}", p.0),
                    None => format!("t{}", input.0),
                };
                let _ = writeln!(
                    out,
                    "  \"{src}\" -> \"n{}\" [label=\"{}\"];",
                    node.id.0, t.shape
                );
            }
        }
        for &o in &self.outputs {
            let t = self.tensor(o);
            let _ = writeln!(
                out,
                "  \"out{}\" [shape=doublecircle, label=\"{}\"];",
                o.0, t.name
            );
            let src = match t.producer {
                Some(p) => format!("n{}", p.0),
                None => format!("t{}", o.0),
            };
            let _ = writeln!(out, "  \"{src}\" -> \"out{}\";", o.0);
        }
        out.push_str("}\n");
        out
    }

    /// Serializes to the JSON interchange format.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serde`] on serialization failure.
    pub fn to_json(&self) -> Result<String, IrError> {
        Ok(crate::json::encode_graph(self))
    }

    /// Deserializes from the JSON interchange format and validates.
    ///
    /// This is the entry point for graphs produced by foreign front ends
    /// (the role of the paper's HLO-translation utility).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serde`] on malformed JSON (including duplicate
    /// tensor names and out-of-range tensor/node references, which are
    /// rejected at decode time), or any validation error on a structurally
    /// broken graph.
    pub fn from_json(json: &str) -> Result<Graph, IrError> {
        let g = crate::json::decode_graph(json)?;
        g.validate()?;
        Ok(g)
    }

    /// Deserializes from the JSON interchange format *without* validating.
    ///
    /// Decode-level checks (well-formed JSON, positional ids, unique names,
    /// in-range references) still apply, but structural and shape invariants
    /// are not enforced — this is the entry point for diagnostics tooling
    /// (`entangle lint`) that wants to report *all* problems in a graph
    /// rather than stop at the first.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serde`] on malformed JSON.
    pub fn from_json_unvalidated(json: &str) -> Result<Graph, IrError> {
        crate::json::decode_graph(json)
    }

    /// Assembles a graph from raw parts **without any validation**.
    ///
    /// For interchange front ends and diagnostics tooling that must be able
    /// to represent malformed graphs. Everything else should go through
    /// [`GraphBuilder`] or [`Graph::from_json`]; accessors like
    /// [`Graph::tensor`] panic on graphs whose references dangle.
    pub fn from_parts_unchecked(
        name: String,
        tensors: Vec<Tensor>,
        nodes: Vec<Node>,
        inputs: Vec<TensorId>,
        outputs: Vec<TensorId>,
    ) -> Graph {
        let mut tensor_index = HashMap::with_capacity(tensors.len());
        for (i, t) in tensors.iter().enumerate() {
            tensor_index.entry(t.name.clone()).or_insert(i);
        }
        let mut node_index = HashMap::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            node_index.entry(n.name.clone()).or_insert(i);
        }
        Graph {
            name,
            tensors,
            nodes,
            inputs,
            outputs,
            tensor_index,
            node_index,
        }
    }
}

/// Incremental graph construction with eager shape inference.
///
/// # Examples
///
/// ```
/// use entangle_ir::{DType, GraphBuilder, Op};
///
/// let mut g = GraphBuilder::new("tiny");
/// let x = g.input("x", &[2, 3], DType::F32);
/// let y = g.apply("y", Op::Relu, &[x]).unwrap();
/// g.mark_output(y);
/// let graph = g.finish().unwrap();
/// assert_eq!(graph.tensor(y).shape.to_string(), "[2, 3]");
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Starts an empty graph.
    pub fn new(name: &str) -> GraphBuilder {
        GraphBuilder {
            graph: Graph {
                name: name.to_owned(),
                tensors: Vec::new(),
                nodes: Vec::new(),
                inputs: Vec::new(),
                outputs: Vec::new(),
                tensor_index: HashMap::new(),
                node_index: HashMap::new(),
            },
        }
    }

    fn fresh_tensor(&mut self, name: &str, shape: Shape, dtype: DType) -> TensorId {
        let id = TensorId(self.graph.tensors.len() as u32);
        let mut unique = name.to_owned();
        if self.graph.tensor_by_name(&unique).is_some() {
            unique = format!("{name}#{}", id.0);
        }
        self.graph
            .tensor_index
            .entry(unique.clone())
            .or_insert(self.graph.tensors.len());
        self.graph.tensors.push(Tensor {
            id,
            name: unique,
            shape,
            dtype,
            producer: None,
        });
        id
    }

    /// Declares a graph input with concrete dims.
    pub fn input(&mut self, name: &str, dims: &[i64], dtype: DType) -> TensorId {
        self.input_shaped(name, Shape::of(dims), dtype)
    }

    /// Declares a graph input with an explicit (possibly symbolic) shape.
    pub fn input_shaped(&mut self, name: &str, shape: Shape, dtype: DType) -> TensorId {
        let id = self.fresh_tensor(name, shape, dtype);
        self.graph.inputs.push(id);
        id
    }

    /// Applies an operator, inferring the output tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the inputs violate the operator's
    /// constraints.
    pub fn apply(&mut self, name: &str, op: Op, inputs: &[TensorId]) -> Result<TensorId, IrError> {
        let metas: Vec<(Shape, DType)> = inputs
            .iter()
            .map(|&i| {
                let t = self.graph.tensor(i);
                (t.shape.clone(), t.dtype)
            })
            .collect();
        let (shape, dtype) = infer_output(&op, &metas)?;
        let out = self.fresh_tensor(name, shape, dtype);
        let node_id = NodeId(self.graph.nodes.len() as u32);
        self.graph.tensors[out.0 as usize].producer = Some(node_id);
        self.graph
            .node_index
            .entry(name.to_owned())
            .or_insert(self.graph.nodes.len());
        self.graph.nodes.push(Node {
            id: node_id,
            name: name.to_owned(),
            op,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Marks a tensor as a graph output (may be called multiple times).
    pub fn mark_output(&mut self, tensor: TensorId) {
        if !self.graph.outputs.contains(&tensor) {
            self.graph.outputs.push(tensor);
        }
    }

    /// Read-only view of the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Finishes and validates the graph.
    ///
    /// # Errors
    ///
    /// Propagates any validation failure.
    pub fn finish(self) -> Result<Graph, IrError> {
        self.graph.validate()?;
        Ok(self.graph)
    }
}
