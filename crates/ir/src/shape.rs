//! Shapes with possibly-symbolic dimensions.

use std::fmt;

use entangle_symbolic::SymExpr;

/// A single dimension: an affine symbolic expression, usually a constant.
///
/// # Examples
///
/// ```
/// use entangle_ir::Dim;
///
/// let d = Dim::from(16);
/// assert_eq!(d.as_const(), Some(16));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dim(pub SymExpr);

impl Dim {
    /// The concrete size, if this dimension is constant.
    pub fn as_const(&self) -> Option<i64> {
        self.0.as_const()
    }

    /// The underlying symbolic expression.
    pub fn expr(&self) -> &SymExpr {
        &self.0
    }
}

impl From<i64> for Dim {
    fn from(v: i64) -> Dim {
        Dim(SymExpr::constant(v))
    }
}

impl From<i32> for Dim {
    fn from(v: i32) -> Dim {
        Dim(SymExpr::constant(v as i64))
    }
}

impl From<usize> for Dim {
    fn from(v: usize) -> Dim {
        Dim(SymExpr::constant(v as i64))
    }
}

impl From<SymExpr> for Dim {
    fn from(e: SymExpr) -> Dim {
        Dim(e)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tensor shape: an ordered list of dimensions. Rank 0 is a scalar tensor.
///
/// # Examples
///
/// ```
/// use entangle_ir::Shape;
///
/// let s = Shape::of(&[2, 4, 8]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), Some(64));
/// assert_eq!(s.to_string(), "[2, 4, 8]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(pub Vec<Dim>);

impl Shape {
    /// A shape from concrete dimensions.
    pub fn of(dims: &[i64]) -> Shape {
        Shape(dims.iter().map(|&d| Dim::from(d)).collect())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimensions.
    pub fn dims(&self) -> &[Dim] {
        &self.0
    }

    /// The `i`-th dimension.
    pub fn dim(&self, i: usize) -> &Dim {
        &self.0[i]
    }

    /// Total element count, if all dimensions are constant.
    pub fn numel(&self) -> Option<i64> {
        self.0
            .iter()
            .try_fold(1i64, |acc, d| Some(acc * d.as_const()?))
    }

    /// All dimensions as constants, if the shape is fully concrete.
    pub fn as_concrete(&self) -> Option<Vec<i64>> {
        self.0.iter().map(Dim::as_const).collect()
    }

    /// Replaces dimension `i`, returning a new shape.
    pub fn with_dim(&self, i: usize, dim: Dim) -> Shape {
        let mut out = self.clone();
        out.0[i] = dim;
        out
    }

    /// Structural equality of dims (symbolic expressions compared
    /// syntactically).
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }

    /// Right-aligned NumPy/PyTorch broadcasting of two shapes.
    ///
    /// Dimensions broadcast when equal or when one side is the constant 1.
    /// Symbolic dimensions broadcast only against an identical expression or
    /// a literal 1. Returns `None` when the shapes are incompatible.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = Vec::with_capacity(rank);
        for i in 0..rank {
            let a = self.rank().checked_sub(rank - i).map(|j| &self.0[j]);
            let b = other.rank().checked_sub(rank - i).map(|j| &other.0[j]);
            let d = match (a, b) {
                (Some(x), Some(y)) => {
                    if x == y {
                        x.clone()
                    } else if x.as_const() == Some(1) {
                        y.clone()
                    } else if y.as_const() == Some(1) {
                        x.clone()
                    } else {
                        return None;
                    }
                }
                (Some(x), None) => x.clone(),
                (None, Some(y)) => y.clone(),
                (None, None) => unreachable!("index within max rank"),
            };
            dims.push(d);
        }
        Some(Shape(dims))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Dim>> for Shape {
    fn from(dims: Vec<Dim>) -> Shape {
        Shape(dims)
    }
}
