use entangle_symbolic::SymExpr;

use crate::*;

fn f32s(dims: &[i64]) -> (Shape, DType) {
    (Shape::of(dims), DType::F32)
}

#[test]
fn broadcast_rules() {
    let cases = [
        (&[2, 3][..], &[2, 3][..], Some(vec![2, 3])),
        (&[2, 3], &[3], Some(vec![2, 3])),
        (&[2, 1], &[1, 3], Some(vec![2, 3])),
        (&[4, 1, 3], &[2, 3], Some(vec![4, 2, 3])),
        (&[2, 3], &[2, 4], None),
        (&[], &[5], Some(vec![5])),
    ];
    for (a, b, want) in cases {
        let got = Shape::of(a).broadcast(&Shape::of(b));
        assert_eq!(
            got.map(|s| s.as_concrete().unwrap()),
            want,
            "broadcast {a:?} x {b:?}"
        );
    }
}

#[test]
fn symbolic_dims_broadcast_structurally() {
    let mut ctx = entangle_symbolic::SymCtx::new();
    let n = ctx.var("n");
    let sym = Shape(vec![Dim(n.clone()), Dim::from(4)]);
    let same = Shape(vec![Dim(n), Dim::from(4)]);
    assert!(sym.broadcast(&same).is_some());
    let other = Shape(vec![Dim(ctx.var("m")), Dim::from(4)]);
    assert!(sym.broadcast(&other).is_none());
    assert_eq!(sym.numel(), None);
}

#[test]
fn infer_elementwise() {
    let (s, d) = infer_output(&Op::Add, &[f32s(&[2, 3]), f32s(&[3])]).unwrap();
    assert_eq!(s, Shape::of(&[2, 3]));
    assert_eq!(d, DType::F32);
    assert!(infer_output(&Op::Add, &[f32s(&[2, 3]), f32s(&[4])]).is_err());
    assert!(infer_output(&Op::Add, &[f32s(&[2]), (Shape::of(&[2]), DType::I64)]).is_err());
}

#[test]
fn infer_matmul() {
    let (s, _) = infer_output(&Op::Matmul, &[f32s(&[4, 8]), f32s(&[8, 2])]).unwrap();
    assert_eq!(s, Shape::of(&[4, 2]));
    // Batched with broadcast.
    let (s, _) = infer_output(&Op::Matmul, &[f32s(&[6, 4, 8]), f32s(&[8, 2])]).unwrap();
    assert_eq!(s, Shape::of(&[6, 4, 2]));
    assert!(infer_output(&Op::Matmul, &[f32s(&[4, 8]), f32s(&[7, 2])]).is_err());
    assert!(infer_output(&Op::Matmul, &[f32s(&[4]), f32s(&[4, 2])]).is_err());
}

#[test]
fn infer_shape_ops() {
    let (s, _) = infer_output(
        &Op::Slice {
            dim: 1,
            start: Dim::from(2),
            end: Dim::from(6),
        },
        &[f32s(&[3, 8])],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[3, 4]));
    assert!(infer_output(
        &Op::Slice {
            dim: 1,
            start: Dim::from(4),
            end: Dim::from(12)
        },
        &[f32s(&[3, 8])]
    )
    .is_err());

    let (s, _) = infer_output(&Op::Concat { dim: 0 }, &[f32s(&[2, 4]), f32s(&[3, 4])]).unwrap();
    assert_eq!(s, Shape::of(&[5, 4]));
    assert!(infer_output(&Op::Concat { dim: 0 }, &[f32s(&[2, 4]), f32s(&[3, 5])]).is_err());

    let (s, _) = infer_output(&Op::Transpose { d0: 0, d1: 2 }, &[f32s(&[2, 3, 4])]).unwrap();
    assert_eq!(s, Shape::of(&[4, 3, 2]));

    let (s, _) = infer_output(
        &Op::Permute {
            perm: vec![2, 0, 1],
        },
        &[f32s(&[2, 3, 4])],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[4, 2, 3]));
    assert!(infer_output(
        &Op::Permute {
            perm: vec![0, 0, 1]
        },
        &[f32s(&[2, 3, 4])]
    )
    .is_err());

    let (s, _) = infer_output(
        &Op::Reshape {
            shape: vec![Dim::from(6), Dim::from(4)],
        },
        &[f32s(&[2, 3, 4])],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[6, 4]));
    assert!(infer_output(
        &Op::Reshape {
            shape: vec![Dim::from(5), Dim::from(4)]
        },
        &[f32s(&[2, 3, 4])]
    )
    .is_err());

    let (s, _) = infer_output(
        &Op::Pad {
            dim: 0,
            before: Dim::from(1),
            after: Dim::from(2),
        },
        &[f32s(&[4, 3])],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[7, 3]));
}

#[test]
fn infer_reductions() {
    let (s, _) = infer_output(
        &Op::SumDim {
            dim: 1,
            keepdim: false,
        },
        &[f32s(&[2, 3, 4])],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[2, 4]));
    let (s, _) = infer_output(
        &Op::MeanDim {
            dim: 1,
            keepdim: true,
        },
        &[f32s(&[2, 3, 4])],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[2, 1, 4]));
    let (s, _) = infer_output(&Op::SumAll, &[f32s(&[2, 3])]).unwrap();
    assert_eq!(s, Shape::scalar());
    let (s, _) = infer_output(&Op::Softmax { dim: 2 }, &[f32s(&[2, 3, 4])]).unwrap();
    assert_eq!(s, Shape::of(&[2, 3, 4]));
    assert!(infer_output(&Op::Softmax { dim: 3 }, &[f32s(&[2, 3, 4])]).is_err());
}

#[test]
fn infer_norms_and_fused() {
    let (s, _) = infer_output(&Op::LayerNorm, &[f32s(&[2, 3, 8]), f32s(&[8]), f32s(&[8])]).unwrap();
    assert_eq!(s, Shape::of(&[2, 3, 8]));
    assert!(infer_output(&Op::LayerNorm, &[f32s(&[2, 8]), f32s(&[4]), f32s(&[8])]).is_err());

    let (s, _) = infer_output(&Op::RmsNorm, &[f32s(&[2, 8]), f32s(&[8])]).unwrap();
    assert_eq!(s, Shape::of(&[2, 8]));

    let (s, _) = infer_output(
        &Op::Rope,
        &[f32s(&[2, 4, 16, 8]), f32s(&[16, 8]), f32s(&[16, 8])],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[2, 4, 16, 8]));
    assert!(infer_output(
        &Op::Rope,
        &[f32s(&[2, 4, 16, 8]), f32s(&[8, 8]), f32s(&[8, 8])]
    )
    .is_err());
}

#[test]
fn infer_lookups_and_losses() {
    let (s, d) = infer_output(
        &Op::Embedding,
        &[f32s(&[100, 16]), (Shape::of(&[2, 5]), DType::I64)],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[2, 5, 16]));
    assert_eq!(d, DType::F32);
    assert!(infer_output(&Op::Embedding, &[f32s(&[100, 16]), f32s(&[2, 5])]).is_err());

    let (s, _) = infer_output(&Op::MseLoss, &[f32s(&[4, 2]), f32s(&[4, 2])]).unwrap();
    assert_eq!(s, Shape::scalar());
    assert!(infer_output(&Op::MseLoss, &[f32s(&[4, 2]), f32s(&[4, 3])]).is_err());

    let (s, _) = infer_output(
        &Op::CrossEntropy,
        &[f32s(&[2, 5, 100]), (Shape::of(&[2, 5]), DType::I64)],
    )
    .unwrap();
    assert_eq!(s, Shape::scalar());
}

#[test]
fn infer_collectives() {
    let (s, _) = infer_output(&Op::AllReduce, &[f32s(&[4, 8]), f32s(&[4, 8])]).unwrap();
    assert_eq!(s, Shape::of(&[4, 8]));
    assert!(infer_output(&Op::AllReduce, &[f32s(&[4, 8]), f32s(&[4, 7])]).is_err());

    let (s, _) = infer_output(&Op::AllGather { dim: 1 }, &[f32s(&[4, 8]), f32s(&[4, 8])]).unwrap();
    assert_eq!(s, Shape::of(&[4, 16]));

    let (s, _) = infer_output(
        &Op::ReduceScatter {
            dim: 0,
            rank: 1,
            world: 2,
        },
        &[f32s(&[4, 8]), f32s(&[4, 8])],
    )
    .unwrap();
    assert_eq!(s, Shape::of(&[2, 8]));
    assert!(infer_output(
        &Op::ReduceScatter {
            dim: 0,
            rank: 2,
            world: 2
        },
        &[f32s(&[4, 8]), f32s(&[4, 8])]
    )
    .is_err());
}

#[test]
fn scalar_mul_validation() {
    assert!(infer_output(&Op::ScalarMul { numer: 1, denom: 2 }, &[f32s(&[4])]).is_ok());
    assert!(infer_output(&Op::ScalarMul { numer: 1, denom: 0 }, &[f32s(&[4])]).is_err());
}

#[test]
fn builder_figure1() {
    let mut g = GraphBuilder::new("fig1");
    let a = g.input("A", &[4, 8], DType::F32);
    let b = g.input("B", &[8, 4], DType::F32);
    let e = g.input("E", &[4, 4], DType::F32);
    let c = g.apply("C", Op::Matmul, &[a, b]).unwrap();
    let f = g.apply("F", Op::Sub, &[c, e]).unwrap();
    g.mark_output(f);
    let graph = g.finish().unwrap();
    assert_eq!(graph.num_nodes(), 2);
    assert_eq!(graph.inputs().len(), 3);
    assert_eq!(graph.outputs(), &[f]);
    assert_eq!(graph.producer(f).unwrap().name, "F");
    assert_eq!(graph.consumers(c).len(), 1);
    assert!(graph.producer(a).is_none());
    graph.validate().unwrap();
}

#[test]
fn builder_rejects_bad_shapes() {
    let mut g = GraphBuilder::new("bad");
    let a = g.input("A", &[4, 8], DType::F32);
    let b = g.input("B", &[7, 4], DType::F32);
    assert!(g.apply("C", Op::Matmul, &[a, b]).is_err());
}

#[test]
fn builder_dedupes_names() {
    let mut g = GraphBuilder::new("dup");
    let a = g.input("x", &[2], DType::F32);
    let b = g.apply("x", Op::Relu, &[a]).unwrap();
    g.mark_output(b);
    let graph = g.finish().unwrap();
    assert_ne!(graph.tensor(a).name, graph.tensor(b).name);
}

#[test]
fn json_roundtrip() {
    let mut g = GraphBuilder::new("roundtrip");
    let x = g.input("x", &[2, 6], DType::F32);
    let w = g.input("w", &[6, 3], DType::F32);
    let h = g.apply("h", Op::Matmul, &[x, w]).unwrap();
    let y = g.apply("y", Op::Gelu, &[h]).unwrap();
    g.mark_output(y);
    let graph = g.finish().unwrap();
    let json = graph.to_json().unwrap();
    let back = Graph::from_json(&json).unwrap();
    assert_eq!(back.num_nodes(), graph.num_nodes());
    assert_eq!(back.tensor(y).shape, graph.tensor(y).shape);
    assert_eq!(back.name(), "roundtrip");
}

#[test]
fn from_json_rejects_corrupt_graphs() {
    let mut g = GraphBuilder::new("ok");
    let x = g.input("x", &[2], DType::F32);
    let y = g.apply("y", Op::Relu, &[x]).unwrap();
    g.mark_output(y);
    let graph = g.finish().unwrap();
    let json = graph.to_json().unwrap();
    // Corrupt the recorded output shape: validation must catch it.
    let bad = json.replacen("2", "3", 1);
    assert!(Graph::from_json(&bad).is_err());
    assert!(Graph::from_json("{not json").is_err());
}

#[test]
fn symbolic_slice_bounds() {
    let mut ctx = entangle_symbolic::SymCtx::new();
    let n = ctx.var("n");
    let mut g = GraphBuilder::new("sym");
    let x = g.input_shaped(
        "x",
        Shape(vec![Dim(n.clone() * 2), Dim::from(4)]),
        DType::F32,
    );
    let y = g
        .apply(
            "y",
            Op::Slice {
                dim: 0,
                start: Dim(SymExpr::zero()),
                end: Dim(n.clone()),
            },
            &[x],
        )
        .unwrap();
    g.mark_output(y);
    let graph = g.finish().unwrap();
    assert_eq!(graph.tensor(y).shape.dim(0).expr(), &n);
}

#[test]
fn dot_export_covers_graph() {
    let mut g = GraphBuilder::new("dot");
    let x = g.input("x", &[2, 3], DType::F32);
    let y = g.apply("y", Op::Relu, &[x]).unwrap();
    g.mark_output(y);
    let graph = g.finish().unwrap();
    let dot = graph.to_dot();
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("relu"));
    assert!(dot.contains("[2, 3]"));
    assert!(dot.contains("doublecircle"));
    assert!(dot.trim_end().ends_with('}'));
}

#[test]
fn op_metadata() {
    assert_eq!(Op::Matmul.name(), "matmul");
    assert_eq!(Op::Matmul.arity(), Some(2));
    assert_eq!(Op::Concat { dim: 0 }.arity(), None);
    assert!(Op::AllReduce.is_collective());
    assert!(!Op::Add.is_collective());
    assert_eq!(
        Op::Slice {
            dim: 1,
            start: Dim::from(0),
            end: Dim::from(8)
        }
        .attr_scalars()
        .len(),
        3
    );
    assert_eq!(Op::ScalarMul { numer: 1, denom: 4 }.attr_scalars().len(), 2);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Concat shape inference agrees with summing dim sizes.
        #[test]
        fn concat_sums_dims(sizes in proptest::collection::vec(1i64..10, 1..5), other in 1i64..6) {
            let inputs: Vec<_> = sizes.iter().map(|&s| f32s(&[s, other])).collect();
            let (shape, _) = infer_output(&Op::Concat { dim: 0 }, &inputs).unwrap();
            prop_assert_eq!(shape.dim(0).as_const().unwrap(), sizes.iter().sum::<i64>());
            prop_assert_eq!(shape.dim(1).as_const().unwrap(), other);
        }

        /// Transpose is an involution at the shape level.
        #[test]
        fn transpose_involution(a in 1i64..6, b in 1i64..6, c in 1i64..6) {
            let t = Op::Transpose { d0: 0, d1: 2 };
            let (once, _) = infer_output(&t, &[f32s(&[a, b, c])]).unwrap();
            let (twice, _) = infer_output(&t, &[(once, DType::F32)]).unwrap();
            prop_assert_eq!(twice, Shape::of(&[a, b, c]));
        }

        /// Slicing [0, n) is the identity on shapes.
        #[test]
        fn full_slice_identity(n in 1i64..20, m in 1i64..10) {
            let op = Op::Slice { dim: 0, start: Dim::from(0), end: Dim::from(n) };
            let (s, _) = infer_output(&op, &[f32s(&[n, m])]).unwrap();
            prop_assert_eq!(s, Shape::of(&[n, m]));
        }

        /// Pad then slice the padding back off is shape-identity.
        #[test]
        fn pad_slice_shape_inverse(n in 1i64..20, pad in 0i64..5) {
            let padded = infer_output(
                &Op::Pad { dim: 0, before: Dim::from(0), after: Dim::from(pad) },
                &[f32s(&[n, 3])],
            ).unwrap();
            let (s, _) = infer_output(
                &Op::Slice { dim: 0, start: Dim::from(0), end: Dim::from(n) },
                &[padded],
            ).unwrap();
            prop_assert_eq!(s, Shape::of(&[n, 3]));
        }
    }
}
