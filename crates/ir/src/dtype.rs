//! Element data types.

use std::fmt;

/// Tensor element type.
///
/// The checker is value-agnostic; dtypes exist so shape/type inference can
/// reject mixed-type operations the way PyTorch would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit float (the default compute type in the models we build).
    F32,
    /// 64-bit signed integer (token ids, routing indices).
    I64,
    /// Boolean masks.
    Bool,
}

impl DType {
    /// `true` for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::I64 => "i64",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}
