//! Canonical-space renaming for per-operator problems.
//!
//! The saturation memo only pays off if two structurally identical operators
//! (two transformer blocks, two MoE experts) produce the *same* cache key and
//! the cached value can be replayed for either. Both directions need a
//! renaming: tensor leaf names become `$t0, $t1, …` in first-occurrence
//! order before the engine runs, and every result — mapping expressions,
//! proof chains, the `Given` fact strings the certificate kernel validates —
//! is renamed back through the inverse map afterwards.
//!
//! Only *nullary* `Op` nodes are renamed: non-leaf operator symbols
//! (`matmul`, `concat`) and scalar nodes are part of the problem's
//! structure, not its naming. Fact strings are renamed by exact whole-string
//! lookup, because the trusted kernel matches them by exact prefix+name and
//! any partial substitution could corrupt an unrelated fact.

use std::collections::HashMap;

use entangle_egraph::{ENode, Proof, ProofStep, RecExpr, Symbol};

/// A one-direction renaming of tensor leaves and given-fact strings.
///
/// Build one renamer per direction: real→canonical for key construction and
/// engine input, canonical→real for replaying a memoized result.
///
/// # Examples
///
/// ```
/// use entangle_egraph::{RecExpr, Symbol};
/// use entangle_par::Renamer;
///
/// let mut to_canon = Renamer::new();
/// to_canon.leaf(Symbol::new("w_q"), Symbol::new("$t0"));
/// let e: RecExpr = "(matmul w_q x)".parse().unwrap();
/// assert_eq!(to_canon.rename_expr(&e).to_string(), "(matmul $t0 x)");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Renamer {
    leaves: HashMap<Symbol, Symbol>,
    facts: HashMap<String, String>,
}

impl Renamer {
    /// An empty renamer (identity on everything).
    pub fn new() -> Self {
        Renamer::default()
    }

    /// Registers a leaf renaming `from → to`.
    pub fn leaf(&mut self, from: Symbol, to: Symbol) {
        self.leaves.insert(from, to);
    }

    /// Registers a whole-fact-string renaming `from → to`.
    pub fn fact(&mut self, from: String, to: String) {
        self.facts.insert(from, to);
    }

    /// The renamed leaf symbol, or the input unchanged when unregistered
    /// (synthetic `~ones[...]` leaves, scalars lifted to leaves).
    pub fn rename_leaf(&self, sym: Symbol) -> Symbol {
        self.leaves.get(&sym).copied().unwrap_or(sym)
    }

    /// The renamed fact string, or the input unchanged when unregistered.
    pub fn rename_fact(&self, fact: &str) -> String {
        self.facts
            .get(fact)
            .cloned()
            .unwrap_or_else(|| fact.to_owned())
    }

    /// Renames every registered *leaf* occurrence in an expression;
    /// operator symbols and scalars pass through untouched.
    pub fn rename_expr(&self, expr: &RecExpr) -> RecExpr {
        let mut out = RecExpr::new();
        for node in expr.nodes() {
            let renamed = match node {
                ENode::Op(sym, ch) if ch.is_empty() => {
                    ENode::Op(self.rename_leaf(*sym), Vec::new())
                }
                other => other.clone(),
            };
            out.add(renamed);
        }
        out
    }

    /// Renames a whole proof chain: every step's `before`/`after` terms,
    /// rule substitution bindings (the bound terms, not the variable names),
    /// congruence sub-proofs, and given-fact strings.
    pub fn rename_proof(&self, proof: &Proof) -> Proof {
        Proof {
            steps: proof.steps.iter().map(|s| self.rename_step(s)).collect(),
        }
    }

    fn rename_step(&self, step: &ProofStep) -> ProofStep {
        match step {
            ProofStep::Rule {
                name,
                forward,
                subst,
                before,
                after,
            } => ProofStep::Rule {
                name: name.clone(),
                forward: *forward,
                subst: subst
                    .iter()
                    .map(|(var, term)| (var.clone(), self.rename_expr(term)))
                    .collect(),
                before: self.rename_expr(before),
                after: self.rename_expr(after),
            },
            ProofStep::Congruence {
                before,
                after,
                children,
            } => ProofStep::Congruence {
                before: self.rename_expr(before),
                after: self.rename_expr(after),
                children: children.iter().map(|p| self.rename_proof(p)).collect(),
            },
            ProofStep::Given {
                fact,
                before,
                after,
            } => ProofStep::Given {
                fact: self.rename_fact(fact),
                before: self.rename_expr(before),
                after: self.rename_expr(after),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn renamer(pairs: &[(&str, &str)]) -> Renamer {
        let mut r = Renamer::new();
        for (from, to) in pairs {
            r.leaf(Symbol::new(from), Symbol::new(to));
        }
        r
    }

    #[test]
    fn renames_only_registered_leaves() {
        let r = renamer(&[("A", "$t0"), ("B", "$t1")]);
        let e: RecExpr = "(concat (slice A 0 0 16) B 0)".parse().unwrap();
        assert_eq!(
            r.rename_expr(&e).to_string(),
            "(concat (slice $t0 0 0 16) $t1 0)"
        );
    }

    #[test]
    fn operator_symbols_survive_even_when_a_leaf_shares_the_name() {
        // `add` appears both as a binary operator and (pathologically) as a
        // tensor leaf; only the nullary occurrence is renamed.
        let r = renamer(&[("add", "$t0")]);
        let e: RecExpr = "(add add add)".parse().unwrap();
        assert_eq!(r.rename_expr(&e).to_string(), "(add $t0 $t0)");
    }

    #[test]
    fn synthetic_leaves_pass_through() {
        let r = renamer(&[("X", "$t0")]);
        let e: RecExpr = "(add X ~ones[4x4])".parse().unwrap();
        assert_eq!(r.rename_expr(&e).to_string(), "(add $t0 ~ones[4x4])");
    }

    #[test]
    fn facts_rename_by_whole_string_only() {
        let mut r = renamer(&[("X", "$t0")]);
        r.fact(
            "G_d definition of layer0/out".to_owned(),
            "G_d definition of $n0".to_owned(),
        );
        assert_eq!(
            r.rename_fact("G_d definition of layer0/out"),
            "G_d definition of $n0"
        );
        // An unregistered fact — even one containing a registered name as a
        // substring — is left alone.
        assert_eq!(
            r.rename_fact("G_d definition of layer0/out2"),
            "G_d definition of layer0/out2"
        );
    }

    #[test]
    fn rename_proof_covers_all_step_kinds() {
        let mut r = renamer(&[("A", "$t0"), ("B", "$t1")]);
        r.fact(
            "mappings of G_s tensor q".to_owned(),
            "mappings of G_s tensor $i0".to_owned(),
        );
        let before: RecExpr = "(add A B)".parse().unwrap();
        let after: RecExpr = "(add B A)".parse().unwrap();
        let proof = Proof {
            steps: vec![
                ProofStep::Rule {
                    name: "add-comm".to_owned(),
                    forward: true,
                    subst: vec![
                        ("a".to_owned(), "A".parse().unwrap()),
                        ("b".to_owned(), "B".parse().unwrap()),
                    ],
                    before: before.clone(),
                    after: after.clone(),
                },
                ProofStep::Congruence {
                    before: after.clone(),
                    after: before.clone(),
                    children: vec![Proof {
                        steps: vec![ProofStep::Given {
                            fact: "mappings of G_s tensor q".to_owned(),
                            before: "B".parse().unwrap(),
                            after: "A".parse().unwrap(),
                        }],
                    }],
                },
            ],
        };
        let renamed = r.rename_proof(&proof);
        match &renamed.steps[0] {
            ProofStep::Rule { subst, before, .. } => {
                assert_eq!(before.to_string(), "(add $t0 $t1)");
                // Variable names untouched, bound terms renamed.
                assert_eq!(subst[0].0, "a");
                assert_eq!(subst[0].1.to_string(), "$t0");
            }
            other => panic!("expected Rule step, got {other:?}"),
        }
        match &renamed.steps[1] {
            ProofStep::Congruence { children, .. } => match &children[0].steps[0] {
                ProofStep::Given {
                    fact,
                    before,
                    after,
                } => {
                    assert_eq!(fact, "mappings of G_s tensor $i0");
                    assert_eq!(before.to_string(), "$t1");
                    assert_eq!(after.to_string(), "$t0");
                }
                other => panic!("expected Given step, got {other:?}"),
            },
            other => panic!("expected Congruence step, got {other:?}"),
        }
    }
}
