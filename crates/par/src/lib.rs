//! Parallel refinement-checking infrastructure.
//!
//! The checker's per-operator mapping searches are embarrassingly parallel
//! once each operator's producer mappings are available. This crate provides
//! the three engine pieces `entangle`'s scheduler is built from, none of
//! which know anything about graphs or relations:
//!
//! - [`with_pool`]: a scoped-thread worker pool (no `unsafe`, no detached
//!   threads) whose coordinator submits indexed tasks and receives results
//!   in completion order, tagged with the worker that ran them;
//! - [`ShardedCache`]: the cross-operator saturation memo — a sharded,
//!   string-keyed, insert-once map with hit/miss statistics, safe to race
//!   because the canonicalized engine makes every computation of the same
//!   key produce an identical value;
//! - [`Renamer`]: the bijective leaf/fact renaming that moves a per-operator
//!   problem into canonical name space (`$t0, $t1, …`) and its results —
//!   mappings, proofs, given facts — back out.
//!
//! [`available_jobs`] reports the core count used for the default `jobs`.

#![forbid(unsafe_code)]

mod cache;
mod canon;
mod pool;

pub use cache::{CacheStats, ShardedCache};
pub use canon::Renamer;
pub use pool::{with_pool, PoolHandle};

/// The number of worker threads a default-configured check uses: the
/// detected core count, with a floor of 1 when detection fails (e.g. in
/// restricted sandboxes).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
