//! A scoped-thread worker pool with an indexed task queue.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

/// The shared task queue: FIFO of `(index, payload)` plus a shutdown flag.
struct TaskQueue<T> {
    state: Mutex<(VecDeque<(usize, T)>, bool)>,
    ready: Condvar,
}

impl<T> TaskQueue<T> {
    fn new() -> Self {
        TaskQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, idx: usize, task: T) {
        self.state.lock().unwrap().0.push_back((idx, task));
        self.ready.notify_one();
    }

    /// Blocks until a task is available or shutdown; `None` on shutdown.
    fn pop(&self) -> Option<(usize, T)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(t) = state.0.pop_front() {
                return Some(t);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    fn shutdown(&self) {
        self.state.lock().unwrap().1 = true;
        self.ready.notify_all();
    }
}

/// Shuts the queue down even if the coordinator panics, so scoped workers
/// wake up and exit instead of deadlocking the joining scope.
struct ShutdownGuard<'a, T>(&'a TaskQueue<T>);

impl<T> Drop for ShutdownGuard<'_, T> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// The coordinator's handle: submit indexed tasks, receive
/// `(index, worker, result)` triples in completion order.
pub struct PoolHandle<'a, T, R> {
    queue: &'a TaskQueue<T>,
    rx: mpsc::Receiver<(usize, usize, R)>,
    in_flight: usize,
}

impl<T, R> PoolHandle<'_, T, R> {
    /// Enqueues a task for the workers.
    pub fn submit(&mut self, idx: usize, task: T) {
        self.in_flight += 1;
        self.queue.push(idx, task);
    }

    /// Number of submitted tasks whose results have not been received yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Blocks for the next completed task: `(index, worker, result)`.
    ///
    /// # Panics
    ///
    /// Panics when called with nothing in flight (the pool would never
    /// produce a result) or when a worker died mid-task (a worker panic
    /// poisons the whole check — there is no partial recovery).
    pub fn recv(&mut self) -> (usize, usize, R) {
        assert!(self.in_flight > 0, "recv with no task in flight");
        let triple = self.rx.recv().expect("worker thread died");
        self.in_flight -= 1;
        triple
    }
}

/// Runs `coordinator` alongside `jobs` scoped worker threads executing
/// `work` on submitted tasks; returns the coordinator's result once every
/// worker has exited.
///
/// Workers borrow from the caller's stack (the e-graph rewrites, the
/// graphs), which is what makes a dependency-aware scheduler possible
/// without `unsafe` or `'static` bounds — everything rides on
/// [`std::thread::scope`].
///
/// # Examples
///
/// ```
/// let squares = entangle_par::with_pool(
///     4,
///     |_worker, x: u64| x * x,
///     |pool| {
///         for i in 0..10u64 {
///             pool.submit(i as usize, i);
///         }
///         let mut out = vec![0; 10];
///         while pool.in_flight() > 0 {
///             let (idx, _worker, sq) = pool.recv();
///             out[idx] = sq;
///         }
///         out
///     },
/// );
/// assert_eq!(squares[7], 49);
/// ```
pub fn with_pool<T, R, W, F, Out>(jobs: usize, work: W, coordinator: F) -> Out
where
    T: Send,
    R: Send,
    W: Fn(usize, T) -> R + Sync,
    F: FnOnce(&mut PoolHandle<'_, T, R>) -> Out,
{
    let jobs = jobs.max(1);
    let queue = TaskQueue::new();
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        let _guard = ShutdownGuard(&queue);
        for worker in 0..jobs {
            let tx = tx.clone();
            let queue = &queue;
            let work = &work;
            s.spawn(move || {
                while let Some((idx, task)) = queue.pop() {
                    let result = work(idx, task);
                    if tx.send((idx, worker, result)).is_err() {
                        break; // coordinator gone; nothing left to report to
                    }
                }
            });
        }
        drop(tx);
        let mut handle = PoolHandle {
            queue: &queue,
            rx,
            in_flight: 0,
        };
        coordinator(&mut handle)
        // `_guard` drops here (also on panic), shutting the queue down so
        // the scope's implicit join cannot deadlock on sleeping workers.
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_tasks_complete_with_more_tasks_than_workers() {
        let sum = with_pool(
            2,
            |_w, x: usize| x + 1,
            |pool| {
                for i in 0..100 {
                    pool.submit(i, i);
                }
                let mut total = 0;
                while pool.in_flight() > 0 {
                    total += pool.recv().2;
                }
                total
            },
        );
        assert_eq!(sum, (1..=100).sum::<usize>());
    }

    #[test]
    fn workers_report_their_index() {
        let seen = with_pool(
            3,
            |_w, ()| std::thread::current().id(),
            |pool| {
                for i in 0..32 {
                    pool.submit(i, ());
                }
                let mut workers = Vec::new();
                while pool.in_flight() > 0 {
                    let (_, w, _) = pool.recv();
                    workers.push(w);
                }
                workers
            },
        );
        assert!(seen.iter().all(|&w| w < 3));
    }

    #[test]
    fn coordinator_can_submit_dependent_waves() {
        // Second wave depends on the first wave's results, like the
        // checker's dependency-aware dispatch.
        let counter = AtomicUsize::new(0);
        let out = with_pool(
            4,
            |_w, x: usize| {
                counter.fetch_add(1, Ordering::SeqCst);
                x * 2
            },
            |pool| {
                pool.submit(0, 21);
                let (_, _, first) = pool.recv();
                pool.submit(1, first);
                let (_, _, second) = pool.recv();
                second
            },
        );
        assert_eq!(out, 84);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn borrows_caller_stack_without_static_bounds() {
        let data = [10usize, 20, 30];
        let doubled = with_pool(
            2,
            |_w, i: usize| data[i] * 2,
            |pool| {
                for i in 0..data.len() {
                    pool.submit(i, i);
                }
                let mut out = vec![0; data.len()];
                while pool.in_flight() > 0 {
                    let (idx, _, v) = pool.recv();
                    out[idx] = v;
                }
                out
            },
        );
        assert_eq!(doubled, vec![20, 40, 60]);
    }
}
