//! The cross-operator saturation memo: a sharded, insert-once cache.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache hit/miss/size statistics, as reported by `entangle info` and
/// `bench_par`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded map from canonical problem keys to memoized results.
///
/// Sharding bounds lock contention when many workers consult the memo;
/// `insert` keeps the first value stored for a key. Two workers may race to
/// compute the same key, but the canonical-space engine is deterministic, so
/// both compute byte-identical values and whichever insert lands first
/// changes nothing observable. Hit/miss counts are therefore the *only*
/// schedule-dependent output, and the checker reports them as approximate
/// under parallelism.
///
/// # Examples
///
/// ```
/// let cache: entangle_par::ShardedCache<u32> = entangle_par::ShardedCache::new(8);
/// assert!(cache.get("k").is_none());
/// cache.insert("k".to_owned(), 7);
/// assert_eq!(*cache.get("k").unwrap(), 7);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
/// ```
pub struct ShardedCache<V> {
    shards: Vec<Mutex<HashMap<String, Arc<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> ShardedCache<V> {
    /// Creates a cache with `shards` independently locked partitions.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Arc<V>>> {
        // DefaultHasher::new() is deterministic (fixed keys), so the shard
        // layout is reproducible run to run.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks a key up, counting a hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        let found = self.shard(key).lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a value, keeping any existing entry (first insert wins), and
    /// returns the entry actually stored under the key.
    pub fn insert(&self, key: String, value: V) -> Arc<V> {
        let mut shard = self.shard(&key).lock().unwrap();
        shard.entry(key).or_insert_with(|| Arc::new(value)).clone()
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().unwrap().len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_insert_wins() {
        let cache: ShardedCache<u32> = ShardedCache::new(4);
        cache.insert("k".to_owned(), 1);
        let stored = cache.insert("k".to_owned(), 2);
        assert_eq!(*stored, 1);
        assert_eq!(*cache.get("k").unwrap(), 1);
    }

    #[test]
    fn stats_track_hits_misses_entries() {
        let cache: ShardedCache<&'static str> = ShardedCache::new(2);
        assert!(cache.get("a").is_none());
        cache.insert("a".to_owned(), "v");
        cache.insert("b".to_owned(), "w");
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 2));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: ShardedCache<usize> = ShardedCache::new(8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..100 {
                        let key = format!("k{}", (i + t) % 50);
                        if cache.get(&key).is_none() {
                            cache.insert(key.clone(), (i + t) % 50);
                        }
                        // Whatever is stored must equal the key's suffix: a
                        // racing insert stores the same canonical value.
                        let v = cache.get(&key).unwrap();
                        assert_eq!(format!("k{v}"), key);
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 50);
    }
}
