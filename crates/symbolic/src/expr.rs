//! Affine symbolic expressions over integer variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An interned symbolic integer variable.
///
/// Variables are created through [`crate::SymCtx::var`]; the context owns the
/// mapping from indices back to human-readable names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymVar(pub(crate) u32);

impl SymVar {
    /// The interned index of this variable.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a variable from its interned index.
    ///
    /// Intended for interchange formats that persist variables by index;
    /// the caller is responsible for pairing it with the right
    /// [`crate::SymCtx`].
    pub fn from_index(index: u32) -> SymVar {
        SymVar(index)
    }
}

/// An affine expression `c + Σ aᵢ·xᵢ` over symbolic integer variables.
///
/// This is the complete symbolic-scalar language of the checker: the paper
/// observes that captured graphs only apply "simple operations (e.g.,
/// addition)" to symbolic scalars, and affine expressions are closed under
/// all of them (addition, subtraction, negation, multiplication by a
/// constant).
///
/// `SymExpr` implements [`Add`], [`Sub`], [`Neg`] and [`Mul<i64>`]; a purely
/// concrete value is built with [`SymExpr::constant`].
///
/// # Examples
///
/// ```
/// use entangle_symbolic::{SymCtx, SymExpr};
///
/// let mut ctx = SymCtx::new();
/// let n = ctx.var("n");
/// let e = n.clone() * 2 + SymExpr::constant(3);
/// assert_eq!(e.to_string(), "2*s0 + 3");
/// assert!(e.as_const().is_none());
/// assert_eq!(SymExpr::constant(7).as_const(), Some(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymExpr {
    /// Variable coefficients; invariant: no zero coefficients are stored.
    pub(crate) terms: BTreeMap<SymVar, i64>,
    pub(crate) constant: i64,
}

impl SymExpr {
    /// A constant expression.
    pub fn constant(value: i64) -> Self {
        SymExpr {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// The expression `0`.
    pub fn zero() -> Self {
        Self::constant(0)
    }

    /// A single variable with coefficient one.
    pub fn from_var(var: SymVar) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(var, 1);
        SymExpr { terms, constant: 0 }
    }

    /// Returns the concrete value if this expression has no variables.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Returns `true` if this expression mentions no variables.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// The variables mentioned by this expression.
    pub fn vars(&self) -> impl Iterator<Item = SymVar> + '_ {
        self.terms.keys().copied()
    }

    /// The `(variable, coefficient)` terms, in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (SymVar, i64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// The constant part `c` of `c + Σ aᵢ·xᵢ`.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Builds an expression from a constant and `(variable, coefficient)`
    /// terms; zero coefficients are dropped.
    pub fn from_terms(constant: i64, terms: impl IntoIterator<Item = (SymVar, i64)>) -> SymExpr {
        let mut e = SymExpr {
            terms: terms.into_iter().collect(),
            constant,
        };
        e.normalize();
        e
    }

    /// Evaluates the expression under a concrete assignment.
    ///
    /// Variables absent from `assignment` evaluate to zero.
    pub fn eval(&self, assignment: &BTreeMap<SymVar, i64>) -> i64 {
        let mut acc = self.constant;
        for (v, coeff) in &self.terms {
            acc += coeff * assignment.get(v).copied().unwrap_or(0);
        }
        acc
    }

    fn normalize(&mut self) {
        self.terms.retain(|_, c| *c != 0);
    }

    /// Renders the expression using a resolver for variable names.
    pub(crate) fn display_with<'a, F>(&'a self, resolve: F) -> String
    where
        F: Fn(SymVar) -> String + 'a,
    {
        if self.terms.is_empty() {
            return self.constant.to_string();
        }
        let mut out = String::new();
        for (i, (v, c)) in self.terms.iter().enumerate() {
            let name = resolve(*v);
            if i == 0 {
                match *c {
                    1 => out.push_str(&name),
                    -1 => out.push_str(&format!("-{name}")),
                    c => out.push_str(&format!("{c}*{name}")),
                }
            } else {
                let (sign, mag) = if *c < 0 { ("- ", -c) } else { ("+ ", *c) };
                out.push(' ');
                out.push_str(sign);
                if mag == 1 {
                    out.push_str(&name);
                } else {
                    out.push_str(&format!("{mag}*{name}"));
                }
            }
        }
        if self.constant != 0 {
            let (sign, mag) = if self.constant < 0 {
                ("- ", -self.constant)
            } else {
                ("+ ", self.constant)
            };
            out.push(' ');
            out.push_str(sign);
            out.push_str(&mag.to_string());
        }
        out
    }
}

impl Default for SymExpr {
    fn default() -> Self {
        Self::zero()
    }
}

impl From<i64> for SymExpr {
    fn from(value: i64) -> Self {
        Self::constant(value)
    }
}

impl From<SymVar> for SymExpr {
    fn from(var: SymVar) -> Self {
        Self::from_var(var)
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|v| format!("s{}", v.0)))
    }
}

impl Add for SymExpr {
    type Output = SymExpr;
    fn add(mut self, rhs: SymExpr) -> SymExpr {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0) += c;
        }
        self.constant += rhs.constant;
        self.normalize();
        self
    }
}

impl Add<i64> for SymExpr {
    type Output = SymExpr;
    fn add(mut self, rhs: i64) -> SymExpr {
        self.constant += rhs;
        self
    }
}

impl Sub for SymExpr {
    type Output = SymExpr;
    fn sub(self, rhs: SymExpr) -> SymExpr {
        self + (-rhs)
    }
}

impl Sub<i64> for SymExpr {
    type Output = SymExpr;
    fn sub(mut self, rhs: i64) -> SymExpr {
        self.constant -= rhs;
        self
    }
}

impl Neg for SymExpr {
    type Output = SymExpr;
    fn neg(mut self) -> SymExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<i64> for SymExpr {
    type Output = SymExpr;
    fn mul(mut self, rhs: i64) -> SymExpr {
        if rhs == 0 {
            return SymExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}
