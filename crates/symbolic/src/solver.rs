//! Fourier–Motzkin-based decision procedure for the affine fragment.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{SymExpr, SymVar};

/// A comparison relation between two symbolic expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `lhs == rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
    /// `lhs <= rhs`
    Le,
    /// `lhs < rhs`
    Lt,
    /// `lhs >= rhs`
    Ge,
    /// `lhs > rhs`
    Gt,
}

impl Rel {
    /// The relation with both sides swapped (`a R b` ⇔ `b R.flip() a`).
    pub fn flip(self) -> Rel {
        match self {
            Rel::Eq => Rel::Eq,
            Rel::Ne => Rel::Ne,
            Rel::Le => Rel::Ge,
            Rel::Lt => Rel::Gt,
            Rel::Ge => Rel::Le,
            Rel::Gt => Rel::Lt,
        }
    }

    /// The logical negation of the relation.
    pub fn negate(self) -> Rel {
        match self {
            Rel::Eq => Rel::Ne,
            Rel::Ne => Rel::Eq,
            Rel::Le => Rel::Gt,
            Rel::Lt => Rel::Ge,
            Rel::Ge => Rel::Lt,
            Rel::Gt => Rel::Le,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rel::Eq => "==",
            Rel::Ne => "!=",
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Ge => ">=",
            Rel::Gt => ">",
        };
        f.write_str(s)
    }
}

/// The verdict of a symbolic query.
///
/// Both `Proved` and `Refuted` are sound; `Unknown` means the affine fragment
/// could not settle the query and the caller must be conservative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// The relation holds under every assignment satisfying the assumptions.
    Proved,
    /// The negated relation holds under every satisfying assignment.
    Refuted,
    /// Neither could be established.
    Unknown,
}

impl Truth {
    /// `true` only when the query was positively proved.
    pub fn is_proved(self) -> bool {
        self == Truth::Proved
    }
}

/// A normalized linear constraint `expr ⩽ 0` (when `strict` is false) or
/// `expr < 0` (when `strict` is true), with `i128` coefficients.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LinIneq {
    coeffs: BTreeMap<SymVar, i128>,
    constant: i128,
    strict: bool,
}

impl LinIneq {
    fn from_expr(e: &SymExpr, strict: bool) -> Self {
        LinIneq {
            coeffs: e.terms.iter().map(|(v, c)| (*v, *c as i128)).collect(),
            constant: e.constant as i128,
            strict,
        }
    }

    fn is_trivial(&self) -> Option<bool> {
        if self.coeffs.is_empty() {
            Some(if self.strict {
                self.constant < 0
            } else {
                self.constant <= 0
            })
        } else {
            None
        }
    }

    fn reduce(&mut self) {
        self.coeffs.retain(|_, c| *c != 0);
        let mut g: i128 = self.constant.unsigned_abs() as i128;
        for c in self.coeffs.values() {
            g = gcd(g, c.unsigned_abs() as i128);
        }
        if g > 1 {
            for c in self.coeffs.values_mut() {
                *c /= g;
            }
            self.constant /= g;
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The symbolic context: a variable interner plus a set of assumed linear
/// constraints, with a query interface.
///
/// This is the stand-in for the paper's SMT-LIB encoding (§5 "Handling
/// Symbolic Scalars"). Lemma conditions call [`SymCtx::check`] to decide
/// whether, e.g., a slice boundary coincides with a concat seam.
///
/// # Examples
///
/// ```
/// use entangle_symbolic::{SymCtx, SymExpr, Rel, Truth};
///
/// let mut ctx = SymCtx::new();
/// let a = ctx.var("a");
/// let b = ctx.var("b");
/// ctx.assume(a.clone(), Rel::Le, b.clone());
/// assert_eq!(
///     ctx.check(&(a + SymExpr::constant(1)), Rel::Le, &(b + SymExpr::constant(1))),
///     Truth::Proved
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymCtx {
    names: Vec<String>,
    /// Assumed constraints, each `expr (<|<=) 0`.
    assumptions: Vec<LinIneq>,
}

impl SymCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a fresh symbolic variable and returns it as an expression.
    ///
    /// Calling `var` twice with the same name returns the *same* variable, so
    /// graphs captured separately can share symbols by name.
    pub fn var(&mut self, name: &str) -> SymExpr {
        if let Some(idx) = self.names.iter().position(|n| n == name) {
            return SymExpr::from_var(SymVar(idx as u32));
        }
        let idx = self.names.len() as u32;
        self.names.push(name.to_owned());
        SymExpr::from_var(SymVar(idx))
    }

    /// The interned name of a variable, if it exists.
    pub fn name(&self, var: SymVar) -> Option<&str> {
        self.names.get(var.0 as usize).map(String::as_str)
    }

    /// Number of interned variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of recorded assumptions.
    pub fn num_assumptions(&self) -> usize {
        self.assumptions.len()
    }

    /// Records the user constraint `lhs rel rhs`.
    ///
    /// `Ne` assumptions are not representable in the conjunctive fragment and
    /// are ignored (this only ever costs completeness, never soundness).
    pub fn assume(&mut self, lhs: SymExpr, rel: Rel, rhs: SymExpr) {
        let diff = lhs - rhs; // constraint is about `diff ⩽/⩾/== 0`
        match rel {
            Rel::Eq => {
                self.push(LinIneq::from_expr(&diff, false));
                self.push(LinIneq::from_expr(&(-diff), false));
            }
            Rel::Le => self.push(LinIneq::from_expr(&diff, false)),
            Rel::Lt => self.push(LinIneq::from_expr(&diff, true)),
            Rel::Ge => self.push(LinIneq::from_expr(&(-diff), false)),
            Rel::Gt => self.push(LinIneq::from_expr(&(-diff), true)),
            Rel::Ne => {}
        }
    }

    fn push(&mut self, mut c: LinIneq) {
        c.reduce();
        self.assumptions.push(c);
    }

    /// Decides whether `lhs rel rhs` holds under the recorded assumptions.
    ///
    /// Constant-only queries are decided exactly. Symbolic queries are
    /// decided by refuting the negation with Fourier–Motzkin elimination:
    /// the answer is [`Truth::Proved`] if assumptions ∧ ¬(lhs rel rhs) is
    /// infeasible over the rationals, [`Truth::Refuted`] if assumptions ∧
    /// (lhs rel rhs) is infeasible, otherwise [`Truth::Unknown`].
    pub fn check(&self, lhs: &SymExpr, rel: Rel, rhs: &SymExpr) -> Truth {
        let diff = lhs.clone() - rhs.clone();
        if let Some(c) = diff.as_const() {
            let holds = match rel {
                Rel::Eq => c == 0,
                Rel::Ne => c != 0,
                Rel::Le => c <= 0,
                Rel::Lt => c < 0,
                Rel::Ge => c >= 0,
                Rel::Gt => c > 0,
            };
            return if holds { Truth::Proved } else { Truth::Refuted };
        }

        if self.entails(&diff, rel) {
            return Truth::Proved;
        }
        if self.entails(&diff, rel.negate()) {
            return Truth::Refuted;
        }
        Truth::Unknown
    }

    /// Convenience: decides equality of two expressions.
    pub fn check_eq(&self, lhs: &SymExpr, rhs: &SymExpr) -> Truth {
        self.check(lhs, Rel::Eq, rhs)
    }

    /// Returns `true` if assumptions entail `diff rel 0`.
    fn entails(&self, diff: &SymExpr, rel: Rel) -> bool {
        // To entail `diff rel 0`, refute assumptions ∧ ¬(diff rel 0).
        // The negation of Eq is a disjunction (< 0 ∨ > 0): both disjuncts
        // must be infeasible.
        match rel.negate() {
            Rel::Le => self.infeasible_with(&[LinIneq::from_expr(diff, false)]),
            Rel::Lt => self.infeasible_with(&[LinIneq::from_expr(diff, true)]),
            Rel::Ge => self.infeasible_with(&[LinIneq::from_expr(&(-diff.clone()), false)]),
            Rel::Gt => self.infeasible_with(&[LinIneq::from_expr(&(-diff.clone()), true)]),
            Rel::Eq => self.infeasible_with(&[
                LinIneq::from_expr(diff, false),
                LinIneq::from_expr(&(-diff.clone()), false),
            ]),
            Rel::Ne => {
                // ¬(diff != 0) is diff == 0: refute both strict sides.
                self.infeasible_with(&[LinIneq::from_expr(diff, true)])
                    && self.infeasible_with(&[LinIneq::from_expr(&(-diff.clone()), true)])
            }
        }
    }

    /// Fourier–Motzkin: is `assumptions ∧ extra` infeasible over ℚ?
    fn infeasible_with(&self, extra: &[LinIneq]) -> bool {
        let mut system: Vec<LinIneq> = self.assumptions.clone();
        system.extend(extra.iter().cloned());
        // Bound the work: FM is worst-case exponential, but lemma-condition
        // systems are tiny. Bail out (answer "feasible", i.e. unproven) if
        // the system explodes.
        const MAX_CONSTRAINTS: usize = 4096;
        loop {
            // Check for trivial contradictions and drop trivially-true rows.
            let mut next = Vec::with_capacity(system.len());
            for c in system {
                match c.is_trivial() {
                    Some(true) => {}
                    Some(false) => return true,
                    None => next.push(c),
                }
            }
            system = next;
            // Pick the variable occurring in the fewest upper×lower pairs.
            let Some(var) = pick_variable(&system) else {
                return false; // no variables left, no contradiction found
            };
            let (mut lowers, mut uppers, mut rest) = (vec![], vec![], vec![]);
            for c in system {
                match c.coeffs.get(&var).copied().unwrap_or(0) {
                    0 => rest.push(c),
                    a if a > 0 => uppers.push(c), // a·v + … ≤ 0  ⇒ upper bound on v
                    _ => lowers.push(c),
                }
            }
            for u in &uppers {
                for l in &lowers {
                    if let Some(combined) = combine(u, l, var) {
                        rest.push(combined);
                    } else {
                        return false; // overflow — give up soundly
                    }
                }
            }
            if rest.len() > MAX_CONSTRAINTS {
                return false;
            }
            system = rest;
        }
    }
}

/// Chooses the elimination variable minimizing the pair product, a standard
/// FM heuristic that keeps the intermediate system small.
fn pick_variable(system: &[LinIneq]) -> Option<SymVar> {
    let mut counts: BTreeMap<SymVar, (usize, usize)> = BTreeMap::new();
    for c in system {
        for (v, a) in &c.coeffs {
            let entry = counts.entry(*v).or_insert((0, 0));
            if *a > 0 {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }
    counts
        .into_iter()
        .min_by_key(|(_, (u, l))| u * l)
        .map(|(v, _)| v)
}

/// Combines an upper-bound row (positive coefficient on `var`) with a
/// lower-bound row (negative coefficient), eliminating `var`.
fn combine(upper: &LinIneq, lower: &LinIneq, var: SymVar) -> Option<LinIneq> {
    let a = upper.coeffs[&var]; // > 0
    let b = -lower.coeffs[&var]; // > 0
    let mut coeffs: BTreeMap<SymVar, i128> = BTreeMap::new();
    for (v, c) in &upper.coeffs {
        if *v != var {
            *coeffs.entry(*v).or_insert(0) += c.checked_mul(b)?;
        }
    }
    for (v, c) in &lower.coeffs {
        if *v != var {
            *coeffs.entry(*v).or_insert(0) += c.checked_mul(a)?;
        }
    }
    let constant = upper
        .constant
        .checked_mul(b)?
        .checked_add(lower.constant.checked_mul(a)?)?;
    let mut out = LinIneq {
        coeffs,
        constant,
        strict: upper.strict || lower.strict,
    };
    out.reduce();
    Some(out)
}
