//! Symbolic scalar encoding and a linear integer arithmetic decision procedure.
//!
//! ENTANGLE's captured computation graphs carry no tensor data, only metadata,
//! and some of that metadata (shapes, slice bounds) is *symbolic*: a scalar
//! extracted from a tensor whose concrete value is unknown at check time. The
//! paper encodes such scalars in SMT-LIB and asks an SMT solver whether, under
//! user-provided constraints, two scalars are equal (or ordered). It also notes
//! that "only simple operations (e.g., addition) are used on symbolic scalars",
//! so the full power of SMT is never needed.
//!
//! This crate is the stand-in for that SMT-LIB dependency: it implements the
//! fragment that is actually exercised — affine expressions over symbolic
//! integer variables, with linear equality/inequality constraints — and
//! decides queries by [Fourier–Motzkin elimination] over the rationals.
//! Rational infeasibility implies integer infeasibility, so every `Proved`
//! answer is sound; when the relaxation is satisfiable the answer is
//! [`Truth::Unknown`], which callers treat conservatively (a lemma condition
//! that cannot be proved simply does not fire, costing completeness but never
//! soundness — mirroring §3.3 of the paper).
//!
//! [Fourier–Motzkin elimination]:
//!     https://en.wikipedia.org/wiki/Fourier%E2%80%93Motzkin_elimination
//!
//! # Examples
//!
//! ```
//! use entangle_symbolic::{SymCtx, SymExpr, Rel, Truth};
//!
//! let mut ctx = SymCtx::new();
//! let n = ctx.var("n");
//! // The user tells us the sequence length is positive and even.
//! ctx.assume(n.clone(), Rel::Ge, SymExpr::constant(2));
//!
//! // Is  n/2 + n/2 == n ?  (we phrase halves as a fresh var h with 2h = n)
//! let h = ctx.var("h");
//! ctx.assume(h.clone() * 2, Rel::Eq, n.clone());
//! assert_eq!(ctx.check(&(h.clone() + h.clone()), Rel::Eq, &n), Truth::Proved);
//! // Is  h >= n ?  Not provable (h = n/2 < n whenever n > 0), and in fact
//! // refutable:
//! assert_eq!(ctx.check(&h, Rel::Ge, &n), Truth::Refuted);
//! ```

#![forbid(unsafe_code)]

mod expr;
mod solver;

pub use expr::{SymExpr, SymVar};
pub use solver::{Rel, SymCtx, Truth};

#[cfg(test)]
mod tests;
