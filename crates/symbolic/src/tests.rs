use std::collections::BTreeMap;

use crate::{Rel, SymCtx, SymExpr, Truth};

#[test]
fn constant_arithmetic() {
    let a = SymExpr::constant(3) + SymExpr::constant(4);
    assert_eq!(a.as_const(), Some(7));
    let b = SymExpr::constant(10) - SymExpr::constant(4);
    assert_eq!(b.as_const(), Some(6));
    let c = SymExpr::constant(5) * 3;
    assert_eq!(c.as_const(), Some(15));
    let d = -SymExpr::constant(5);
    assert_eq!(d.as_const(), Some(-5));
}

#[test]
fn constant_queries_are_exact() {
    let ctx = SymCtx::new();
    let two = SymExpr::constant(2);
    let three = SymExpr::constant(3);
    assert_eq!(ctx.check(&two, Rel::Lt, &three), Truth::Proved);
    assert_eq!(ctx.check(&two, Rel::Eq, &three), Truth::Refuted);
    assert_eq!(ctx.check(&two, Rel::Ne, &three), Truth::Proved);
    assert_eq!(ctx.check(&three, Rel::Le, &three), Truth::Proved);
    assert_eq!(ctx.check(&three, Rel::Gt, &three), Truth::Refuted);
}

#[test]
fn var_interning_by_name() {
    let mut ctx = SymCtx::new();
    let a1 = ctx.var("a");
    let a2 = ctx.var("a");
    assert_eq!(a1, a2);
    let b = ctx.var("b");
    assert_ne!(a1, b);
    assert_eq!(ctx.num_vars(), 2);
}

#[test]
fn vars_cancel() {
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    let e = a.clone() - a.clone();
    assert_eq!(e.as_const(), Some(0));
    // x - x == 0 is decidable without any assumptions.
    assert_eq!(ctx.check(&e, Rel::Eq, &SymExpr::zero()), Truth::Proved);
}

#[test]
fn equality_assumption_propagates() {
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    let b = ctx.var("b");
    ctx.assume(a.clone(), Rel::Eq, b.clone());
    assert_eq!(ctx.check_eq(&a, &b), Truth::Proved);
    assert_eq!(
        ctx.check_eq(
            &(a.clone() + SymExpr::constant(5)),
            &(b.clone() + SymExpr::constant(5))
        ),
        Truth::Proved
    );
    assert_eq!(
        ctx.check_eq(&(a * 2), &(b * 2 + SymExpr::constant(1))),
        Truth::Refuted
    );
}

#[test]
fn chained_inequalities() {
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    let b = ctx.var("b");
    let c = ctx.var("c");
    ctx.assume(a.clone(), Rel::Lt, b.clone());
    ctx.assume(b.clone(), Rel::Lt, c.clone());
    assert_eq!(ctx.check(&a, Rel::Lt, &c), Truth::Proved);
    assert_eq!(ctx.check(&c, Rel::Le, &a), Truth::Refuted);
    assert_eq!(ctx.check(&a, Rel::Ne, &c), Truth::Proved);
}

#[test]
fn unconstrained_is_unknown() {
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    let b = ctx.var("b");
    assert_eq!(ctx.check_eq(&a, &b), Truth::Unknown);
    assert_eq!(ctx.check(&a, Rel::Le, &b), Truth::Unknown);
}

#[test]
fn halved_dims() {
    // The doc-example scenario: h is half of n.
    let mut ctx = SymCtx::new();
    let n = ctx.var("n");
    let h = ctx.var("h");
    ctx.assume(h.clone() * 2, Rel::Eq, n.clone());
    ctx.assume(n.clone(), Rel::Ge, SymExpr::constant(2));
    assert_eq!(ctx.check_eq(&(h.clone() + h.clone()), &n), Truth::Proved);
    assert_eq!(ctx.check(&h, Rel::Lt, &n), Truth::Proved);
    assert_eq!(ctx.check(&h, Rel::Ge, &SymExpr::constant(1)), Truth::Proved);
}

#[test]
fn sharded_sequence_offsets() {
    // SP rank offsets: rank r owns [r*chunk, (r+1)*chunk); seams must align.
    let mut ctx = SymCtx::new();
    let chunk = ctx.var("chunk");
    ctx.assume(chunk.clone(), Rel::Gt, SymExpr::constant(0));
    let end0 = chunk.clone();
    let start1 = chunk.clone();
    assert_eq!(ctx.check_eq(&end0, &start1), Truth::Proved);
    // A buggy offset (start1 = chunk - 1) is refutable.
    let bad = chunk.clone() - SymExpr::constant(1);
    assert_eq!(ctx.check_eq(&end0, &bad), Truth::Refuted);
}

#[test]
fn infeasible_assumptions_prove_anything() {
    // Classic vacuous truth: with contradictory assumptions, everything is
    // provable. Callers never build contradictory contexts, but the solver
    // must not crash or loop.
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    ctx.assume(a.clone(), Rel::Lt, SymExpr::constant(0));
    ctx.assume(a.clone(), Rel::Gt, SymExpr::constant(0));
    assert_eq!(ctx.check_eq(&a, &SymExpr::constant(42)), Truth::Proved);
}

#[test]
fn eval_with_assignment() {
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    let b = ctx.var("b");
    let e = a.clone() * 3 + b.clone() - SymExpr::constant(2);
    let mut assignment = BTreeMap::new();
    for v in e.vars() {
        // a is variable index 0, b is 1.
        assignment.insert(v, (v.index() as i64 + 1) * 10);
    }
    // 3*10 + 20 - 2
    assert_eq!(e.eval(&assignment), 48);
    let _ = (a, b);
}

#[test]
fn display_formats() {
    let mut ctx = SymCtx::new();
    let a = ctx.var("alpha");
    let e = a.clone() * 2 - SymExpr::constant(3);
    // Display uses anonymous names at the expression level.
    assert_eq!(e.to_string(), "2*s0 - 3");
    assert_eq!(ctx.name(a.vars().next().unwrap()), Some("alpha"));
    assert_eq!(SymExpr::constant(-7).to_string(), "-7");
}

#[test]
fn rel_flip_negate() {
    assert_eq!(Rel::Lt.flip(), Rel::Gt);
    assert_eq!(Rel::Le.negate(), Rel::Gt);
    assert_eq!(Rel::Eq.negate(), Rel::Ne);
    assert_eq!(Rel::Ne.flip(), Rel::Ne);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_expr(nvars: usize) -> impl Strategy<Value = (Vec<i64>, i64)> {
        (proptest::collection::vec(-5i64..=5, nvars), -20i64..=20)
    }

    fn to_expr(ctx: &mut SymCtx, coeffs: &[i64], constant: i64) -> SymExpr {
        let mut e = SymExpr::constant(constant);
        for (i, c) in coeffs.iter().enumerate() {
            let v = ctx.var(&format!("v{i}"));
            e = e + v * *c;
        }
        e
    }

    proptest! {
        /// If the solver proves `lhs rel rhs` from assumptions, then every
        /// concrete assignment satisfying the assumptions must satisfy the
        /// conclusion: soundness of `Proved`.
        #[test]
        fn proved_implies_concrete(
            (ac, a0) in small_expr(3),
            (bc, b0) in small_expr(3),
            assignment in proptest::collection::vec(-10i64..=10, 3),
        ) {
            let mut ctx = SymCtx::new();
            let lhs = to_expr(&mut ctx, &ac, a0);
            let rhs = to_expr(&mut ctx, &bc, b0);
            // Assume the assignment's facts: v_i == assignment[i].
            for (i, val) in assignment.iter().enumerate() {
                let v = ctx.var(&format!("v{i}"));
                ctx.assume(v, Rel::Eq, SymExpr::constant(*val));
            }
            let mut env = std::collections::BTreeMap::new();
            for (i, val) in assignment.iter().enumerate() {
                let var = ctx.var(&format!("v{i}")).vars().next().unwrap();
                env.insert(var, *val);
            }
            let l = lhs.eval(&env);
            let r = rhs.eval(&env);
            for rel in [Rel::Eq, Rel::Ne, Rel::Le, Rel::Lt, Rel::Ge, Rel::Gt] {
                let concrete = match rel {
                    Rel::Eq => l == r,
                    Rel::Ne => l != r,
                    Rel::Le => l <= r,
                    Rel::Lt => l < r,
                    Rel::Ge => l >= r,
                    Rel::Gt => l > r,
                };
                match ctx.check(&lhs, rel, &rhs) {
                    Truth::Proved => prop_assert!(concrete, "{lhs} {rel} {rhs} proved but false"),
                    Truth::Refuted => prop_assert!(!concrete, "{lhs} {rel} {rhs} refuted but true"),
                    Truth::Unknown => {}
                }
            }
        }

        /// Expression algebra matches i64 arithmetic under evaluation.
        #[test]
        fn expr_algebra_matches_eval(
            (ac, a0) in small_expr(4),
            (bc, b0) in small_expr(4),
            assignment in proptest::collection::vec(-100i64..=100, 4),
            k in -7i64..=7,
        ) {
            let mut ctx = SymCtx::new();
            let lhs = to_expr(&mut ctx, &ac, a0);
            let rhs = to_expr(&mut ctx, &bc, b0);
            let mut env = std::collections::BTreeMap::new();
            for (i, val) in assignment.iter().enumerate() {
                let var = ctx.var(&format!("v{i}")).vars().next().unwrap();
                env.insert(var, *val);
            }
            let l = lhs.eval(&env);
            let r = rhs.eval(&env);
            prop_assert_eq!((lhs.clone() + rhs.clone()).eval(&env), l + r);
            prop_assert_eq!((lhs.clone() - rhs.clone()).eval(&env), l - r);
            prop_assert_eq!((-lhs.clone()).eval(&env), -l);
            prop_assert_eq!((lhs.clone() * k).eval(&env), l * k);
        }
    }
}

#[test]
fn strict_and_nonstrict_mix() {
    // a < b together with b <= a is contradictory: anything is provable,
    // and the solver must not loop.
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    let b = ctx.var("b");
    ctx.assume(a.clone(), Rel::Lt, b.clone());
    ctx.assume(b.clone(), Rel::Le, a.clone());
    assert_eq!(ctx.check_eq(&a, &b), Truth::Proved);
}

#[test]
fn strictness_matters() {
    // a <= b does NOT prove a < b, but a+1 <= b does.
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    let b = ctx.var("b");
    ctx.assume(a.clone(), Rel::Le, b.clone());
    assert_eq!(ctx.check(&a, Rel::Lt, &b), Truth::Unknown);
    let mut ctx2 = SymCtx::new();
    let a = ctx2.var("a");
    let b = ctx2.var("b");
    ctx2.assume(a.clone() + SymExpr::constant(1), Rel::Le, b.clone());
    assert_eq!(ctx2.check(&a, Rel::Lt, &b), Truth::Proved);
}

#[test]
fn coefficient_scaling_is_sound() {
    // 2a <= 2b entails a <= b over the rationals.
    let mut ctx = SymCtx::new();
    let a = ctx.var("a");
    let b = ctx.var("b");
    ctx.assume(a.clone() * 2, Rel::Le, b.clone() * 2);
    assert_eq!(ctx.check(&a, Rel::Le, &b), Truth::Proved);
}

#[test]
fn many_variable_elimination_terminates() {
    // A ring of constraints over 10 variables; the FM heuristic keeps the
    // intermediate systems small and the query decides quickly.
    let mut ctx = SymCtx::new();
    let vars: Vec<SymExpr> = (0..10).map(|i| ctx.var(&format!("x{i}"))).collect();
    for w in vars.windows(2) {
        ctx.assume(w[0].clone(), Rel::Le, w[1].clone());
    }
    assert_eq!(ctx.check(&vars[0], Rel::Le, &vars[9]), Truth::Proved);
    assert_eq!(ctx.check(&vars[9], Rel::Le, &vars[0]), Truth::Unknown);
}
