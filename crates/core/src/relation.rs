//! Relations: sets of (tensor, clean-expression) mappings (§3.2).

use std::collections::BTreeMap;
use std::fmt;

use entangle_egraph::RecExpr;
use entangle_ir::{Graph, IrError, Shape, TensorId};
use entangle_lemmas::{decode_op, Meta};

/// A relation from `G_s` tensors to expressions over `G_d` tensors.
///
/// Each entry pairs a `G_s` tensor with one or more expressions whose leaves
/// are `G_d` tensor *names*; several mappings per tensor model replication
/// (§3.2: "a relation might provide several mappings for the same tensor").
///
/// Built through [`Relation::builder`], which validates each expression's
/// shape against the `G_s` tensor it maps.
///
/// Entries are kept ordered by `G_s` tensor id (and mappings in insertion
/// order), so iteration — and everything rendered from it, including the
/// JSON certificate interchange — is deterministic and byte-stable.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    map: BTreeMap<TensorId, Vec<RecExpr>>,
}

impl Relation {
    /// An empty relation.
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Starts a validated builder for an input relation from `gs` to `gd`.
    pub fn builder<'a>(gs: &'a Graph, gd: &'a Graph) -> RelationBuilder<'a> {
        RelationBuilder {
            gs,
            gd,
            rel: Relation::new(),
        }
    }

    /// Adds a mapping (unvalidated; prefer the builder for user input).
    pub fn insert(&mut self, tensor: TensorId, expr: RecExpr) {
        let entry = self.map.entry(tensor).or_default();
        if !entry.contains(&expr) {
            entry.push(expr);
        }
    }

    /// The mappings recorded for a tensor.
    pub fn mappings(&self, tensor: TensorId) -> Option<&[RecExpr]> {
        self.map.get(&tensor).map(Vec::as_slice)
    }

    /// `true` if the tensor has at least one mapping.
    pub fn contains(&self, tensor: TensorId) -> bool {
        self.map.contains_key(&tensor)
    }

    /// Number of mapped tensors.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no tensor is mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(tensor, expressions)` pairs, ordered by tensor id.
    pub fn iter(&self) -> impl Iterator<Item = (TensorId, &[RecExpr])> {
        self.map.iter().map(|(t, e)| (*t, e.as_slice()))
    }

    /// Is the relation *complete* for the given tensors (§3.2): does it map
    /// every one of them?
    pub fn is_complete_for(&self, tensors: &[TensorId]) -> bool {
        tensors.iter().all(|t| self.contains(*t))
    }

    /// Renders the relation with `G_s` tensor names resolved through `gs`.
    pub fn display<'a>(&'a self, gs: &'a Graph) -> RelationDisplay<'a> {
        RelationDisplay { rel: self, gs }
    }
}

/// Display adapter produced by [`Relation::display`].
pub struct RelationDisplay<'a> {
    rel: &'a Relation,
    gs: &'a Graph,
}

impl fmt::Display for RelationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, exprs) in &self.rel.map {
            let name = &self.gs.tensor(*t).name;
            for e in exprs {
                writeln!(f, "  {name} -> {e}")?;
            }
        }
        Ok(())
    }
}

/// Validating builder for input relations.
///
/// Each mapping is parsed from the paper's s-expression syntax, its leaves
/// are resolved against `G_d`'s tensor names, and its shape is inferred and
/// compared against the `G_s` tensor — malformed input relations are the
/// most common user error, and this is where they surface.
pub struct RelationBuilder<'a> {
    gs: &'a Graph,
    gd: &'a Graph,
    rel: Relation,
}

impl<'a> RelationBuilder<'a> {
    /// Maps the `G_s` tensor named `gs_tensor` to `expr` (s-expression over
    /// `G_d` tensor names).
    ///
    /// # Errors
    ///
    /// Rejects unknown tensor names on either side, unparsable expressions,
    /// and expressions whose inferred shape or dtype disagree with the
    /// `G_s` tensor.
    pub fn map(&mut self, gs_tensor: &str, expr: &str) -> Result<&mut Self, IrError> {
        let t = self
            .gs
            .tensor_by_name(gs_tensor)
            .ok_or_else(|| IrError::UnknownTensor(format!("{gs_tensor} in G_s")))?;
        let parsed: RecExpr = expr
            .parse()
            .map_err(|e| IrError::Invalid(format!("mapping for {gs_tensor}: {e}")))?;
        let (shape, dtype) = infer_expr_meta(&parsed, self.gd)?;
        if shape != t.shape {
            return Err(IrError::Shape(format!(
                "mapping for {gs_tensor}: expression has shape {shape}, tensor has {}",
                t.shape
            )));
        }
        if dtype != t.dtype {
            return Err(IrError::Shape(format!(
                "mapping for {gs_tensor}: expression has dtype {dtype}, tensor has {}",
                t.dtype
            )));
        }
        self.rel.insert(t.id, parsed);
        Ok(self)
    }

    /// Maps a `G_s` tensor to a single identical `G_d` tensor.
    ///
    /// # Errors
    ///
    /// Same as [`RelationBuilder::map`].
    pub fn identity(&mut self, gs_tensor: &str, gd_tensor: &str) -> Result<&mut Self, IrError> {
        self.map(gs_tensor, gd_tensor)
    }

    /// Maps a `G_s` tensor to each of several replicas (one identity mapping
    /// per replica), modeling replicated inputs.
    ///
    /// # Errors
    ///
    /// Same as [`RelationBuilder::map`].
    pub fn replicated(
        &mut self,
        gs_tensor: &str,
        gd_tensors: &[&str],
    ) -> Result<&mut Self, IrError> {
        for gd in gd_tensors {
            self.map(gs_tensor, gd)?;
        }
        Ok(self)
    }

    /// Maps a `G_s` tensor to the concatenation of shards along `dim`
    /// (left-folded binary concats, matching the e-graph lowering).
    ///
    /// # Errors
    ///
    /// Same as [`RelationBuilder::map`].
    pub fn sharded(
        &mut self,
        gs_tensor: &str,
        gd_tensors: &[&str],
        dim: usize,
    ) -> Result<&mut Self, IrError> {
        let mut expr = gd_tensors
            .first()
            .ok_or_else(|| IrError::Invalid("sharded mapping needs shards".into()))?
            .to_string();
        for shard in &gd_tensors[1..] {
            expr = format!("(concat {expr} {shard} {dim})");
        }
        self.map(gs_tensor, &expr)
    }

    /// Finishes the builder.
    pub fn build(&mut self) -> Relation {
        std::mem::take(&mut self.rel)
    }
}

/// Infers the shape and dtype of an expression over `G_d` tensor names.
pub(crate) fn infer_expr_meta(
    expr: &RecExpr,
    gd: &Graph,
) -> Result<(Shape, entangle_ir::DType), IrError> {
    let mut metas: Vec<Meta> = Vec::with_capacity(expr.len());
    for node in expr.nodes() {
        let meta = match node {
            entangle_egraph::ENode::Int(i) => {
                Meta::scalar(entangle_symbolic::SymExpr::constant(*i))
            }
            entangle_egraph::ENode::Sym(e) => Meta::scalar(e.clone()),
            entangle_egraph::ENode::Op(sym, ch) if ch.is_empty() => {
                let t = gd
                    .tensor_by_name(sym.as_str())
                    .ok_or_else(|| IrError::UnknownTensor(format!("{} in G_d", sym.as_str())))?;
                Meta::tensor(t.shape.clone(), t.dtype)
            }
            entangle_egraph::ENode::Op(sym, ch) => {
                let child_metas: Vec<Meta> = ch.iter().map(|c| metas[c.index()].clone()).collect();
                let (op, tensor_count) = decode_op(sym.as_str(), &child_metas)
                    .ok_or_else(|| IrError::Invalid(format!("unknown operator {sym}")))?;
                let inputs: Result<Vec<_>, IrError> = child_metas[..tensor_count]
                    .iter()
                    .map(|m| {
                        Ok((
                            m.shape.clone().ok_or_else(|| {
                                IrError::Invalid("tensor operand lacks shape".into())
                            })?,
                            m.dtype.ok_or_else(|| {
                                IrError::Invalid("tensor operand lacks dtype".into())
                            })?,
                        ))
                    })
                    .collect();
                let (shape, dtype) = entangle_ir::infer_output(&op, &inputs?)?;
                Meta::tensor(shape, dtype)
            }
        };
        metas.push(meta);
    }
    let root = metas
        .last()
        .ok_or_else(|| IrError::Invalid("empty expression".into()))?;
    match (&root.shape, root.dtype) {
        (Some(s), Some(d)) => Ok((s.clone(), d)),
        _ => Err(IrError::Invalid("expression is not a tensor".into())),
    }
}
