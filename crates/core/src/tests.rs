use entangle_ir::{DType, Dim, GraphBuilder, Op, TensorId};

use crate::{
    append_expr, check_expectation, check_refinement, CheckOptions, ExpectationError,
    RefinementError, Relation,
};

/// The paper's Figure 1/2 graphs: sequential `F = (A x B) - E` vs the
/// 2-rank contraction-split + reduce-scatter implementation.
fn figure1() -> (
    entangle_ir::Graph,
    entangle_ir::Graph,
    TensorId,
    TensorId,
    TensorId,
) {
    let mut gs = GraphBuilder::new("seq");
    let a = gs.input("A", &[4, 8], DType::F32);
    let b = gs.input("B", &[8, 4], DType::F32);
    let e = gs.input("E", &[4, 4], DType::F32);
    let c = gs.apply("C", Op::Matmul, &[a, b]).unwrap();
    let f = gs.apply("F", Op::Sub, &[c, e]).unwrap();
    gs.mark_output(f);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("dist");
    let a1 = gd.input("A1", &[4, 4], DType::F32);
    let a2 = gd.input("A2", &[4, 4], DType::F32);
    let b1 = gd.input("B1", &[4, 4], DType::F32);
    let b2 = gd.input("B2", &[4, 4], DType::F32);
    let e1 = gd.input("E1", &[2, 4], DType::F32);
    let e2 = gd.input("E2", &[2, 4], DType::F32);
    let c1 = gd.apply("C1", Op::Matmul, &[a1, b1]).unwrap();
    let c2 = gd.apply("C2", Op::Matmul, &[a2, b2]).unwrap();
    let d1 = gd
        .apply(
            "D1",
            Op::ReduceScatter {
                dim: 0,
                rank: 0,
                world: 2,
            },
            &[c1, c2],
        )
        .unwrap();
    let d2 = gd
        .apply(
            "D2",
            Op::ReduceScatter {
                dim: 0,
                rank: 1,
                world: 2,
            },
            &[c1, c2],
        )
        .unwrap();
    let f1 = gd.apply("F1", Op::Sub, &[d1, e1]).unwrap();
    let f2 = gd.apply("F2", Op::Sub, &[d2, e2]).unwrap();
    gd.mark_output(f1);
    gd.mark_output(f2);
    let gd = gd.finish().unwrap();
    (gs, gd, f, c, e)
}

/// Options with shard hints off, for tests asserting *saturation* side
/// effects (lemma applications, e-graph sizes, mapping variants) that
/// hint-covered operators legitimately skip.
fn saturation_opts() -> CheckOptions {
    CheckOptions {
        shard_hints: false,
        ..CheckOptions::default()
    }
}

fn figure1_relation(gs: &entangle_ir::Graph, gd: &entangle_ir::Graph) -> Relation {
    let mut ri = Relation::builder(gs, gd);
    ri.map("A", "(concat A1 A2 1)").unwrap();
    ri.map("B", "(concat B1 B2 0)").unwrap();
    ri.map("E", "(concat E1 E2 0)").unwrap();
    ri.build()
}

#[test]
fn figure1_refines() {
    let (gs, gd, f, c, _) = figure1();
    let ri = figure1_relation(&gs, &gd);
    let outcome = check_refinement(&gs, &gd, &ri, &saturation_opts()).unwrap();
    // The output relation is complete and maps F to concat(F1, F2).
    assert!(outcome.output_relation.is_complete_for(gs.outputs()));
    let f_maps: Vec<String> = outcome
        .output_relation
        .mappings(f)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(
        f_maps.iter().any(|m| m == "(concat F1 F2 0)"),
        "F mappings: {f_maps:?}"
    );
    // The intermediate C gets both the reduce-sum form and the
    // reduce-scatter concat form, as in §4's walkthrough.
    let c_maps: Vec<String> = outcome
        .full_relation
        .mappings(c)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(
        c_maps.iter().any(|m| m == "(add C1 C2)"),
        "C mappings: {c_maps:?}"
    );
    assert!(
        c_maps.iter().any(|m| m == "(concat D1 D2 0)"),
        "C mappings: {c_maps:?}"
    );
    // Lemmas were actually applied.
    assert!(outcome.lemma_stats.total() > 0);
    assert_eq!(outcome.op_reports.len(), gs.num_nodes());
}

#[test]
fn figure1_bug4_sharded_instead_of_replicated() {
    // §2.2's SP-vs-sharding bug: the off-diagonal blocks are never
    // computed. Map A and B as if they were *compatibly* partitioned when
    // the implementation actually computes X1×A1 and X2×A2 only. Here we
    // model it by lying in the input relation the way the buggy config did:
    // the sharded weights cannot reconstruct the full matmul.
    let mut gs = GraphBuilder::new("seq");
    let x = gs.input("X", &[4, 8], DType::F32);
    let a = gs.input("A", &[8, 8], DType::F32);
    let c = gs.apply("C", Op::Matmul, &[x, a]).unwrap();
    gs.mark_output(c);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("dist");
    let x1 = gd.input("X1", &[2, 8], DType::F32);
    let x2 = gd.input("X2", &[2, 8], DType::F32);
    // BUG: weights sharded on the contraction dim while inputs are
    // sequence-sharded; each rank computes X_i × A_i with A_i: [8, 8]
    // replicated-shape slices that don't cover the contraction.
    let a1 = gd.input("A1", &[8, 8], DType::F32);
    let a2 = gd.input("A2", &[8, 8], DType::F32);
    let c1 = gd.apply("C1", Op::Matmul, &[x1, a1]).unwrap();
    let c2 = gd.apply("C2", Op::Matmul, &[x2, a2]).unwrap();
    gd.mark_output(c1);
    gd.mark_output(c2);
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.map("X", "(concat X1 X2 0)").unwrap();
    // The buggy configuration: A is NOT replicated; the ranks hold
    // different halves stacked where a replica was expected. There is no
    // clean expression reconstructing A from A1/A2 that also makes the
    // matmul work out, so we model what the config actually gave each rank.
    ri.map("A", "A1").unwrap();
    let ri = ri.build();

    // C2 = X2 × A2 is unrelated to X2 × A, so the matmul cannot be mapped:
    // only rank 0's shard is derivable, and concat needs both.
    let err = check_refinement(&gs, &gd, &ri, &CheckOptions::default());
    // With A ↦ A1 only, C maps to concat(C1, slice...)? No: C's rows 2..4
    // require X2 × A1 which G_d never computes. Refinement must fail at C.
    match err {
        Err(RefinementError::OperatorUnmapped { operator, .. }) => {
            assert_eq!(operator, "C");
        }
        other => panic!("expected OperatorUnmapped at C, got {other:?}"),
    }
}

#[test]
fn missing_input_mapping_is_reported() {
    let (gs, gd, ..) = figure1();
    let mut ri = Relation::builder(&gs, &gd);
    ri.map("A", "(concat A1 A2 1)").unwrap();
    ri.map("B", "(concat B1 B2 0)").unwrap();
    let ri = ri.build(); // E missing
    match check_refinement(&gs, &gd, &ri, &CheckOptions::default()) {
        Err(RefinementError::MissingInputMapping { tensor }) => assert_eq!(tensor, "E"),
        other => panic!("expected MissingInputMapping, got {other:?}"),
    }
}

#[test]
fn relation_builder_validates() {
    let (gs, gd, ..) = figure1();
    let mut ri = Relation::builder(&gs, &gd);
    // Unknown names.
    assert!(ri.map("NOPE", "A1").is_err());
    assert!(ri.map("A", "NOPE").is_err());
    // Shape mismatch: A is [4,8], A1 is [4,4].
    assert!(ri.map("A", "A1").is_err());
    // Wrong concat dim.
    assert!(ri.map("A", "(concat A1 A2 0)").is_err());
    // Correct.
    assert!(ri.map("A", "(concat A1 A2 1)").is_ok());
}

#[test]
fn relation_builder_helpers() {
    let (gs, gd, ..) = figure1();
    let mut ri = Relation::builder(&gs, &gd);
    ri.sharded("A", &["A1", "A2"], 1).unwrap();
    ri.sharded("B", &["B1", "B2"], 0).unwrap();
    ri.sharded("E", &["E1", "E2"], 0).unwrap();
    let rel = ri.build();
    assert_eq!(rel.len(), 3);
    let outcome = check_refinement(&gs, &gd, &rel, &CheckOptions::default()).unwrap();
    assert!(outcome.output_relation.is_complete_for(gs.outputs()));
}

#[test]
fn replicated_inputs() {
    // A sequential identity over a replicated tensor: both replicas map it.
    let mut gs = GraphBuilder::new("seq");
    let x = gs.input("X", &[4], DType::F32);
    let y = gs.apply("Y", Op::Relu, &[x]).unwrap();
    gs.mark_output(y);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("dist");
    let xa = gd.input("Xa", &[4], DType::F32);
    let xb = gd.input("Xb", &[4], DType::F32);
    let ya = gd.apply("Ya", Op::Relu, &[xa]).unwrap();
    let yb = gd.apply("Yb", Op::Relu, &[xb]).unwrap();
    gd.mark_output(ya);
    gd.mark_output(yb);
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.replicated("X", &["Xa", "Xb"]).unwrap();
    let outcome = check_refinement(&gs, &gd, &ri.build(), &CheckOptions::default()).unwrap();
    let maps: Vec<String> = outcome
        .output_relation
        .mappings(y)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(maps.contains(&"Ya".to_owned()) && maps.contains(&"Yb".to_owned()));
}

#[test]
fn column_parallel_mlp_with_all_reduce() {
    // Row-parallel second matmul with an explicit all_reduce: the Megatron
    // TP MLP shape.
    let mut gs = GraphBuilder::new("mlp");
    let x = gs.input("X", &[2, 8], DType::F32);
    let w1 = gs.input("W1", &[8, 16], DType::F32);
    let w2 = gs.input("W2", &[16, 8], DType::F32);
    let h = gs.apply("H", Op::Matmul, &[x, w1]).unwrap();
    let g = gs.apply("G", Op::Gelu, &[h]).unwrap();
    let y = gs.apply("Y", Op::Matmul, &[g, w2]).unwrap();
    gs.mark_output(y);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("mlp-tp2");
    let x0 = gd.input("X0", &[2, 8], DType::F32); // replicated input
    let w1a = gd.input("W1a", &[8, 8], DType::F32);
    let w1b = gd.input("W1b", &[8, 8], DType::F32);
    let w2a = gd.input("W2a", &[8, 8], DType::F32);
    let w2b = gd.input("W2b", &[8, 8], DType::F32);
    let ha = gd.apply("Ha", Op::Matmul, &[x0, w1a]).unwrap();
    let hb = gd.apply("Hb", Op::Matmul, &[x0, w1b]).unwrap();
    let ga = gd.apply("Ga", Op::Gelu, &[ha]).unwrap();
    let gb = gd.apply("Gb", Op::Gelu, &[hb]).unwrap();
    let ya = gd.apply("Ya", Op::Matmul, &[ga, w2a]).unwrap();
    let yb = gd.apply("Yb", Op::Matmul, &[gb, w2b]).unwrap();
    let y0 = gd.apply("Y0", Op::AllReduce, &[ya, yb]).unwrap();
    gd.mark_output(y0);
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.map("X", "X0").unwrap();
    ri.sharded("W1", &["W1a", "W1b"], 1).unwrap();
    ri.sharded("W2", &["W2a", "W2b"], 0).unwrap();
    let outcome = check_refinement(&gs, &gd, &ri.build(), &CheckOptions::default()).unwrap();
    let maps: Vec<String> = outcome
        .output_relation
        .mappings(y)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(maps.contains(&"Y0".to_owned()), "Y mappings: {maps:?}");
}

#[test]
fn missing_all_reduce_detected_at_consumer() {
    // Bug 7's shape: drop the all_reduce after the row-parallel matmul and
    // feed the partial sums onward; the subsequent operator cannot be
    // mapped.
    let mut gs = GraphBuilder::new("seq");
    let x = gs.input("X", &[2, 8], DType::F32);
    let w = gs.input("W", &[8, 4], DType::F32);
    let b = gs.input("Bias", &[4], DType::F32);
    let h = gs.apply("H", Op::Matmul, &[x, w]).unwrap();
    let y = gs.apply("Y", Op::Add, &[h, b]).unwrap();
    gs.mark_output(y);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("buggy");
    let xa = gd.input("Xa", &[2, 4], DType::F32);
    let xb = gd.input("Xb", &[2, 4], DType::F32);
    let wa = gd.input("Wa", &[4, 4], DType::F32);
    let wb = gd.input("Wb", &[4, 4], DType::F32);
    let bias = gd.input("Bias_d", &[4], DType::F32);
    let ha = gd.apply("Ha", Op::Matmul, &[xa, wa]).unwrap();
    let hb = gd.apply("Hb", Op::Matmul, &[xb, wb]).unwrap();
    // BUG: no all_reduce; each rank adds the bias to its partial product.
    let ya = gd.apply("Ya", Op::Add, &[ha, bias]).unwrap();
    let yb = gd.apply("Yb", Op::Add, &[hb, bias]).unwrap();
    gd.mark_output(ya);
    gd.mark_output(yb);
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.map("X", "(concat Xa Xb 1)").unwrap();
    ri.map("W", "(concat Wa Wb 0)").unwrap();
    ri.map("Bias", "Bias_d").unwrap();
    match check_refinement(&gs, &gd, &ri.build(), &CheckOptions::default()) {
        // H still maps (add of partials is the clean reduce-sum), and Y has
        // clean mappings too — but only over G_d *intermediates* (Ha/Hb mixed
        // with Ya/Yb). Listing 1 line 9 restricts R_o to O(G_d), so the
        // output cannot be reconstructed from what the deployment emits.
        Err(RefinementError::OutputUnmapped {
            tensor,
            operator,
            intermediate_mappings,
        }) => {
            assert_eq!(tensor, "Y");
            assert_eq!(operator, "Y");
            assert!(!intermediate_mappings.is_empty());
        }
        other => panic!("expected failure at Y, got {other:?}"),
    }
}

#[test]
fn ablation_modes_agree_on_verdict() {
    let (gs, gd, f, ..) = figure1();
    let ri = figure1_relation(&gs, &gd);
    for (frontier, fresh) in [(true, true), (false, true), (false, false)] {
        let opts = CheckOptions {
            frontier,
            fresh_egraph_per_op: fresh,
            ..CheckOptions::default()
        };
        let outcome = check_refinement(&gs, &gd, &ri, &opts)
            .unwrap_or_else(|e| panic!("mode ({frontier},{fresh}) failed: {e}"));
        let maps: Vec<String> = outcome
            .output_relation
            .mappings(f)
            .unwrap()
            .iter()
            .map(|m| m.to_string())
            .collect();
        assert!(
            maps.iter().any(|m| m == "(concat F1 F2 0)"),
            "mode ({frontier},{fresh}): {maps:?}"
        );
    }
}

#[test]
fn expectation_checking() {
    let (gs, gd, ..) = figure1();
    let ri = figure1_relation(&gs, &gd);
    // Expected combiner: F == concat(F1, F2, 0). Holds.
    let fs: entangle_egraph::RecExpr = "F".parse().unwrap();
    let fd: entangle_egraph::RecExpr = "(concat F1 F2 0)".parse().unwrap();
    check_expectation(&gs, &gd, &ri, &fs, &fd, &CheckOptions::default()).unwrap();

    // Wrong combiner: F == concat(F2, F1, 0) (shards swapped). Violated.
    let fd_bad: entangle_egraph::RecExpr = "(concat F2 F1 0)".parse().unwrap();
    match check_expectation(&gs, &gd, &ri, &fs, &fd_bad, &CheckOptions::default()) {
        Err(ExpectationError::Violated { .. }) => {}
        other => panic!("expected violation, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn append_expr_builds_combiner_nodes() {
    let (_, gd, ..) = figure1();
    let expr: entangle_egraph::RecExpr = "(concat F1 F2 0)".parse().unwrap();
    let (g2, out) = append_expr(&gd, &expr, "combined").unwrap();
    assert_eq!(g2.num_nodes(), gd.num_nodes() + 1);
    assert_eq!(g2.tensor(out).shape, entangle_ir::Shape::of(&[4, 4]));
    assert!(g2.outputs().contains(&out));
    // Unknown names and scalar misuse fail.
    assert!(append_expr(&gd, &"(concat NOPE F2 0)".parse().unwrap(), "x").is_err());
    assert!(append_expr(&gd, &"7".parse().unwrap(), "x").is_err());
}

#[test]
fn sequence_parallel_elementwise_chain() {
    // SP over an elementwise chain with an all_gather at the end.
    let mut gs = GraphBuilder::new("seq");
    let x = gs.input("X", &[8, 4], DType::F32);
    let g = gs.apply("G", Op::Gelu, &[x]).unwrap();
    let y = gs.apply("Y", Op::Silu, &[g]).unwrap();
    gs.mark_output(y);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("sp2");
    let x0 = gd.input("X0", &[4, 4], DType::F32);
    let x1 = gd.input("X1", &[4, 4], DType::F32);
    let g0 = gd.apply("G0", Op::Gelu, &[x0]).unwrap();
    let g1 = gd.apply("G1", Op::Gelu, &[x1]).unwrap();
    let y0 = gd.apply("Y0", Op::Silu, &[g0]).unwrap();
    let y1 = gd.apply("Y1", Op::Silu, &[g1]).unwrap();
    let full = gd
        .apply("Yfull", Op::AllGather { dim: 0 }, &[y0, y1])
        .unwrap();
    gd.mark_output(full);
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.map("X", "(concat X0 X1 0)").unwrap();
    let outcome = check_refinement(&gs, &gd, &ri.build(), &CheckOptions::default()).unwrap();
    let maps: Vec<String> = outcome
        .output_relation
        .mappings(y)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(maps.contains(&"Yfull".to_owned()), "Y mappings: {maps:?}");
}

#[test]
fn frontier_prunes_unrelated_subgraph() {
    // The unrelated branch (E1/E2 path of Figure 2) must not be pulled into
    // the e-graph when processing the matmul with the frontier enabled: its
    // op report should show a smaller e-graph than the ablation.
    let (gs, gd, ..) = figure1();
    let ri = figure1_relation(&gs, &gd);
    let with = check_refinement(&gs, &gd, &ri, &saturation_opts()).unwrap();
    let without = check_refinement(
        &gs,
        &gd,
        &ri,
        &CheckOptions {
            frontier: false,
            ..saturation_opts()
        },
    )
    .unwrap();
    // First operator = the matmul producing C.
    let matmul_with = with.op_reports[0].egraph_nodes;
    let matmul_without = without.op_reports[0].egraph_nodes;
    assert!(
        matmul_with < matmul_without,
        "frontier ({matmul_with} nodes) should be smaller than full ({matmul_without} nodes)"
    );
}

#[test]
fn symbolic_shapes_check() {
    // Sequence length is symbolic; the SP split still verifies because the
    // symbolic solver proves the seam arithmetic.
    let mut ctx = entangle_symbolic::SymCtx::new();
    let n = ctx.var("n");
    ctx.assume(
        n.clone(),
        entangle_symbolic::Rel::Ge,
        entangle_symbolic::SymExpr::constant(1),
    );
    let two_n = n.clone() * 2;

    let mut gs = GraphBuilder::new("seq");
    let x = gs.input_shaped(
        "X",
        entangle_ir::Shape(vec![Dim(two_n.clone()), Dim::from(4)]),
        DType::F32,
    );
    let y = gs.apply("Y", Op::Gelu, &[x]).unwrap();
    gs.mark_output(y);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("sp");
    let x0 = gd.input_shaped(
        "X0",
        entangle_ir::Shape(vec![Dim(n.clone()), Dim::from(4)]),
        DType::F32,
    );
    let x1 = gd.input_shaped(
        "X1",
        entangle_ir::Shape(vec![Dim(n.clone()), Dim::from(4)]),
        DType::F32,
    );
    let y0 = gd.apply("Y0", Op::Gelu, &[x0]).unwrap();
    let y1 = gd.apply("Y1", Op::Gelu, &[x1]).unwrap();
    gd.mark_output(y0);
    gd.mark_output(y1);
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.map("X", "(concat X0 X1 0)").unwrap();
    let opts = CheckOptions {
        sym_ctx: ctx,
        ..CheckOptions::default()
    };
    let outcome = check_refinement(&gs, &gd, &ri.build(), &opts).unwrap();
    let maps: Vec<String> = outcome
        .output_relation
        .mappings(y)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(
        maps.iter().any(|m| m == "(concat Y0 Y1 0)"),
        "Y mappings: {maps:?}"
    );
}

#[test]
fn custom_clean_ops_tighten_the_check() {
    // With `add` removed from the clean set, the reduce-sum mapping
    // sum(C1, C2) for Figure 2's C disappears; only the reduce-scatter
    // concat form remains, and the output still verifies through it.
    let (gs, gd, f, c, _) = figure1();
    let ri = figure1_relation(&gs, &gd);
    let opts = CheckOptions {
        clean: crate::CleanOps::new(vec!["slice", "concat", "transpose", "permute", "identity"]),
        ..CheckOptions::default()
    };
    let outcome = check_refinement(&gs, &gd, &ri, &opts).unwrap();
    let c_maps: Vec<String> = outcome
        .full_relation
        .mappings(c)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(c_maps.iter().all(|m| !m.starts_with("(add")), "{c_maps:?}");
    assert!(c_maps.iter().any(|m| m == "(concat D1 D2 0)"), "{c_maps:?}");
    let f_maps: Vec<String> = outcome
        .output_relation
        .mappings(f)
        .unwrap()
        .iter()
        .map(|m| m.to_string())
        .collect();
    assert!(f_maps.iter().any(|m| m == "(concat F1 F2 0)"));
}

#[test]
fn relation_display_uses_gs_names() {
    let (gs, gd, ..) = figure1();
    let ri = figure1_relation(&gs, &gd);
    let outcome = check_refinement(&gs, &gd, &ri, &saturation_opts()).unwrap();
    let shown = outcome.output_relation.display(&gs).to_string();
    assert!(shown.contains("F -> "), "{shown}");
    assert!(shown.contains("(concat F1 F2 0)"), "{shown}");
}

#[test]
fn lemma_stats_accumulate_and_iterate() {
    let (gs, gd, ..) = figure1();
    let ri = figure1_relation(&gs, &gd);
    let outcome = check_refinement(&gs, &gd, &ri, &saturation_opts()).unwrap();
    let total: u64 = outcome.lemma_stats.iter().map(|(_, c)| c).sum();
    assert_eq!(total, outcome.lemma_stats.total());
    assert!(outcome.lemma_stats.count("matmul-concat-contraction") >= 1);
    assert_eq!(outcome.lemma_stats.count("no-such-lemma"), 0);
}

#[test]
fn op_reports_track_processing_order() {
    let (gs, gd, ..) = figure1();
    let ri = figure1_relation(&gs, &gd);
    let outcome = check_refinement(&gs, &gd, &ri, &saturation_opts()).unwrap();
    let names: Vec<&str> = outcome.op_reports.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["C", "F"]);
    assert!(outcome.op_reports.iter().all(|r| r.mappings >= 1));
    assert!(outcome.op_reports.iter().all(|r| r.egraph_nodes > 0));
}

#[test]
fn max_mappings_prunes_but_preserves_verdict() {
    let (gs, gd, f, ..) = figure1();
    let ri = figure1_relation(&gs, &gd);
    for max in [1usize, 2, 8] {
        let opts = CheckOptions {
            max_mappings: max,
            ..CheckOptions::default()
        };
        let outcome = check_refinement(&gs, &gd, &ri, &opts).unwrap();
        let maps = outcome.full_relation.mappings(f).unwrap();
        assert!(maps.len() <= max);
        assert!(!maps.is_empty());
    }
}

#[test]
fn synthetic_leaves_never_appear_in_relations() {
    // ones_like canonicalization mints `~ones…` leaves inside the e-graph;
    // relations must only ever reference real G_d tensors.
    let mut gs = GraphBuilder::new("seq");
    let x = gs.input("x", &[4], DType::F32);
    let ones = gs.apply("ones", Op::OnesLike, &[x]).unwrap();
    let y = gs.apply("y", Op::Mul, &[x, ones]).unwrap();
    gs.mark_output(y);
    let gs = gs.finish().unwrap();

    let mut gd = GraphBuilder::new("dist");
    let x0 = gd.input("x.0", &[2], DType::F32);
    let x1 = gd.input("x.1", &[2], DType::F32);
    let o0 = gd.apply("ones.0", Op::OnesLike, &[x0]).unwrap();
    let o1 = gd.apply("ones.1", Op::OnesLike, &[x1]).unwrap();
    let y0 = gd.apply("y.0", Op::Mul, &[x0, o0]).unwrap();
    let y1 = gd.apply("y.1", Op::Mul, &[x1, o1]).unwrap();
    gd.mark_output(y0);
    gd.mark_output(y1);
    let gd = gd.finish().unwrap();

    let mut ri = Relation::builder(&gs, &gd);
    ri.map("x", "(concat x.0 x.1 0)").unwrap();
    let outcome = check_refinement(&gs, &gd, &ri.build(), &CheckOptions::default()).unwrap();
    for (_, exprs) in outcome.full_relation.iter() {
        for e in exprs {
            for leaf in e.leaf_symbols() {
                assert!(
                    !leaf.as_str().starts_with('~'),
                    "synthetic leaf leaked into a relation: {e}"
                );
            }
        }
    }
}

#[test]
fn error_display_is_actionable() {
    let (gs, gd, ..) = figure1();
    let mut ri = Relation::builder(&gs, &gd);
    ri.map("A", "(concat A1 A2 1)").unwrap();
    // Swap the B shards: the matmul contraction no longer lines up.
    ri.map("B", "(concat B2 B1 0)").unwrap();
    ri.map("E", "(concat E1 E2 0)").unwrap();
    let err = check_refinement(&gs, &gd, &ri.build(), &CheckOptions::default()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("could not map outputs for operator \"C\""),
        "{msg}"
    );
    assert!(msg.contains("(concat A1 A2 1)"), "{msg}");
    assert!(msg.contains("localize"), "{msg}");
}

mod lint_prepass {
    use super::*;
    use crate::check_lint;
    use entangle_egraph::Rewrite;

    /// A well-formed `G_s` next to a `G_d` whose slice sharding of `X`
    /// leaves rows `[4, 5)` covered by no shard — a distribution bug the
    /// lint pre-pass catches statically.
    fn gap_sharded_pair() -> (entangle_ir::Graph, entangle_ir::Graph) {
        let mut gs = GraphBuilder::new("seq");
        let a = gs.input("A", &[8, 4], DType::F32);
        let r = gs.apply("R", Op::Relu, &[a]).unwrap();
        gs.mark_output(r);
        let gs = gs.finish().unwrap();

        let mut gd = GraphBuilder::new("dist");
        let x = gd.input("X", &[8, 4], DType::F32);
        let s1 = gd
            .apply(
                "S1",
                Op::Slice {
                    dim: 0,
                    start: Dim::from(0),
                    end: Dim::from(4),
                },
                &[x],
            )
            .unwrap();
        let s2 = gd
            .apply(
                "S2",
                Op::Slice {
                    dim: 0,
                    start: Dim::from(5),
                    end: Dim::from(8),
                },
                &[x],
            )
            .unwrap();
        let r1 = gd.apply("R1", Op::Relu, &[s1]).unwrap();
        let r2 = gd.apply("R2", Op::Relu, &[s2]).unwrap();
        gd.mark_output(r1);
        gd.mark_output(r2);
        (gs, gd.finish().unwrap())
    }

    #[test]
    fn missharded_gd_fails_lint_before_any_saturation() {
        let (gs, gd) = gap_sharded_pair();
        let mut ri = Relation::builder(&gs, &gd);
        ri.map("A", "X").unwrap();

        // Booby-trap the rewrite set: the searcher matches *every* e-class,
        // so the applier panics the moment a single saturation step runs.
        // The check must fail with the lint diagnostic instead, proving the
        // pre-pass short-circuits before any e-graph work.
        let trap: Rewrite<entangle_lemmas::TensorAnalysis> =
            Rewrite::parse_dyn("boobytrap", "?x", |_, _, _| {
                panic!("saturation ran despite lint errors")
            })
            .unwrap();
        let opts = CheckOptions {
            rewrites: Some(vec![trap]),
            ..CheckOptions::default()
        };

        let err = check_refinement(&gs, &gd, &ri.build(), &opts).unwrap_err();
        let RefinementError::Lint {
            graph, diagnostics, ..
        } = &err
        else {
            panic!("expected lint error, got: {err}");
        };
        assert_eq!(graph, "G_d");
        assert!(
            diagnostics
                .iter()
                .any(|d| d.code == entangle_lint::codes::SHARDING_TILE),
            "expected an E009 sharding diagnostic: {diagnostics:?}"
        );
        // The rendered message names the shard after the gap.
        let msg = err.to_string();
        assert!(msg.contains("G_d failed static lint"), "{msg}");
        assert!(msg.contains("S2"), "{msg}");
        assert!(msg.contains("gap"), "{msg}");
    }

    #[test]
    fn lint_can_be_disabled() {
        let (gs, gd) = gap_sharded_pair();
        let mut ri = Relation::builder(&gs, &gd);
        ri.map("A", "X").unwrap();
        let opts = CheckOptions {
            lint: false,
            ..CheckOptions::default()
        };
        // With the pre-pass off, checking proceeds into saturation. The
        // gap-sharded G_d genuinely does not refine G_s, so the failure now
        // surfaces the expensive way: an unmapped output.
        let err = check_refinement(&gs, &gd, &ri.build(), &opts).unwrap_err();
        assert!(
            !matches!(err, RefinementError::Lint { .. }),
            "lint ran despite being disabled: {err}"
        );
    }

    #[test]
    fn check_lint_accepts_well_formed_pair() {
        let (gs, gd, ..) = super::figure1();
        check_lint(&gs, &gd).unwrap();
    }
}
