//! User-expectation checking (§4.4).
//!
//! Users sometimes want to check not just that *a* refinement exists, but
//! that a *particular* combiner works: `f_s(O(G_s)) == f_d(O(G_d))`. The
//! check reduces to model refinement: both graphs are extended with the
//! combiner expressions, refinement is checked as usual, and the extended
//! `G_s` output must map to the extended `G_d` output by the *identity*.
//! Bugs 5, 8 and 9 in the paper's evaluation are caught this way.

use std::fmt;

use entangle_egraph::{ENode, RecExpr};
use entangle_ir::{Graph, IrError, TensorId};
use entangle_lemmas::{decode_op, Meta};

use crate::checker::{check_refinement, CheckOptions, CheckOutcome, RefinementError};
use crate::relation::Relation;

/// Expectation-check failure.
#[derive(Debug)]
pub enum ExpectationError {
    /// The combiner expression could not be appended to a graph.
    Invalid(IrError),
    /// Refinement itself failed while checking the extended graphs.
    Refinement(RefinementError),
    /// Refinement holds, but not through the expected combiner: the
    /// extended outputs are not identical. Mirrors the artifact's
    /// `FailedImplyingEquivalence: User expectation violated`.
    Violated {
        /// The mappings that *were* found for the combined `G_s` output.
        found: Vec<String>,
        /// The name of the combined `G_d` output it was expected to equal.
        expected: String,
    },
}

impl fmt::Display for ExpectationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpectationError::Invalid(e) => write!(f, "invalid expectation: {e}"),
            ExpectationError::Refinement(e) => {
                write!(f, "refinement failed while checking expectation: {e}")
            }
            ExpectationError::Violated { found, expected } => {
                writeln!(
                    f,
                    "user expectation violated: combined outputs are not equal"
                )?;
                writeln!(f, "expected identity with {expected}, found mappings:")?;
                for m in found {
                    writeln!(f, "  {m}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ExpectationError {}

impl From<IrError> for ExpectationError {
    fn from(e: IrError) -> Self {
        ExpectationError::Invalid(e)
    }
}

/// Appends an expression (s-expression over the graph's tensor names) as new
/// operator nodes, returning the extended graph and the expression's output
/// tensor.
///
/// # Errors
///
/// Rejects unknown tensor names, unknown operators, and shape violations.
pub fn append_expr(
    graph: &Graph,
    expr: &RecExpr,
    name: &str,
) -> Result<(Graph, TensorId), IrError> {
    let mut g = graph.clone();
    let mut slots: Vec<Option<TensorId>> = Vec::with_capacity(expr.len());
    let mut metas: Vec<Meta> = Vec::with_capacity(expr.len());
    for (i, node) in expr.nodes().iter().enumerate() {
        let (tensor, meta) = match node {
            ENode::Int(v) => (None, Meta::scalar(entangle_symbolic::SymExpr::constant(*v))),
            ENode::Sym(e) => (None, Meta::scalar(e.clone())),
            ENode::Op(sym, ch) if ch.is_empty() => {
                let t = g
                    .tensor_by_name(sym.as_str())
                    .ok_or_else(|| IrError::UnknownTensor(sym.as_str().to_owned()))?;
                (Some(t.id), Meta::tensor(t.shape.clone(), t.dtype))
            }
            ENode::Op(sym, ch) => {
                let child_metas: Vec<Meta> = ch.iter().map(|c| metas[c.index()].clone()).collect();
                let (op, tensor_count) = decode_op(sym.as_str(), &child_metas)
                    .ok_or_else(|| IrError::Invalid(format!("unknown operator {sym}")))?;
                let inputs: Result<Vec<TensorId>, IrError> = ch[..tensor_count]
                    .iter()
                    .map(|c| {
                        slots[c.index()]
                            .ok_or_else(|| IrError::Invalid("scalar used as tensor operand".into()))
                    })
                    .collect();
                let out = g.append(&format!("{name}.{i}"), op, &inputs?)?;
                let t = g.tensor(out);
                (Some(out), Meta::tensor(t.shape.clone(), t.dtype))
            }
        };
        slots.push(tensor);
        metas.push(meta);
    }
    let root = slots
        .last()
        .copied()
        .flatten()
        .ok_or_else(|| IrError::Invalid("expression is not a tensor".into()))?;
    g.add_output(root);
    g.validate()?;
    Ok((g, root))
}

/// Checks the user expectation `f_s(O(G_s)) == f_d(O(G_d))` (§4.4).
///
/// `fs` is an s-expression over `G_s` tensor names; `fd` over `G_d` tensor
/// names. Both graphs are extended with the combiners, refinement is
/// checked, and the extended `G_s` output must map to the extended `G_d`
/// output *identically* (no further rearrangement allowed).
///
/// # Errors
///
/// Returns [`ExpectationError`] when the combiners are malformed, when
/// refinement fails outright, or when refinement holds but not through the
/// expected combiner.
pub fn check_expectation(
    gs: &Graph,
    gd: &Graph,
    ri: &Relation,
    fs: &RecExpr,
    fd: &RecExpr,
    opts: &CheckOptions,
) -> Result<CheckOutcome, ExpectationError> {
    let (gs2, out_s) = append_expr(gs, fs, "expected_s")?;
    let (gd2, out_d) = append_expr(gd, fd, "expected_d")?;
    let outcome = check_refinement(&gs2, &gd2, ri, opts).map_err(ExpectationError::Refinement)?;
    let expected_name = gd2.tensor(out_d).name.clone();
    let mappings = outcome
        .output_relation
        .mappings(out_s)
        .unwrap_or(&[])
        .to_vec();
    let identity = mappings.iter().any(|m| {
        m.len() == 1 && matches!(m.root(), ENode::Op(sym, ch) if ch.is_empty() && sym.as_str() == expected_name)
    });
    if identity {
        Ok(outcome)
    } else {
        Err(ExpectationError::Violated {
            found: mappings.iter().map(|m| m.to_string()).collect(),
            expected: expected_name,
        })
    }
}
