//! Canonical per-operator problems for the cross-operator saturation memo.
//!
//! Distributed ML graphs are towers of structurally identical blocks: every
//! transformer layer, every MoE expert re-poses the *same* per-operator
//! mapping problems over differently named tensors. This module extracts the
//! naming-independent core of one operator's search — the [`OpProblem`] —
//! and solves it entirely in a canonical namespace (`$t0, $t1, …` for `G_d`
//! tensor leaves, `$i0, $i1, …` for `G_s` input facts, `$n0, $n1, …` for
//! `G_d` definition facts), so two isomorphic operators produce the same
//! cache key *and* byte-identical [`Solved`] values. The checker renames a
//! solved result back through the inverse [`Renamer`] — including the proof
//! chains and the `Given` fact strings the trusted kernel re-validates — so
//! a cache hit is observationally identical to a miss.
//!
//! Canonical names are assigned in first-occurrence order of a traversal
//! that is itself canonical: input-mapping leaves in input/expression order,
//! then frontier-closure definition outputs in discovery order. Isomorphic
//! subproblems therefore canonicalize identically even when their real
//! tensors interleave differently in `G_d`.

use std::collections::{HashMap, HashSet};

use entangle_egraph::{
    BackoffSchedule, EGraph, Id, Justification, Proof, RecExpr, Rewrite, RunReport, Runner,
    StopReason, Symbol,
};
use entangle_ir::{DType, Graph, Node, NodeId, Op, Shape, TensorId};
use entangle_lemmas::TensorAnalysis;
use entangle_par::Renamer;

use crate::checker::{extract_clean_variants_with_cost, CheckOptions};
use crate::encode::{encode_def, encode_op};

/// One `G_d` operator definition pulled into the frontier, in canonical
/// names.
#[derive(Debug)]
pub(crate) struct CanonDef {
    /// Canonical node name (`$n{j}`) — only used in the `Given` fact string.
    pub name: String,
    pub op: Op,
    pub inputs: Vec<String>,
    pub output: String,
}

/// One canonical tensor leaf (`$t{i}`) with the analysis data the engine
/// needs (shape/dtype drive conditional lemmas and synthetic-leaf folding).
#[derive(Debug)]
pub(crate) struct CanonLeaf {
    pub name: String,
    pub shape: Shape,
    pub dtype: DType,
    /// `true` when the real tensor is a `G_d` *output* — extraction prefers
    /// these on cost ties (Listing 1 line 9 only keeps output-leaf mappings
    /// for `G_s` outputs).
    pub prefer: bool,
}

/// A naming-independent per-operator mapping problem: everything
/// [`solve_problem`] reads. Two operators with equal problems (and equal
/// engine configuration) have byte-identical solutions.
#[derive(Debug)]
pub(crate) struct OpProblem {
    pub op: Op,
    /// Per `G_s` input, in operator order: the canonical input name
    /// (`$i{k}`, used only in the union fact string) and the canonicalized
    /// clean mappings.
    pub inputs: Vec<(String, Vec<RecExpr>)>,
    /// The frontier closure, round by round, exactly as the sequential
    /// engine would discover it (round 1 may be empty — it still saturates
    /// the base term once).
    pub def_rounds: Vec<Vec<CanonDef>>,
    /// Canonical leaves in `$t` index order.
    pub leaves: Vec<CanonLeaf>,
}

/// Assigns `$t{i}` names in first-occurrence order and accumulates the
/// inverse renaming.
struct Canonizer<'g> {
    gd: &'g Graph,
    gd_output_set: HashSet<TensorId>,
    fwd: Renamer,
    back: Renamer,
    canon_of: HashMap<TensorId, String>,
    leaves: Vec<CanonLeaf>,
}

impl Canonizer<'_> {
    fn assign(&mut self, t: TensorId) -> String {
        if let Some(name) = self.canon_of.get(&t) {
            return name.clone();
        }
        let tensor = self.gd.tensor(t);
        let cname = format!("$t{}", self.leaves.len());
        self.fwd
            .leaf(Symbol::new(&tensor.name), Symbol::new(&cname));
        self.back
            .leaf(Symbol::new(&cname), Symbol::new(&tensor.name));
        self.leaves.push(CanonLeaf {
            name: cname.clone(),
            shape: tensor.shape.clone(),
            dtype: tensor.dtype,
            prefer: self.gd_output_set.contains(&t),
        });
        self.canon_of.insert(t, cname.clone());
        cname
    }
}

/// Builds the canonical problem for one `G_s` operator given its inputs'
/// current mappings (`per_input`, in operator order), plus the
/// canonical→real [`Renamer`] that replays a solution.
///
/// The frontier closure is *simulated* here — same rule, same round
/// structure as `node_out_rel` — rather than discovered during saturation:
/// the set of reachable `G_d` definitions depends only on the input
/// mappings' leaves and the graph, never on what saturation derives, so the
/// closure is a pure function of the problem.
pub(crate) fn build_problem(
    gs: &Graph,
    gd: &Graph,
    node: &Node,
    per_input: &[Vec<RecExpr>],
) -> (OpProblem, Renamer) {
    let name_to_tensor: HashMap<&str, TensorId> = gd
        .tensors()
        .iter()
        .map(|t| (t.name.as_str(), t.id))
        .collect();
    let mut cz = Canonizer {
        gd,
        gd_output_set: gd.outputs().iter().copied().collect(),
        fwd: Renamer::new(),
        back: Renamer::new(),
        canon_of: HashMap::new(),
        leaves: Vec::new(),
    };

    // Seed the related set (and the canonical namespace) from the input
    // mappings' G_d leaves, in input/expression/leaf order.
    let mut t_rel: HashSet<TensorId> = HashSet::new();
    for exprs in per_input {
        for e in exprs {
            for sym in e.leaf_symbols() {
                if let Some(&t) = name_to_tensor.get(sym.as_str()) {
                    cz.assign(t);
                    t_rel.insert(t);
                }
            }
        }
    }

    let mut inputs = Vec::with_capacity(per_input.len());
    for (k, (&t, exprs)) in node.inputs.iter().zip(per_input).enumerate() {
        let cin = format!("$i{k}");
        cz.back.fact(
            format!("mappings of G_s tensor {cin}"),
            format!("mappings of G_s tensor {}", gs.tensor(t).name),
        );
        inputs.push((cin, exprs.iter().map(|e| cz.fwd.rename_expr(e)).collect()));
    }

    // Frontier closure in the exact round structure of the sequential
    // engine: each round scans G_d for operators whose inputs are all
    // related, and the first round runs even when it adds nothing.
    let mut defs_added: HashSet<NodeId> = HashSet::new();
    let mut def_rounds: Vec<Vec<CanonDef>> = Vec::new();
    let mut first_round = true;
    let mut def_counter = 0usize;
    loop {
        let mut round = Vec::new();
        for n in gd.nodes() {
            if defs_added.contains(&n.id) {
                continue;
            }
            if n.inputs.iter().all(|t| t_rel.contains(t)) {
                defs_added.insert(n.id);
                let inputs_c: Vec<String> = n.inputs.iter().map(|&t| cz.assign(t)).collect();
                t_rel.insert(n.output);
                let output_c = cz.assign(n.output);
                let cname = format!("$n{def_counter}");
                def_counter += 1;
                cz.back.fact(
                    format!("G_d definition of {cname}"),
                    format!("G_d definition of {}", n.name),
                );
                round.push(CanonDef {
                    name: cname,
                    op: n.op.clone(),
                    inputs: inputs_c,
                    output: output_c,
                });
            }
        }
        if round.is_empty() && !first_round {
            break;
        }
        first_round = false;
        def_rounds.push(round);
    }

    (
        OpProblem {
            op: node.op.clone(),
            inputs,
            def_rounds,
            leaves: cz.leaves,
        },
        cz.back,
    )
}

impl OpProblem {
    /// The cache key: the problem rendered canonically, plus the engine
    /// configuration fingerprint (`cfg` — limits, clean set, lemma corpus)
    /// computed once per check.
    pub(crate) fn key(&self, cfg: &str) -> String {
        use std::fmt::Write;
        let mut k = String::with_capacity(256 + cfg.len());
        let _ = write!(k, "op={:?};", self.op);
        for (name, exprs) in &self.inputs {
            let _ = write!(k, "in {name}:");
            for e in exprs {
                let _ = write!(k, "{e},");
            }
            k.push(';');
        }
        for (r, defs) in self.def_rounds.iter().enumerate() {
            let _ = write!(k, "round{r}:");
            for d in defs {
                let _ = write!(k, "{:?}({})->{};", d.op, d.inputs.join(","), d.output);
            }
        }
        for l in &self.leaves {
            let _ = write!(k, "leaf {}:{}:{:?}:{};", l.name, l.shape, l.dtype, l.prefer);
        }
        k.push_str(cfg);
        k
    }
}

/// A solved canonical problem — everything an operator's merge step needs,
/// expressed in canonical names. Stored once per key in the sharded cache
/// and replayed (renamed back) by every structurally identical operator.
#[derive(Debug)]
pub(crate) struct Solved {
    /// Clean variants with extraction cost and (when certifying) the proof
    /// chain to the encoded base term, sorted by `(cost, canonical text)`
    /// and truncated to `max_mappings`.
    pub variants: Vec<(f64, RecExpr, Option<Proof>)>,
    /// Frontier rounds run.
    pub rounds: usize,
    /// Limit-sticky stop reason across rounds.
    pub stop: Option<StopReason>,
    /// E-graph size after extraction and proof generation (matches the
    /// sequential engine's measurement point).
    pub egraph_nodes: usize,
    /// E-graph size right after base-term encoding (the `encode` span
    /// attribute).
    pub encode_nodes: usize,
    /// One report per saturation round — replayed into the check's lemma
    /// stats and saturation telemetry so hit and miss are indistinguishable.
    pub run_reports: Vec<RunReport>,
}

/// Solves a canonical problem from scratch: encode the base term, pull in
/// the pre-computed closure round by round with a saturation run per round,
/// then extract (and, when certifying, prove) the clean variants.
///
/// Deterministic given `(problem, opts, rewrites)` — the foundation of the
/// cache's correctness under racing misses — up to `StopReason::TimeLimit`
/// cuts, which depend on wall clock (see DESIGN.md's determinism contract).
pub(crate) fn solve_problem(
    p: &OpProblem,
    opts: &CheckOptions,
    rewrites: &[Rewrite<TensorAnalysis>],
    backoff: Option<&BackoffSchedule>,
) -> Solved {
    let mut analysis = TensorAnalysis::with_ctx(opts.sym_ctx.clone());
    for l in &p.leaves {
        analysis.register_leaf(&l.name, l.shape.clone(), l.dtype);
    }
    let mut eg = EGraph::with_analysis(analysis);

    let mut input_ids: Vec<Id> = Vec::with_capacity(p.inputs.len());
    for (name, exprs) in &p.inputs {
        let mut rep: Option<Id> = None;
        for e in exprs {
            let id = eg.add_expr(e);
            match rep {
                None => rep = Some(id),
                Some(first) => {
                    eg.union_with(
                        first,
                        id,
                        Justification::Given(format!("mappings of G_s tensor {name}")),
                    );
                }
            }
        }
        input_ids.push(rep.expect("non-empty canonical mapping list"));
    }
    let base = encode_op(&mut eg, &p.op, &input_ids);
    eg.rebuild();
    let encode_nodes = eg.total_nodes();

    let mut stop: Option<StopReason> = None;
    let mut run_reports = Vec::with_capacity(p.def_rounds.len());
    for defs in &p.def_rounds {
        for d in defs {
            let inputs: Vec<&str> = d.inputs.iter().map(String::as_str).collect();
            encode_def(&mut eg, &d.op, &inputs, &d.output, &d.name);
        }
        eg.rebuild();
        let owned = std::mem::replace(&mut eg, EGraph::with_analysis(TensorAnalysis::default()));
        let mut runner = Runner::new(owned)
            .with_iter_limit(opts.iter_limit)
            .with_node_limit(opts.node_limit)
            .with_time_limit(opts.time_limit)
            .with_backoff(backoff.cloned());
        let report = runner.run(rewrites);
        eg = runner.egraph;
        if report.stop_reason.is_limit() || stop.is_none() {
            stop = Some(report.stop_reason);
        }
        run_reports.push(report);
    }

    let prefer: HashSet<&str> = p
        .leaves
        .iter()
        .filter(|l| l.prefer)
        .map(|l| l.name.as_str())
        .collect();
    // Tie-breaking must not depend on tensor names (canonical renaming
    // scrambles string order): bias every `$t{k}` leaf by its
    // first-occurrence index, so equal-cost extraction ties resolve to the
    // most upstream leaf — keeping the leaf diversity downstream frontiers
    // seed from. The bias is far below the 1e-6 prefer margin.
    let leaf_bias = |name: &str| -> f64 {
        name.strip_prefix("$t")
            .and_then(|k| k.parse::<u64>().ok())
            .map_or(0.0, |k| k as f64 * 1e-12)
    };
    let with_cost = extract_clean_variants_with_cost(
        &eg,
        base,
        &opts.clean,
        &prefer,
        opts.max_mappings,
        &leaf_bias,
    );
    let variants = if opts.certify {
        with_cost
            .into_iter()
            .map(|(c, expr)| {
                let vid = eg.add_expr(&expr);
                let proof = eg.explain_equivalence(base, vid);
                (c, expr, proof)
            })
            .collect()
    } else {
        with_cost.into_iter().map(|(c, e)| (c, e, None)).collect()
    };
    Solved {
        variants,
        rounds: p.def_rounds.len(),
        stop,
        egraph_nodes: eg.total_nodes(),
        encode_nodes,
        run_reports,
    }
}
