//! Canonical per-operator problems for the cross-operator saturation memo.
//!
//! Distributed ML graphs are towers of structurally identical blocks: every
//! transformer layer, every MoE expert re-poses the *same* per-operator
//! mapping problems over differently named tensors. This module extracts the
//! naming-independent core of one operator's search — the [`OpProblem`] —
//! and solves it entirely in a canonical namespace (`$t0, $t1, …` for `G_d`
//! tensor leaves, `$i0, $i1, …` for `G_s` input facts, `$n0, $n1, …` for
//! `G_d` definition facts), so two isomorphic operators produce the same
//! cache key *and* byte-identical [`Solved`] values. The checker renames a
//! solved result back through the inverse [`Renamer`] — including the proof
//! chains and the `Given` fact strings the trusted kernel re-validates — so
//! a cache hit is observationally identical to a miss.
//!
//! Canonical names are assigned in first-occurrence order of a traversal
//! that is itself canonical: input-mapping leaves in input/expression order,
//! then frontier-closure definition outputs in discovery order. Isomorphic
//! subproblems therefore canonicalize identically even when their real
//! tensors interleave differently in `G_d`.

use std::collections::{BTreeSet, HashMap, HashSet};

use entangle_egraph::{
    BackoffSchedule, EGraph, ENode, Id, Justification, Proof, RecExpr, Rewrite, RunReport, Runner,
    StopReason, Symbol,
};
use entangle_ir::{DType, Graph, Node, Op, Shape, TensorId};
use entangle_lemmas::TensorAnalysis;
use entangle_par::Renamer;

use crate::checker::{extract_clean_variants_with_cost, CheckOptions};
use crate::encode::{encode_def, encode_op};

/// One `G_d` operator definition pulled into the frontier, in canonical
/// names.
#[derive(Debug)]
pub(crate) struct CanonDef {
    /// Canonical node name (`$n{j}`) — only used in the `Given` fact string.
    pub name: String,
    pub op: Op,
    pub inputs: Vec<String>,
    pub output: String,
}

/// One canonical tensor leaf (`$t{i}`) with the analysis data the engine
/// needs (shape/dtype drive conditional lemmas and synthetic-leaf folding).
#[derive(Debug)]
pub(crate) struct CanonLeaf {
    pub name: String,
    pub shape: Shape,
    pub dtype: DType,
    /// `true` when the real tensor is a `G_d` *output* — extraction prefers
    /// these on cost ties (Listing 1 line 9 only keeps output-leaf mappings
    /// for `G_s` outputs).
    pub prefer: bool,
}

/// A naming-independent per-operator mapping problem: everything
/// [`solve_problem`] reads. Two operators with equal problems (and equal
/// engine configuration) have byte-identical solutions.
#[derive(Debug)]
pub(crate) struct OpProblem {
    pub op: Op,
    /// Per `G_s` input, in operator order: the canonical input name
    /// (`$i{k}`, used only in the union fact string) and the canonicalized
    /// clean mappings.
    pub inputs: Vec<(String, Vec<RecExpr>)>,
    /// The frontier closure, round by round, exactly as the sequential
    /// engine would discover it (round 1 may be empty — it still saturates
    /// the base term once).
    pub def_rounds: Vec<Vec<CanonDef>>,
    /// Canonical leaves in `$t` index order.
    pub leaves: Vec<CanonLeaf>,
}

/// Assigns `$t{i}` names in first-occurrence order and accumulates the
/// inverse renaming.
struct Canonizer<'g> {
    gd: &'g Graph,
    gd_output_set: HashSet<TensorId>,
    fwd: Renamer,
    back: Renamer,
    canon_of: HashMap<TensorId, String>,
    leaves: Vec<CanonLeaf>,
}

impl Canonizer<'_> {
    fn assign(&mut self, t: TensorId) -> String {
        if let Some(name) = self.canon_of.get(&t) {
            return name.clone();
        }
        let tensor = self.gd.tensor(t);
        let cname = format!("$t{}", self.leaves.len());
        self.fwd
            .leaf(Symbol::new(&tensor.name), Symbol::new(&cname));
        self.back
            .leaf(Symbol::new(&cname), Symbol::new(&tensor.name));
        self.leaves.push(CanonLeaf {
            name: cname.clone(),
            shape: tensor.shape.clone(),
            dtype: tensor.dtype,
            prefer: self.gd_output_set.contains(&t),
        });
        self.canon_of.insert(t, cname.clone());
        cname
    }
}

/// Per-check index over `G_d`: for every tensor id, the *positions* (not
/// ids — ids on unvalidated graphs may be misindexed) of the nodes that
/// consume it, ascending. Built once per `check_refinement` and shared by
/// every [`build_problem`] call so the frontier closure only re-examines
/// nodes whose inputs just became related, instead of rescanning the whole
/// graph each round.
pub(crate) struct GdConsumers {
    by_tensor: Vec<Vec<u32>>,
    /// Positions of nodes with no inputs — eligible from the first round.
    sourceless: Vec<u32>,
}

impl GdConsumers {
    pub(crate) fn new(gd: &Graph) -> GdConsumers {
        let mut by_tensor: Vec<Vec<u32>> = vec![Vec::new(); gd.tensors().len()];
        let mut sourceless = Vec::new();
        for (pos, n) in gd.nodes().iter().enumerate() {
            let pos = u32::try_from(pos).expect("graph larger than u32 positions");
            if n.inputs.is_empty() {
                sourceless.push(pos);
            }
            for &t in &n.inputs {
                let v = &mut by_tensor[t.0 as usize];
                // A node listing the same tensor twice appends back-to-back.
                if v.last() != Some(&pos) {
                    v.push(pos);
                }
            }
        }
        GdConsumers {
            by_tensor,
            sourceless,
        }
    }
}

/// Builds the canonical problem for one `G_s` operator given its inputs'
/// current mappings (`per_input`, in operator order), plus the
/// canonical→real [`Renamer`] that replays a solution.
///
/// The frontier closure is *simulated* here — same rule, same round
/// structure as `node_out_rel` — rather than discovered during saturation:
/// the set of reachable `G_d` definitions depends only on the input
/// mappings' leaves and the graph, never on what saturation derives, so the
/// closure is a pure function of the problem.
pub(crate) fn build_problem(
    gs: &Graph,
    gd: &Graph,
    node: &Node,
    per_input: &[Vec<RecExpr>],
    consumers: &GdConsumers,
) -> (OpProblem, Renamer) {
    let mut cz = Canonizer {
        gd,
        gd_output_set: gd.outputs().iter().copied().collect(),
        fwd: Renamer::new(),
        back: Renamer::new(),
        canon_of: HashMap::new(),
        leaves: Vec::new(),
    };

    // Seed the related set (and the canonical namespace) from the input
    // mappings' G_d leaves, in input/expression/leaf order.
    let mut t_rel: HashSet<TensorId> = HashSet::new();
    for exprs in per_input {
        for e in exprs {
            for sym in e.leaf_symbols() {
                if let Some(t) = gd.tensor_by_name(sym.as_str()).map(|t| t.id) {
                    cz.assign(t);
                    t_rel.insert(t);
                }
            }
        }
    }

    let mut inputs = Vec::with_capacity(per_input.len());
    for (k, (&t, exprs)) in node.inputs.iter().zip(per_input).enumerate() {
        let cin = format!("$i{k}");
        cz.back.fact(
            format!("mappings of G_s tensor {cin}"),
            format!("mappings of G_s tensor {}", gs.tensor(t).name),
        );
        inputs.push((cin, exprs.iter().map(|e| cz.fwd.rename_expr(e)).collect()));
    }

    // Frontier closure with the exact round structure of the sequential
    // engine's full-graph scan, driven by the consumer worklist instead: a
    // node re-enters the *current* round only when an input became related
    // at a smaller scan position (the in-order scan would still reach it),
    // otherwise the next round. The first round runs even when empty.
    let mut defs_added: HashSet<u32> = HashSet::new();
    let mut def_rounds: Vec<Vec<CanonDef>> = Vec::new();
    let mut def_counter = 0usize;
    let mut candidates: BTreeSet<u32> = consumers.sourceless.iter().copied().collect();
    for &t in &t_rel {
        candidates.extend(consumers.by_tensor[t.0 as usize].iter().copied());
    }
    let mut first_round = true;
    loop {
        let mut round = Vec::new();
        let mut next: BTreeSet<u32> = BTreeSet::new();
        while let Some(pos) = candidates.pop_first() {
            if defs_added.contains(&pos) {
                continue;
            }
            let n = &gd.nodes()[pos as usize];
            if !n.inputs.iter().all(|t| t_rel.contains(t)) {
                // Not ready — dropped, re-queued when another input becomes
                // related (exactly when the scan's verdict could change).
                continue;
            }
            defs_added.insert(pos);
            let inputs_c: Vec<String> = n.inputs.iter().map(|&t| cz.assign(t)).collect();
            t_rel.insert(n.output);
            let output_c = cz.assign(n.output);
            let cname = format!("$n{def_counter}");
            def_counter += 1;
            cz.back.fact(
                format!("G_d definition of {cname}"),
                format!("G_d definition of {}", n.name),
            );
            round.push(CanonDef {
                name: cname,
                op: n.op.clone(),
                inputs: inputs_c,
                output: output_c,
            });
            for &c in &consumers.by_tensor[n.output.0 as usize] {
                if c > pos {
                    candidates.insert(c);
                } else {
                    next.insert(c);
                }
            }
        }
        if round.is_empty() && !first_round {
            break;
        }
        first_round = false;
        def_rounds.push(round);
        candidates = next;
    }

    (
        OpProblem {
            op: node.op.clone(),
            inputs,
            def_rounds,
            leaves: cz.leaves,
        },
        cz.back,
    )
}

impl OpProblem {
    /// The cache key: the problem rendered canonically, plus the engine
    /// configuration fingerprint (`cfg` — limits, clean set, lemma corpus)
    /// computed once per check.
    pub(crate) fn key(&self, cfg: &str) -> String {
        use std::fmt::Write;
        let mut k = String::with_capacity(256 + cfg.len());
        let _ = write!(k, "op={:?};", self.op);
        for (name, exprs) in &self.inputs {
            let _ = write!(k, "in {name}:");
            for e in exprs {
                let _ = write!(k, "{e},");
            }
            k.push(';');
        }
        for (r, defs) in self.def_rounds.iter().enumerate() {
            let _ = write!(k, "round{r}:");
            for d in defs {
                let _ = write!(k, "{:?}({})->{};", d.op, d.inputs.join(","), d.output);
            }
        }
        for l in &self.leaves {
            let _ = write!(k, "leaf {}:{}:{:?}:{};", l.name, l.shape, l.dtype, l.prefer);
        }
        k.push_str(cfg);
        k
    }

    /// The *template* cache key: the canonical problem re-normalized so that
    /// structurally corresponding members of an `entangle-iso` template
    /// class render identically even when their canonical forms differ:
    ///
    /// - every concrete integer slice bound becomes a *per-site* `$b`
    ///   placeholder (no value dedup — sibling instances disagree on which
    ///   values coincide); the concrete values are returned in render order
    ///   in [`TemplateKey::bounds`];
    /// - frontier-definition output tensors are renumbered `$c0, $c1, …` in
    ///   a structure-sorted order (per closure round, per readiness batch,
    ///   sorted by abstracted signature, then concrete bound values, then
    ///   original position). Definition outputs that are *also* input-mapping
    ///   leaves keep their `$t` names — the mapping-determined namespace is
    ///   member-invariant and anchors each member's "own" definitions to the
    ///   same slot.
    ///
    /// The original `$n{j}` fact labels and output tensor names are returned
    /// per normalized slot in [`TemplateKey::defs`], so a hit can translate
    /// the representative's solution into the member's canonical namespace
    /// with a [`Renamer`]. The key is prefixed with the structural class id
    /// so problems from different template classes can never collide — a
    /// cross-class collision would make hit-vs-solve timing dependent and
    /// break the jobs-invariance contract.
    ///
    /// Returns `None` when a closure round cannot be topologically ordered
    /// (never happens for frontier output — defensive only).
    pub(crate) fn template_key(&self, cfg: &str, class: usize) -> Option<TemplateKey> {
        use std::fmt::Write;
        let mut bounds = Vec::new();
        let mut key = String::with_capacity(512 + cfg.len());
        let _ = write!(key, "class={class};op=");
        abstract_op(&mut key, &self.op, &mut bounds);
        key.push(';');
        for (name, exprs) in &self.inputs {
            let _ = write!(key, "in {name}:");
            for e in exprs {
                abstract_expr(&mut key, e, e.root_id(), false, &mut bounds);
                key.push(',');
            }
            key.push(';');
        }

        let mapping_leaves: HashSet<String> = self
            .inputs
            .iter()
            .flat_map(|(_, es)| es.iter())
            .flat_map(|e| e.leaf_symbols())
            .map(|s| s.as_str().to_owned())
            .collect();
        let def_outputs: HashSet<&str> = self
            .def_rounds
            .iter()
            .flatten()
            .map(|d| d.output.as_str())
            .collect();
        // Maps renumbered definition outputs; mapping-determined names are
        // identity and need no entry.
        let mut norm: HashMap<String, String> = HashMap::new();
        let mut defs_meta: Vec<(String, String)> = Vec::new();
        let mut renumbered = 0usize;
        let resolve = |norm: &HashMap<String, String>, name: &str| -> Option<String> {
            if let Some(n) = norm.get(name) {
                Some(n.clone())
            } else if def_outputs.contains(name) && !mapping_leaves.contains(name) {
                None
            } else {
                Some(name.to_owned())
            }
        };
        for round in &self.def_rounds {
            key.push_str("round:");
            let mut remaining: Vec<&CanonDef> = round.iter().collect();
            while !remaining.is_empty() {
                // (signature, site values, original position, def)
                let mut ready: Vec<(String, Vec<i64>, usize, &CanonDef)> = Vec::new();
                let mut rest: Vec<&CanonDef> = Vec::new();
                for (pos, d) in remaining.into_iter().enumerate() {
                    let mut sig = String::new();
                    let mut vals = Vec::new();
                    abstract_op(&mut sig, &d.op, &mut vals);
                    sig.push('(');
                    let mut resolved = true;
                    for i in &d.inputs {
                        match resolve(&norm, i) {
                            Some(n) => {
                                sig.push_str(&n);
                                sig.push(',');
                            }
                            None => {
                                resolved = false;
                                break;
                            }
                        }
                    }
                    if !resolved {
                        rest.push(d);
                        continue;
                    }
                    sig.push(')');
                    if mapping_leaves.contains(&d.output) {
                        // Leaf-anchored output: part of the signature, so
                        // each member's "own" definitions sort to the same
                        // slot regardless of their concrete bounds.
                        let _ = write!(sig, "->{}", d.output);
                    }
                    ready.push((sig, vals, pos, d));
                }
                if ready.is_empty() {
                    return None;
                }
                ready.sort_by(|a, b| {
                    a.0.cmp(&b.0)
                        .then_with(|| a.1.cmp(&b.1))
                        .then(a.2.cmp(&b.2))
                });
                for (sig, vals, _, d) in ready {
                    let out = if mapping_leaves.contains(&d.output) {
                        d.output.clone()
                    } else {
                        let c = format!("$c{renumbered}");
                        renumbered += 1;
                        norm.insert(d.output.clone(), c.clone());
                        c
                    };
                    let _ = write!(key, "{sig}->{out};");
                    bounds.extend(vals);
                    defs_meta.push((d.name.clone(), d.output.clone()));
                }
                remaining = rest;
            }
        }

        // Leaves: mapping-determined ones in original (member-invariant)
        // order, then definition outputs in normalized slot order.
        let by_name: HashMap<&str, &CanonLeaf> =
            self.leaves.iter().map(|l| (l.name.as_str(), l)).collect();
        for l in &self.leaves {
            if def_outputs.contains(l.name.as_str()) && !mapping_leaves.contains(&l.name) {
                continue;
            }
            let _ = write!(
                key,
                "leaf {}:{}:{:?}:{};",
                l.name, l.shape, l.dtype, l.prefer
            );
        }
        for (_, out) in &defs_meta {
            if mapping_leaves.contains(out) {
                continue;
            }
            let l = by_name.get(out.as_str())?;
            let _ = write!(
                key,
                "leaf {}:{}:{:?}:{};",
                norm[out], l.shape, l.dtype, l.prefer
            );
        }
        key.push_str(cfg);
        Some(TemplateKey {
            key,
            bounds,
            defs: defs_meta,
        })
    }
}

/// A per-template cache key: see [`OpProblem::template_key`].
pub(crate) struct TemplateKey {
    pub key: String,
    /// Concrete slice-bound values, one per `$b` site, in render order.
    pub bounds: Vec<i64>,
    /// Per normalized definition slot: the (`$n{j}` fact label, output
    /// tensor name) pair in this problem's own canonical namespace. Two
    /// problems with equal keys pair slot-by-slot; differing entries become
    /// `Renamer` translations from the representative's namespace into the
    /// member's.
    pub defs: Vec<(String, String)>,
}

/// Renders an operator with concrete slice bounds abstracted to per-site
/// `$b` placeholders (values pushed onto `bounds`); every other attribute
/// (dims, scales, ranks) stays concrete — it is part of the template's
/// structure, not its parameterization.
fn abstract_op(out: &mut String, op: &Op, bounds: &mut Vec<i64>) {
    use std::fmt::Write;
    match op {
        Op::Slice { dim, start, end } if start.as_const().is_some() && end.as_const().is_some() => {
            bounds.push(start.as_const().unwrap());
            bounds.push(end.as_const().unwrap());
            let _ = write!(out, "Slice[dim={dim},start=$b,end=$b]");
        }
        op => {
            let _ = write!(out, "{op:?}");
        }
    }
}

/// Renders an expression in [`RecExpr`] display syntax with integers in
/// slice-bound positions (children 2 and 3 of a 4-argument `slice`)
/// abstracted to per-site `$b` placeholders; integers anywhere else —
/// dims, scalars — stay concrete.
fn abstract_expr(out: &mut String, e: &RecExpr, at: Id, bound_pos: bool, bounds: &mut Vec<i64>) {
    use std::fmt::Write;
    match e.node(at) {
        ENode::Int(i) if bound_pos => {
            bounds.push(*i);
            out.push_str("$b");
        }
        ENode::Int(i) => {
            let _ = write!(out, "{i}");
        }
        ENode::Sym(s) => {
            let _ = write!(out, "{{{s}}}");
        }
        ENode::Op(sym, ch) if ch.is_empty() => {
            let _ = write!(out, "{sym}");
        }
        ENode::Op(sym, ch) => {
            let slice_bounds = sym.as_str() == "slice" && ch.len() == 4;
            let _ = write!(out, "({sym}");
            for (i, c) in ch.iter().enumerate() {
                out.push(' ');
                abstract_expr(out, e, *c, slice_bounds && i >= 2, bounds);
            }
            out.push(')');
        }
    }
}

/// A solved canonical problem — everything an operator's merge step needs,
/// expressed in canonical names. Stored once per key in the sharded cache
/// and replayed (renamed back) by every structurally identical operator.
#[derive(Debug)]
pub(crate) struct Solved {
    /// Clean variants with extraction cost and (when certifying) the proof
    /// chain to the encoded base term, sorted by `(cost, canonical text)`
    /// and truncated to `max_mappings`.
    pub variants: Vec<(f64, RecExpr, Option<Proof>)>,
    /// Frontier rounds run.
    pub rounds: usize,
    /// Limit-sticky stop reason across rounds.
    pub stop: Option<StopReason>,
    /// E-graph size after extraction and proof generation (matches the
    /// sequential engine's measurement point).
    pub egraph_nodes: usize,
    /// E-graph size right after base-term encoding (the `encode` span
    /// attribute).
    pub encode_nodes: usize,
    /// One report per saturation round — replayed into the check's lemma
    /// stats and saturation telemetry so hit and miss are indistinguishable.
    pub run_reports: Vec<RunReport>,
}

/// Solves a canonical problem from scratch: encode the base term, pull in
/// the pre-computed closure round by round with a saturation run per round,
/// then extract (and, when certifying, prove) the clean variants.
///
/// Deterministic given `(problem, opts, rewrites)` — the foundation of the
/// cache's correctness under racing misses — up to `StopReason::TimeLimit`
/// cuts, which depend on wall clock (see DESIGN.md's determinism contract).
pub(crate) fn solve_problem(
    p: &OpProblem,
    opts: &CheckOptions,
    rewrites: &[Rewrite<TensorAnalysis>],
    backoff: Option<&BackoffSchedule>,
) -> Solved {
    let mut analysis = TensorAnalysis::with_ctx(opts.sym_ctx.clone());
    for l in &p.leaves {
        analysis.register_leaf(&l.name, l.shape.clone(), l.dtype);
    }
    let mut eg = EGraph::with_analysis(analysis);

    let mut input_ids: Vec<Id> = Vec::with_capacity(p.inputs.len());
    for (name, exprs) in &p.inputs {
        let mut rep: Option<Id> = None;
        for e in exprs {
            let id = eg.add_expr(e);
            match rep {
                None => rep = Some(id),
                Some(first) => {
                    eg.union_with(
                        first,
                        id,
                        Justification::Given(format!("mappings of G_s tensor {name}")),
                    );
                }
            }
        }
        input_ids.push(rep.expect("non-empty canonical mapping list"));
    }
    let base = encode_op(&mut eg, &p.op, &input_ids);
    eg.rebuild();
    let encode_nodes = eg.total_nodes();

    let mut stop: Option<StopReason> = None;
    let mut run_reports = Vec::with_capacity(p.def_rounds.len());
    for defs in &p.def_rounds {
        for d in defs {
            let inputs: Vec<&str> = d.inputs.iter().map(String::as_str).collect();
            encode_def(&mut eg, &d.op, &inputs, &d.output, &d.name);
        }
        eg.rebuild();
        let owned = std::mem::replace(&mut eg, EGraph::with_analysis(TensorAnalysis::default()));
        let mut runner = Runner::new(owned)
            .with_iter_limit(opts.iter_limit)
            .with_node_limit(opts.node_limit)
            .with_time_limit(opts.time_limit)
            .with_backoff(backoff.cloned());
        let report = runner.run(rewrites);
        eg = runner.egraph;
        if report.stop_reason.is_limit() || stop.is_none() {
            stop = Some(report.stop_reason);
        }
        run_reports.push(report);
    }

    let prefer: HashSet<&str> = p
        .leaves
        .iter()
        .filter(|l| l.prefer)
        .map(|l| l.name.as_str())
        .collect();
    // Tie-breaking must not depend on tensor names (canonical renaming
    // scrambles string order): bias every `$t{k}` leaf by its
    // first-occurrence index, so equal-cost extraction ties resolve to the
    // most upstream leaf — keeping the leaf diversity downstream frontiers
    // seed from. The bias is far below the 1e-6 prefer margin.
    let leaf_bias = |name: &str| -> f64 {
        name.strip_prefix("$t")
            .and_then(|k| k.parse::<u64>().ok())
            .map_or(0.0, |k| k as f64 * 1e-12)
    };
    let with_cost = extract_clean_variants_with_cost(
        &eg,
        base,
        &opts.clean,
        &prefer,
        opts.max_mappings,
        &leaf_bias,
    );
    let variants = if opts.certify {
        with_cost
            .into_iter()
            .map(|(c, expr)| {
                let vid = eg.add_expr(&expr);
                let proof = eg.explain_equivalence(base, vid);
                (c, expr, proof)
            })
            .collect()
    } else {
        with_cost.into_iter().map(|(c, e)| (c, e, None)).collect()
    };
    Solved {
        variants,
        rounds: p.def_rounds.len(),
        stop,
        egraph_nodes: eg.total_nodes(),
        encode_nodes,
        run_reports,
    }
}
