//! ENTANGLE: static model-refinement checking for distributed ML models.
//!
//! This crate is the reproduction of the paper's primary contribution. Given
//! a *sequential* model `G_s`, a *distributed* implementation `G_d` (both
//! [`entangle_ir::Graph`]s), and a user-provided clean **input relation**
//! `R_i` mapping `G_s`'s input tensors to expressions over `G_d`'s inputs,
//! [`check_refinement`] searches for a complete clean **output relation**
//! `R_o` that reconstructs every `G_s` output from `G_d`'s tensors using only
//! rearrangement (slice / concat / transpose / …) and reduction (element-wise
//! sum) operators. Failure to find one indicates a distribution bug, and the
//! returned [`RefinementError`] names the first sequential operator whose
//! outputs could not be mapped — the paper's bug-localization story (§6.2).
//!
//! The algorithm is the paper's Listing 1–3:
//!
//! - operators of `G_s` are processed one at a time in topological order,
//!   which keeps runtime linear in model depth (§4);
//! - for each operator, a fresh e-graph is seeded with the operator's output
//!   expressed over `G_d` tensors (via the relation so far), saturated with
//!   the lemma corpus, and enriched with `G_d` operator definitions restricted
//!   to the *frontier* of related tensors (the Listing 3 optimization);
//! - clean mappings are extracted with an infinite-cost extractor over
//!   non-clean operators, and only the simplest representatives are kept
//!   (§4.3.2 pruning).
//!
//! §4.4's user-expectation checks are provided by [`check_expectation`].
//!
//! # Examples
//!
//! The paper's Figure 1/2 example end to end:
//!
//! ```
//! use entangle::{check_refinement, CheckOptions, Relation};
//! use entangle_ir::{DType, GraphBuilder, Op};
//!
//! // Sequential: F = (A x B) - E
//! let mut gs = GraphBuilder::new("seq");
//! let a = gs.input("A", &[4, 8], DType::F32);
//! let b = gs.input("B", &[8, 4], DType::F32);
//! let e = gs.input("E", &[4, 4], DType::F32);
//! let c = gs.apply("C", Op::Matmul, &[a, b]).unwrap();
//! let f = gs.apply("F", Op::Sub, &[c, e]).unwrap();
//! gs.mark_output(f);
//! let gs = gs.finish().unwrap();
//!
//! // Distributed on 2 ranks: contraction-split matmul + reduce-scatter.
//! let mut gd = GraphBuilder::new("dist");
//! let a1 = gd.input("A1", &[4, 4], DType::F32);
//! let a2 = gd.input("A2", &[4, 4], DType::F32);
//! let b1 = gd.input("B1", &[4, 4], DType::F32);
//! let b2 = gd.input("B2", &[4, 4], DType::F32);
//! let e1 = gd.input("E1", &[2, 4], DType::F32);
//! let e2 = gd.input("E2", &[2, 4], DType::F32);
//! let c1 = gd.apply("C1", Op::Matmul, &[a1, b1]).unwrap();
//! let c2 = gd.apply("C2", Op::Matmul, &[a2, b2]).unwrap();
//! let d1 = gd.apply("D1", Op::ReduceScatter { dim: 0, rank: 0, world: 2 }, &[c1, c2]).unwrap();
//! let d2 = gd.apply("D2", Op::ReduceScatter { dim: 0, rank: 1, world: 2 }, &[c1, c2]).unwrap();
//! let f1 = gd.apply("F1", Op::Sub, &[d1, e1]).unwrap();
//! let f2 = gd.apply("F2", Op::Sub, &[d2, e2]).unwrap();
//! gd.mark_output(f1);
//! gd.mark_output(f2);
//! let gd = gd.finish().unwrap();
//!
//! let mut ri = Relation::builder(&gs, &gd);
//! ri.map("A", "(concat A1 A2 1)").unwrap();
//! ri.map("B", "(concat B1 B2 0)").unwrap();
//! ri.map("E", "(concat E1 E2 0)").unwrap();
//!
//! let outcome = check_refinement(&gs, &gd, &ri.build(), &CheckOptions::default()).unwrap();
//! let f_maps = outcome.output_relation.mappings(f).unwrap();
//! assert!(f_maps.iter().any(|m| m.to_string() == "(concat F1 F2 0)"));
//! ```

#![forbid(unsafe_code)]

mod checker;
mod encode;
mod expect;
mod memo;
mod relation;

pub use checker::{
    check_lint, check_refinement, CheckOptions, CheckOutcome, LemmaStats, OpReport, ParStats,
    RefinementError, SaturationSummary,
};
pub use encode::{clean_cost, encode_def, encode_node, CleanOps};
pub use entangle_egraph::{SaturationReport, StopReason};
pub use expect::{append_expr, check_expectation, ExpectationError};
pub use relation::{Relation, RelationBuilder};

/// Parses a universal rewrite over the checker's analysis type — a helper
/// for benchmarks that swap individual corpus lemmas (e.g. the constrained-
/// associativity ablation).
///
/// # Panics
///
/// Panics on unparsable patterns (benchmark inputs are literals).
pub fn __bench_parse_rewrite(
    name: &str,
    lhs: &str,
    rhs: &str,
) -> entangle_egraph::Rewrite<entangle_lemmas::TensorAnalysis> {
    entangle_egraph::Rewrite::parse(name, lhs, rhs).expect("benchmark rewrite parses")
}

#[cfg(test)]
mod tests;
