//! Encoding IR operators into the e-graph, and the clean-expression cost
//! model used for extraction.

use entangle_egraph::{EGraph, ENode, Id, Symbol};
use entangle_ir::{Node, Op};
use entangle_lemmas::{cond, TensorAnalysis};

/// The set of operators allowed in *clean* expressions (§3.2): tensor
/// rearrangement plus the distributed reduction (element-wise sum, which is
/// what `all_reduce` lowers to).
///
/// # Examples
///
/// ```
/// use entangle::CleanOps;
///
/// let clean = CleanOps::default();
/// assert!(clean.is_clean("concat"));
/// assert!(clean.is_clean("add"));
/// assert!(!clean.is_clean("matmul"));
/// assert!(!clean.is_clean("scalar_mul")); // scaling is computation
/// ```
#[derive(Debug, Clone)]
pub struct CleanOps {
    ops: Vec<&'static str>,
}

impl Default for CleanOps {
    fn default() -> Self {
        CleanOps {
            // Rearrangement ops + the reduction combining rank-local
            // tensors. `add` is the lowering of `all_reduce`/reduce-sum.
            ops: vec!["slice", "concat", "transpose", "permute", "identity", "add"],
        }
    }
}

impl CleanOps {
    /// A custom clean-op set (for ablations).
    pub fn new(ops: Vec<&'static str>) -> CleanOps {
        CleanOps { ops }
    }

    /// Is the operator allowed in clean expressions?
    pub fn is_clean(&self, op: &str) -> bool {
        self.ops.contains(&op)
    }
}

/// The extraction cost model: leaves (`G_d` tensors) and clean operators
/// cost 1, scalars cost 0, anything else is infinite — so a finite-cost
/// extraction *is* a clean expression over `G_d` tensors.
///
/// `prefer` names leaves to bias ties toward (the checker passes `G_d`'s
/// *outputs*: when a class holds both an input and an output leaf —
/// identity-like computations do this — the output form is the one the
/// Listing 1 line 9 filter can keep).
pub fn clean_cost<'a>(
    clean: &'a CleanOps,
    prefer: &'a std::collections::HashSet<&'a str>,
) -> impl Fn(&ENode, &[f64]) -> f64 + 'a {
    move |node: &ENode, children: &[f64]| -> f64 {
        let own = match node {
            ENode::Int(_) | ENode::Sym(_) => 0.0,
            ENode::Op(sym, ch) if ch.is_empty() => {
                // Synthetic canonicalization leaves (e.g. `~ones[2, 3]`)
                // unify classes but are not G_d tensors: never extract them.
                if sym
                    .as_str()
                    .starts_with(entangle_lemmas::SYNTHETIC_LEAF_PREFIX)
                {
                    f64::INFINITY
                } else if prefer.contains(sym.as_str()) {
                    1.0
                } else {
                    1.000001
                }
            }
            ENode::Op(sym, _) => {
                if clean.is_clean(sym.as_str()) {
                    1.0
                } else {
                    f64::INFINITY
                }
            }
        };
        own + children.iter().sum::<f64>()
    }
}

/// Encodes one operator application over already-encoded tensor inputs.
///
/// Collectives are lowered to their combining semantics — n-ary `all_reduce`
/// to a left-folded binary `add` chain, `all_gather`/n-ary `concat` to a
/// binary `concat` chain, `reduce_scatter` to a `slice` of the `add` chain —
/// so the lemma corpus only ever sees fixed-arity operators.
pub fn encode_op(eg: &mut EGraph<TensorAnalysis>, op: &Op, inputs: &[Id]) -> Id {
    match op {
        Op::AllReduce => fold_binary(eg, "add", inputs),
        Op::Concat { dim } => {
            let d = cond::add_int(eg, *dim as i64);
            fold_binary_with_attr(eg, "concat", inputs, d)
        }
        Op::AllGather { dim } => {
            let d = cond::add_int(eg, *dim as i64);
            fold_binary_with_attr(eg, "concat", inputs, d)
        }
        Op::ReduceScatter { dim, rank, world } => {
            let summed = fold_binary(eg, "add", inputs);
            // The shard bounds come from the (concrete) reduced shape.
            let size = cond::dim_size(eg, summed, *dim)
                .and_then(|e| e.as_const())
                .expect("reduce_scatter over concrete dims");
            let chunk = size / *world as i64;
            let d = cond::add_int(eg, *dim as i64);
            let lo = cond::add_int(eg, *rank as i64 * chunk);
            let hi = cond::add_int(eg, (*rank as i64 + 1) * chunk);
            eg.add(ENode::op("slice", vec![summed, d, lo, hi]))
        }
        other => {
            let mut children = inputs.to_vec();
            for attr in other.attr_scalars() {
                children.push(cond::add_scalar(eg, attr));
            }
            eg.add(ENode::Op(Symbol::new(other.name()), children))
        }
    }
}

fn fold_binary(eg: &mut EGraph<TensorAnalysis>, name: &str, inputs: &[Id]) -> Id {
    assert!(!inputs.is_empty(), "collective needs inputs");
    let mut acc = inputs[0];
    for &next in &inputs[1..] {
        acc = eg.add(ENode::op(name, vec![acc, next]));
    }
    acc
}

fn fold_binary_with_attr(
    eg: &mut EGraph<TensorAnalysis>,
    name: &str,
    inputs: &[Id],
    attr: Id,
) -> Id {
    assert!(!inputs.is_empty(), "collective needs inputs");
    let mut acc = inputs[0];
    for &next in &inputs[1..] {
        acc = eg.add(ENode::op(name, vec![acc, next, attr]));
    }
    acc
}

/// Encodes a `G_d` node as the equality `leaf(output) ≡ op(leaf(inputs))`,
/// returning the class holding both.
pub fn encode_node(eg: &mut EGraph<TensorAnalysis>, gd: &entangle_ir::Graph, node: &Node) -> Id {
    let inputs: Vec<&str> = node
        .inputs
        .iter()
        .map(|&t| gd.tensor(t).name.as_str())
        .collect();
    encode_def(
        eg,
        &node.op,
        &inputs,
        &gd.tensor(node.output).name,
        &node.name,
    )
}

/// Encodes one operator definition given by tensor *names* — the graph-free
/// core of [`encode_node`], also used by the canonical-space saturation memo
/// (where the names are `$t0, $t1, …` rather than real `G_d` tensors).
pub fn encode_def(
    eg: &mut EGraph<TensorAnalysis>,
    op: &Op,
    input_names: &[&str],
    output_name: &str,
    node_name: &str,
) -> Id {
    let inputs: Vec<Id> = input_names
        .iter()
        .map(|name| eg.add(ENode::leaf(name)))
        .collect();
    let app = encode_op(eg, op, &inputs);
    let out_leaf = eg.add(ENode::leaf(output_name));
    let (root, _) = eg.union_with(
        out_leaf,
        app,
        entangle_egraph::Justification::Given(format!("G_d definition of {node_name}")),
    );
    root
}
