//! The refinement-checking algorithm (Listings 1–3).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

use entangle_cert::{CertError, Certificate, MappingCert};
use entangle_egraph::{
    EGraph, ENode, Extractor, Id, Justification, Proof, RecExpr, Rewrite, Runner, SaturationReport,
    StopReason,
};
use entangle_ir::{Graph, Node, NodeId, TensorId};
use entangle_lemmas::{registry, rewrites_of, TensorAnalysis};
use entangle_symbolic::SymCtx;
use entangle_trace::Tracer;

use crate::encode::{clean_cost, encode_node, encode_op, CleanOps};
use crate::relation::Relation;

/// Tuning knobs and ablation switches for [`check_refinement`].
pub struct CheckOptions {
    /// Saturation iteration limit per round.
    pub iter_limit: usize,
    /// E-node limit per operator e-graph.
    pub node_limit: usize,
    /// Wall-clock limit per operator.
    pub time_limit: Duration,
    /// The Listing 3 frontier optimization: only pull `G_d` operators whose
    /// inputs are related to the current operator into the e-graph. Turning
    /// this off reproduces the unoptimized Listing 2 step 3 (ablation).
    pub frontier: bool,
    /// Process each `G_s` operator in a fresh e-graph (the paper's iterative
    /// design). `false` keeps one monolithic e-graph across operators — the
    /// whole-graph-saturation ablation.
    pub fresh_egraph_per_op: bool,
    /// §4.3.2 pruning: how many simplest mappings to keep per tensor.
    pub max_mappings: usize,
    /// The clean-operator set.
    pub clean: CleanOps,
    /// Symbolic-scalar context (user constraints on symbolic dims).
    pub sym_ctx: SymCtx,
    /// The rewrites to saturate with; `None` uses the full lemma registry.
    pub rewrites: Option<Vec<Rewrite<TensorAnalysis>>>,
    /// Run the `entangle-lint` static pre-pass over both graphs before any
    /// saturation (on by default). Lint errors fail fast with
    /// [`RefinementError::Lint`]; a malformed or mis-sharded `G_d` is
    /// rejected for pennies instead of surfacing as an opaque unmapped
    /// operator after seconds of e-graph work.
    pub lint: bool,
    /// Run the `entangle-shard` abstract sharding-propagation pass between
    /// lint and saturation (on by default). Provable layout violations fail
    /// fast with [`RefinementError::ShardViolation`], anchored at the first
    /// inconsistent `G_d` operator; proven layouts are exported as relation
    /// hints that seed — and, where they fully cover an operator's output —
    /// skip per-operator saturation. Turning this off reproduces the pure
    /// Listing 1–3 pipeline (ablation).
    pub shard_hints: bool,
    /// Proof-carrying refinement (on by default): extract a rewrite
    /// [`Certificate`] from the saturation e-graph and re-check it with the
    /// `entangle-cert` trusted kernel before reporting success. A rejected
    /// certificate fails the check with [`RefinementError::CertRejected`] —
    /// the engine found a "proof" the independent kernel could not validate.
    /// Certification disables the sharding-propagation *hints* (their
    /// mappings enter the relation without a rewrite derivation, so nothing
    /// downstream of them could be certified); the propagation pass itself
    /// still runs for its fail-fast layout diagnostics. Turn off to measure
    /// the uncertified engine (`bench_cert`'s baseline).
    pub certify: bool,
    /// Structured-tracing sink (`entangle-trace`). The default null tracer
    /// is a true no-op; a real sink receives one span per pipeline stage,
    /// one per `G_s` operator mapping search, and per-iteration saturation
    /// events — the `--trace` / `entangle trace` data. Tracing never
    /// changes verdicts, exit codes, or the search itself.
    pub trace: Tracer,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            iter_limit: 12,
            node_limit: 30_000,
            time_limit: Duration::from_secs(10),
            frontier: true,
            fresh_egraph_per_op: true,
            max_mappings: 4,
            clean: CleanOps::default(),
            sym_ctx: SymCtx::new(),
            rewrites: None,
            lint: true,
            shard_hints: true,
            certify: true,
            trace: Tracer::null(),
        }
    }
}

/// Whole-check saturation telemetry: one [`StopReason`] per saturation run
/// and the merged per-iteration / per-rule [`SaturationReport`]. Collected
/// unconditionally (no tracer required) — this is what `entangle trace`
/// renders as the per-rule table and e-graph growth curve.
#[derive(Debug, Clone, Default)]
pub struct SaturationSummary {
    /// One entry per saturation run (operators × frontier rounds), in
    /// processing order.
    pub stops: Vec<StopReason>,
    /// Merged telemetry across all runs.
    pub telemetry: SaturationReport,
}

impl SaturationSummary {
    fn record(&mut self, report: &entangle_egraph::RunReport) {
        self.stops.push(report.stop_reason);
        self.telemetry.merge(&report.saturation);
    }

    /// Number of saturation runs.
    pub fn runs(&self) -> usize {
        self.stops.len()
    }

    /// Total iterations across all runs.
    pub fn iterations(&self) -> usize {
        self.telemetry.iterations.len()
    }

    /// Largest e-graph observed at any iteration boundary.
    pub fn peak_nodes(&self) -> usize {
        self.telemetry
            .iterations
            .iter()
            .map(|i| i.nodes)
            .max()
            .unwrap_or(0)
    }

    /// E-nodes after each iteration, across runs in order — the growth
    /// curve.
    pub fn growth(&self) -> Vec<usize> {
        self.telemetry.iterations.iter().map(|i| i.nodes).collect()
    }

    /// Stop-reason histogram in a fixed order (saturated, iter-limit,
    /// node-limit, time-limit).
    pub fn stop_counts(&self) -> Vec<(&'static str, usize)> {
        [
            StopReason::Saturated,
            StopReason::IterLimit,
            StopReason::NodeLimit,
            StopReason::TimeLimit,
        ]
        .into_iter()
        .map(|r| (r.as_str(), self.stops.iter().filter(|&&s| s == r).count()))
        .collect()
    }
}

/// Per-lemma application counts, aggregated over the whole check — the raw
/// data of the paper's Figure 6 heatmap.
#[derive(Debug, Clone, Default)]
pub struct LemmaStats {
    counts: HashMap<String, u64>,
}

impl LemmaStats {
    /// Merges another run's counts in.
    pub fn merge(&mut self, other: &HashMap<String, u64>) {
        for (k, v) in other {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Applications of one lemma.
    pub fn count(&self, lemma: &str) -> u64 {
        self.counts.get(lemma).copied().unwrap_or(0)
    }

    /// Total applications across all lemmas.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterates `(lemma, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Timing/size report for one processed `G_s` operator.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// The operator's node name.
    pub name: String,
    /// Wall-clock time to compute its output relation.
    pub elapsed: Duration,
    /// E-graph size after processing (0 when the operator was skipped on a
    /// shard hint).
    pub egraph_nodes: usize,
    /// Number of clean mappings found for its output.
    pub mappings: usize,
    /// `true` when sharding-propagation hints covered this operator and
    /// saturation was skipped entirely.
    pub hinted: bool,
    /// Frontier rounds (saturation runs) spent on this operator; 0 when it
    /// was skipped on a hint.
    pub rounds: usize,
    /// Why this operator's saturation stopped: `Saturated` when every round
    /// ran the rules dry, otherwise the limit the last cut-short round hit.
    /// `None` when saturation was skipped on a hint.
    pub stop: Option<StopReason>,
}

/// The result of a successful refinement check: the certificate of §3.3.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Clean mappings for every `G_s` output — the relation `R_o`.
    pub output_relation: Relation,
    /// Clean mappings for every `G_s` tensor (inputs, intermediates,
    /// outputs).
    pub full_relation: Relation,
    /// Aggregated lemma-application counts.
    pub lemma_stats: LemmaStats,
    /// Per-operator reports, in processing order.
    pub op_reports: Vec<OpReport>,
    /// Whole-check saturation telemetry (stop reasons, per-rule timings,
    /// growth curve). Collected whether or not a tracer is attached.
    pub saturation: SaturationSummary,
    /// The kernel-accepted rewrite certificate (`None` when
    /// [`CheckOptions::certify`] is off). By construction this has already
    /// passed `entangle_cert::verify`; it can be serialized with
    /// `entangle_cert::to_json` and re-checked out-of-process.
    pub certificate: Option<Certificate>,
}

/// Refinement failure: `G_d` does not (provably) refine `G_s`.
///
/// Carries the identity of the first unmappable operator and the mappings of
/// its inputs — the paper's actionable bug-localization output (§6.2).
#[derive(Debug, Clone)]
pub enum RefinementError {
    /// The static lint pre-pass found error-severity diagnostics in one of
    /// the graphs; no saturation was attempted. Disable with
    /// [`CheckOptions::lint`].
    Lint {
        /// Which graph failed: `"G_s"` or `"G_d"`.
        graph: String,
        /// The error-severity diagnostics, already rendered against the
        /// offending graph (anchors resolved to node/tensor names).
        diagnostics: Vec<entangle_lint::Diagnostic>,
        /// The rendered form of `diagnostics`.
        rendered: Vec<String>,
    },
    /// The abstract sharding-propagation pass (`entangle-shard`) proved a
    /// layout violation in `G_d`; no saturation was attempted. The
    /// diagnostics are anchored at the first inconsistent operator —
    /// usually a sharper localization than the saturation failure the same
    /// bug would eventually cause. Disable with
    /// [`CheckOptions::shard_hints`].
    ShardViolation {
        /// The error-severity `SH##` diagnostics, in topological order.
        diagnostics: Vec<entangle_lint::Diagnostic>,
        /// The rendered form of `diagnostics` (anchors resolved against
        /// `G_d`).
        rendered: Vec<String>,
    },
    /// The input relation does not map every `G_s` input.
    MissingInputMapping {
        /// Name of the unmapped `G_s` input tensor.
        tensor: String,
    },
    /// A `G_s` *output* tensor has clean mappings, but none over `G_d`'s
    /// outputs alone (Listing 1 line 9 restricts `R_o` to `T ⊆ O(G_d)`):
    /// the deployed implementation never materializes the values needed to
    /// reconstruct this output — e.g. a missing all-reduce leaves only
    /// partial sums on the ranks.
    OutputUnmapped {
        /// Name of the `G_s` output tensor.
        tensor: String,
        /// The operator producing it (or `<input>` for passthrough).
        operator: String,
        /// The clean mappings that exist but use `G_d` intermediates.
        intermediate_mappings: Vec<String>,
    },
    /// The saturation engine claimed a refinement, but the extracted
    /// certificate was refused by the `entangle-cert` trusted kernel. Under
    /// the paper's assumptions this means an engine bug (or a corrupted
    /// certificate when re-checking one from disk), never a mere
    /// incompleteness: the engine said yes and could not prove it.
    CertRejected {
        /// The kernel's verdict.
        error: CertError,
    },
    /// No clean mapping exists for an operator's output (Listing 1 line 6).
    OperatorUnmapped {
        /// The failing operator's node name.
        operator: String,
        /// The operator kind (e.g. `matmul`).
        op: String,
        /// The failing node's id in `G_s`.
        node: NodeId,
        /// The mappings of the operator's inputs, for debugging: pairs of
        /// `(G_s tensor name, clean expressions over G_d)`.
        input_mappings: Vec<(String, Vec<String>)>,
        /// Why the mapping search stopped. `Saturated` means the lemma
        /// corpus was exhausted — a genuine refinement bug under the
        /// paper's assumptions; a limit reason means the search *gave up*
        /// and raising the corresponding [`CheckOptions`] limit may still
        /// find a mapping. `None` when no saturation ran (e.g. an input had
        /// no mapping at all).
        stop: Option<StopReason>,
    },
}

impl fmt::Display for RefinementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefinementError::Lint {
                graph, rendered, ..
            } => {
                writeln!(
                    f,
                    "{graph} failed static lint; fix these before refinement checking:"
                )?;
                for (i, line) in rendered.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "  {line}")?;
                }
                Ok(())
            }
            RefinementError::ShardViolation { rendered, .. } => {
                writeln!(
                    f,
                    "sharding propagation proved layout violations in G_d; the \
                     distributed implementation cannot refine the model:"
                )?;
                for (i, line) in rendered.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "  {line}")?;
                }
                Ok(())
            }
            RefinementError::MissingInputMapping { tensor } => {
                write!(f, "input relation has no mapping for G_s input {tensor:?}")
            }
            RefinementError::CertRejected { error } => {
                write!(
                    f,
                    "the trusted kernel refused the refinement certificate: {error}"
                )
            }
            RefinementError::OutputUnmapped {
                tensor,
                operator,
                intermediate_mappings,
            } => {
                writeln!(
                    f,
                    "G_s output {tensor:?} (produced by {operator:?}) cannot be \
                     reconstructed from G_d's outputs alone"
                )?;
                if intermediate_mappings.is_empty() {
                    writeln!(f, "no clean mappings exist at all for this output")?;
                } else {
                    writeln!(
                        f,
                        "clean mappings exist only over G_d intermediates (values the \
                         deployment never emits):"
                    )?;
                    for m in intermediate_mappings {
                        writeln!(f, "  {tensor} -> {m}")?;
                    }
                }
                write!(
                    f,
                    "a combining step (e.g. an all-reduce or all-gather) is likely \
                     missing before G_d's outputs"
                )
            }
            RefinementError::OperatorUnmapped {
                operator,
                op,
                node,
                input_mappings,
                stop,
            } => {
                writeln!(
                    f,
                    "could not map outputs for operator {operator:?} ({op}, {node}); \
                     the distributed implementation does not refine the model here."
                )?;
                writeln!(f, "input mappings at this operator:")?;
                for (tensor, exprs) in input_mappings {
                    if exprs.is_empty() {
                        writeln!(f, "  {tensor} -> (no clean mapping)")?;
                    }
                    for e in exprs {
                        writeln!(f, "  {tensor} -> {e}")?;
                    }
                }
                match stop {
                    Some(StopReason::Saturated) => writeln!(
                        f,
                        "saturation ran the lemma corpus dry (stop reason: saturated), \
                         so no clean mapping exists under the current lemmas"
                    )?,
                    Some(reason) => writeln!(
                        f,
                        "note: the mapping search gave up on a resource limit (stop \
                         reason: {reason}); raising the corresponding limit in \
                         CheckOptions may still find a mapping"
                    )?,
                    None => {}
                }
                write!(
                    f,
                    "inspect this operator, its inputs' mappings, and the G_d operators \
                     feeding them to localize the bug"
                )
            }
        }
    }
}

impl std::error::Error for RefinementError {}

/// Runs the `entangle-lint` static pre-pass over `G_s` and `G_d`.
///
/// Returns `Err(RefinementError::Lint)` for the first graph with
/// error-severity diagnostics (warnings are ignored here — the CLI surfaces
/// them separately). This is the cheap front gate of [`check_refinement`]:
/// it runs before any rewrites are built or any e-graph is touched.
///
/// # Errors
///
/// Returns [`RefinementError::Lint`] naming the offending graph with its
/// rendered diagnostics.
pub fn check_lint(gs: &Graph, gd: &Graph) -> Result<(), RefinementError> {
    for (label, graph) in [("G_s", gs), ("G_d", gd)] {
        let report = entangle_lint::lint_graph(graph);
        if !report.is_clean() {
            let diagnostics: Vec<_> = report.errors().cloned().collect();
            let rendered = diagnostics.iter().map(|d| d.render(Some(graph))).collect();
            return Err(RefinementError::Lint {
                graph: label.to_owned(),
                diagnostics,
                rendered,
            });
        }
    }
    Ok(())
}

/// Checks that `gd` refines `gs` under the input relation `ri`, returning
/// the clean output relation `R_o` (Listing 1).
///
/// # Errors
///
/// Returns [`RefinementError`] when an input lacks a mapping or when some
/// operator's outputs cannot be cleanly reconstructed from `G_d` — which,
/// under the paper's assumptions (§3.3), indicates a distribution bug.
pub fn check_refinement(
    gs: &Graph,
    gd: &Graph,
    ri: &Relation,
    opts: &CheckOptions,
) -> Result<CheckOutcome, RefinementError> {
    let mut root = opts.trace.span("check_refinement");
    root.attr("gs", gs.name());
    root.attr("gd", gd.name());
    let result = check_refinement_inner(gs, gd, ri, opts);
    match &result {
        Ok(outcome) => {
            root.attr("outcome", "verified");
            root.attr("operators", outcome.op_reports.len());
            root.attr("saturation_runs", outcome.saturation.runs());
        }
        Err(e) => root.attr("outcome", error_kind(e)),
    }
    result
}

/// The stable trace-attribute name of a [`RefinementError`] variant.
fn error_kind(e: &RefinementError) -> &'static str {
    match e {
        RefinementError::Lint { .. } => "lint",
        RefinementError::ShardViolation { .. } => "shard-violation",
        RefinementError::MissingInputMapping { .. } => "missing-input-mapping",
        RefinementError::OutputUnmapped { .. } => "output-unmapped",
        RefinementError::CertRejected { .. } => "cert-rejected",
        RefinementError::OperatorUnmapped { .. } => "operator-unmapped",
    }
}

fn check_refinement_inner(
    gs: &Graph,
    gd: &Graph,
    ri: &Relation,
    opts: &CheckOptions,
) -> Result<CheckOutcome, RefinementError> {
    let tracer = &opts.trace;
    if opts.lint {
        let mut sp = tracer.span("stage:lint");
        let r = check_lint(gs, gd);
        sp.attr(
            "outcome",
            match &r {
                Ok(()) => "ok".to_owned(),
                Err(RefinementError::Lint { graph, .. }) => format!("errors:{graph}"),
                Err(_) => unreachable!("check_lint only fails with Lint"),
            },
        );
        drop(sp);
        r?;
    }
    for &input in gs.inputs() {
        if !ri.contains(input) {
            return Err(RefinementError::MissingInputMapping {
                tensor: gs.tensor(input).name.clone(),
            });
        }
    }
    // Abstract sharding propagation (entangle-shard): localize provable
    // layout violations before any e-graph exists, and harvest proven
    // layouts as per-operator relation hints. Certification keeps the
    // fail-fast diagnostics but drops the hints: a hinted mapping enters
    // the relation without a rewrite derivation, so neither it nor anything
    // derived from it could be certified.
    let hinted: HashMap<TensorId, Vec<RecExpr>> = if opts.shard_hints {
        let mut sp = tracer.span("stage:shard");
        let r = shard_pass(gs, gd, ri, &opts.clean);
        match &r {
            Ok(hints) => {
                sp.attr("outcome", "ok");
                sp.attr("hinted_tensors", hints.len());
            }
            Err(_) => sp.attr("outcome", "violation"),
        }
        drop(sp);
        let hints = r?;
        if opts.certify {
            HashMap::new()
        } else {
            hints
        }
    } else {
        HashMap::new()
    };

    let rewrites = opts
        .rewrites
        .clone()
        .unwrap_or_else(|| rewrites_of(&registry()));

    let mut certificate = opts.certify.then(|| Certificate {
        gs: gs.name().to_owned(),
        gd: gd.name().to_owned(),
        inputs: ri
            .iter()
            .map(|(t, exprs)| (gs.tensor(t).name.clone(), exprs.to_vec()))
            .collect(),
        mappings: Vec::new(),
        outputs: Vec::new(),
    });

    let mut relation = ri.clone();
    let mut stats = LemmaStats::default();
    let mut saturation = SaturationSummary::default();
    let mut op_reports = Vec::with_capacity(gs.num_nodes());

    let gd_output_names: HashSet<&str> = gd
        .outputs()
        .iter()
        .map(|&t| gd.tensor(t).name.as_str())
        .collect();
    let gs_output_set: HashSet<TensorId> = gs.outputs().iter().copied().collect();

    // Monolithic (ablation) mode: one shared e-graph with all of G_d.
    let mut shared: Option<EGraph<TensorAnalysis>> = if opts.fresh_egraph_per_op {
        None
    } else {
        let mut sp = tracer.span("encode:gd");
        let mut eg = fresh_egraph(gd, opts);
        for node in gd.nodes() {
            encode_node(&mut eg, gd, node);
        }
        sp.attr("nodes", eg.total_nodes());
        Some(eg)
    };

    let map_stage = tracer.span("stage:map");
    for node in gs.nodes() {
        let start = Instant::now();
        let mut osp = tracer.span(&format!("op:{}", node.name));
        osp.attr("op", node.op.name());
        let hint_exprs: &[RecExpr] = hinted.get(&node.output).map(Vec::as_slice).unwrap_or(&[]);

        // A hint covers this operator when it proves at least one mapping —
        // and, for a G_s *output*, at least one mapping over G_d outputs
        // alone (otherwise the Listing 1 line 9 gate still needs whatever
        // saturation can find). Clean-op nodes (add, concat, …) are never
        // skipped: their saturation is cheap, and the alternate mappings it
        // discovers carry the leaf diversity later frontiers seed from —
        // skipping them can starve a downstream operator of the very G_d
        // names it needs to pull producers into its frontier.
        let covered = !hint_exprs.is_empty()
            && !opts.clean.is_clean(node.op.name())
            && (!gs_output_set.contains(&node.output)
                || hint_exprs.iter().any(|e| {
                    e.leaf_symbols()
                        .iter()
                        .all(|s| gd_output_names.contains(s.as_str()))
                }));
        if covered {
            for expr in hint_exprs {
                relation.insert(node.output, expr.clone());
            }
            osp.attr("hinted", "true");
            osp.attr("mappings", hint_exprs.len());
            op_reports.push(OpReport {
                name: node.name.clone(),
                elapsed: start.elapsed(),
                egraph_nodes: 0,
                mappings: hint_exprs.len(),
                hinted: true,
                rounds: 0,
                stop: None,
            });
            continue;
        }

        // The inputs' first mappings, in operator order: the saturation base
        // term applies the operator to exactly these (see node_out_rel step
        // 1), so they are what a mapping certificate must record.
        let first_inputs: Vec<RecExpr> = node
            .inputs
            .iter()
            .filter_map(|&t| relation.mappings(t).and_then(<[RecExpr]>::first).cloned())
            .collect();

        let attempt = match &mut shared {
            Some(eg) => {
                let m = node_out_rel(
                    gs,
                    gd,
                    node,
                    &relation,
                    opts,
                    &rewrites,
                    &mut stats,
                    &mut saturation,
                    eg,
                    false,
                );
                let n = eg.total_nodes();
                m.map(|m| (m, n))
            }
            None => {
                let mut eg = fresh_egraph(gd, opts);
                let m = node_out_rel(
                    gs,
                    gd,
                    node,
                    &relation,
                    opts,
                    &rewrites,
                    &mut stats,
                    &mut saturation,
                    &mut eg,
                    opts.frontier,
                );
                let n = eg.total_nodes();
                m.map(|m| (m, n))
            }
        };
        let (search, nodes_after, rescued) = match attempt {
            Ok((s, n)) => (s, n, false),
            // Saturation found nothing, but the hints *prove* mappings over
            // G_d intermediates: defer to the R_o gate below, which reports
            // the sharper "reconstructs only from intermediates" failure.
            Err(e) if !hint_exprs.is_empty() => {
                osp.attr("outcome", "rescued-by-hints");
                let _ = e;
                (NodeSearch::default(), 0, true)
            }
            Err(e) => {
                osp.attr("outcome", error_kind(&e));
                return Err(e);
            }
        };
        let NodeSearch {
            mappings,
            rounds,
            stop,
        } = search;
        for (expr, proof) in mappings {
            if let Some(c) = &mut certificate {
                let proof = proof.ok_or_else(|| RefinementError::CertRejected {
                    error: CertError::Rejected {
                        tensor: gs.tensor(node.output).name.clone(),
                        reason: format!("the engine could not extract a rewrite chain for {expr}"),
                    },
                })?;
                c.mappings.push(MappingCert {
                    tensor: gs.tensor(node.output).name.clone(),
                    operator: node.name.clone(),
                    inputs: first_inputs.clone(),
                    expr: expr.clone(),
                    proof,
                });
            }
            relation.insert(node.output, expr);
        }
        for expr in hint_exprs {
            relation.insert(node.output, expr.clone());
        }
        let n_mappings = relation.mappings(node.output).map_or(0, <[RecExpr]>::len);
        osp.attr("mappings", n_mappings);
        osp.attr("egraph_nodes", nodes_after);
        osp.attr("rounds", rounds);
        if let Some(stop) = stop {
            osp.attr("stop", stop);
        }
        op_reports.push(OpReport {
            name: node.name.clone(),
            elapsed: start.elapsed(),
            egraph_nodes: nodes_after,
            mappings: n_mappings,
            hinted: rescued,
            rounds,
            stop,
        });
    }
    drop(map_stage);

    // Listing 1 line 9: R_o keeps only mappings whose leaves are G_d
    // *outputs* — the tensors a deployed implementation actually emits.
    let mut outputs_stage = tracer.span("stage:outputs");
    let mut output_relation = Relation::new();
    for &out in gs.outputs() {
        let Some(maps) = relation.mappings(out) else {
            // An output that is a graph input must be covered by R_i (already
            // checked); an operator output is covered by the loop above.
            unreachable!("relation must cover every produced tensor");
        };
        let over_outputs: Vec<_> = maps
            .iter()
            .filter(|m| {
                m.leaf_symbols()
                    .iter()
                    .all(|s| gd_output_names.contains(s.as_str()))
            })
            .cloned()
            .collect();
        if over_outputs.is_empty() {
            outputs_stage.attr("outcome", "output-unmapped");
            return Err(RefinementError::OutputUnmapped {
                tensor: gs.tensor(out).name.clone(),
                operator: gs
                    .producer(out)
                    .map(|n| n.name.clone())
                    .unwrap_or_else(|| "<input>".to_owned()),
                intermediate_mappings: maps.iter().map(|m| m.to_string()).collect(),
            });
        }
        for m in over_outputs {
            output_relation.insert(out, m);
        }
    }
    outputs_stage.attr("outcome", "ok");
    drop(outputs_stage);

    // Proof-carrying refinement: hand the assembled certificate to the
    // independent trusted kernel. Only a kernel-accepted derivation counts
    // as a verified refinement.
    if let Some(c) = &mut certificate {
        c.outputs = output_relation
            .iter()
            .flat_map(|(t, exprs)| {
                let name = gs.tensor(t).name.clone();
                exprs.iter().map(move |e| (name.clone(), e.clone()))
            })
            .collect();
        let mut sp = tracer.span("stage:certify");
        sp.attr("mappings", c.mappings.len());
        sp.attr("steps", c.total_steps());
        let r = entangle_cert::verify(c, gs, gd, &rewrites, &opts.sym_ctx);
        sp.attr("outcome", if r.is_ok() { "accepted" } else { "rejected" });
        drop(sp);
        r.map_err(|error| RefinementError::CertRejected { error })?;
    }

    Ok(CheckOutcome {
        output_relation,
        full_relation: relation,
        lemma_stats: stats,
        op_reports,
        saturation,
        certificate,
    })
}

/// Runs the sharding-propagation pass and converts its products: errors
/// become [`RefinementError::ShardViolation`]; hints are filtered to the
/// clean-operator set, re-validated through the relation builder (shape,
/// dtype, names), and keyed by `G_s` tensor id. A hint that fails
/// validation is dropped — hints are an optimization, never an authority.
fn shard_pass(
    gs: &Graph,
    gd: &Graph,
    ri: &Relation,
    clean: &CleanOps,
) -> Result<HashMap<TensorId, Vec<RecExpr>>, RefinementError> {
    let maps: Vec<(String, RecExpr)> = ri
        .iter()
        .flat_map(|(t, exprs)| {
            let name = gs.tensor(t).name.clone();
            exprs.iter().map(move |e| (name.clone(), e.clone()))
        })
        .collect();
    let analysis = entangle_shard::analyze_pair(gs, gd, &maps, &[]);
    if !analysis.is_clean() {
        let diagnostics: Vec<_> = analysis.report.errors().cloned().collect();
        let rendered = diagnostics.iter().map(|d| d.render(Some(gd))).collect();
        return Err(RefinementError::ShardViolation {
            diagnostics,
            rendered,
        });
    }
    let mut hinted: HashMap<TensorId, Vec<RecExpr>> = HashMap::new();
    for hint in &analysis.hints {
        if hint.op.is_some_and(|op| !clean.is_clean(op)) {
            continue;
        }
        let Some(t) = gs.tensor_by_name(&hint.gs_tensor) else {
            continue;
        };
        let mut b = Relation::builder(gs, gd);
        if b.map(&hint.gs_tensor, &hint.expr).is_err() {
            continue;
        }
        for expr in b.build().mappings(t.id).unwrap_or(&[]) {
            let entry = hinted.entry(t.id).or_default();
            if !entry.contains(expr) {
                entry.push(expr.clone());
            }
        }
    }
    Ok(hinted)
}

fn fresh_egraph(gd: &Graph, opts: &CheckOptions) -> EGraph<TensorAnalysis> {
    let mut analysis = TensorAnalysis::with_ctx(opts.sym_ctx.clone());
    for t in gd.tensors() {
        analysis.register_leaf(&t.name, t.shape.clone(), t.dtype);
    }
    EGraph::with_analysis(analysis)
}

/// What one operator's mapping search produced (alongside the lemma stats
/// and saturation telemetry accumulated through the `&mut` params).
#[derive(Default)]
struct NodeSearch {
    /// Clean mappings with their optional proofs.
    mappings: Vec<(RecExpr, Option<Proof>)>,
    /// Frontier rounds (saturation runs) spent.
    rounds: usize,
    /// `Saturated` when every round ran the rules dry, otherwise the limit
    /// the last cut-short round hit.
    stop: Option<StopReason>,
}

/// Computes the clean output relation for one `G_s` operator (Listing 2,
/// with the Listing 3 frontier when `frontier` is true).
///
/// Each returned mapping is paired with the rewrite [`Proof`] connecting it
/// to the operator's encoded base term when [`CheckOptions::certify`] is on
/// (`None` otherwise, and in the never-observed case where the explanation
/// machinery finds no path — the caller turns that into a rejection).
#[allow(clippy::too_many_arguments)]
fn node_out_rel(
    gs: &Graph,
    gd: &Graph,
    node: &Node,
    relation: &Relation,
    opts: &CheckOptions,
    rewrites: &[Rewrite<TensorAnalysis>],
    stats: &mut LemmaStats,
    summary: &mut SaturationSummary,
    eg: &mut EGraph<TensorAnalysis>,
    frontier: bool,
) -> Result<NodeSearch, RefinementError> {
    let tracer = &opts.trace;
    let fail = |relation: &Relation, stop: Option<StopReason>| RefinementError::OperatorUnmapped {
        operator: node.name.clone(),
        op: node.op.name().to_owned(),
        node: node.id,
        input_mappings: node
            .inputs
            .iter()
            .map(|&t| {
                (
                    gs.tensor(t).name.clone(),
                    relation
                        .mappings(t)
                        .map(|ms| ms.iter().map(|m| m.to_string()).collect())
                        .unwrap_or_default(),
                )
            })
            .collect(),
        stop,
    };

    // Step 1: express the operator's output over G_d tensors by substituting
    // the relation's mappings for each input (rewrite_t_to_expr). Every
    // mapping of one tensor denotes that tensor, so all of an input's
    // expressions are unioned into one class before the operator is applied
    // — the e-graph-native form of "return all rewritings".
    let per_input: Vec<&[RecExpr]> = node
        .inputs
        .iter()
        .map(|&t| relation.mappings(t).unwrap_or(&[]))
        .collect();
    if per_input.iter().any(|m| m.is_empty()) {
        return Err(fail(relation, None));
    }
    let mut encode_span = tracer.span("encode");
    let mut input_ids: Vec<Id> = Vec::with_capacity(per_input.len());
    for (&t, exprs) in node.inputs.iter().zip(&per_input) {
        // The *first* mapping's id stays the representative (it is
        // term-faithful, and the certificate records the first mappings as
        // the operator's inputs); later mappings are unioned into it under
        // a fact the trusted kernel can re-check against the accepted set.
        let mut rep: Option<Id> = None;
        for e in *exprs {
            let id = eg.add_expr(e);
            match rep {
                None => rep = Some(id),
                Some(first) => {
                    eg.union_with(
                        first,
                        id,
                        Justification::Given(format!(
                            "mappings of G_s tensor {}",
                            gs.tensor(t).name
                        )),
                    );
                }
            }
        }
        input_ids.push(rep.expect("non-empty mapping list"));
    }
    let base = encode_op(eg, &node.op, &input_ids);
    eg.rebuild();
    encode_span.attr("nodes", eg.total_nodes());
    drop(encode_span);

    // Steps 2–3: saturate with lemmas while growing the frontier of G_d
    // operators whose inputs relate to this operator (Listing 3), or with
    // everything at once when the optimization is disabled.
    let name_to_tensor: HashMap<&str, TensorId> = gd
        .tensors()
        .iter()
        .map(|t| (t.name.as_str(), t.id))
        .collect();
    let mut t_rel: HashSet<TensorId> = HashSet::new();
    for exprs in &per_input {
        for e in *exprs {
            for sym in e.leaf_symbols() {
                if let Some(&t) = name_to_tensor.get(sym.as_str()) {
                    t_rel.insert(t);
                }
            }
        }
    }
    let mut defs_added: HashSet<NodeId> = HashSet::new();
    if !frontier {
        // The e-graph either already holds all of G_d (monolithic mode) or
        // gets it here (fresh graph, frontier ablation). encode_node is
        // idempotent thanks to hash-consing, so re-encoding is harmless.
        for n in gd.nodes() {
            encode_node(eg, gd, n);
            defs_added.insert(n.id);
        }
    }

    // Frontier iteration (Listing 3): repeatedly pull in G_d operators all
    // of whose inputs are related to this operator, saturate, and extend the
    // related set with the newly computable outputs. Operators consuming
    // tensors *not* related to v (e.g. the E-branch of Figure 2, or the
    // next layer's weights) are never encoded — the size win the paper's
    // optimization is after.
    let mut first_round = true;
    let mut rounds = 0usize;
    let mut stop: Option<StopReason> = None;
    loop {
        let mut added_any = false;
        if frontier {
            for n in gd.nodes() {
                if defs_added.contains(&n.id) {
                    continue;
                }
                if n.inputs.iter().all(|t| t_rel.contains(t)) {
                    encode_node(eg, gd, n);
                    defs_added.insert(n.id);
                    t_rel.insert(n.output);
                    added_any = true;
                }
            }
        }
        if !added_any && !first_round {
            break;
        }
        first_round = false;
        eg.rebuild();

        rounds += 1;
        let mut sat_span = tracer.span("saturate");
        let run_start_us = tracer.now_us();
        let owned = std::mem::replace(eg, EGraph::with_analysis(TensorAnalysis::default()));
        let mut runner = Runner::new(owned)
            .with_iter_limit(opts.iter_limit)
            .with_node_limit(opts.node_limit)
            .with_time_limit(opts.time_limit);
        let report = runner.run(rewrites);
        *eg = runner.egraph;
        stats.merge(&report.applications);
        summary.record(&report);
        // A limit on any round means this operator's search was cut short;
        // only an all-rounds-saturated operator failure is a proven bug.
        if report.stop_reason.is_limit() || stop.is_none() {
            stop = Some(report.stop_reason);
        }
        if tracer.is_enabled() {
            sat_span.attr("round", rounds);
            sat_span.attr("stop", report.stop_reason);
            sat_span.attr("iterations", report.iterations);
            sat_span.attr("nodes", report.egraph_nodes);
            sat_span.attr("classes", report.egraph_classes);
            for it in &report.saturation.iterations {
                tracer.event_at(
                    "iteration",
                    run_start_us + it.start_us,
                    Some(it.search_us + it.apply_us + it.rebuild_us),
                    &[
                        ("nodes", it.nodes.to_string()),
                        ("classes", it.classes.to_string()),
                        ("memo", it.memo.to_string()),
                        ("unions", it.unions.to_string()),
                        ("search_us", it.search_us.to_string()),
                        ("apply_us", it.apply_us.to_string()),
                        ("rebuild_us", it.rebuild_us.to_string()),
                    ],
                );
            }
        }
    }

    // Step 4: extract the clean expressions in the output's class,
    // preferring G_d output leaves on ties (Listing 1 line 9 only keeps
    // output-leaf mappings for G_s outputs).
    let gd_outputs: HashSet<&str> = gd
        .outputs()
        .iter()
        .map(|&t| gd.tensor(t).name.as_str())
        .collect();
    let mut extract_span = tracer.span("extract");
    let variants = extract_clean_variants(eg, base, &opts.clean, &gd_outputs, opts.max_mappings);
    extract_span.attr("variants", variants.len());
    if variants.is_empty() {
        extract_span.attr("outcome", "unmapped");
        return Err(fail(relation, stop));
    }
    if !opts.certify {
        return Ok(NodeSearch {
            mappings: variants.into_iter().map(|e| (e, None)).collect(),
            rounds,
            stop,
        });
    }
    // Proof extraction: re-adding a variant yields its term-faithful id, and
    // the explanation forest connects it to the encoded base term.
    Ok(NodeSearch {
        mappings: variants
            .into_iter()
            .map(|expr| {
                let vid = eg.add_expr(&expr);
                let proof = eg.explain_equivalence(base, vid);
                (expr, proof)
            })
            .collect(),
        rounds,
        stop,
    })
}

/// Extracts up to `max` distinct clean expressions from a class, simplest
/// first (the §4.3.2 "simplest representative" pruning, but keeping a few
/// alternates — the paper returns e.g. both `sum(C1, C2)` and
/// `concat(D1, D2)` for Figure 2's `C`).
fn extract_clean_variants(
    eg: &EGraph<TensorAnalysis>,
    class: Id,
    clean: &CleanOps,
    prefer: &HashSet<&str>,
    max: usize,
) -> Vec<RecExpr> {
    let cost = clean_cost(clean, prefer);
    let extractor = Extractor::new(eg, &cost);
    let mut variants: Vec<(f64, RecExpr)> = Vec::new();
    for node in &eg[class].nodes {
        let candidate = match node {
            ENode::Op(sym, ch)
                if ch.is_empty()
                    && !sym
                        .as_str()
                        .starts_with(entangle_lemmas::SYNTHETIC_LEAF_PREFIX) =>
            {
                let mut e = RecExpr::new();
                e.add(node.clone());
                Some((1.0, e))
            }
            ENode::Op(sym, ch) if clean.is_clean(sym.as_str()) => {
                let mut children_exprs = Vec::with_capacity(ch.len());
                let mut total = 1.0;
                let mut ok = true;
                for &c in ch {
                    match extractor.find_best(c) {
                        Some((ccost, cexpr)) => {
                            total += ccost;
                            children_exprs.push(cexpr);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                ok.then(|| (total, compose(node, &children_exprs)))
            }
            _ => None,
        };
        if let Some((cost, expr)) = candidate {
            if !variants.iter().any(|(_, v)| v == &expr) {
                variants.push((cost, expr));
            }
        }
    }
    variants.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.to_string().cmp(&b.1.to_string()))
    });
    variants.truncate(max);
    variants.into_iter().map(|(_, e)| e).collect()
}

/// Builds a `RecExpr` applying `node` to already-extracted child
/// expressions.
fn compose(node: &ENode, children: &[RecExpr]) -> RecExpr {
    let mut out = RecExpr::new();
    let mut child_roots = Vec::with_capacity(children.len());
    for child in children {
        let offset = out.len();
        for n in child.nodes() {
            let mapped = n.map_children(|c| Id::from_index(c.index() + offset));
            out.add(mapped);
        }
        child_roots.push(Id::from_index(out.len() - 1));
    }
    let mut idx = 0;
    let root = node.map_children(|_| {
        let id = child_roots[idx];
        idx += 1;
        id
    });
    out.add(root);
    out
}
