//! The refinement-checking algorithm (Listings 1–3).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use entangle_cert::{CertError, Certificate, MappingCert};
use entangle_egraph::{
    BackoffSchedule, EGraph, ENode, Extractor, Id, Justification, Proof, RecExpr, Rewrite, Runner,
    SaturationReport, StopReason, Symbol,
};
use entangle_ir::{Graph, Node, NodeId, TensorId};
use entangle_lemmas::{registry, rewrites_of, TensorAnalysis};
use entangle_par::{with_pool, Renamer, ShardedCache};
use entangle_symbolic::SymCtx;
use entangle_trace::{Record, Tracer};

use crate::encode::{clean_cost, encode_node, encode_op, CleanOps};
use crate::memo::{build_problem, solve_problem, GdConsumers, Solved, TemplateKey};
use crate::relation::Relation;

/// Tuning knobs and ablation switches for [`check_refinement`].
pub struct CheckOptions {
    /// Saturation iteration limit per round.
    pub iter_limit: usize,
    /// E-node limit per operator e-graph.
    pub node_limit: usize,
    /// Wall-clock limit per operator.
    pub time_limit: Duration,
    /// The Listing 3 frontier optimization: only pull `G_d` operators whose
    /// inputs are related to the current operator into the e-graph. Turning
    /// this off reproduces the unoptimized Listing 2 step 3 (ablation).
    pub frontier: bool,
    /// Process each `G_s` operator in a fresh e-graph (the paper's iterative
    /// design). `false` keeps one monolithic e-graph across operators — the
    /// whole-graph-saturation ablation.
    pub fresh_egraph_per_op: bool,
    /// §4.3.2 pruning: how many simplest mappings to keep per tensor.
    pub max_mappings: usize,
    /// The clean-operator set.
    pub clean: CleanOps,
    /// Symbolic-scalar context (user constraints on symbolic dims).
    pub sym_ctx: SymCtx,
    /// The rewrites to saturate with; `None` uses the full lemma registry.
    pub rewrites: Option<Vec<Rewrite<TensorAnalysis>>>,
    /// Run the `entangle-lint` static pre-pass over both graphs before any
    /// saturation (on by default). Lint errors fail fast with
    /// [`RefinementError::Lint`]; a malformed or mis-sharded `G_d` is
    /// rejected for pennies instead of surfacing as an opaque unmapped
    /// operator after seconds of e-graph work.
    pub lint: bool,
    /// Run the `entangle-shard` abstract sharding-propagation pass between
    /// lint and saturation (on by default). Provable layout violations fail
    /// fast with [`RefinementError::ShardViolation`], anchored at the first
    /// inconsistent `G_d` operator; proven layouts are exported as relation
    /// hints that seed — and, where they fully cover an operator's output —
    /// skip per-operator saturation. Turning this off reproduces the pure
    /// Listing 1–3 pipeline (ablation).
    pub shard_hints: bool,
    /// Proof-carrying refinement (on by default): extract a rewrite
    /// [`Certificate`] from the saturation e-graph and re-check it with the
    /// `entangle-cert` trusted kernel before reporting success. A rejected
    /// certificate fails the check with [`RefinementError::CertRejected`] —
    /// the engine found a "proof" the independent kernel could not validate.
    /// Certification disables the sharding-propagation *hints* (their
    /// mappings enter the relation without a rewrite derivation, so nothing
    /// downstream of them could be certified); the propagation pass itself
    /// still runs for its fail-fast layout diagnostics. Turn off to measure
    /// the uncertified engine (`bench_cert`'s baseline).
    pub certify: bool,
    /// Structured-tracing sink (`entangle-trace`). The default null tracer
    /// is a true no-op; a real sink receives one span per pipeline stage,
    /// one per `G_s` operator mapping search, and per-iteration saturation
    /// events — the `--trace` / `entangle trace` data. Tracing never
    /// changes verdicts, exit codes, or the search itself.
    pub trace: Tracer,
    /// Worker threads for the dependency-aware operator scheduler (the
    /// `--jobs` flag). Defaults to the detected core count; `0` is treated
    /// as `1`. Parallel scheduling needs the per-operator e-graphs of the
    /// frontier design, so it only engages when both
    /// [`CheckOptions::fresh_egraph_per_op`] and [`CheckOptions::frontier`]
    /// are on; the ablation modes always run sequentially. Verdicts,
    /// reports, certificates, and trace structure are identical for any
    /// `jobs` (see DESIGN.md's determinism contract).
    pub jobs: usize,
    /// The cross-operator saturation memo (on by default): per-operator
    /// problems are canonicalized (tensor names become `$t0, $t1, …`) and
    /// solved results are shared between structurally identical operators —
    /// the repeated-layer/expert win. Hits replay the stored result through
    /// an inverse renaming, so reports, telemetry, and certificates are
    /// indistinguishable from a miss. Disabled automatically under symbolic
    /// dimensions or assumptions (the context is part of the problem but
    /// not the key) and in the ablation modes. Turn off to measure the
    /// uncached engine (`bench_par`'s baseline).
    pub cache: bool,
    /// Template-lifted memoization (on by default): the `entangle-iso`
    /// static analysis partitions `G_s` into repeated structure classes
    /// before any saturation, and the memo is lifted from per-operator to
    /// per-template keys — concrete integer slice bounds become `$b{i}`
    /// placeholders, so the N experts of an MoE or the repeated layers of
    /// a deep model share one solved representative. A member whose bounds
    /// differ from the representative's re-checks an *instantiated*
    /// certificate in the `entangle-cert` trusted kernel (substituting
    /// member bounds into the template proof); kernel rejection falls back
    /// to a concrete solve, so verdicts never depend on instantiation.
    /// With `certify` off, cross-bound instantiation is disabled (there is
    /// no proof to re-check) and only equal-bound template hits replay.
    /// Requires the saturation memo (`cache`); turn off to measure the
    /// per-operator-only memo (`bench_scale`'s ablation baseline).
    pub templates: bool,
    /// Rule-class-driven backoff scheduling (on by default): the static
    /// corpus analysis (`entangle-rules`) classifies every rewrite and
    /// throttles non-simplifying members of generative interaction cycles —
    /// a rule whose per-iteration match count exceeds the budget sits out a
    /// cooldown, with both doubling on repeat offenses. Saturation still
    /// only reports `Saturated` after a full iteration with every rule
    /// active, so verdicts, relations, and certificates are identical with
    /// the scheduler on or off (the determinism suite pins this); what
    /// changes is wasted e-matching on blowup pairs like
    /// `scalar_mul-distribute` ⇄ `scalar_mul-compose`. The schedule is
    /// derived once per check from the active rewrite set. Turn off to
    /// measure the unthrottled engine (`bench_rules`' baseline).
    pub rule_backoff: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            iter_limit: 12,
            node_limit: 30_000,
            time_limit: Duration::from_secs(10),
            frontier: true,
            fresh_egraph_per_op: true,
            max_mappings: 4,
            clean: CleanOps::default(),
            sym_ctx: SymCtx::new(),
            rewrites: None,
            lint: true,
            shard_hints: true,
            certify: true,
            trace: Tracer::null(),
            jobs: entangle_par::available_jobs(),
            cache: true,
            templates: true,
            rule_backoff: true,
        }
    }
}

/// How the scheduler and saturation memo behaved during one check.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParStats {
    /// Worker threads the scheduler actually used (1 in the sequential
    /// ablation modes regardless of [`CheckOptions::jobs`]).
    pub jobs: usize,
    /// Cores detected on this machine.
    pub cores: usize,
    /// Whether the saturation memo was active.
    pub cache_enabled: bool,
    /// Memo lookups that found a previously solved canonical problem.
    pub cache_hits: u64,
    /// Memo lookups that had to solve from scratch.
    pub cache_misses: u64,
    /// Whether template-lifted memoization was active.
    pub templates_enabled: bool,
    /// Repeated structure classes the static analysis found in `G_s`.
    pub template_classes: usize,
    /// `G_s` operators covered by some repeated class.
    pub template_covered: usize,
    /// Template lookups that found the class representative's entry.
    pub template_hits: u64,
    /// Template lookups that missed (representative not yet solved, or the
    /// member's problem differs structurally from the representative's).
    pub template_misses: u64,
    /// Template hits replayed through certificate instantiation (member
    /// bounds substituted into the template proof, kernel re-checked).
    pub template_instantiated: u64,
    /// Template hits that could not be replayed (kernel rejected the
    /// instantiated proof, or `certify` was off with differing bounds) and
    /// fell back to a concrete solve.
    pub template_fallbacks: u64,
}

impl ParStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Whole-check saturation telemetry: one [`StopReason`] per saturation run
/// and the merged per-iteration / per-rule [`SaturationReport`]. Collected
/// unconditionally (no tracer required) — this is what `entangle trace`
/// renders as the per-rule table and e-graph growth curve.
#[derive(Debug, Clone, Default)]
pub struct SaturationSummary {
    /// One entry per saturation run (operators × frontier rounds), in
    /// processing order.
    pub stops: Vec<StopReason>,
    /// Merged telemetry across all runs.
    pub telemetry: SaturationReport,
}

impl SaturationSummary {
    fn record(&mut self, report: &entangle_egraph::RunReport) {
        self.stops.push(report.stop_reason);
        self.telemetry.merge(&report.saturation);
    }

    /// Number of saturation runs.
    pub fn runs(&self) -> usize {
        self.stops.len()
    }

    /// Total iterations across all runs.
    pub fn iterations(&self) -> usize {
        self.telemetry.iterations.len()
    }

    /// Largest e-graph observed at any iteration boundary.
    pub fn peak_nodes(&self) -> usize {
        self.telemetry
            .iterations
            .iter()
            .map(|i| i.nodes)
            .max()
            .unwrap_or(0)
    }

    /// E-nodes after each iteration, across runs in order — the growth
    /// curve.
    pub fn growth(&self) -> Vec<usize> {
        self.telemetry.iterations.iter().map(|i| i.nodes).collect()
    }

    /// Stop-reason histogram in a fixed order (saturated, iter-limit,
    /// node-limit, time-limit).
    pub fn stop_counts(&self) -> Vec<(&'static str, usize)> {
        [
            StopReason::Saturated,
            StopReason::IterLimit,
            StopReason::NodeLimit,
            StopReason::TimeLimit,
        ]
        .into_iter()
        .map(|r| (r.as_str(), self.stops.iter().filter(|&&s| s == r).count()))
        .collect()
    }
}

/// Per-lemma application counts, aggregated over the whole check — the raw
/// data of the paper's Figure 6 heatmap.
#[derive(Debug, Clone, Default)]
pub struct LemmaStats {
    counts: HashMap<String, u64>,
}

impl LemmaStats {
    /// Merges another run's counts in.
    pub fn merge(&mut self, other: &HashMap<String, u64>) {
        for (k, v) in other {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Merges another stats collection in (worker-local → whole-check).
    pub fn absorb(&mut self, other: &LemmaStats) {
        self.merge(&other.counts);
    }

    /// Applications of one lemma.
    pub fn count(&self, lemma: &str) -> u64 {
        self.counts.get(lemma).copied().unwrap_or(0)
    }

    /// Total applications across all lemmas.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterates `(lemma, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Timing/size report for one processed `G_s` operator.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// The operator's node name.
    pub name: String,
    /// Wall-clock time to compute its output relation.
    pub elapsed: Duration,
    /// E-graph size after processing (0 when the operator was skipped on a
    /// shard hint).
    pub egraph_nodes: usize,
    /// Number of clean mappings found for its output.
    pub mappings: usize,
    /// `true` when sharding-propagation hints covered this operator and
    /// saturation was skipped entirely.
    pub hinted: bool,
    /// Frontier rounds (saturation runs) spent on this operator; 0 when it
    /// was skipped on a hint.
    pub rounds: usize,
    /// Why this operator's saturation stopped: `Saturated` when every round
    /// ran the rules dry, otherwise the limit the last cut-short round hit.
    /// `None` when saturation was skipped on a hint.
    pub stop: Option<StopReason>,
}

/// The result of a successful refinement check: the certificate of §3.3.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Clean mappings for every `G_s` output — the relation `R_o`.
    pub output_relation: Relation,
    /// Clean mappings for every `G_s` tensor (inputs, intermediates,
    /// outputs).
    pub full_relation: Relation,
    /// Aggregated lemma-application counts.
    pub lemma_stats: LemmaStats,
    /// Per-operator reports, in processing order.
    pub op_reports: Vec<OpReport>,
    /// Whole-check saturation telemetry (stop reasons, per-rule timings,
    /// growth curve). Collected whether or not a tracer is attached.
    pub saturation: SaturationSummary,
    /// The kernel-accepted rewrite certificate (`None` when
    /// [`CheckOptions::certify`] is off). By construction this has already
    /// passed `entangle_cert::verify`; it can be serialized with
    /// `entangle_cert::to_json` and re-checked out-of-process.
    pub certificate: Option<Certificate>,
    /// Scheduler and saturation-memo statistics (`entangle info` /
    /// `bench_par` data). The only [`CheckOutcome`] field allowed to vary
    /// with [`CheckOptions::jobs`]: hit/miss counts depend on which of two
    /// racing workers reaches a key first.
    pub par: ParStats,
}

/// Refinement failure: `G_d` does not (provably) refine `G_s`.
///
/// Carries the identity of the first unmappable operator and the mappings of
/// its inputs — the paper's actionable bug-localization output (§6.2).
#[derive(Debug, Clone)]
pub enum RefinementError {
    /// The static lint pre-pass found error-severity diagnostics in one of
    /// the graphs; no saturation was attempted. Disable with
    /// [`CheckOptions::lint`].
    Lint {
        /// Which graph failed: `"G_s"` or `"G_d"`.
        graph: String,
        /// The error-severity diagnostics, already rendered against the
        /// offending graph (anchors resolved to node/tensor names).
        diagnostics: Vec<entangle_lint::Diagnostic>,
        /// The rendered form of `diagnostics`.
        rendered: Vec<String>,
    },
    /// The abstract sharding-propagation pass (`entangle-shard`) proved a
    /// layout violation in `G_d`; no saturation was attempted. The
    /// diagnostics are anchored at the first inconsistent operator —
    /// usually a sharper localization than the saturation failure the same
    /// bug would eventually cause. Disable with
    /// [`CheckOptions::shard_hints`].
    ShardViolation {
        /// The error-severity `SH##` diagnostics, in topological order.
        diagnostics: Vec<entangle_lint::Diagnostic>,
        /// The rendered form of `diagnostics` (anchors resolved against
        /// `G_d`).
        rendered: Vec<String>,
    },
    /// The input relation does not map every `G_s` input.
    MissingInputMapping {
        /// Name of the unmapped `G_s` input tensor.
        tensor: String,
    },
    /// A `G_s` *output* tensor has clean mappings, but none over `G_d`'s
    /// outputs alone (Listing 1 line 9 restricts `R_o` to `T ⊆ O(G_d)`):
    /// the deployed implementation never materializes the values needed to
    /// reconstruct this output — e.g. a missing all-reduce leaves only
    /// partial sums on the ranks.
    OutputUnmapped {
        /// Name of the `G_s` output tensor.
        tensor: String,
        /// The operator producing it (or `<input>` for passthrough).
        operator: String,
        /// The clean mappings that exist but use `G_d` intermediates.
        intermediate_mappings: Vec<String>,
    },
    /// The saturation engine claimed a refinement, but the extracted
    /// certificate was refused by the `entangle-cert` trusted kernel. Under
    /// the paper's assumptions this means an engine bug (or a corrupted
    /// certificate when re-checking one from disk), never a mere
    /// incompleteness: the engine said yes and could not prove it.
    CertRejected {
        /// The kernel's verdict.
        error: CertError,
    },
    /// No clean mapping exists for an operator's output (Listing 1 line 6).
    OperatorUnmapped {
        /// The failing operator's node name.
        operator: String,
        /// The operator kind (e.g. `matmul`).
        op: String,
        /// The failing node's id in `G_s`.
        node: NodeId,
        /// The mappings of the operator's inputs, for debugging: pairs of
        /// `(G_s tensor name, clean expressions over G_d)`.
        input_mappings: Vec<(String, Vec<String>)>,
        /// Why the mapping search stopped. `Saturated` means the lemma
        /// corpus was exhausted — a genuine refinement bug under the
        /// paper's assumptions; a limit reason means the search *gave up*
        /// and raising the corresponding [`CheckOptions`] limit may still
        /// find a mapping. `None` when no saturation ran (e.g. an input had
        /// no mapping at all).
        stop: Option<StopReason>,
    },
}

impl fmt::Display for RefinementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefinementError::Lint {
                graph, rendered, ..
            } => {
                writeln!(
                    f,
                    "{graph} failed static lint; fix these before refinement checking:"
                )?;
                for (i, line) in rendered.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "  {line}")?;
                }
                Ok(())
            }
            RefinementError::ShardViolation { rendered, .. } => {
                writeln!(
                    f,
                    "sharding propagation proved layout violations in G_d; the \
                     distributed implementation cannot refine the model:"
                )?;
                for (i, line) in rendered.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "  {line}")?;
                }
                Ok(())
            }
            RefinementError::MissingInputMapping { tensor } => {
                write!(f, "input relation has no mapping for G_s input {tensor:?}")
            }
            RefinementError::CertRejected { error } => {
                write!(
                    f,
                    "the trusted kernel refused the refinement certificate: {error}"
                )
            }
            RefinementError::OutputUnmapped {
                tensor,
                operator,
                intermediate_mappings,
            } => {
                writeln!(
                    f,
                    "G_s output {tensor:?} (produced by {operator:?}) cannot be \
                     reconstructed from G_d's outputs alone"
                )?;
                if intermediate_mappings.is_empty() {
                    writeln!(f, "no clean mappings exist at all for this output")?;
                } else {
                    writeln!(
                        f,
                        "clean mappings exist only over G_d intermediates (values the \
                         deployment never emits):"
                    )?;
                    for m in intermediate_mappings {
                        writeln!(f, "  {tensor} -> {m}")?;
                    }
                }
                write!(
                    f,
                    "a combining step (e.g. an all-reduce or all-gather) is likely \
                     missing before G_d's outputs"
                )
            }
            RefinementError::OperatorUnmapped {
                operator,
                op,
                node,
                input_mappings,
                stop,
            } => {
                writeln!(
                    f,
                    "could not map outputs for operator {operator:?} ({op}, {node}); \
                     the distributed implementation does not refine the model here."
                )?;
                writeln!(f, "input mappings at this operator:")?;
                for (tensor, exprs) in input_mappings {
                    if exprs.is_empty() {
                        writeln!(f, "  {tensor} -> (no clean mapping)")?;
                    }
                    for e in exprs {
                        writeln!(f, "  {tensor} -> {e}")?;
                    }
                }
                match stop {
                    Some(StopReason::Saturated) => writeln!(
                        f,
                        "saturation ran the lemma corpus dry (stop reason: saturated), \
                         so no clean mapping exists under the current lemmas"
                    )?,
                    Some(reason) => writeln!(
                        f,
                        "note: the mapping search gave up on a resource limit (stop \
                         reason: {reason}); raising the corresponding limit in \
                         CheckOptions may still find a mapping"
                    )?,
                    None => {}
                }
                write!(
                    f,
                    "inspect this operator, its inputs' mappings, and the G_d operators \
                     feeding them to localize the bug"
                )
            }
        }
    }
}

impl std::error::Error for RefinementError {}

/// Runs the `entangle-lint` static pre-pass over `G_s` and `G_d`.
///
/// Returns `Err(RefinementError::Lint)` for the first graph with
/// error-severity diagnostics (warnings are ignored here — the CLI surfaces
/// them separately). This is the cheap front gate of [`check_refinement`]:
/// it runs before any rewrites are built or any e-graph is touched.
///
/// # Errors
///
/// Returns [`RefinementError::Lint`] naming the offending graph with its
/// rendered diagnostics.
pub fn check_lint(gs: &Graph, gd: &Graph) -> Result<(), RefinementError> {
    for (label, graph) in [("G_s", gs), ("G_d", gd)] {
        let report = entangle_lint::lint_graph(graph);
        if !report.is_clean() {
            let diagnostics: Vec<_> = report.errors().cloned().collect();
            let rendered = diagnostics.iter().map(|d| d.render(Some(graph))).collect();
            return Err(RefinementError::Lint {
                graph: label.to_owned(),
                diagnostics,
                rendered,
            });
        }
    }
    Ok(())
}

/// Checks that `gd` refines `gs` under the input relation `ri`, returning
/// the clean output relation `R_o` (Listing 1).
///
/// # Errors
///
/// Returns [`RefinementError`] when an input lacks a mapping or when some
/// operator's outputs cannot be cleanly reconstructed from `G_d` — which,
/// under the paper's assumptions (§3.3), indicates a distribution bug.
pub fn check_refinement(
    gs: &Graph,
    gd: &Graph,
    ri: &Relation,
    opts: &CheckOptions,
) -> Result<CheckOutcome, RefinementError> {
    let mut root = opts.trace.span("check_refinement");
    root.attr("gs", gs.name());
    root.attr("gd", gd.name());
    let result = check_refinement_inner(gs, gd, ri, opts);
    match &result {
        Ok(outcome) => {
            root.attr("outcome", "verified");
            root.attr("operators", outcome.op_reports.len());
            root.attr("saturation_runs", outcome.saturation.runs());
        }
        Err(e) => root.attr("outcome", error_kind(e)),
    }
    result
}

/// The stable trace-attribute name of a [`RefinementError`] variant.
fn error_kind(e: &RefinementError) -> &'static str {
    match e {
        RefinementError::Lint { .. } => "lint",
        RefinementError::ShardViolation { .. } => "shard-violation",
        RefinementError::MissingInputMapping { .. } => "missing-input-mapping",
        RefinementError::OutputUnmapped { .. } => "output-unmapped",
        RefinementError::CertRejected { .. } => "cert-rejected",
        RefinementError::OperatorUnmapped { .. } => "operator-unmapped",
    }
}

fn check_refinement_inner(
    gs: &Graph,
    gd: &Graph,
    ri: &Relation,
    opts: &CheckOptions,
) -> Result<CheckOutcome, RefinementError> {
    let tracer = &opts.trace;
    if opts.lint {
        let mut sp = tracer.span("stage:lint");
        let r = check_lint(gs, gd);
        sp.attr(
            "outcome",
            match &r {
                Ok(()) => "ok".to_owned(),
                Err(RefinementError::Lint { graph, .. }) => format!("errors:{graph}"),
                Err(_) => unreachable!("check_lint only fails with Lint"),
            },
        );
        drop(sp);
        r?;
    }
    for &input in gs.inputs() {
        if !ri.contains(input) {
            return Err(RefinementError::MissingInputMapping {
                tensor: gs.tensor(input).name.clone(),
            });
        }
    }
    // Abstract sharding propagation (entangle-shard): localize provable
    // layout violations before any e-graph exists, and harvest proven
    // layouts as per-operator relation hints. Certification keeps the
    // fail-fast diagnostics but drops the hints: a hinted mapping enters
    // the relation without a rewrite derivation, so neither it nor anything
    // derived from it could be certified.
    let hinted: HashMap<TensorId, Vec<RecExpr>> = if opts.shard_hints {
        let mut sp = tracer.span("stage:shard");
        let r = shard_pass(gs, gd, ri, &opts.clean);
        match &r {
            Ok(hints) => {
                sp.attr("outcome", "ok");
                sp.attr("hinted_tensors", hints.len());
            }
            Err(_) => sp.attr("outcome", "violation"),
        }
        drop(sp);
        let hints = r?;
        if opts.certify {
            HashMap::new()
        } else {
            hints
        }
    } else {
        HashMap::new()
    };

    let rewrites = opts
        .rewrites
        .clone()
        .unwrap_or_else(|| rewrites_of(&registry()));

    // Rule-class-driven backoff: derive the throttle schedule ONCE per check
    // from the active rewrite set (classification + interaction-cycle
    // analysis, no e-graph) and share it with every per-operator runner.
    let backoff: Option<BackoffSchedule> = if opts.rule_backoff {
        entangle_rules::backoff_schedule(&rewrites)
    } else {
        None
    };

    let mut certificate = opts.certify.then(|| Certificate {
        gs: gs.name().to_owned(),
        gd: gd.name().to_owned(),
        inputs: ri
            .iter()
            .map(|(t, exprs)| (gs.tensor(t).name.clone(), exprs.to_vec()))
            .collect(),
        mappings: Vec::new(),
        outputs: Vec::new(),
    });

    let mut relation = ri.clone();
    let mut stats = LemmaStats::default();
    let mut saturation = SaturationSummary::default();
    let mut op_reports = Vec::with_capacity(gs.num_nodes());

    let gd_output_names: HashSet<&str> = gd
        .outputs()
        .iter()
        .map(|&t| gd.tensor(t).name.as_str())
        .collect();
    let gs_output_set: HashSet<TensorId> = gs.outputs().iter().copied().collect();

    // Engine selection. The dependency-aware scheduler (and the memo built
    // on it) needs per-operator e-graphs and the frontier rule — the
    // ablation modes keep the exact sequential code path below. The memo
    // additionally requires a concrete symbolic context: SymCtx is part of
    // every problem but not of the cache key.
    let can_schedule = opts.fresh_egraph_per_op && opts.frontier;
    let use_cache = opts.cache
        && can_schedule
        && opts.sym_ctx.num_vars() == 0
        && opts.sym_ctx.num_assumptions() == 0;
    let jobs = if can_schedule { opts.jobs.max(1) } else { 1 };
    let scheduled = can_schedule && (use_cache || jobs > 1);
    let cache: Option<ShardedCache<Solved>> = use_cache.then(|| ShardedCache::new(16));
    let cfg_fp = if use_cache {
        engine_fingerprint(opts, &rewrites)
    } else {
        String::new()
    };
    // Static template analysis: with the memo on, the `entangle-iso`
    // partition lifts the cache from per-operator to per-template keys —
    // each repeated-structure class solves its representative once, and
    // members replay or instantiate its certificate instead of
    // re-saturating. Off (`opts.templates = false`) is the ablation.
    let iso_partition = (opts.templates && use_cache).then(|| entangle_iso::analyze(gs));
    let templates = iso_partition
        .as_ref()
        .map(|a| TemplateInfo::new(a, gs.nodes().len()));

    // Monolithic (ablation) mode: one shared e-graph with all of G_d.
    let mut shared: Option<EGraph<TensorAnalysis>> = if opts.fresh_egraph_per_op {
        None
    } else {
        let mut sp = tracer.span("encode:gd");
        let mut eg = fresh_egraph(gd, opts);
        for node in gd.nodes() {
            encode_node(&mut eg, gd, node);
        }
        sp.attr("nodes", eg.total_nodes());
        Some(eg)
    };

    let map_stage = tracer.span("stage:map");
    if scheduled {
        let ctx = MapCtx::new(
            gs,
            gd,
            opts,
            &rewrites,
            &hinted,
            &gd_output_names,
            &gs_output_set,
            cache.as_ref(),
            cfg_fp,
            backoff.as_ref(),
            templates.as_ref(),
        );
        let mut st = MapState {
            relation: &mut relation,
            stats: &mut stats,
            saturation: &mut saturation,
            op_reports: &mut op_reports,
            certificate: &mut certificate,
        };
        map_stage_scheduled(&ctx, &mut st, jobs)?;
    } else {
        for node in gs.nodes() {
            let start = Instant::now();
            let mut osp = tracer.span(&format!("op:{}", node.name));
            osp.attr("op", node.op.name());
            let hint_exprs: &[RecExpr] = hinted.get(&node.output).map(Vec::as_slice).unwrap_or(&[]);

            // A hint covers this operator when it proves at least one mapping —
            // and, for a G_s *output*, at least one mapping over G_d outputs
            // alone (otherwise the Listing 1 line 9 gate still needs whatever
            // saturation can find). Clean-op nodes (add, concat, …) are never
            // skipped: their saturation is cheap, and the alternate mappings it
            // discovers carry the leaf diversity later frontiers seed from —
            // skipping them can starve a downstream operator of the very G_d
            // names it needs to pull producers into its frontier.
            let covered = !hint_exprs.is_empty()
                && !opts.clean.is_clean(node.op.name())
                && (!gs_output_set.contains(&node.output)
                    || hint_exprs.iter().any(|e| {
                        e.leaf_symbols()
                            .iter()
                            .all(|s| gd_output_names.contains(s.as_str()))
                    }));
            if covered {
                for expr in hint_exprs {
                    relation.insert(node.output, expr.clone());
                }
                osp.attr("hinted", "true");
                osp.attr("mappings", hint_exprs.len());
                op_reports.push(OpReport {
                    name: node.name.clone(),
                    elapsed: start.elapsed(),
                    egraph_nodes: 0,
                    mappings: hint_exprs.len(),
                    hinted: true,
                    rounds: 0,
                    stop: None,
                });
                continue;
            }

            // The inputs' first mappings, in operator order: the saturation base
            // term applies the operator to exactly these (see node_out_rel step
            // 1), so they are what a mapping certificate must record.
            let first_inputs: Vec<RecExpr> = node
                .inputs
                .iter()
                .filter_map(|&t| relation.mappings(t).and_then(<[RecExpr]>::first).cloned())
                .collect();

            let attempt = match &mut shared {
                Some(eg) => {
                    let m = node_out_rel(
                        gs,
                        gd,
                        node,
                        &relation,
                        opts,
                        &rewrites,
                        &mut stats,
                        &mut saturation,
                        eg,
                        false,
                        backoff.as_ref(),
                        tracer,
                    );
                    let n = eg.total_nodes();
                    m.map(|m| (m, n))
                }
                None => {
                    let mut eg = fresh_egraph(gd, opts);
                    let m = node_out_rel(
                        gs,
                        gd,
                        node,
                        &relation,
                        opts,
                        &rewrites,
                        &mut stats,
                        &mut saturation,
                        &mut eg,
                        opts.frontier,
                        backoff.as_ref(),
                        tracer,
                    );
                    let n = eg.total_nodes();
                    m.map(|m| (m, n))
                }
            };
            let (search, nodes_after, rescued) = match attempt {
                Ok((s, n)) => (s, n, false),
                // Saturation found nothing, but the hints *prove* mappings over
                // G_d intermediates: defer to the R_o gate below, which reports
                // the sharper "reconstructs only from intermediates" failure.
                Err(e) if !hint_exprs.is_empty() => {
                    osp.attr("outcome", "rescued-by-hints");
                    let _ = e;
                    (NodeSearch::default(), 0, true)
                }
                Err(e) => {
                    osp.attr("outcome", error_kind(&e));
                    return Err(e);
                }
            };
            let NodeSearch {
                mappings,
                rounds,
                stop,
            } = search;
            for (expr, proof) in mappings {
                if let Some(c) = &mut certificate {
                    let proof = proof.ok_or_else(|| RefinementError::CertRejected {
                        error: CertError::Rejected {
                            tensor: gs.tensor(node.output).name.clone(),
                            reason: format!(
                                "the engine could not extract a rewrite chain for {expr}"
                            ),
                        },
                    })?;
                    c.mappings.push(MappingCert {
                        tensor: gs.tensor(node.output).name.clone(),
                        operator: node.name.clone(),
                        inputs: first_inputs.clone(),
                        expr: expr.clone(),
                        proof,
                    });
                }
                relation.insert(node.output, expr);
            }
            for expr in hint_exprs {
                relation.insert(node.output, expr.clone());
            }
            let n_mappings = relation.mappings(node.output).map_or(0, <[RecExpr]>::len);
            osp.attr("mappings", n_mappings);
            osp.attr("egraph_nodes", nodes_after);
            osp.attr("rounds", rounds);
            if let Some(stop) = stop {
                osp.attr("stop", stop);
            }
            op_reports.push(OpReport {
                name: node.name.clone(),
                elapsed: start.elapsed(),
                egraph_nodes: nodes_after,
                mappings: n_mappings,
                hinted: rescued,
                rounds,
                stop,
            });
        }
    }
    drop(map_stage);

    // Listing 1 line 9: R_o keeps only mappings whose leaves are G_d
    // *outputs* — the tensors a deployed implementation actually emits.
    let mut outputs_stage = tracer.span("stage:outputs");
    let mut output_relation = Relation::new();
    for &out in gs.outputs() {
        let Some(maps) = relation.mappings(out) else {
            // An output that is a graph input must be covered by R_i (already
            // checked); an operator output is covered by the loop above.
            unreachable!("relation must cover every produced tensor");
        };
        let over_outputs: Vec<_> = maps
            .iter()
            .filter(|m| {
                m.leaf_symbols()
                    .iter()
                    .all(|s| gd_output_names.contains(s.as_str()))
            })
            .cloned()
            .collect();
        if over_outputs.is_empty() {
            outputs_stage.attr("outcome", "output-unmapped");
            return Err(RefinementError::OutputUnmapped {
                tensor: gs.tensor(out).name.clone(),
                operator: gs
                    .producer(out)
                    .map(|n| n.name.clone())
                    .unwrap_or_else(|| "<input>".to_owned()),
                intermediate_mappings: maps.iter().map(|m| m.to_string()).collect(),
            });
        }
        for m in over_outputs {
            output_relation.insert(out, m);
        }
    }
    outputs_stage.attr("outcome", "ok");
    drop(outputs_stage);

    // Proof-carrying refinement: hand the assembled certificate to the
    // independent trusted kernel. Only a kernel-accepted derivation counts
    // as a verified refinement.
    if let Some(c) = &mut certificate {
        c.outputs = output_relation
            .iter()
            .flat_map(|(t, exprs)| {
                let name = gs.tensor(t).name.clone();
                exprs.iter().map(move |e| (name.clone(), e.clone()))
            })
            .collect();
        let mut sp = tracer.span("stage:certify");
        sp.attr("mappings", c.mappings.len());
        sp.attr("steps", c.total_steps());
        let r = entangle_cert::verify(c, gs, gd, &rewrites, &opts.sym_ctx);
        sp.attr("outcome", if r.is_ok() { "accepted" } else { "rejected" });
        drop(sp);
        r.map_err(|error| RefinementError::CertRejected { error })?;
    }

    let cache_stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    let template_stats = templates
        .as_ref()
        .map(|t| t.cache.stats())
        .unwrap_or_default();
    Ok(CheckOutcome {
        output_relation,
        full_relation: relation,
        lemma_stats: stats,
        op_reports,
        saturation,
        certificate,
        par: ParStats {
            jobs,
            cores: entangle_par::available_jobs(),
            cache_enabled: use_cache,
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            templates_enabled: templates.is_some(),
            template_classes: templates.as_ref().map_or(0, |t| t.classes),
            template_covered: templates.as_ref().map_or(0, |t| t.covered),
            template_hits: template_stats.hits,
            template_misses: template_stats.misses,
            template_instantiated: templates
                .as_ref()
                .map_or(0, |t| t.instantiated.load(Relaxed)),
            template_fallbacks: templates.as_ref().map_or(0, |t| t.fallbacks.load(Relaxed)),
        },
    })
}

/// The engine-configuration half of the memo key: everything other than the
/// canonical problem that can change what [`solve_problem`] computes —
/// saturation limits, pruning width, certification, the clean-operator set,
/// and a fingerprint of the lemma corpus (name, searcher, right-hand side —
/// `~dyn` for programmatic appliers — and conditionality per rewrite).
fn engine_fingerprint(opts: &CheckOptions, rewrites: &[Rewrite<TensorAnalysis>]) -> String {
    use std::fmt::Write;
    let mut fp = String::with_capacity(64 * rewrites.len());
    let _ = write!(
        fp,
        "|cfg:iters={},nodes={},time_us={},max={},certify={},backoff={},clean={:?};lemmas:",
        opts.iter_limit,
        opts.node_limit,
        opts.time_limit.as_micros(),
        opts.max_mappings,
        opts.certify,
        opts.rule_backoff,
        opts.clean,
    );
    for rw in rewrites {
        let _ = write!(fp, "{}:{}:", rw.name(), rw.searcher());
        match rw.rhs() {
            Some(p) => {
                let _ = write!(fp, "{p}");
            }
            None => fp.push_str("~dyn"),
        }
        fp.push(':');
        fp.push(if rw.has_condition() { 'c' } else { 'u' });
        fp.push(';');
    }
    fp
}

/// Runs the sharding-propagation pass and converts its products: errors
/// become [`RefinementError::ShardViolation`]; hints are filtered to the
/// clean-operator set, re-validated through the relation builder (shape,
/// dtype, names), and keyed by `G_s` tensor id. A hint that fails
/// validation is dropped — hints are an optimization, never an authority.
fn shard_pass(
    gs: &Graph,
    gd: &Graph,
    ri: &Relation,
    clean: &CleanOps,
) -> Result<HashMap<TensorId, Vec<RecExpr>>, RefinementError> {
    let maps: Vec<(String, RecExpr)> = ri
        .iter()
        .flat_map(|(t, exprs)| {
            let name = gs.tensor(t).name.clone();
            exprs.iter().map(move |e| (name.clone(), e.clone()))
        })
        .collect();
    let analysis = entangle_shard::analyze_pair(gs, gd, &maps, &[]);
    if !analysis.is_clean() {
        let diagnostics: Vec<_> = analysis.report.errors().cloned().collect();
        let rendered = diagnostics.iter().map(|d| d.render(Some(gd))).collect();
        return Err(RefinementError::ShardViolation {
            diagnostics,
            rendered,
        });
    }
    let mut hinted: HashMap<TensorId, Vec<RecExpr>> = HashMap::new();
    for hint in &analysis.hints {
        if hint.op.is_some_and(|op| !clean.is_clean(op)) {
            continue;
        }
        let Some(t) = gs.tensor_by_name(&hint.gs_tensor) else {
            continue;
        };
        let mut b = Relation::builder(gs, gd);
        if b.map(&hint.gs_tensor, &hint.expr).is_err() {
            continue;
        }
        for expr in b.build().mappings(t.id).unwrap_or(&[]) {
            let entry = hinted.entry(t.id).or_default();
            if !entry.contains(expr) {
                entry.push(expr.clone());
            }
        }
    }
    Ok(hinted)
}

fn fresh_egraph(gd: &Graph, opts: &CheckOptions) -> EGraph<TensorAnalysis> {
    let mut analysis = TensorAnalysis::with_ctx(opts.sym_ctx.clone());
    for t in gd.tensors() {
        analysis.register_leaf(&t.name, t.shape.clone(), t.dtype);
    }
    EGraph::with_analysis(analysis)
}

// ---------------------------------------------------------------------------
// The dependency-aware operator scheduler (entangle-par).
//
// G_s operators only depend on each other through the relation: an operator
// is dispatchable once every producer of one of its inputs has *completed*
// (its mappings and hints are staged in the relation — identical to its
// post-merge state). Workers solve operators out of order; the coordinator
// merges results strictly in G_s index order, so reports, relation contents,
// certificates, and trace structure match the sequential engine for any
// worker count. Failure handling relies on the same invariant: the first
// error the merge cursor reaches is the same first error the sequential
// loop would have hit, because every operator before it merged successfully
// with identical inputs.
// ---------------------------------------------------------------------------

/// One solved template class: the representative's per-site bound values
/// and definition-slot names (render order, matching
/// `OpProblem::template_key`) and its solved canonical problem,
/// certificates included.
struct TemplateEntry {
    bounds: Vec<i64>,
    defs: Vec<(String, String)>,
    solved: Arc<Solved>,
}

/// The static template partition plus the per-template memo, shared with
/// worker threads. Only a class *representative* (its smallest G_s node
/// index) publishes an entry; members consult it read-only, so lookups are
/// deterministic for any worker count once the scheduler orders members
/// after their representative.
struct TemplateInfo {
    /// Per G_s node index: `(class id, representative node index)` for
    /// nodes in a repeated-structure class.
    class_rep: Vec<Option<(usize, usize)>>,
    /// Number of template classes in the partition.
    classes: usize,
    /// Operators covered by some class.
    covered: usize,
    cache: ShardedCache<TemplateEntry>,
    /// Members whose mappings were instantiated from the representative's
    /// certificate (kernel-accepted).
    instantiated: AtomicU64,
    /// Members that fell back to a concrete solve (instantiation
    /// unavailable or rejected).
    fallbacks: AtomicU64,
}

impl TemplateInfo {
    fn new(analysis: &entangle_iso::IsoAnalysis, num_nodes: usize) -> TemplateInfo {
        let mut class_rep = vec![None; num_nodes];
        for (idx, slot) in class_rep.iter_mut().enumerate() {
            if let Some(class) = analysis.class_of(idx) {
                *slot = Some((class.id, class.representative()));
            }
        }
        TemplateInfo {
            class_rep,
            classes: analysis.class_count(),
            covered: analysis.covered(),
            cache: ShardedCache::new(16),
            instantiated: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }
}

/// Immutable per-check context shared with worker threads.
struct MapCtx<'a> {
    gs: &'a Graph,
    gd: &'a Graph,
    opts: &'a CheckOptions,
    rewrites: &'a [Rewrite<TensorAnalysis>],
    nodes: Vec<&'a Node>,
    /// Per operator: the shard hints proving mappings of its output.
    hint_vecs: Vec<&'a [RecExpr]>,
    /// Per operator: `true` when hints fully cover it (no saturation).
    covered: Vec<bool>,
    cache: Option<&'a ShardedCache<Solved>>,
    cfg_fp: String,
    backoff: Option<&'a BackoffSchedule>,
    templates: Option<&'a TemplateInfo>,
    /// Consumer index over `G_d`, built once and shared by every
    /// `build_problem` frontier closure.
    consumers: GdConsumers,
}

impl<'a> MapCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        gs: &'a Graph,
        gd: &'a Graph,
        opts: &'a CheckOptions,
        rewrites: &'a [Rewrite<TensorAnalysis>],
        hinted: &'a HashMap<TensorId, Vec<RecExpr>>,
        gd_output_names: &HashSet<&str>,
        gs_output_set: &HashSet<TensorId>,
        cache: Option<&'a ShardedCache<Solved>>,
        cfg_fp: String,
        backoff: Option<&'a BackoffSchedule>,
        templates: Option<&'a TemplateInfo>,
    ) -> Self {
        let nodes: Vec<&Node> = gs.nodes().iter().collect();
        let hint_vecs: Vec<&[RecExpr]> = nodes
            .iter()
            .map(|n| hinted.get(&n.output).map(Vec::as_slice).unwrap_or(&[]))
            .collect();
        // Same coverage rule as the sequential loop: a hint covers an
        // operator when it proves a mapping (for a G_s output: over G_d
        // outputs alone), and clean-op nodes are never skipped.
        let covered: Vec<bool> = nodes
            .iter()
            .zip(&hint_vecs)
            .map(|(node, hint_exprs)| {
                !hint_exprs.is_empty()
                    && !opts.clean.is_clean(node.op.name())
                    && (!gs_output_set.contains(&node.output)
                        || hint_exprs.iter().any(|e| {
                            e.leaf_symbols()
                                .iter()
                                .all(|s| gd_output_names.contains(s.as_str()))
                        }))
            })
            .collect();
        MapCtx {
            gs,
            gd,
            opts,
            rewrites,
            nodes,
            hint_vecs,
            covered,
            cache,
            cfg_fp,
            backoff,
            templates,
            consumers: GdConsumers::new(gd),
        }
    }
}

/// The coordinator's mutable check state (owned by the calling thread).
struct MapState<'a> {
    relation: &'a mut Relation,
    stats: &'a mut LemmaStats,
    saturation: &'a mut SaturationSummary,
    op_reports: &'a mut Vec<OpReport>,
    certificate: &'a mut Option<Certificate>,
}

/// One operator's successfully computed result, in real (non-canonical)
/// names.
struct OpSuccess {
    mappings: Vec<(RecExpr, Option<Proof>)>,
    rounds: usize,
    stop: Option<StopReason>,
    egraph_nodes: usize,
    /// Search failed but shard hints prove mappings: defer to the R_o gate.
    rescued: bool,
}

struct OpFail {
    stop: Option<StopReason>,
}

/// Everything a worker hands back for one operator.
struct OpResult {
    outcome: Result<OpSuccess, OpFail>,
    stats: LemmaStats,
    summary: SaturationSummary,
    /// Buffered sub-tracer records (empty when tracing is off), replayed by
    /// the coordinator at this operator's merge turn.
    records: Vec<Record>,
    elapsed: Duration,
}

/// A successful template replay: the solved result, plus — when the replay
/// went through certificate instantiation — the substituted per-variant
/// expressions and proof chains that must enter the emitted certificate.
type TemplateReplay = (Arc<Solved>, Option<Vec<(RecExpr, Option<Proof>)>>);

/// Member-side template lookup. Key equality pairs the member's definition
/// slots with the representative's, yielding a canonical-to-canonical
/// [`Renamer`] (tensor names plus `Given` fact labels). From there:
///
/// - identity translation, equal bounds: the member's concrete problem
///   equals the representative's — replay is exactly a concrete-memo hit;
/// - non-identity translation, equal bounds: the problems are isomorphic
///   by construction of the normalized key, so the translated solution is
///   admitted (with certification on, each translated proof is still
///   re-checked by the trusted kernel first — it will enter the
///   certificate);
/// - differing bounds (certification on only): the representative's
///   certificate is *instantiated* — candidate bound substitutions are
///   applied to every variant's expression and proof chain and the result
///   is admitted only after the trusted kernel re-validates it.
///
/// Returns `None` — fall back to a concrete solve — on a memo miss, on a
/// cross-bound hit without certification, or when the kernel rejects any
/// variant.
fn template_lookup(
    ctx: &MapCtx,
    node: &Node,
    per_input: &[Vec<RecExpr>],
    back: &Renamer,
    templates: &TemplateInfo,
    tk: &TemplateKey,
) -> Option<TemplateReplay> {
    let entry = templates.cache.get(&tk.key)?;
    if entry.defs.len() != tk.defs.len() || entry.bounds.len() != tk.bounds.len() {
        // Defensive: key equality fixes both lengths.
        templates.fallbacks.fetch_add(1, Relaxed);
        return None;
    }
    // Representative-canonical → member-canonical translation from the
    // definition-slot pairing.
    let mut translate = Renamer::new();
    let mut identity = true;
    for ((rep_label, rep_out), (mem_label, mem_out)) in entry.defs.iter().zip(&tk.defs) {
        if rep_out != mem_out {
            identity = false;
            translate.leaf(Symbol::new(rep_out), Symbol::new(mem_out));
        }
        if rep_label != mem_label {
            identity = false;
            translate.fact(
                format!("G_d definition of {rep_label}"),
                format!("G_d definition of {mem_label}"),
            );
        }
    }
    if entry.bounds == tk.bounds && identity {
        return Some((entry.solved.clone(), None));
    }
    let mappings = if entry.bounds == tk.bounds {
        // Translated replay: same problem up to canonical renaming. Trusted
        // without certification (isomorphism transport, the same trust
        // level as the concrete memo's renamed replay); kernel-gated with
        // it, because the translated proofs enter the certificate.
        instantiate_template(
            ctx,
            node,
            per_input,
            back,
            &entry,
            &translate,
            &[HashMap::new()],
            !ctx.opts.certify,
        )
    } else if ctx.opts.certify {
        // Cross-bound instantiation: try the value substitution read off
        // the differing sites (when consistent), then the identity
        // substitution (bound sites may belong to *other* members'
        // structures that the variant never mentions). Kernel-gated.
        let mut candidates: Vec<HashMap<i64, i64>> = Vec::new();
        if let Some(m) = diff_value_map(&entry.bounds, &tk.bounds) {
            candidates.push(m);
        }
        candidates.push(HashMap::new());
        instantiate_template(
            ctx,
            node,
            per_input,
            back,
            &entry,
            &translate,
            &candidates,
            false,
        )
    } else {
        None
    };
    match mappings {
        Some(m) => {
            templates.instantiated.fetch_add(1, Relaxed);
            Some((entry.solved.clone(), Some(m)))
        }
        None => {
            templates.fallbacks.fetch_add(1, Relaxed);
            None
        }
    }
}

/// The per-site value substitution implied by the differing bound sites,
/// or `None` when the sites conflict (one representative value would need
/// two images) or nothing differs.
fn diff_value_map(rep: &[i64], member: &[i64]) -> Option<HashMap<i64, i64>> {
    let mut map = HashMap::new();
    for (&r, &m) in rep.iter().zip(member) {
        if r == m {
            continue;
        }
        match map.entry(r) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != m {
                    return None;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m);
            }
        }
    }
    (!map.is_empty()).then_some(map)
}

/// Builds this member's mappings from the representative's solution:
/// translate each variant into the member's canonical namespace, apply a
/// candidate bound substitution to its expression and proof chain (rule
/// substitutions are re-derived — see `entangle-cert`), rename out of the
/// canonical namespace with this member's own renamer, and — unless
/// `trusted` — re-check the mapping in the trusted kernel against the
/// member's accepted input mappings. Each variant keeps the first candidate
/// the kernel accepts; a variant no candidate can justify abandons the
/// whole instantiation, so soundness never rests on the substitution
/// heuristic.
#[allow(clippy::too_many_arguments)]
fn instantiate_template(
    ctx: &MapCtx,
    node: &Node,
    per_input: &[Vec<RecExpr>],
    back: &Renamer,
    entry: &TemplateEntry,
    translate: &Renamer,
    candidates: &[HashMap<i64, i64>],
    trusted: bool,
) -> Option<Vec<(RecExpr, Option<Proof>)>> {
    let accepted: HashMap<String, Vec<RecExpr>> = node
        .inputs
        .iter()
        .zip(per_input)
        .map(|(&t, exprs)| (ctx.gs.tensor(t).name.clone(), exprs.clone()))
        .collect();
    // The inputs' first mappings are what the certificate records (the
    // saturation base term applies the operator to exactly these).
    let first_inputs: Vec<RecExpr> = per_input
        .iter()
        .filter_map(|m| m.first().cloned())
        .collect();
    let tensor = ctx.gs.tensor(node.output).name.clone();
    let mut mapped: Vec<(f64, RecExpr, Option<Proof>)> =
        Vec::with_capacity(entry.solved.variants.len());
    'variants: for (cost, expr, proof) in &entry.solved.variants {
        let t_expr = translate.rename_expr(expr);
        let t_proof = proof.as_ref().map(|p| translate.rename_proof(p));
        if trusted {
            let real_expr = back.rename_expr(&t_expr);
            let real_proof = t_proof.as_ref().map(|p| back.rename_proof(p));
            mapped.push((*cost, real_expr, real_proof));
            continue;
        }
        let t_proof = t_proof?;
        for value_map in candidates {
            let (c_expr, c_proof) = if value_map.is_empty() {
                (t_expr.clone(), t_proof.clone())
            } else {
                let e = entangle_cert::retarget_slice_bounds(&t_expr, value_map);
                match entangle_cert::retarget_proof(&t_proof, value_map, ctx.rewrites) {
                    Ok(p) => (e, p),
                    Err(_) => continue,
                }
            };
            let real_expr = back.rename_expr(&c_expr);
            let real_proof = back.rename_proof(&c_proof);
            let mc = MappingCert {
                tensor: tensor.clone(),
                operator: node.name.clone(),
                inputs: first_inputs.clone(),
                expr: real_expr.clone(),
                proof: real_proof.clone(),
            };
            if entangle_cert::verify_mapping(
                &mc,
                ctx.gs,
                ctx.gd,
                ctx.rewrites,
                &ctx.opts.sym_ctx,
                &accepted,
            )
            .is_ok()
            {
                mapped.push((*cost, real_expr, Some(real_proof)));
                continue 'variants;
            }
        }
        return None;
    }
    // Restore the sequential engine's (cost, real text) ordering.
    mapped.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.to_string().cmp(&b.1.to_string()))
    });
    Some(mapped.into_iter().map(|(_, e, p)| (e, p)).collect())
}

/// Solves one operator on the current thread. `per_input` is the snapshot
/// of its inputs' final mappings (operator order). With a cache, the
/// canonical memo engine runs; without one, the classic per-operator search
/// runs against a private e-graph. Either way the operator's spans go to a
/// buffering sub-tracer for in-order replay.
fn run_op(ctx: &MapCtx, idx: usize, per_input: &[Vec<RecExpr>], traced: bool) -> OpResult {
    let start = Instant::now();
    let node = ctx.nodes[idx];
    let (tracer, sink) = if traced {
        let (t, s) = Tracer::collect();
        (t, Some(s))
    } else {
        (Tracer::null(), None)
    };
    let mut stats = LemmaStats::default();
    let mut summary = SaturationSummary::default();

    let mut osp = tracer.span(&format!("op:{}", node.name));
    osp.attr("op", node.op.name());

    let mut outcome: Result<OpSuccess, OpFail> = if per_input.iter().any(|m| m.is_empty()) {
        Err(OpFail { stop: None })
    } else if let Some(cache) = ctx.cache {
        let (problem, back) = build_problem(ctx.gs, ctx.gd, node, per_input, &ctx.consumers);
        let key = problem.key(&ctx.cfg_fp);
        // Template lift: a node in a repeated class additionally gets a
        // per-template key with slice bounds abstracted to placeholders and
        // frontier-definition names structure-normalized.
        let tpl = ctx.templates.and_then(|t| {
            let (class, rep) = t.class_rep[idx]?;
            let tk = problem.template_key(&ctx.cfg_fp, class)?;
            Some((t, rep, tk))
        });
        // Mappings instantiated from the representative's certificate, in
        // real names and final order (only set on a cross-bound template
        // hit); `solved` always remains the telemetry source.
        let mut instantiated: Option<Vec<(RecExpr, Option<Proof>)>> = None;
        // Members consult the template memo *before* the concrete memo: the
        // representative publishes before any member dispatches, so the
        // chosen path is a static property of the node — never a function
        // of concrete-cache timing — and member results stay bit-equal for
        // any worker count. The concrete memo in turn only ever holds
        // `solve_problem` outputs (instantiated mappings are never inserted
        // there), keeping its values a pure function of the key.
        let from_template = match &tpl {
            Some((t, rep, tk)) if *rep != idx => {
                template_lookup(ctx, node, per_input, &back, t, tk).map(|(solved, inst)| {
                    instantiated = inst;
                    solved
                })
            }
            _ => None,
        };
        let solved = match from_template {
            Some(solved) => solved,
            None => match cache.get(&key) {
                Some(v) => v,
                None => cache.insert(
                    key,
                    solve_problem(&problem, ctx.opts, ctx.rewrites, ctx.backoff),
                ),
            },
        };
        // The representative publishes the class entry — whether its own
        // solve was fresh or a concrete-memo hit — so member behaviour
        // depends only on the schedule order, not on cache timing. A
        // failed representative publishes nothing: members with different
        // bounds might still succeed and must search for themselves.
        if let Some((t, rep, tk)) = tpl {
            if rep == idx && !solved.variants.is_empty() {
                t.cache.insert(
                    tk.key,
                    TemplateEntry {
                        bounds: tk.bounds,
                        defs: tk.defs,
                        solved: solved.clone(),
                    },
                );
            }
        }
        emit_solved_trace(&tracer, &solved);
        for r in &solved.run_reports {
            stats.merge(&r.applications);
            summary.record(r);
        }
        if let Some(mappings) = instantiated {
            Ok(OpSuccess {
                mappings,
                rounds: solved.rounds,
                stop: solved.stop,
                egraph_nodes: solved.egraph_nodes,
                rescued: false,
            })
        } else if solved.variants.is_empty() {
            Err(OpFail { stop: solved.stop })
        } else {
            // Rename back to real G_d tensors, then restore the sequential
            // engine's (cost, real text) ordering.
            let mut mapped: Vec<(f64, RecExpr, Option<Proof>)> = solved
                .variants
                .iter()
                .map(|(c, e, p)| {
                    (
                        *c,
                        back.rename_expr(e),
                        p.as_ref().map(|p| back.rename_proof(p)),
                    )
                })
                .collect();
            mapped.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.to_string().cmp(&b.1.to_string()))
            });
            Ok(OpSuccess {
                mappings: mapped.into_iter().map(|(_, e, p)| (e, p)).collect(),
                rounds: solved.rounds,
                stop: solved.stop,
                egraph_nodes: solved.egraph_nodes,
                rescued: false,
            })
        }
    } else {
        // Direct engine: the classic search against a private e-graph, with
        // the inputs' mappings staged in a local relation slice.
        let mut local = Relation::new();
        for (&t, exprs) in node.inputs.iter().zip(per_input) {
            for e in exprs {
                local.insert(t, e.clone());
            }
        }
        let mut eg = fresh_egraph(ctx.gd, ctx.opts);
        match node_out_rel(
            ctx.gs,
            ctx.gd,
            node,
            &local,
            ctx.opts,
            ctx.rewrites,
            &mut stats,
            &mut summary,
            &mut eg,
            true,
            ctx.backoff,
            &tracer,
        ) {
            Ok(search) => Ok(OpSuccess {
                mappings: search.mappings,
                rounds: search.rounds,
                stop: search.stop,
                egraph_nodes: eg.total_nodes(),
                rescued: false,
            }),
            Err(e) => {
                let stop = match &e {
                    RefinementError::OperatorUnmapped { stop, .. } => *stop,
                    _ => None,
                };
                Err(OpFail { stop })
            }
        }
    };
    if outcome.is_err() && !ctx.hint_vecs[idx].is_empty() {
        // Saturation found nothing, but the hints *prove* mappings over G_d
        // intermediates: defer to the R_o gate, as the sequential loop does.
        osp.attr("outcome", "rescued-by-hints");
        outcome = Ok(OpSuccess {
            mappings: Vec::new(),
            rounds: 0,
            stop: None,
            egraph_nodes: 0,
            rescued: true,
        });
    }
    drop(osp);
    OpResult {
        outcome,
        stats,
        summary,
        records: sink.map(|s| s.records()).unwrap_or_default(),
        elapsed: start.elapsed(),
    }
}

/// Emits the encode/saturate/extract spans for a memoized solution —
/// identical structure whether the solution was just computed or replayed
/// from the cache, so trace files are hit/miss-invariant.
fn emit_solved_trace(tracer: &Tracer, solved: &Solved) {
    if !tracer.is_enabled() {
        return;
    }
    {
        let mut sp = tracer.span("encode");
        sp.attr("nodes", solved.encode_nodes);
    }
    for (i, report) in solved.run_reports.iter().enumerate() {
        let mut sat_span = tracer.span("saturate");
        let run_start_us = tracer.now_us();
        // The span describes the memoized run, so it reports that run's
        // wall clock (identical for a fresh solve and a cache replay).
        sat_span.set_elapsed_us(report.elapsed.as_micros() as u64);
        sat_span.attr("round", i + 1);
        sat_span.attr("stop", report.stop_reason);
        sat_span.attr("iterations", report.iterations);
        sat_span.attr("nodes", report.egraph_nodes);
        sat_span.attr("classes", report.egraph_classes);
        for it in &report.saturation.iterations {
            tracer.event_at(
                "iteration",
                run_start_us + it.start_us,
                Some(it.search_us + it.apply_us + it.rebuild_us),
                &[
                    ("nodes", it.nodes.to_string()),
                    ("classes", it.classes.to_string()),
                    ("memo", it.memo.to_string()),
                    ("unions", it.unions.to_string()),
                    ("search_us", it.search_us.to_string()),
                    ("apply_us", it.apply_us.to_string()),
                    ("rebuild_us", it.rebuild_us.to_string()),
                ],
            );
        }
    }
    let mut extract_span = tracer.span("extract");
    extract_span.attr("variants", solved.variants.len());
    if solved.variants.is_empty() {
        extract_span.attr("outcome", "unmapped");
    }
}

/// Stages a completed operator's products into the relation so its
/// consumers can snapshot them. Idempotent (the relation dedups), and
/// byte-equal to what the in-order merge inserts.
fn stage_result(ctx: &MapCtx, relation: &mut Relation, idx: usize, success: &OpSuccess) {
    let out = ctx.nodes[idx].output;
    for (expr, _) in &success.mappings {
        relation.insert(out, expr.clone());
    }
    for expr in ctx.hint_vecs[idx] {
        relation.insert(out, expr.clone());
    }
}

/// Merges a hint-covered operator at its turn: same span, report, and
/// relation contents as the sequential loop's skip branch.
fn merge_covered(ctx: &MapCtx, st: &mut MapState, idx: usize, elapsed: Duration) {
    let node = ctx.nodes[idx];
    let hint_exprs = ctx.hint_vecs[idx];
    for expr in hint_exprs {
        st.relation.insert(node.output, expr.clone());
    }
    let mut osp = ctx.opts.trace.span(&format!("op:{}", node.name));
    osp.attr("op", node.op.name());
    osp.attr("hinted", "true");
    osp.attr("mappings", hint_exprs.len());
    drop(osp);
    st.op_reports.push(OpReport {
        name: node.name.clone(),
        elapsed,
        egraph_nodes: 0,
        mappings: hint_exprs.len(),
        hinted: true,
        rounds: 0,
        stop: None,
    });
}

/// Merges one solved operator at its in-order turn: certificate assembly,
/// relation insertion, trace replay (with the coordinator-side outcome
/// attributes appended), and the operator report — or the localized
/// failure, which is the same failure the sequential loop reports because
/// every earlier operator already merged with identical inputs.
fn merge_run(
    ctx: &MapCtx,
    st: &mut MapState,
    idx: usize,
    res: OpResult,
    worker: usize,
) -> Result<(), RefinementError> {
    let node = ctx.nodes[idx];
    let tracer = &ctx.opts.trace;
    st.stats.absorb(&res.stats);
    st.saturation
        .stops
        .extend(res.summary.stops.iter().copied());
    st.saturation.telemetry.merge(&res.summary.telemetry);
    match res.outcome {
        Ok(success) => {
            // The inputs' first mappings, read from the already-merged
            // relation (the certificate's recorded operator inputs).
            let first_inputs: Vec<RecExpr> = node
                .inputs
                .iter()
                .filter_map(|&t| {
                    st.relation
                        .mappings(t)
                        .and_then(<[RecExpr]>::first)
                        .cloned()
                })
                .collect();
            for (expr, proof) in &success.mappings {
                if let Some(c) = st.certificate.as_mut() {
                    let proof = proof.clone().ok_or_else(|| RefinementError::CertRejected {
                        error: CertError::Rejected {
                            tensor: ctx.gs.tensor(node.output).name.clone(),
                            reason: format!(
                                "the engine could not extract a rewrite chain for {expr}"
                            ),
                        },
                    })?;
                    c.mappings.push(MappingCert {
                        tensor: ctx.gs.tensor(node.output).name.clone(),
                        operator: node.name.clone(),
                        inputs: first_inputs.clone(),
                        expr: expr.clone(),
                        proof,
                    });
                }
                st.relation.insert(node.output, expr.clone());
            }
            for expr in ctx.hint_vecs[idx] {
                st.relation.insert(node.output, expr.clone());
            }
            let n_mappings = st
                .relation
                .mappings(node.output)
                .map_or(0, <[RecExpr]>::len);
            let mut extra: Vec<(String, String)> = vec![
                ("mappings".to_owned(), n_mappings.to_string()),
                ("egraph_nodes".to_owned(), success.egraph_nodes.to_string()),
                ("rounds".to_owned(), success.rounds.to_string()),
            ];
            if let Some(stop) = success.stop {
                extra.push(("stop".to_owned(), stop.to_string()));
            }
            extra.push(("worker".to_owned(), worker.to_string()));
            tracer.replay_records(&res.records, &extra);
            st.op_reports.push(OpReport {
                name: node.name.clone(),
                elapsed: res.elapsed,
                egraph_nodes: success.egraph_nodes,
                mappings: n_mappings,
                hinted: success.rescued,
                rounds: success.rounds,
                stop: success.stop,
            });
            Ok(())
        }
        Err(failure) => {
            let extra = vec![
                ("outcome".to_owned(), "operator-unmapped".to_owned()),
                ("worker".to_owned(), worker.to_string()),
            ];
            tracer.replay_records(&res.records, &extra);
            Err(RefinementError::OperatorUnmapped {
                operator: node.name.clone(),
                op: node.op.name().to_owned(),
                node: node.id,
                input_mappings: node
                    .inputs
                    .iter()
                    .map(|&t| {
                        (
                            ctx.gs.tensor(t).name.clone(),
                            st.relation
                                .mappings(t)
                                .map(|ms| ms.iter().map(|m| m.to_string()).collect())
                                .unwrap_or_default(),
                        )
                    })
                    .collect(),
                stop: failure.stop,
            })
        }
    }
}

/// What the coordinator holds for a completed-but-not-yet-merged operator.
enum Done {
    Covered,
    Run(Box<OpResult>, usize),
}

/// Snapshot of an operator's input mappings at dispatch time. Producers
/// have completed (and staged), so this equals the sequential engine's view.
fn snapshot_inputs(relation: &Relation, node: &Node) -> Vec<Vec<RecExpr>> {
    node.inputs
        .iter()
        .map(|&t| {
            relation
                .mappings(t)
                .map(<[RecExpr]>::to_vec)
                .unwrap_or_default()
        })
        .collect()
}

/// The scheduled map stage: dispatch operators as their producers complete,
/// merge strictly in G_s index order.
fn map_stage_scheduled(
    ctx: &MapCtx,
    st: &mut MapState,
    jobs: usize,
) -> Result<(), RefinementError> {
    let n = ctx.nodes.len();
    let traced = ctx.opts.trace.is_enabled();

    if jobs <= 1 {
        // In-process scheduling: same engine, no worker threads. (Reached
        // when the memo is on; jobs=1 with the memo off takes the exact
        // sequential code path in the caller.)
        for idx in 0..n {
            if ctx.covered[idx] {
                merge_covered(ctx, st, idx, Duration::ZERO);
                continue;
            }
            let per_input = snapshot_inputs(st.relation, ctx.nodes[idx]);
            let res = run_op(ctx, idx, &per_input, traced);
            merge_run(ctx, st, idx, res, 0)?;
        }
        return Ok(());
    }

    // Producer dependencies, restricted to earlier operators: a producer
    // appearing *later* would leave this input unmapped in the sequential
    // engine too, so the operator dispatches immediately and fails the
    // same way.
    let out_to_idx: HashMap<TensorId, usize> = ctx
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| (node.output, i))
        .collect();
    let deps: Vec<Vec<usize>> = ctx
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let mut d: Vec<usize> = node
                .inputs
                .iter()
                .filter_map(|t| out_to_idx.get(t).copied())
                .filter(|&j| j < i)
                .collect();
            // A template member must not dispatch before its class
            // representative has had the chance to publish — lookups then
            // depend only on the (deterministic) schedule order, never on
            // worker timing. The representative is the smallest member
            // index, so the edge always points backwards.
            if let Some((_, rep)) = ctx.templates.and_then(|t| t.class_rep[i]) {
                if rep < i {
                    d.push(rep);
                }
            }
            d.sort_unstable();
            d.dedup();
            d
        })
        .collect();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            consumers[d].push(i);
        }
    }
    let mut dep_count: Vec<usize> = deps.iter().map(Vec::len).collect();
    let mut ready: std::collections::BTreeSet<usize> =
        (0..n).filter(|&i| dep_count[i] == 0).collect();
    let mut dispatched = vec![false; n];
    let mut pending: HashMap<usize, Done> = HashMap::new();
    let mut merge_ptr = 0usize;
    // Operators at or beyond the smallest failed index can never merge;
    // stop dispatching them so the check drains promptly.
    let mut min_failed: Option<usize> = None;

    let work = |idx: usize, per_input: Vec<Vec<RecExpr>>| run_op(ctx, idx, &per_input, traced);

    with_pool(jobs, work, |pool| -> Result<(), RefinementError> {
        loop {
            if merge_ptr == n {
                return Ok(());
            }
            // Dispatch everything ready (covered operators complete inline,
            // possibly readying their consumers within this loop).
            while let Some(&idx) = ready.iter().next() {
                ready.remove(&idx);
                if min_failed.is_some_and(|f| idx >= f) {
                    continue;
                }
                dispatched[idx] = true;
                if ctx.covered[idx] {
                    for expr in ctx.hint_vecs[idx] {
                        st.relation.insert(ctx.nodes[idx].output, expr.clone());
                    }
                    pending.insert(idx, Done::Covered);
                    for &c in &consumers[idx] {
                        dep_count[c] -= 1;
                        if dep_count[c] == 0 && !dispatched[c] {
                            ready.insert(c);
                        }
                    }
                } else {
                    pool.submit(idx, snapshot_inputs(st.relation, ctx.nodes[idx]));
                }
            }
            // Merge every consecutively completed operator.
            while let Some(done) = pending.remove(&merge_ptr) {
                let idx = merge_ptr;
                merge_ptr += 1;
                match done {
                    Done::Covered => {
                        // Hints were staged at dispatch; relation insertion
                        // here dedups to the same contents.
                        merge_covered(ctx, st, idx, Duration::ZERO);
                    }
                    Done::Run(res, worker) => merge_run(ctx, st, idx, *res, worker)?,
                }
                if merge_ptr == n {
                    return Ok(());
                }
            }
            assert!(
                pool.in_flight() > 0,
                "scheduler stalled: operator {merge_ptr} of {n} neither completed nor in flight"
            );
            let (idx, worker, res) = pool.recv();
            match &res.outcome {
                Ok(success) => {
                    stage_result(ctx, st.relation, idx, success);
                    for &c in &consumers[idx] {
                        dep_count[c] -= 1;
                        if dep_count[c] == 0 && !dispatched[c] {
                            ready.insert(c);
                        }
                    }
                }
                Err(_) => {
                    min_failed = Some(min_failed.map_or(idx, |f| f.min(idx)));
                }
            }
            pending.insert(idx, Done::Run(Box::new(res), worker));
        }
    })
}

/// What one operator's mapping search produced (alongside the lemma stats
/// and saturation telemetry accumulated through the `&mut` params).
#[derive(Default)]
struct NodeSearch {
    /// Clean mappings with their optional proofs.
    mappings: Vec<(RecExpr, Option<Proof>)>,
    /// Frontier rounds (saturation runs) spent.
    rounds: usize,
    /// `Saturated` when every round ran the rules dry, otherwise the limit
    /// the last cut-short round hit.
    stop: Option<StopReason>,
}

/// Computes the clean output relation for one `G_s` operator (Listing 2,
/// with the Listing 3 frontier when `frontier` is true).
///
/// Each returned mapping is paired with the rewrite [`Proof`] connecting it
/// to the operator's encoded base term when [`CheckOptions::certify`] is on
/// (`None` otherwise, and in the never-observed case where the explanation
/// machinery finds no path — the caller turns that into a rejection).
#[allow(clippy::too_many_arguments)]
fn node_out_rel(
    gs: &Graph,
    gd: &Graph,
    node: &Node,
    relation: &Relation,
    opts: &CheckOptions,
    rewrites: &[Rewrite<TensorAnalysis>],
    stats: &mut LemmaStats,
    summary: &mut SaturationSummary,
    eg: &mut EGraph<TensorAnalysis>,
    frontier: bool,
    backoff: Option<&BackoffSchedule>,
    tracer: &Tracer,
) -> Result<NodeSearch, RefinementError> {
    let fail = |relation: &Relation, stop: Option<StopReason>| RefinementError::OperatorUnmapped {
        operator: node.name.clone(),
        op: node.op.name().to_owned(),
        node: node.id,
        input_mappings: node
            .inputs
            .iter()
            .map(|&t| {
                (
                    gs.tensor(t).name.clone(),
                    relation
                        .mappings(t)
                        .map(|ms| ms.iter().map(|m| m.to_string()).collect())
                        .unwrap_or_default(),
                )
            })
            .collect(),
        stop,
    };

    // Step 1: express the operator's output over G_d tensors by substituting
    // the relation's mappings for each input (rewrite_t_to_expr). Every
    // mapping of one tensor denotes that tensor, so all of an input's
    // expressions are unioned into one class before the operator is applied
    // — the e-graph-native form of "return all rewritings".
    let per_input: Vec<&[RecExpr]> = node
        .inputs
        .iter()
        .map(|&t| relation.mappings(t).unwrap_or(&[]))
        .collect();
    if per_input.iter().any(|m| m.is_empty()) {
        return Err(fail(relation, None));
    }
    let mut encode_span = tracer.span("encode");
    let mut input_ids: Vec<Id> = Vec::with_capacity(per_input.len());
    for (&t, exprs) in node.inputs.iter().zip(&per_input) {
        // The *first* mapping's id stays the representative (it is
        // term-faithful, and the certificate records the first mappings as
        // the operator's inputs); later mappings are unioned into it under
        // a fact the trusted kernel can re-check against the accepted set.
        let mut rep: Option<Id> = None;
        for e in *exprs {
            let id = eg.add_expr(e);
            match rep {
                None => rep = Some(id),
                Some(first) => {
                    eg.union_with(
                        first,
                        id,
                        Justification::Given(format!(
                            "mappings of G_s tensor {}",
                            gs.tensor(t).name
                        )),
                    );
                }
            }
        }
        input_ids.push(rep.expect("non-empty mapping list"));
    }
    let base = encode_op(eg, &node.op, &input_ids);
    eg.rebuild();
    encode_span.attr("nodes", eg.total_nodes());
    drop(encode_span);

    // Steps 2–3: saturate with lemmas while growing the frontier of G_d
    // operators whose inputs relate to this operator (Listing 3), or with
    // everything at once when the optimization is disabled.
    let name_to_tensor: HashMap<&str, TensorId> = gd
        .tensors()
        .iter()
        .map(|t| (t.name.as_str(), t.id))
        .collect();
    let mut t_rel: HashSet<TensorId> = HashSet::new();
    for exprs in &per_input {
        for e in *exprs {
            for sym in e.leaf_symbols() {
                if let Some(&t) = name_to_tensor.get(sym.as_str()) {
                    t_rel.insert(t);
                }
            }
        }
    }
    let mut defs_added: HashSet<NodeId> = HashSet::new();
    if !frontier {
        // The e-graph either already holds all of G_d (monolithic mode) or
        // gets it here (fresh graph, frontier ablation). encode_node is
        // idempotent thanks to hash-consing, so re-encoding is harmless.
        for n in gd.nodes() {
            encode_node(eg, gd, n);
            defs_added.insert(n.id);
        }
    }

    // Frontier iteration (Listing 3): repeatedly pull in G_d operators all
    // of whose inputs are related to this operator, saturate, and extend the
    // related set with the newly computable outputs. Operators consuming
    // tensors *not* related to v (e.g. the E-branch of Figure 2, or the
    // next layer's weights) are never encoded — the size win the paper's
    // optimization is after.
    let mut first_round = true;
    let mut rounds = 0usize;
    let mut stop: Option<StopReason> = None;
    loop {
        let mut added_any = false;
        if frontier {
            for n in gd.nodes() {
                if defs_added.contains(&n.id) {
                    continue;
                }
                if n.inputs.iter().all(|t| t_rel.contains(t)) {
                    encode_node(eg, gd, n);
                    defs_added.insert(n.id);
                    t_rel.insert(n.output);
                    added_any = true;
                }
            }
        }
        if !added_any && !first_round {
            break;
        }
        first_round = false;
        eg.rebuild();

        rounds += 1;
        let mut sat_span = tracer.span("saturate");
        let run_start_us = tracer.now_us();
        let owned = std::mem::replace(eg, EGraph::with_analysis(TensorAnalysis::default()));
        let mut runner = Runner::new(owned)
            .with_iter_limit(opts.iter_limit)
            .with_node_limit(opts.node_limit)
            .with_time_limit(opts.time_limit)
            .with_backoff(backoff.cloned());
        let report = runner.run(rewrites);
        *eg = runner.egraph;
        stats.merge(&report.applications);
        summary.record(&report);
        // A limit on any round means this operator's search was cut short;
        // only an all-rounds-saturated operator failure is a proven bug.
        if report.stop_reason.is_limit() || stop.is_none() {
            stop = Some(report.stop_reason);
        }
        if tracer.is_enabled() {
            sat_span.attr("round", rounds);
            sat_span.attr("stop", report.stop_reason);
            sat_span.attr("iterations", report.iterations);
            sat_span.attr("nodes", report.egraph_nodes);
            sat_span.attr("classes", report.egraph_classes);
            for it in &report.saturation.iterations {
                tracer.event_at(
                    "iteration",
                    run_start_us + it.start_us,
                    Some(it.search_us + it.apply_us + it.rebuild_us),
                    &[
                        ("nodes", it.nodes.to_string()),
                        ("classes", it.classes.to_string()),
                        ("memo", it.memo.to_string()),
                        ("unions", it.unions.to_string()),
                        ("search_us", it.search_us.to_string()),
                        ("apply_us", it.apply_us.to_string()),
                        ("rebuild_us", it.rebuild_us.to_string()),
                    ],
                );
            }
        }
    }

    // Step 4: extract the clean expressions in the output's class,
    // preferring G_d output leaves on ties (Listing 1 line 9 only keeps
    // output-leaf mappings for G_s outputs).
    let gd_outputs: HashSet<&str> = gd
        .outputs()
        .iter()
        .map(|&t| gd.tensor(t).name.as_str())
        .collect();
    let mut extract_span = tracer.span("extract");
    let variants = extract_clean_variants(eg, base, &opts.clean, &gd_outputs, opts.max_mappings);
    extract_span.attr("variants", variants.len());
    if variants.is_empty() {
        extract_span.attr("outcome", "unmapped");
        return Err(fail(relation, stop));
    }
    if !opts.certify {
        return Ok(NodeSearch {
            mappings: variants.into_iter().map(|e| (e, None)).collect(),
            rounds,
            stop,
        });
    }
    // Proof extraction: re-adding a variant yields its term-faithful id, and
    // the explanation forest connects it to the encoded base term.
    Ok(NodeSearch {
        mappings: variants
            .into_iter()
            .map(|expr| {
                let vid = eg.add_expr(&expr);
                let proof = eg.explain_equivalence(base, vid);
                (expr, proof)
            })
            .collect(),
        rounds,
        stop,
    })
}

/// Extracts up to `max` distinct clean expressions from a class, simplest
/// first (the §4.3.2 "simplest representative" pruning, but keeping a few
/// alternates — the paper returns e.g. both `sum(C1, C2)` and
/// `concat(D1, D2)` for Figure 2's `C`).
fn extract_clean_variants(
    eg: &EGraph<TensorAnalysis>,
    class: Id,
    clean: &CleanOps,
    prefer: &HashSet<&str>,
    max: usize,
) -> Vec<RecExpr> {
    extract_clean_variants_with_cost(eg, class, clean, prefer, max, &|_| 0.0)
        .into_iter()
        .map(|(_, e)| e)
        .collect()
}

/// [`extract_clean_variants`] keeping each variant's extraction cost — the
/// saturation memo stores costs so a cache hit can re-sort the renamed
/// variants exactly as the sequential engine would have.
///
/// `leaf_bias` adds a per-leaf cost on top of [`clean_cost`]. The
/// sequential engine passes zero; the canonical memo engine passes a tiny
/// first-occurrence-index bias so extraction ties between equal-cost leaves
/// (e.g. a scale-half/scale-double chain collapsing several tensors into
/// one class) break toward the most *upstream* leaf by construction instead
/// of by tensor-name string order — which canonical renaming would
/// otherwise scramble, starving downstream frontiers of producer tensors.
pub(crate) fn extract_clean_variants_with_cost(
    eg: &EGraph<TensorAnalysis>,
    class: Id,
    clean: &CleanOps,
    prefer: &HashSet<&str>,
    max: usize,
    leaf_bias: &dyn Fn(&str) -> f64,
) -> Vec<(f64, RecExpr)> {
    let base_cost = clean_cost(clean, prefer);
    let cost = |node: &ENode, children: &[f64]| {
        let bias = match node {
            ENode::Op(sym, ch) if ch.is_empty() => leaf_bias(sym.as_str()),
            _ => 0.0,
        };
        base_cost(node, children) + bias
    };
    let extractor = Extractor::new(eg, &cost);
    let mut variants: Vec<(f64, RecExpr)> = Vec::new();
    for node in &eg[class].nodes {
        let candidate = match node {
            ENode::Op(sym, ch)
                if ch.is_empty()
                    && !sym
                        .as_str()
                        .starts_with(entangle_lemmas::SYNTHETIC_LEAF_PREFIX) =>
            {
                let mut e = RecExpr::new();
                e.add(node.clone());
                Some((1.0 + leaf_bias(sym.as_str()), e))
            }
            ENode::Op(sym, ch) if clean.is_clean(sym.as_str()) => {
                let mut children_exprs = Vec::with_capacity(ch.len());
                let mut total = 1.0;
                let mut ok = true;
                for &c in ch {
                    match extractor.find_best(c) {
                        Some((ccost, cexpr)) => {
                            total += ccost;
                            children_exprs.push(cexpr);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                ok.then(|| (total, compose(node, &children_exprs)))
            }
            _ => None,
        };
        if let Some((cost, expr)) = candidate {
            if !variants.iter().any(|(_, v)| v == &expr) {
                variants.push((cost, expr));
            }
        }
    }
    variants.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.to_string().cmp(&b.1.to_string()))
    });
    variants.truncate(max);
    variants
}

/// Builds a `RecExpr` applying `node` to already-extracted child
/// expressions.
fn compose(node: &ENode, children: &[RecExpr]) -> RecExpr {
    let mut out = RecExpr::new();
    let mut child_roots = Vec::with_capacity(children.len());
    for child in children {
        let offset = out.len();
        for n in child.nodes() {
            let mapped = n.map_children(|c| Id::from_index(c.index() + offset));
            out.add(mapped);
        }
        child_roots.push(Id::from_index(out.len() - 1));
    }
    let mut idx = 0;
    let root = node.map_children(|_| {
        let id = child_roots[idx];
        idx += 1;
        id
    });
    out.add(root);
    out
}
