//! Shard-hint benchmark: `check_refinement` with and without
//! `CheckOptions::shard_hints` across the model zoo (GPT / Llama-3 / Qwen2 /
//! MoE under TP and TP+SP).
//!
//! Writes `results/BENCH_shard.json` (stable field order, no serde) and
//! prints the comparison table. Expected shape: hints are never slower, and
//! at least one TP strategy is measurably faster because the propagation
//! pass proves most per-operator mappings outright and saturation is
//! skipped for them.

use std::time::{Duration, Instant};

use entangle::{check_refinement, CheckOptions, CheckOutcome};
use entangle_bench::{bench_config, hinted_opts, print_table, saturation_opts, secs};
use entangle_models::{gpt, llama3, moe, qwen2, Arch, ModelConfig, MoeConfig};
use entangle_parallel::{parallelize, parallelize_moe, Distributed, Strategy};

/// Best-of-N wall clock for one configuration, plus the last outcome.
fn time_check(
    gs: &entangle_ir::Graph,
    dist: &Distributed,
    opts: &CheckOptions,
    reps: usize,
) -> (Duration, CheckOutcome) {
    let ri = dist.relation(gs).expect("relation builds");
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = check_refinement(gs, &dist.graph, &ri, opts)
            .unwrap_or_else(|e| panic!("{} failed: {e}", dist.graph.name()));
        best = best.min(start.elapsed());
        last = Some(outcome);
    }
    (best, last.expect("reps >= 1"))
}

struct Case {
    name: String,
    gs: entangle_ir::Graph,
    dist: Distributed,
}

fn zoo(cfg: &ModelConfig) -> Vec<Case> {
    let mut cases = Vec::new();
    for (arch, label, build) in [
        (Arch::Gpt, "GPT", gpt as fn(&ModelConfig) -> _),
        (Arch::Llama, "Llama-3", llama3 as fn(&ModelConfig) -> _),
        (Arch::Qwen2, "Qwen2", qwen2 as fn(&ModelConfig) -> _),
    ] {
        for (sname, strategy) in [("TP2", Strategy::tp(2)), ("TP-SP2", Strategy::tp_sp(2))] {
            cases.push(Case {
                name: format!("{label}/{sname}"),
                gs: build(cfg),
                dist: parallelize(cfg, arch, &strategy),
            });
        }
    }
    let moe_cfg = MoeConfig {
        base: cfg.clone(),
        experts: 8,
    };
    cases.push(Case {
        name: "MoE/TP-SP2".to_owned(),
        gs: moe(&moe_cfg),
        dist: parallelize_moe(&moe_cfg, &Strategy::tp_sp(2)),
    });
    cases
}

fn main() {
    let reps = 3;
    let cfg = bench_config();
    println!("Shard-hint benchmark ({reps} reps, best-of):\n");

    let mut rows = Vec::new();
    let mut json_cases = Vec::new();
    for case in zoo(&cfg) {
        let (t_hints, with_hints) = time_check(&case.gs, &case.dist, &hinted_opts(), reps);
        let (t_plain, _) = time_check(&case.gs, &case.dist, &saturation_opts(), reps);
        let hinted_ops = with_hints.op_reports.iter().filter(|r| r.hinted).count();
        let total_ops = with_hints.op_reports.len();
        let speedup = t_plain.as_secs_f64() / t_hints.as_secs_f64().max(1e-9);
        rows.push(vec![
            case.name.clone(),
            secs(t_hints),
            secs(t_plain),
            format!("{speedup:.2}x"),
            format!("{hinted_ops}/{total_ops}"),
        ]);
        json_cases.push(format!(
            "{{\"name\":{},\"hints_ms\":{:.3},\"saturation_ms\":{:.3},\
             \"speedup\":{:.3},\"hinted_ops\":{},\"total_ops\":{}}}",
            entangle_lint::json_str(&case.name),
            t_hints.as_secs_f64() * 1e3,
            t_plain.as_secs_f64() * 1e3,
            speedup,
            hinted_ops,
            total_ops,
        ));
    }

    print_table(
        &["workload", "hints", "saturation", "speedup", "hinted ops"],
        &rows,
    );

    let json = format!(
        "{{\"bench\":\"shard_hints\",\"reps\":{reps},\"cases\":[{}]}}\n",
        json_cases.join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("\nwrote results/BENCH_shard.json");
}
