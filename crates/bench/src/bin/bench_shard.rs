//! Shard-hint benchmark: `check_refinement` with and without
//! `CheckOptions::shard_hints` across the model zoo (GPT / Llama-3 / Qwen2 /
//! MoE under TP and TP+SP).
//!
//! Writes `results/BENCH_shard.json` (stable field order, no serde) and
//! prints the comparison table. Expected shape: hints are never slower, and
//! at least one TP strategy is measurably faster because the propagation
//! pass proves most per-operator mappings outright and saturation is
//! skipped for them.

use std::time::{Duration, Instant};

use entangle::{check_refinement, CheckOptions, CheckOutcome};
use entangle_bench::{hinted_opts, print_table, saturation_opts, secs, zoo};
use entangle_parallel::Distributed;

/// Best-of-N wall clock for one configuration, plus the last outcome.
fn time_check(
    gs: &entangle_ir::Graph,
    dist: &Distributed,
    opts: &CheckOptions,
    reps: usize,
) -> (Duration, CheckOutcome) {
    let ri = dist.relation(gs).expect("relation builds");
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = check_refinement(gs, &dist.graph, &ri, opts)
            .unwrap_or_else(|e| panic!("{} failed: {e}", dist.graph.name()));
        best = best.min(start.elapsed());
        last = Some(outcome);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let reps = 3;
    println!("Shard-hint benchmark ({reps} reps, best-of):\n");

    let mut rows = Vec::new();
    let mut json_cases = Vec::new();
    for case in zoo() {
        let (t_hints, with_hints) = time_check(&case.gs, &case.dist, &hinted_opts(), reps);
        let (t_plain, _) = time_check(&case.gs, &case.dist, &saturation_opts(), reps);
        let hinted_ops = with_hints.op_reports.iter().filter(|r| r.hinted).count();
        let total_ops = with_hints.op_reports.len();
        let speedup = t_plain.as_secs_f64() / t_hints.as_secs_f64().max(1e-9);
        rows.push(vec![
            case.display.clone(),
            secs(t_hints),
            secs(t_plain),
            format!("{speedup:.2}x"),
            format!("{hinted_ops}/{total_ops}"),
        ]);
        json_cases.push(format!(
            "{{\"name\":{},\"hints_ms\":{:.3},\"saturation_ms\":{:.3},\
             \"speedup\":{:.3},\"hinted_ops\":{},\"total_ops\":{}}}",
            entangle_lint::json_str(&case.display),
            t_hints.as_secs_f64() * 1e3,
            t_plain.as_secs_f64() * 1e3,
            speedup,
            hinted_ops,
            total_ops,
        ));
    }

    print_table(
        &["workload", "hints", "saturation", "speedup", "hinted ops"],
        &rows,
    );

    let json = format!(
        "{{\"bench\":\"shard_hints\",\"reps\":{reps},\"cases\":[{}]}}\n",
        json_cases.join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("\nwrote results/BENCH_shard.json");
}
