//! Exports the model zoo (sequential graph, distributed graph, input maps)
//! to JSON interchange files, so the CLI-level CI sweep can exercise
//! `entangle shard` / `entangle lint` on real strategies without rebuilding
//! the models in-process.
//!
//! Usage: `export_zoo [dir]` (default `examples/graphs`). Writes
//! `<name>.gs.json`, `<name>.gd.json` and `<name>.maps` per workload.
//! `export_zoo <dir> --deep-llama N` instead exports the single deep
//! Llama-3 tp8 workload at `N` layers as `llama3_l<N>.*` (the CI
//! deep-model certify round-trip).

use std::fs;
use std::path::Path;

use entangle_bench::{llama_workload, zoo, Workload};

fn export(dir: &str, name: &str, gs: &entangle_ir::Graph, dist: &entangle_parallel::Distributed) {
    let base = Path::new(dir).join(name);
    fs::write(
        base.with_extension("gs.json"),
        gs.to_json().expect("serialize gs"),
    )
    .expect("write gs");
    fs::write(
        base.with_extension("gd.json"),
        dist.graph.to_json().expect("serialize gd"),
    )
    .expect("write gd");
    let maps: String = dist
        .input_maps
        .iter()
        .map(|(n, e)| format!("{n} = {e}\n"))
        .collect();
    fs::write(base.with_extension("maps"), maps).expect("write maps");
    println!("{dir}/{name}.{{gs.json,gd.json,maps}}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dir = args.get(1).map(String::as_str).unwrap_or("examples/graphs");
    fs::create_dir_all(dir).expect("create output dir");

    if args.get(2).map(String::as_str) == Some("--deep-llama") {
        let layers: usize = args
            .get(3)
            .expect("--deep-llama needs a layer count")
            .parse()
            .expect("--deep-llama: not a number");
        let w: Workload = llama_workload(8, layers);
        export(dir, &format!("llama3_l{layers}"), &w.gs, &w.dist);
        return;
    }

    let cases = zoo();
    for case in &cases {
        export(dir, &case.name, &case.gs, &case.dist);
    }
    println!("exported {} workloads", cases.len());
}
