//! Exports the model zoo (sequential graph, distributed graph, input maps)
//! to JSON interchange files, so the CLI-level CI sweep can exercise
//! `entangle shard` / `entangle lint` on real strategies without rebuilding
//! the models in-process.
//!
//! Usage: `export_zoo [dir]` (default `examples/graphs`). Writes
//! `<name>.gs.json`, `<name>.gd.json` and `<name>.maps` per workload.

use std::fs;
use std::path::Path;

use entangle_bench::bench_config;
use entangle_models::{gpt, llama3, moe, qwen2, Arch, ModelConfig, MoeConfig};
use entangle_parallel::{parallelize, parallelize_moe, Strategy};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dir = args.get(1).map(String::as_str).unwrap_or("examples/graphs");
    fs::create_dir_all(dir).expect("create output dir");

    let cfg = bench_config();
    let mut cases: Vec<(String, entangle_ir::Graph, entangle_parallel::Distributed)> = Vec::new();
    for (arch, label, build) in [
        (Arch::Gpt, "gpt", gpt as fn(&ModelConfig) -> _),
        (Arch::Llama, "llama3", llama3 as fn(&ModelConfig) -> _),
        (Arch::Qwen2, "qwen2", qwen2 as fn(&ModelConfig) -> _),
    ] {
        for (sname, strategy) in [("tp2", Strategy::tp(2)), ("tpsp2", Strategy::tp_sp(2))] {
            cases.push((
                format!("{label}_{sname}"),
                build(&cfg),
                parallelize(&cfg, arch, &strategy),
            ));
        }
    }
    let moe_cfg = MoeConfig {
        base: cfg.clone(),
        experts: 8,
    };
    cases.push((
        "moe_tpsp2".to_owned(),
        moe(&moe_cfg),
        parallelize_moe(&moe_cfg, &Strategy::tp_sp(2)),
    ));

    for (name, gs, dist) in &cases {
        let base = Path::new(dir).join(name);
        fs::write(
            base.with_extension("gs.json"),
            gs.to_json().expect("serialize gs"),
        )
        .expect("write gs");
        fs::write(
            base.with_extension("gd.json"),
            dist.graph.to_json().expect("serialize gd"),
        )
        .expect("write gd");
        let maps: String = dist
            .input_maps
            .iter()
            .map(|(n, e)| format!("{n} = {e}\n"))
            .collect();
        fs::write(base.with_extension("maps"), maps).expect("write maps");
        println!("{dir}/{name}.{{gs.json,gd.json,maps}}");
    }
    println!("exported {} workloads", cases.len());
}
