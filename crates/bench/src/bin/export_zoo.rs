//! Exports the model zoo (sequential graph, distributed graph, input maps)
//! to JSON interchange files, so the CLI-level CI sweep can exercise
//! `entangle shard` / `entangle lint` on real strategies without rebuilding
//! the models in-process.
//!
//! Usage: `export_zoo [dir]` (default `examples/graphs`). Writes
//! `<name>.gs.json`, `<name>.gd.json` and `<name>.maps` per workload.

use std::fs;
use std::path::Path;

use entangle_bench::zoo;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dir = args.get(1).map(String::as_str).unwrap_or("examples/graphs");
    fs::create_dir_all(dir).expect("create output dir");

    let cases = zoo();
    for case in &cases {
        let base = Path::new(dir).join(&case.name);
        fs::write(
            base.with_extension("gs.json"),
            case.gs.to_json().expect("serialize gs"),
        )
        .expect("write gs");
        fs::write(
            base.with_extension("gd.json"),
            case.dist.graph.to_json().expect("serialize gd"),
        )
        .expect("write gd");
        let maps: String = case
            .dist
            .input_maps
            .iter()
            .map(|(n, e)| format!("{n} = {e}\n"))
            .collect();
        fs::write(base.with_extension("maps"), maps).expect("write maps");
        println!("{dir}/{}.{{gs.json,gd.json,maps}}", case.name);
    }
    println!("exported {} workloads", cases.len());
}
