//! Depth-scaling suite: pins the template-lifted memo's sublinear curve.
//!
//! Sweeps layer counts over the deep-model builders (Llama-3 and Qwen2 at
//! tp8, the deep MoE stack at tp+sp2) with the structural template analysis
//! on and off, certification on throughout (the instantiated proofs must
//! survive the trusted kernel at every depth). Writes
//! `results/BENCH_scale.json` (stable field order, no serde) and prints the
//! comparison table.
//!
//! The headline gate: with templates on, the 32-layer Llama-3 check must
//! cost less than 8x the 4-layer check — layer k's per-operator problems
//! hit the class entries published while checking layer 0, so wall time
//! grows with the mapping count the kernel re-validates, not with the
//! saturation the deeper graph would otherwise re-run.
//!
//! Usage: `bench_scale [--layers 1,4,...]` (default sweep 1,4,16,32; CI
//! smoke runs `--layers 1,4`).

use std::fmt::Write as _;
use std::time::Duration;

use entangle::{CheckOptions, CheckOutcome};
use entangle_bench::{llama_workload, moe_deep_workload, print_table, qwen2_workload, Workload};

/// The wall-time ratio ceiling for the deepest vs. the 4-layer Llama-3
/// check with templates on.
const GATE_RATIO: f64 = 8.0;

/// Best-of-N wall clock, plus the last outcome.
fn time_check(w: &Workload, opts: &CheckOptions, reps: usize) -> (Duration, CheckOutcome) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let (outcome, t) = w.check(opts);
        best = best.min(t);
        last = Some(outcome);
    }
    (best, last.expect("reps >= 1"))
}

fn scale_opts(templates: bool) -> CheckOptions {
    CheckOptions {
        templates,
        certify: true,
        ..CheckOptions::default()
    }
}

struct Point {
    model: &'static str,
    layers: usize,
    ops: usize,
    on_ms: f64,
    off_ms: f64,
    template_hits: u64,
    instantiated: u64,
    fallbacks: u64,
    mappings: usize,
}

fn main() {
    let mut layer_counts: Vec<usize> = vec![1, 4, 16, 32];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--layers" => {
                let spec = args.next().expect("--layers needs a comma-separated list");
                layer_counts = spec
                    .split(',')
                    .map(|s| s.trim().parse().expect("--layers: not a number"))
                    .collect();
            }
            other => panic!("unknown flag {other}"),
        }
    }
    let reps = 3;
    println!("Depth-scaling suite (layers {layer_counts:?}, {reps} reps best-of, certify on):\n");

    type Builder = fn(usize) -> Workload;
    let builders: [(&'static str, Builder); 3] = [
        ("Llama-3/TP8", |l| llama_workload(8, l)),
        ("Qwen2/TP8", |l| qwen2_workload(8, l)),
        ("MoE/TP-SP2", |l| moe_deep_workload(2, l)),
    ];

    let mut points: Vec<Point> = Vec::new();
    for (model, build) in builders {
        for &layers in &layer_counts {
            let w = build(layers);
            let (t_on, out_on) = time_check(&w, &scale_opts(true), reps);
            let (t_off, out_off) = time_check(&w, &scale_opts(false), reps);
            let rel_on = out_on.full_relation.display(&w.gs).to_string();
            let rel_off = out_off.full_relation.display(&w.gs).to_string();
            assert_eq!(
                rel_on, rel_off,
                "{model} l{layers}: verdict differs with templates on vs off"
            );
            points.push(Point {
                model,
                layers,
                ops: w.total_ops(),
                on_ms: t_on.as_secs_f64() * 1e3,
                off_ms: t_off.as_secs_f64() * 1e3,
                template_hits: out_on.par.template_hits,
                instantiated: out_on.par.template_instantiated,
                fallbacks: out_on.par.template_fallbacks,
                mappings: out_on
                    .certificate
                    .as_ref()
                    .map(|c| c.mappings.len())
                    .unwrap_or(0),
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.to_owned(),
                p.layers.to_string(),
                p.ops.to_string(),
                format!("{:.1}", p.on_ms),
                format!("{:.1}", p.off_ms),
                p.template_hits.to_string(),
                p.instantiated.to_string(),
                p.fallbacks.to_string(),
                p.mappings.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "model",
            "layers",
            "ops",
            "tmpl ms",
            "no-tmpl ms",
            "hits",
            "inst",
            "fb",
            "mappings",
        ],
        &rows,
    );

    // The sublinear-curve gate, on the Llama-3 sweep when it spans 4 and
    // the deepest layer count.
    let llama_at = |l: usize| {
        points
            .iter()
            .find(|p| p.model == "Llama-3/TP8" && p.layers == l)
    };
    let deepest = layer_counts.iter().copied().max().unwrap_or(0);
    let mut gate = None;
    if deepest > 4 {
        if let (Some(p4), Some(pd)) = (llama_at(4), llama_at(deepest)) {
            let ratio = pd.on_ms / p4.on_ms;
            let pass = ratio < GATE_RATIO;
            println!(
                "\ngate: {} l{deepest} / l4 wall-time ratio {ratio:.2} (< {GATE_RATIO:.0} with \
                 templates on) — {}",
                p4.model,
                if pass { "PASS" } else { "FAIL" }
            );
            gate = Some((deepest, ratio, pass));
            assert!(
                pass,
                "scale gate failed: l{deepest}/l4 = {ratio:.2} >= {GATE_RATIO:.0}"
            );
        }
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"scale\",\"reps\":{reps},\"certify\":true,\"layers\":["
    );
    for (i, l) in layer_counts.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "{l}");
    }
    json.push_str("],\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"model\":\"{}\",\"layers\":{},\"ops\":{},\"templates_ms\":{:.3},\
             \"no_templates_ms\":{:.3},\"template_hits\":{},\"instantiated\":{},\
             \"fallbacks\":{},\"mappings\":{}}}",
            p.model,
            p.layers,
            p.ops,
            p.on_ms,
            p.off_ms,
            p.template_hits,
            p.instantiated,
            p.fallbacks,
            p.mappings
        );
    }
    json.push(']');
    match gate {
        Some((deepest, ratio, pass)) => {
            let _ = write!(
                json,
                ",\"gate\":{{\"model\":\"Llama-3/TP8\",\"deepest\":{deepest},\
                 \"ratio_vs_l4\":{ratio:.3},\"ceiling\":{GATE_RATIO:.1},\"pass\":{pass}}}}}"
            );
        }
        None => json.push('}'),
    }
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_scale.json", &json).expect("write results/BENCH_scale.json");
    println!("\nwrote results/BENCH_scale.json");
}
