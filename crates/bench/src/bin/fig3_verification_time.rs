//! Figure 3: end-to-end verification time across models.
//!
//! The paper's setup (§6.3): parallelism size 2, a single model layer,
//! forward passes (plus the ByteDance backward graph, which this
//! reproduction substitutes with a deeper forward graph — see
//! EXPERIMENTS.md). Expected shape: all models verify in seconds, times
//! positively correlated with the total operator count; the regression
//! model takes well under a second.

use entangle_bench::{figure3_suite, print_table, secs};

fn main() {
    println!("Figure 3: end-to-end verification time (parallelism 2, 1 layer)\n");
    let opts = entangle_bench::saturation_opts();
    let mut rows = Vec::new();
    for w in figure3_suite() {
        let (outcome, elapsed) = w.check(&opts);
        rows.push(vec![
            w.name.clone(),
            w.strategies.to_owned(),
            format!("{}", w.total_ops()),
            secs(elapsed),
            format!("{}", outcome.lemma_stats.total()),
        ]);
    }
    print_table(
        &[
            "model",
            "strategies",
            "#ops(Gs+Gd)",
            "time(s)",
            "lemma apps",
        ],
        &rows,
    );
    println!("\n'Bwd*' substitutes the backward capture with a 2-layer forward graph.");
    println!("Expected shape: time grows with #ops; every model finishes in seconds.");
}
