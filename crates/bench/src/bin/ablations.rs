//! Ablations of the DESIGN.md design decisions:
//!
//! 1. per-operator iterative checking (Listing 1) vs one monolithic e-graph;
//! 2. the Listing 3 frontier vs encoding all of `G_d` for every operator;
//! 3. §4.3.2 relation pruning (mappings kept per tensor).
//!
//! Expected shape: the iterative + frontier configuration is fastest and its
//! per-operator e-graphs stay small; the monolithic graph grows with every
//! processed operator.

use entangle::CheckOptions;
use entangle_bench::{gpt_workload, print_table, secs};

fn run(name: &str, opts: &CheckOptions, rows: &mut Vec<Vec<String>>) {
    let w = gpt_workload(2, 2);
    let (outcome, elapsed) = w.check(opts);
    let max_nodes = outcome
        .op_reports
        .iter()
        .map(|r| r.egraph_nodes)
        .max()
        .unwrap_or(0);
    let mean_nodes = outcome
        .op_reports
        .iter()
        .map(|r| r.egraph_nodes)
        .sum::<usize>()
        / outcome.op_reports.len().max(1);
    rows.push(vec![
        name.to_owned(),
        secs(elapsed),
        format!("{mean_nodes}"),
        format!("{max_nodes}"),
    ]);
}

fn main() {
    println!("Ablations on GPT (TP+SP+VP, parallelism 2, 2 layers)\n");
    let mut rows = Vec::new();

    run(
        "iterative + frontier (paper)",
        &entangle_bench::saturation_opts(),
        &mut rows,
    );
    run(
        "  + shard hints (this work)",
        &entangle_bench::hinted_opts(),
        &mut rows,
    );
    run(
        "iterative, no frontier",
        &CheckOptions {
            frontier: false,
            ..entangle_bench::saturation_opts()
        },
        &mut rows,
    );
    run(
        "monolithic e-graph",
        &CheckOptions {
            frontier: false,
            fresh_egraph_per_op: false,
            ..entangle_bench::saturation_opts()
        },
        &mut rows,
    );
    run(
        "pruning off (keep 16 mappings)",
        &CheckOptions {
            max_mappings: 16,
            ..entangle_bench::saturation_opts()
        },
        &mut rows,
    );
    run(
        "aggressive pruning (keep 1)",
        &CheckOptions {
            max_mappings: 1,
            ..entangle_bench::hinted_opts()
        },
        &mut rows,
    );

    // Constrained vs. free associativity (§4.3.2 constrained lemmas): swap
    // the corpus's constrained add/concat association for unconstrained
    // universal rules and watch the e-graph blow up on an 8-way shard sum.
    let mut free_assoc = entangle_lemmas::rewrites_of(&entangle_lemmas::registry());
    for rw in &mut free_assoc {
        if rw.name() == "add-assoc" {
            *rw = entangle::__bench_parse_rewrite(
                "add-assoc",
                "(add (add ?a ?b) ?c)",
                "(add ?a (add ?b ?c))",
            );
        }
    }
    let w8 = gpt_workload(8, 1);
    for (name, rewrites) in [
        ("constrained assoc (paper-style), par=8", None),
        ("free assoc, par=8", Some(free_assoc)),
    ] {
        let opts = CheckOptions {
            rewrites,
            ..entangle_bench::hinted_opts()
        };
        let ri = w8.dist.relation(&w8.gs).expect("relation builds");
        let start = std::time::Instant::now();
        let verdict = match entangle::check_refinement(&w8.gs, &w8.dist.graph, &ri, &opts) {
            Ok(outcome) => {
                let max_nodes = outcome
                    .op_reports
                    .iter()
                    .map(|r| r.egraph_nodes)
                    .max()
                    .unwrap_or(0);
                format!("verified (max {max_nodes} e-nodes/op)")
            }
            // Free association saturates ~2^n subset classes on the 8-way
            // shard chains, exhausting the node budget before the needed
            // derivation appears: the check *fails* (a completeness loss),
            // which is precisely why the corpus constrains associativity.
            Err(_) => "FAILS (saturation budget exhausted)".to_owned(),
        };
        rows.push(vec![
            name.to_owned(),
            secs(start.elapsed()),
            "-".into(),
            verdict,
        ]);
    }

    print_table(
        &[
            "configuration",
            "time(s)",
            "mean e-nodes/op",
            "max e-nodes/op / verdict",
        ],
        &rows,
    );
    println!("\nExpected shape: frontier < no-frontier < monolithic in e-graph size;");
    println!("keeping more mappings costs time without changing the verdict;");
    println!("free association is orders of magnitude more expensive at width 8.");
}
