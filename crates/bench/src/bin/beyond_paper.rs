//! Beyond the paper's evaluation: the strategies §6.1 could not capture.
//!
//! - Data parallelism over a *generated* (autodiff) training step,
//! - hand-written DP with gradient averaging (plus its sum-instead-of-
//!   average bug as a negative case),
//! - pipeline parallelism with microbatching.

use entangle::{check_refinement, CheckOptions};
use entangle_bench::{print_table, secs};
use entangle_models::{gpt, llama3, regression_sum_loss, Arch, ModelConfig, RegressionConfig};
use entangle_parallel::{data_parallel, data_parallel_training, pipeline};

fn main() {
    println!("Beyond the paper: DP and PP verification (§6.1's uncaptured strategies)\n");
    let opts = CheckOptions::default();
    let mut rows = Vec::new();

    // Generated DP training (autodiff both sides).
    let cfg = RegressionConfig {
        batch: 8,
        features: 4,
    };
    let fwd = regression_sum_loss(&cfg);
    let loss = fwd.outputs()[0];
    for replicas in [2usize, 4] {
        let dp = data_parallel_training(&fwd, loss, &["x", "y"], replicas, false)
            .expect("generated DP builds");
        let gs = &dp.sequential.graph;
        let ri = dp.distributed.relation(gs).expect("valid relation");
        let start = std::time::Instant::now();
        check_refinement(gs, &dp.distributed.graph, &ri, &opts).expect("verifies");
        rows.push(vec![
            format!("DP training (autodiff, r={replicas})"),
            format!("{}", gs.num_nodes() + dp.distributed.graph.num_nodes()),
            secs(start.elapsed()),
            "verified".into(),
        ]);
    }

    // Hand-written DP: correct (average) and buggy (sum).
    for (avg, label) in [(true, "verified"), (false, "BUG DETECTED")] {
        let dist = data_parallel(&cfg, 2, avg);
        let gs = entangle_models::regression_training(&cfg);
        let ri = dist.relation(&gs).expect("valid relation");
        let start = std::time::Instant::now();
        let result = check_refinement(&gs, &dist.graph, &ri, &opts);
        assert_eq!(result.is_ok(), avg, "sum-instead-of-average must fail");
        rows.push(vec![
            format!(
                "DP explicit ({})",
                if avg { "averaged" } else { "unscaled sum" }
            ),
            format!("{}", gs.num_nodes() + dist.graph.num_nodes()),
            secs(start.elapsed()),
            label.into(),
        ]);
    }

    // Pipeline parallelism with microbatching.
    let mcfg = ModelConfig::tiny();
    for (arch, gs) in [(Arch::Gpt, gpt(&mcfg)), (Arch::Llama, llama3(&mcfg))] {
        let dist = pipeline(&mcfg, arch, 2);
        let ri = dist.relation(&gs).expect("valid relation");
        let start = std::time::Instant::now();
        check_refinement(&gs, &dist.graph, &ri, &opts).expect("verifies");
        rows.push(vec![
            format!("PP microbatched ({arch:?})"),
            format!("{}", gs.num_nodes() + dist.graph.num_nodes()),
            secs(start.elapsed()),
            "verified".into(),
        ]);
    }

    print_table(&["strategy", "#ops(Gs+Gd)", "time(s)", "verdict"], &rows);
    println!("\nThe paper skipped DP and PP because TorchDynamo could not capture");
    println!("their graphs (§6.1); generated graphs have no such limitation.");
}
