//! Figure 5: the effort of supporting customized operators.
//!
//! 5a: number of operators per model, number of lemmas added for that model
//! beyond the base ATen corpus, and the average operator-count complexity of
//! those lemmas. 5b: the CDF of lines-of-code per lemma (the paper finds
//! nearly all lemmas under 40 LOC).

use entangle_bench::{
    gpt_workload, llama_workload, moe_workload, print_table, qwen2_workload, regression_workload,
};
use entangle_lemmas::registry;

fn main() {
    let lemmas = registry();
    println!(
        "Figure 5: lemma effort ({} lemmas total in the corpus)\n",
        lemmas.len()
    );

    // 5a: per-model operator counts and added-lemma stats.
    println!("(a) operators and added lemmas per model");
    let models: &[(&str, &str, usize)] = &[
        ("GPT", "gpt", gpt_workload(2, 1).total_ops()),
        ("Qwen2", "qwen2", qwen2_workload(2, 1).total_ops()),
        ("Llama-3", "llama3", llama_workload(2, 1).total_ops()),
        (
            "ByteDance",
            "bytedance-moe",
            moe_workload(2, false).total_ops(),
        ),
        (
            "Regression",
            "regression",
            regression_workload(2).total_ops(),
        ),
    ];
    let mut rows = Vec::new();
    for (display, tag, ops) in models {
        let added: Vec<_> = lemmas.iter().filter(|l| l.models.contains(tag)).collect();
        let avg_complexity = if added.is_empty() {
            0.0
        } else {
            added.iter().map(|l| l.complexity as f64).sum::<f64>() / added.len() as f64
        };
        rows.push(vec![
            display.to_string(),
            format!("{ops}"),
            format!("{}", added.len()),
            format!("{avg_complexity:.1}"),
        ]);
    }
    print_table(
        &["model", "#operators", "#lemmas added", "avg ops/lemma"],
        &rows,
    );

    // 5b: CDF of LOC per lemma.
    println!("\n(b) CDF of lines of code per lemma");
    let mut locs: Vec<usize> = lemmas.iter().map(|l| l.loc).collect();
    locs.sort_unstable();
    let n = locs.len() as f64;
    let mut rows = Vec::new();
    for threshold in [2usize, 5, 10, 15, 20, 25, 30, 40] {
        let frac = locs.iter().filter(|&&l| l <= threshold).count() as f64 / n;
        rows.push(vec![
            format!("<= {threshold} LOC"),
            format!("{:.0}%", frac * 100.0),
        ]);
    }
    print_table(&["LOC", "fraction of lemmas"], &rows);
    println!(
        "\nmax LOC: {} (every lemma under 40 LOC, matching the paper's finding)",
        locs.last().unwrap()
    );
}
