//! Instrumentation-overhead benchmark: the full certified pipeline across
//! the 7-workload zoo, once with a `NullSink` tracer (the default) and once
//! with an in-memory `CollectSink`, plus the per-stage wall-clock breakdown
//! from the collected trace.
//!
//! Writes `results/BENCH_trace.json` (stable field order, no serde) and
//! prints the comparison table. The run *asserts* the observability layer
//! is cheap: per workload, the minimum paired null-vs-collected delta may
//! cost at most 5% (with a 1ms absolute floor so timer noise on fast runs
//! cannot fail the gate).

use std::time::{Duration, Instant};

use entangle::{check_refinement, CheckOptions, Relation};
use entangle_bench::{print_table, secs, zoo};
use entangle_ir::Graph;
use entangle_trace::{TraceReport, Tracer};

/// Paired wall-clock measurement under both tracer configurations: each rep
/// runs null-sink then collected back to back, so the two timings of a pair
/// share thermal, scheduler and allocator state. Returns the best null
/// time, the best collected time, and the *minimum paired delta* — the
/// robust overhead estimate under noisy wall clocks (any rep where both
/// runs execute cleanly bounds the true instrumentation cost from above).
fn time_both(
    gs: &Graph,
    gd: &Graph,
    ri: &Relation,
    traced: &Tracer,
    reps: usize,
) -> (Duration, Duration, f64) {
    let opts_for = |tracer: &Tracer| CheckOptions {
        certify: true,
        trace: tracer.clone(),
        ..CheckOptions::default()
    };
    let null_opts = opts_for(&Tracer::null());
    let traced_opts = opts_for(traced);
    let mut best_null = Duration::MAX;
    let mut best_traced = Duration::MAX;
    let mut min_delta = f64::MAX;
    for _ in 0..reps {
        let mut pair = [Duration::ZERO; 2];
        for (opts, slot) in [(&null_opts, 0), (&traced_opts, 1)] {
            let start = Instant::now();
            check_refinement(gs, gd, ri, opts)
                .unwrap_or_else(|e| panic!("{} failed: {e}", gd.name()));
            pair[slot] = start.elapsed();
        }
        best_null = best_null.min(pair[0]);
        best_traced = best_traced.min(pair[1]);
        min_delta = min_delta.min(pair[1].as_secs_f64() - pair[0].as_secs_f64());
    }
    (best_null, best_traced, min_delta)
}

/// Stage names summed out of the collected trace, in report order.
const STAGES: [(&str, &str); 8] = [
    ("lint", "stage:lint"),
    ("shard", "stage:shard"),
    ("map", "stage:map"),
    ("encode", "encode"),
    ("saturate", "saturate"),
    ("extract", "extract"),
    ("outputs", "stage:outputs"),
    ("certify", "stage:certify"),
];

fn main() {
    let reps = 5;
    println!("Trace-overhead benchmark ({reps} reps, best-of):\n");

    let mut rows = Vec::new();
    let mut json_cases = Vec::new();
    let mut violations = Vec::new();
    for case in zoo() {
        let ri = case.dist.relation(&case.gs).expect("relation builds");

        // One fresh collector per rep would conflate allocation with
        // steady-state cost; like a long-lived streaming sink, reuse one.
        let (tracer, sink) = Tracer::collect();
        let (t_null, t_traced, delta) = time_both(&case.gs, &case.dist.graph, &ri, &tracer, reps);

        let records = sink.records();
        let report = TraceReport::from_records(&records).expect("collected trace balances");
        // `reps` identical runs share the sink; scale per-stage sums down.
        let stage_us: Vec<(&str, u64)> = STAGES
            .iter()
            .map(|(label, span)| (*label, report.total_us(span) / reps as u64))
            .collect();

        let overhead = delta.max(0.0) / t_null.as_secs_f64().max(1e-9);
        let budget = (t_null.as_secs_f64() * 0.05).max(1e-3);
        let ok = delta <= budget;
        if !ok {
            violations.push(format!(
                "{}: null {} vs traced {} ({:+.1}%)",
                case.display,
                secs(t_null),
                secs(t_traced),
                overhead * 100.0
            ));
        }

        rows.push(vec![
            case.display.clone(),
            secs(t_null),
            secs(t_traced),
            format!("{:.1}%", overhead * 100.0),
            format!(
                "{}/{}",
                report.spans.len() / reps,
                report.events.len() / reps
            ),
            if ok { "ok".into() } else { "OVER".into() },
        ]);
        let stages_json: Vec<String> = stage_us
            .iter()
            .map(|(label, us)| {
                format!("{}:{:.3}", entangle_lint::json_str(label), *us as f64 / 1e3)
            })
            .collect();
        json_cases.push(format!(
            "{{\"name\":{},\"null_ms\":{:.3},\"traced_ms\":{:.3},\"overhead_pct\":{:.2},\
             \"spans\":{},\"events\":{},\"stages_ms\":{{{}}}}}",
            entangle_lint::json_str(&case.display),
            t_null.as_secs_f64() * 1e3,
            t_traced.as_secs_f64() * 1e3,
            overhead * 100.0,
            report.spans.len() / reps,
            report.events.len() / reps,
            stages_json.join(",")
        ));
    }

    print_table(
        &[
            "workload",
            "null sink",
            "collected",
            "overhead",
            "spans/events",
            "gate",
        ],
        &rows,
    );

    let json = format!(
        "{{\"bench\":\"trace_overhead\",\"reps\":{reps},\"budget\":\"max(5%, 1ms)\",\
         \"cases\":[{}]}}\n",
        json_cases.join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("\nwrote results/BENCH_trace.json");

    assert!(
        violations.is_empty(),
        "tracing overhead exceeded max(5%, 1ms):\n  {}",
        violations.join("\n  ")
    );
}
