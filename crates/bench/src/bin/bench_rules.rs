//! Rule-class backoff benchmark: `check_refinement` across the model zoo
//! with the static backoff scheduler on (the default) against the
//! unthrottled engine (`rule_backoff = false`).
//!
//! Writes `results/BENCH_rules.json` (stable field order, no serde) and
//! prints the comparison table. Expected shape: the shallow workloads are
//! within noise of each other (the schedule is derived once per process
//! and their saturation never trips a budget), and MoE/TP-SP2 — whose
//! `scalar_mul` chains make the duplicating drivers re-search hundreds of
//! thousands of substitutions — wins outright.

use std::time::{Duration, Instant};

use entangle::{check_refinement, CheckOptions};
use entangle_bench::{print_table, secs, zoo};
use entangle_parallel::Distributed;

/// Best-of-N wall clock for one configuration.
fn time_check(
    gs: &entangle_ir::Graph,
    dist: &Distributed,
    opts: &CheckOptions,
    reps: usize,
) -> Duration {
    let ri = dist.relation(gs).expect("relation builds");
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        check_refinement(gs, &dist.graph, &ri, opts)
            .unwrap_or_else(|e| panic!("{} failed: {e}", dist.graph.name()));
        best = best.min(start.elapsed());
    }
    best
}

fn opts(rule_backoff: bool) -> CheckOptions {
    CheckOptions {
        rule_backoff,
        jobs: 1,
        ..CheckOptions::default()
    }
}

fn main() {
    let reps = 3;

    // The static analysis the schedule comes from, summarized up front.
    let rewrites = entangle_lemmas::rewrites_of(&entangle_lemmas::registry());
    let analysis = entangle_rules::analyze(&rewrites);
    println!(
        "corpus: {} rules, {} generative cycles, {} throttled drivers [{}]\n",
        analysis.classes.len(),
        analysis.cycles.len(),
        analysis.throttled.len(),
        analysis.throttled.join(", "),
    );
    println!("Rule-class backoff benchmark ({reps} reps, best-of):\n");

    let mut rows = Vec::new();
    let mut json_cases = Vec::new();
    for case in zoo() {
        let t_off = time_check(&case.gs, &case.dist, &opts(false), reps);
        let t_on = time_check(&case.gs, &case.dist, &opts(true), reps);
        let speedup = t_off.as_secs_f64() / t_on.as_secs_f64().max(1e-9);
        rows.push(vec![
            case.display.clone(),
            secs(t_off),
            secs(t_on),
            format!("{speedup:.2}x"),
        ]);
        json_cases.push(format!(
            "{{\"name\":{},\"unthrottled_ms\":{:.3},\"backoff_ms\":{:.3},\"speedup\":{:.3}}}",
            entangle_lint::json_str(&case.display),
            t_off.as_secs_f64() * 1e3,
            t_on.as_secs_f64() * 1e3,
            speedup,
        ));
    }

    print_table(&["workload", "unthrottled", "backoff", "speedup"], &rows);

    let throttled: Vec<String> = analysis
        .throttled
        .iter()
        .map(|n| entangle_lint::json_str(n))
        .collect();
    let json = format!(
        "{{\"bench\":\"rule_backoff\",\"reps\":{reps},\"rules\":{},\"cycles\":{},\"throttled\":[{}],\"cases\":[{}]}}\n",
        analysis.classes.len(),
        analysis.cycles.len(),
        throttled.join(","),
        json_cases.join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_rules.json", &json).expect("write BENCH_rules.json");
    println!("\nwrote results/BENCH_rules.json");
}
