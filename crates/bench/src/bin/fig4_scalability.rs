//! Figure 4: verification time vs parallelism size and layer count.
//!
//! The paper sweeps parallelism {2,4,8} × layers for GPT (TP+SP+VP) and
//! Llama-3 (TP), finding time linear in depth but superlinear in
//! parallelism width (wider graphs make each per-operator step costlier).
//! Llama-3 has no parallelism-6 point because 6 does not divide the model's
//! dimensions — our builders panic on the same condition.

use entangle_bench::{gpt_workload, llama_workload, print_table, secs, Workload};

fn sweep(name: &str, make: impl Fn(usize, usize) -> Workload) {
    println!("\n{name}: verification time (s) by parallelism x layers");
    let opts = entangle_bench::saturation_opts();
    let layer_counts = [1usize, 2, 4];
    let mut rows = Vec::new();
    for par in [2usize, 4, 8] {
        let mut row = vec![format!("par={par}")];
        for &layers in &layer_counts {
            let w = make(par, layers);
            let (_, elapsed) = w.check(&opts);
            row.push(secs(elapsed));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("".to_owned())
        .chain(layer_counts.iter().map(|l| format!("{l} layer(s)")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
}

fn main() {
    println!("Figure 4: scalability of parallelized-model verification");
    sweep("GPT (TP+SP+VP)", gpt_workload);
    sweep("Llama-3 (TP)", llama_workload);
    println!("\nExpected shape: roughly linear in layers, superlinear in parallelism.");
    println!("(Parallelism 6 is absent: it does not divide the model dimensions.)");
}
