//! Figure 6: how often each lemma is applied, per model and parallelism.
//!
//! The paper's heatmap rows are GPT(2/4/8), Qwen2(4) and Llama-3(4); columns
//! are lemma ids, annotated `c` (clean-expression operators), `v` (vLLM
//! operators) and `h` (HLO operators). Expected observations: the
//! clean-operator lemmas dominate, HLO models reuse most ATen lemmas, and
//! higher parallelism applies more lemmas.

use entangle_bench::{gpt_workload, llama_workload, qwen2_workload, Workload};
use entangle_lemmas::registry;

fn main() {
    println!("Figure 6: lemma application counts per model/parallelism\n");
    let lemmas = registry();
    let opts = entangle_bench::saturation_opts();
    let rows: Vec<(String, Workload)> = vec![
        ("GPT(2)".into(), gpt_workload(2, 1)),
        ("GPT(4)".into(), gpt_workload(4, 1)),
        ("GPT(8)".into(), gpt_workload(8, 1)),
        ("Qwen2(4)".into(), qwen2_workload(4, 1)),
        ("Llama-3(4)".into(), llama_workload(4, 1)),
    ];

    let mut counts: Vec<(String, Vec<u64>)> = Vec::new();
    for (label, w) in rows {
        let (outcome, _) = w.check(&opts);
        let per_lemma: Vec<u64> = lemmas
            .iter()
            .map(|l| outcome.lemma_stats.count(&l.name))
            .collect();
        counts.push((label, per_lemma));
    }

    // Print only lemmas applied at least once somewhere (the paper's x-axis
    // shows the full corpus; we compress for terminal legibility).
    let used: Vec<usize> = (0..lemmas.len())
        .filter(|&i| counts.iter().any(|(_, c)| c[i] > 0))
        .collect();

    print!("{:<12}", "");
    for &i in &used {
        print!("{:>5}", format!("{}{}", i, lemmas[i].category.tag()));
    }
    println!();
    for (label, c) in &counts {
        print!("{label:<12}");
        for &i in &used {
            // Log-scale buckets, like the paper's log-color heatmap.
            let v = c[i];
            let cell = match v {
                0 => ".".to_owned(),
                _ => format!("{:.0}", (v as f64).log2().max(0.0) + 1.0),
            };
            print!("{cell:>5}");
        }
        println!();
    }

    println!("\nlegend: cells show 1+log2(applications); '.' = unused");
    println!("column suffix: c = clean-op lemma, v = vLLM-style fused, h = HLO-style");
    let mut totals: Vec<(String, u64)> = counts
        .iter()
        .map(|(l, c)| (l.clone(), c.iter().sum()))
        .collect();
    totals.sort_by_key(|(_, t)| *t);
    println!("\ntotal applications per row (expect GPT counts to grow with parallelism):");
    for (l, t) in totals {
        println!("  {l:<12} {t}");
    }

    // Name index for the used lemmas.
    println!("\nlemma id -> name:");
    for &i in &used {
        println!("  {:>3}{}  {}", i, lemmas[i].category.tag(), lemmas[i].name);
    }
}
