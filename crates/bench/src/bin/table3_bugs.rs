//! Table 3 / §6.2 / Appendix A: the nine real-world bugs.
//!
//! Runs every injected bug and its fixed twin. Expected result: all nine
//! buggy implementations are detected (bugs 5, 8 and 9 via §4.4 user
//! expectations), with the error localizing the problem; none of the fixed
//! twins raise a false alarm.

use entangle::CheckOptions;
use entangle_bench::print_table;
use entangle_parallel::bugs::{all_bugs, BugVerdict};

fn verdict_label(v: &BugVerdict) -> &'static str {
    match v {
        BugVerdict::Clean => "verified",
        BugVerdict::RefinementBug(_) => "REFINEMENT FAILS",
        BugVerdict::ExpectationBug(_) => "EXPECTATION VIOLATED",
    }
}

fn main() {
    println!("Table 3: reproduced bugs and detection results\n");
    let opts = CheckOptions::default();
    let mut rows = Vec::new();
    let mut all_detected = true;
    let mut any_false_alarm = false;
    for (buggy_case, fixed_case) in all_bugs(true).iter().zip(all_bugs(false).iter()) {
        let buggy_verdict = buggy_case.run(&opts);
        let fixed_verdict = fixed_case.run(&opts);
        all_detected &= buggy_verdict.detected();
        any_false_alarm |= fixed_verdict.detected();
        rows.push(vec![
            format!("{}", buggy_case.id),
            buggy_case.name.to_owned(),
            verdict_label(&buggy_verdict).to_owned(),
            verdict_label(&fixed_verdict).to_owned(),
        ]);
    }
    print_table(&["#", "bug", "buggy implementation", "fixed twin"], &rows);

    println!("\ndetection details (the actionable output of §6.2):");
    for case in all_bugs(true) {
        match case.run(&opts) {
            BugVerdict::Clean => {}
            BugVerdict::RefinementBug(e) => {
                println!("\n--- bug {} ({}) ---\n{e}", case.id, case.name);
            }
            BugVerdict::ExpectationBug(e) => {
                println!("\n--- bug {} ({}) ---\n{e}", case.id, case.name);
            }
        }
    }

    println!(
        "\nsummary: {} / 9 bugs detected, false alarms on fixed twins: {}",
        if all_detected { 9 } else { 0 },
        if any_false_alarm {
            "YES (unexpected!)"
        } else {
            "none"
        }
    );
    assert!(all_detected, "every Table 3 bug must be detected");
    assert!(!any_false_alarm, "fixed twins must verify");
}
