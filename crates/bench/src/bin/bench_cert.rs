//! Certification-overhead benchmark: `check_refinement` with and without
//! `CheckOptions::certify` across the model zoo, plus the cost of the
//! trusted kernel re-checking the extracted certificate on its own.
//!
//! Writes `results/BENCH_cert.json` (stable field order, no serde) and
//! prints the comparison table. Expected shape: certificate extraction and
//! kernel validation add a bounded constant factor on top of saturation —
//! the price of not trusting the e-graph engine.

use std::time::{Duration, Instant};

use entangle::CheckOptions;
use entangle_bench::{figure3_suite, print_table, saturation_opts, secs, Workload};
use entangle_cert::Certificate;
use entangle_lemmas::{registry, rewrites_of};
use entangle_symbolic::SymCtx;

/// Best-of-N wall clock for one configuration, plus the last certificate.
fn time_check(w: &Workload, opts: &CheckOptions, reps: usize) -> (Duration, Option<Certificate>) {
    let mut best = Duration::MAX;
    let mut cert = None;
    for _ in 0..reps {
        let (outcome, elapsed) = w.check(opts);
        best = best.min(elapsed);
        cert = outcome.certificate;
    }
    (best, cert)
}

/// Best-of-N wall clock for the kernel alone re-checking `cert`.
fn time_kernel(w: &Workload, cert: &Certificate, reps: usize) -> Duration {
    let rewrites = rewrites_of(&registry());
    let ctx = SymCtx::new();
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        entangle_cert::verify(cert, &w.gs, &w.dist.graph, &rewrites, &ctx)
            .unwrap_or_else(|e| panic!("{} certificate rejected: {e}", w.name));
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let reps = 3;
    println!("Certification benchmark ({reps} reps, best-of):\n");

    let certified_opts = CheckOptions {
        certify: true,
        ..saturation_opts()
    };

    let mut rows = Vec::new();
    let mut json_cases = Vec::new();
    for w in figure3_suite() {
        let (t_base, _) = time_check(&w, &saturation_opts(), reps);
        let (t_cert, cert) = time_check(&w, &certified_opts, reps);
        let cert = cert.expect("certify mode emits a certificate");
        let t_kernel = time_kernel(&w, &cert, reps);
        let overhead = t_cert.as_secs_f64() / t_base.as_secs_f64().max(1e-9);
        let mappings = cert.mappings.len();
        let steps = cert.total_steps();
        rows.push(vec![
            w.name.clone(),
            secs(t_base),
            secs(t_cert),
            format!("{overhead:.2}x"),
            secs(t_kernel),
            format!("{mappings}"),
            format!("{steps}"),
        ]);
        json_cases.push(format!(
            "{{\"name\":{},\"baseline_ms\":{:.3},\"certified_ms\":{:.3},\
             \"overhead\":{:.3},\"kernel_ms\":{:.3},\"mappings\":{},\"proof_steps\":{}}}",
            entangle_lint::json_str(&w.name),
            t_base.as_secs_f64() * 1e3,
            t_cert.as_secs_f64() * 1e3,
            overhead,
            t_kernel.as_secs_f64() * 1e3,
            mappings,
            steps,
        ));
    }

    print_table(
        &[
            "workload",
            "baseline",
            "certified",
            "overhead",
            "kernel",
            "mappings",
            "steps",
        ],
        &rows,
    );

    let json = format!(
        "{{\"bench\":\"cert\",\"reps\":{reps},\"cases\":[{}]}}\n",
        json_cases.join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_cert.json", &json).expect("write BENCH_cert.json");
    println!("\nwrote results/BENCH_cert.json");
}
