//! Parallel-checker benchmark: `check_refinement` across the model zoo at
//! `jobs` ∈ {1, 2, 4, 8} with the cross-operator saturation cache on,
//! against the pre-scheduler sequential engine (`jobs = 1`, `cache = off`)
//! as the baseline.
//!
//! Writes `results/BENCH_par.json` (stable field order, no serde) and
//! prints the comparison table. Expected shape: `jobs = 1` stays within a
//! few percent of the baseline (the scheduler adds no work, the cache only
//! removes it), and the deeper workloads — MoE above all, with its repeated
//! per-expert subgraphs — clear 2x at `jobs = 4`.

use std::time::{Duration, Instant};

use entangle::{check_refinement, CheckOptions, CheckOutcome};
use entangle_bench::{print_table, saturation_opts, secs, zoo};
use entangle_parallel::Distributed;

/// Best-of-N wall clock for one configuration, plus the last outcome.
fn time_check(
    gs: &entangle_ir::Graph,
    dist: &Distributed,
    opts: &CheckOptions,
    reps: usize,
) -> (Duration, CheckOutcome) {
    let ri = dist.relation(gs).expect("relation builds");
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let outcome = check_refinement(gs, &dist.graph, &ri, opts)
            .unwrap_or_else(|e| panic!("{} failed: {e}", dist.graph.name()));
        best = best.min(start.elapsed());
        last = Some(outcome);
    }
    (best, last.expect("reps >= 1"))
}

/// The scheduled configuration under measurement: saturation pipeline only
/// (no shard hints, no certification — those are other benchmarks' jobs),
/// cross-operator cache on, `jobs` worker threads.
fn par_opts(jobs: usize) -> CheckOptions {
    CheckOptions {
        jobs,
        cache: true,
        ..saturation_opts()
    }
}

/// The pre-scheduler engine: one thread, no cache — byte-for-byte the
/// legacy sequential loop.
fn baseline_opts() -> CheckOptions {
    CheckOptions {
        jobs: 1,
        cache: false,
        ..saturation_opts()
    }
}

fn main() {
    let reps = 3;
    let jobs_sweep = [1usize, 2, 4, 8];
    println!("Parallel-checker benchmark ({reps} reps, best-of):\n");

    let mut rows = Vec::new();
    let mut json_cases = Vec::new();
    for case in zoo() {
        let (t_base, _) = time_check(&case.gs, &case.dist, &baseline_opts(), reps);

        let mut times = Vec::new();
        let mut last_outcome = None;
        for &jobs in &jobs_sweep {
            let (t, outcome) = time_check(&case.gs, &case.dist, &par_opts(jobs), reps);
            times.push((jobs, t));
            last_outcome = Some(outcome);
        }
        let outcome = last_outcome.expect("sweep is non-empty");

        let t_of = |jobs: usize| {
            times
                .iter()
                .find(|(j, _)| *j == jobs)
                .map(|(_, t)| *t)
                .expect("jobs value measured")
        };
        let speedup4 = t_of(1).as_secs_f64() / t_of(4).as_secs_f64().max(1e-9);
        let vs_base = t_of(1).as_secs_f64() / t_base.as_secs_f64().max(1e-9);

        let par = &outcome.par;
        let hit_rate = par.hit_rate();
        let tel = &outcome.saturation.telemetry;
        let searched = tel.searched_classes;
        let skipped = tel.skipped_classes;
        let skip_rate = skipped as f64 / ((searched + skipped) as f64).max(1.0);

        rows.push(vec![
            case.display.clone(),
            secs(t_base),
            secs(t_of(1)),
            secs(t_of(2)),
            secs(t_of(4)),
            secs(t_of(8)),
            format!("{speedup4:.2}x"),
            format!("{:.0}%", hit_rate * 100.0),
            format!("{:.0}%", skip_rate * 100.0),
        ]);
        let jobs_json: Vec<String> = times
            .iter()
            .map(|(j, t)| format!("{{\"jobs\":{j},\"ms\":{:.3}}}", t.as_secs_f64() * 1e3))
            .collect();
        json_cases.push(format!(
            "{{\"name\":{},\"baseline_ms\":{:.3},\"sweep\":[{}],\
             \"speedup_at_4\":{:.3},\"jobs1_vs_baseline\":{:.3},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},\
             \"ematch_searched\":{searched},\"ematch_skipped\":{skipped},\
             \"ematch_skip_rate\":{skip_rate:.4}}}",
            entangle_lint::json_str(&case.display),
            t_base.as_secs_f64() * 1e3,
            jobs_json.join(","),
            speedup4,
            vs_base,
            par.cache_hits,
            par.cache_misses,
            hit_rate,
        ));
    }

    print_table(
        &[
            "workload", "baseline", "j=1", "j=2", "j=4", "j=8", "x @ j=4", "cache", "skip",
        ],
        &rows,
    );

    let json = format!(
        "{{\"bench\":\"parallel_checker\",\"reps\":{reps},\"cores\":{},\"cases\":[{}]}}\n",
        entangle_par::available_jobs(),
        json_cases.join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_par.json", &json).expect("write BENCH_par.json");
    println!("\nwrote results/BENCH_par.json");
}
