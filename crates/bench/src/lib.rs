//! Shared harness utilities for regenerating the paper's evaluation
//! (Figures 3–6, Table 3) and the DESIGN.md ablations.
//!
//! Each figure/table has a dedicated binary under `src/bin/`; Criterion
//! benches under `benches/` time the same workloads. See EXPERIMENTS.md for
//! the paper-vs-measured comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use entangle::{check_refinement, CheckOptions, CheckOutcome};
use entangle_ir::Graph;
use entangle_models::{gpt, llama3, moe, qwen2, Arch, ModelConfig, MoeConfig, RegressionConfig};
use entangle_parallel::{grad_accumulation, parallelize, parallelize_moe, Distributed, Strategy};

/// A named verification workload: sequential model + distributed
/// implementation + strategy description.
pub struct Workload {
    /// Display name (Figure 3 x-axis label).
    pub name: String,
    /// The strategies applied, for display.
    pub strategies: &'static str,
    /// Sequential model.
    pub gs: Graph,
    /// Distributed implementation with its input maps.
    pub dist: Distributed,
}

impl Workload {
    /// Total operator count across both graphs (the parenthesized numbers
    /// of Figure 3).
    pub fn total_ops(&self) -> usize {
        self.gs.num_nodes() + self.dist.graph.num_nodes()
    }

    /// Runs the checker, returning the outcome and wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if the (bug-free) workload fails to verify.
    pub fn check(&self, opts: &CheckOptions) -> (CheckOutcome, Duration) {
        let ri = self.dist.relation(&self.gs).expect("relation builds");
        let start = Instant::now();
        let outcome = check_refinement(&self.gs, &self.dist.graph, &ri, opts)
            .unwrap_or_else(|e| panic!("workload {} failed: {e}", self.name));
        (outcome, start.elapsed())
    }
}

/// The benchmark model configuration: small enough for CI, large enough
/// that parallelism degree 8 divides every dimension.
pub fn bench_config() -> ModelConfig {
    ModelConfig {
        batch: 2,
        seq: 16,
        hidden: 32,
        heads: 8,
        layers: 1,
        vocab: 32,
        ffn: 64,
        causal: true,
    }
}

/// The GPT workload at a given parallelism size and layer count
/// (TP + SP + VP, the paper's GPT configuration).
pub fn gpt_workload(par: usize, layers: usize) -> Workload {
    let cfg = bench_config().with_layers(layers);
    let gs = gpt(&cfg);
    let s = if par == 1 {
        Strategy::tp(1)
    } else {
        Strategy::tp_sp_vp(par)
    };
    let dist = if par == 1 {
        Distributed::identity(&gs)
    } else {
        parallelize(&cfg, Arch::Gpt, &s)
    };
    Workload {
        name: format!("GPT(tp{par},l{layers})"),
        strategies: "TP+SP+VP",
        gs,
        dist,
    }
}

/// The Llama-3 workload (TP only, per Table 2).
pub fn llama_workload(par: usize, layers: usize) -> Workload {
    let cfg = bench_config().with_layers(layers);
    let gs = llama3(&cfg);
    let dist = if par == 1 {
        Distributed::identity(&gs)
    } else {
        parallelize(&cfg, Arch::Llama, &Strategy::tp(par))
    };
    Workload {
        name: format!("Llama-3(tp{par},l{layers})"),
        strategies: "TP",
        gs,
        dist,
    }
}

/// The Qwen2 workload (TP only, per Table 2).
pub fn qwen2_workload(par: usize, layers: usize) -> Workload {
    let cfg = bench_config().with_layers(layers);
    let gs = qwen2(&cfg);
    let dist = if par == 1 {
        Distributed::identity(&gs)
    } else {
        parallelize(&cfg, Arch::Qwen2, &Strategy::tp(par))
    };
    Workload {
        name: format!("Qwen2(tp{par},l{layers})"),
        strategies: "TP",
        gs,
        dist,
    }
}

/// The ByteDance-model stand-in: an MoE transformer under TP+SP+EP.
///
/// `backward` substitutes the paper's backward-pass graph with a deeper
/// forward graph of comparable operator count (the reproduction cannot
/// capture autograd graphs; see EXPERIMENTS.md).
pub fn moe_workload(par: usize, backward: bool) -> Workload {
    let cfg = MoeConfig {
        base: bench_config().with_layers(if backward { 2 } else { 1 }),
        experts: 8,
    };
    let gs = moe(&cfg);
    let dist = if par == 1 {
        Distributed::identity(&gs)
    } else {
        parallelize_moe(&cfg, &Strategy::tp_sp(par))
    };
    Workload {
        name: format!(
            "ByteDance-{}(tp{par})",
            if backward { "Bwd*" } else { "Fwd" }
        ),
        strategies: "TP+SP+EP",
        gs,
        dist,
    }
}

/// A deep MoE *stack* under TP+SP+EP: `layers` MoE layers, each with its
/// own router, experts and load-balance head (the BENCH_scale deep-model
/// sweeps; `moe_workload` keeps the paper's fixed 1/2-layer shapes).
pub fn moe_deep_workload(par: usize, layers: usize) -> Workload {
    let cfg = MoeConfig {
        base: bench_config(),
        experts: 8,
    }
    .with_layers(layers);
    let gs = moe(&cfg);
    let dist = if par == 1 {
        Distributed::identity(&gs)
    } else {
        parallelize_moe(&cfg, &Strategy::tp_sp(par))
    };
    Workload {
        name: format!("MoE(tp{par},l{layers})"),
        strategies: "TP+SP+EP",
        gs,
        dist,
    }
}

/// The HuggingFace regression workload (gradient accumulation).
pub fn regression_workload(microbatches: usize) -> Workload {
    let cfg = RegressionConfig {
        batch: 8,
        features: 4,
    };
    let gs = entangle_models::regression(&cfg);
    let dist = grad_accumulation(&cfg, microbatches, true);
    Workload {
        name: format!("HF-regression(m{microbatches})"),
        strategies: "grad-accum",
        gs,
        dist,
    }
}

/// One case of the 7-workload CLI/benchmark zoo.
pub struct ZooCase {
    /// File-stem name (`gpt_tp2`, matching `examples/graphs/<name>.*`).
    pub name: String,
    /// Display name (`GPT/TP2`, the `BENCH_*.json` label).
    pub display: String,
    /// Sequential model.
    pub gs: Graph,
    /// Distributed implementation with its input maps.
    pub dist: Distributed,
}

/// The 7-workload zoo exercised by `export_zoo`, the CI sweeps, and the
/// `bench_shard`/`bench_trace` regressions: GPT / Llama-3 / Qwen2 under TP2
/// and TP+SP2, plus the MoE model under TP+SP2, all at [`bench_config`].
pub fn zoo() -> Vec<ZooCase> {
    let cfg = bench_config();
    let mut cases = Vec::new();
    for (arch, stem, label, build) in [
        (Arch::Gpt, "gpt", "GPT", gpt as fn(&ModelConfig) -> _),
        (
            Arch::Llama,
            "llama3",
            "Llama-3",
            llama3 as fn(&ModelConfig) -> _,
        ),
        (
            Arch::Qwen2,
            "qwen2",
            "Qwen2",
            qwen2 as fn(&ModelConfig) -> _,
        ),
    ] {
        for (sstem, sname, strategy) in [
            ("tp2", "TP2", Strategy::tp(2)),
            ("tpsp2", "TP-SP2", Strategy::tp_sp(2)),
        ] {
            cases.push(ZooCase {
                name: format!("{stem}_{sstem}"),
                display: format!("{label}/{sname}"),
                gs: build(&cfg),
                dist: parallelize(&cfg, arch, &strategy),
            });
        }
    }
    let moe_cfg = MoeConfig {
        base: cfg,
        experts: 8,
    };
    cases.push(ZooCase {
        name: "moe_tpsp2".to_owned(),
        display: "MoE/TP-SP2".to_owned(),
        gs: moe(&moe_cfg),
        dist: parallelize_moe(&moe_cfg, &Strategy::tp_sp(2)),
    });
    cases
}

/// The Figure 3 model suite at parallelism 2, one layer (§6.3 setup).
pub fn figure3_suite() -> Vec<Workload> {
    vec![
        moe_workload(2, false),
        moe_workload(2, true),
        gpt_workload(2, 1),
        llama_workload(2, 1),
        qwen2_workload(2, 1),
        regression_workload(2),
    ]
}

/// Renders an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Options measuring the *saturation* pipeline alone (Listings 1-3):
/// shard hints would skip saturation for operators the propagation pass can
/// prove, and certificate extraction + kernel re-checking adds work after
/// saturation finishes — both are exactly what the figure benchmarks are
/// *not* timing. `bench_cert` measures the certification overhead.
pub fn saturation_opts() -> CheckOptions {
    CheckOptions {
        shard_hints: false,
        certify: false,
        ..CheckOptions::default()
    }
}

/// Options for timing the hinted pipeline: certification is off because
/// certify-mode drops shard hints (hinted mappings carry no derivation the
/// kernel could re-check), which would turn the comparison into a no-op.
pub fn hinted_opts() -> CheckOptions {
    CheckOptions {
        certify: false,
        ..CheckOptions::default()
    }
}

/// Formats a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_suite_builds() {
        // Full verification of the suite is minutes of work in debug mode;
        // the binaries and Criterion benches run it in release. Here we
        // only check the workloads construct and their relations validate.
        let suite = figure3_suite();
        assert_eq!(suite.len(), 6);
        for w in &suite {
            assert!(w.total_ops() > 0);
            w.dist.relation(&w.gs).expect("relation validates");
        }
    }

    #[test]
    fn lightest_workload_verifies() {
        let (outcome, _) = regression_workload(2).check(&CheckOptions::default());
        assert!(!outcome.output_relation.is_empty());
    }

    #[test]
    fn workloads_scale_with_layers() {
        let w1 = gpt_workload(2, 1);
        let w2 = gpt_workload(2, 2);
        assert!(w2.total_ops() > w1.total_ops());
    }
}
