//! Microbenchmarks of the substrates: e-graph saturation, pattern search,
//! the symbolic solver, and the dense-tensor runtime. These bound the
//! per-operator cost model behind Figures 3–4.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_egraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    // E-graph saturation over the block-matmul derivation.
    group.bench_function("egraph_block_matmul_saturation", |b| {
        use entangle_lemmas::{registry, rewrites_of, TensorAnalysis};
        let rewrites = rewrites_of(&registry());
        b.iter(|| {
            let mut analysis = TensorAnalysis::default();
            for n in ["A1", "A2", "B1", "B2"] {
                analysis.register_leaf(n, entangle_ir::Shape::of(&[8, 8]), entangle_ir::DType::F32);
            }
            let mut eg = entangle_egraph::EGraph::with_analysis(analysis);
            let l = eg.add_expr(
                &"(matmul (concat A1 A2 1) (concat B1 B2 0))"
                    .parse()
                    .unwrap(),
            );
            let r = eg.add_expr(&"(add (matmul A1 B1) (matmul A2 B2))".parse().unwrap());
            let mut runner = entangle_egraph::Runner::new(eg).with_iter_limit(8);
            runner.run(&rewrites);
            assert_eq!(runner.egraph.find(l), runner.egraph.find(r));
        });
    });

    // Symbolic solver: chained inequalities.
    group.bench_function("symbolic_fourier_motzkin", |b| {
        use entangle_symbolic::{Rel, SymCtx};
        b.iter(|| {
            let mut ctx = SymCtx::new();
            let vars: Vec<_> = (0..8).map(|i| ctx.var(&format!("v{i}"))).collect();
            for w in vars.windows(2) {
                ctx.assume(w[0].clone(), Rel::Lt, w[1].clone());
            }
            assert_eq!(
                ctx.check(&vars[0], Rel::Lt, &vars[7]),
                entangle_symbolic::Truth::Proved
            );
        });
    });

    // Runtime: batched matmul on the bench model size.
    group.bench_function("runtime_matmul_32", |b| {
        use entangle_runtime::{eval_op, random_value};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = random_value(&mut rng, &[2, 16, 32]);
        let w = random_value(&mut rng, &[32, 32]);
        b.iter(|| eval_op(&entangle_ir::Op::Matmul, &[&x, &w]).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_egraph);
criterion_main!(benches);
