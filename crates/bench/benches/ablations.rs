//! Criterion bench for the DESIGN.md ablations: the Listing 3 frontier, the
//! iterative-vs-monolithic e-graph, and relation pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use entangle::CheckOptions;
use entangle_bench::gpt_workload;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let w = gpt_workload(2, 1);
    let ri = w.dist.relation(&w.gs).expect("relation builds");

    let configs: Vec<(&str, CheckOptions)> = vec![
        ("shard_hinted", entangle_bench::hinted_opts()),
        ("frontier_iterative", entangle_bench::saturation_opts()),
        (
            "no_frontier",
            CheckOptions {
                frontier: false,
                ..entangle_bench::saturation_opts()
            },
        ),
        (
            "monolithic",
            CheckOptions {
                frontier: false,
                fresh_egraph_per_op: false,
                ..entangle_bench::saturation_opts()
            },
        ),
        (
            "prune_to_1",
            CheckOptions {
                max_mappings: 1,
                ..entangle_bench::hinted_opts()
            },
        ),
        ("certified", CheckOptions::default()),
    ];
    for (name, opts) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                entangle::check_refinement(&w.gs, &w.dist.graph, &ri, &opts).expect("verifies")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
