//! Criterion bench for Figure 4: verification time vs parallelism size and
//! layer count (GPT under TP+SP+VP; Llama-3 under TP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use entangle_bench::{gpt_workload, hinted_opts, llama_workload};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_scalability");
    group.sample_size(10);
    for par in [2usize, 4] {
        for layers in [1usize, 2] {
            for (model, w) in [
                ("gpt", gpt_workload(par, layers)),
                ("llama3", llama_workload(par, layers)),
            ] {
                let ri = w.dist.relation(&w.gs).expect("relation builds");
                group.bench_with_input(
                    BenchmarkId::new(model, format!("par{par}_l{layers}")),
                    &w,
                    |b, w| {
                        b.iter(|| {
                            entangle::check_refinement(&w.gs, &w.dist.graph, &ri, &hinted_opts())
                                .expect("verifies")
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
