//! Criterion bench for Figure 3: end-to-end verification time per model
//! (parallelism 2, one layer).

use criterion::{criterion_group, criterion_main, Criterion};
use entangle_bench::{
    gpt_workload, hinted_opts, llama_workload, moe_workload, qwen2_workload, regression_workload,
};

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_verification_time");
    group.sample_size(10);
    let workloads = vec![
        gpt_workload(2, 1),
        llama_workload(2, 1),
        qwen2_workload(2, 1),
        moe_workload(2, false),
        regression_workload(2),
    ];
    for w in workloads {
        let ri = w.dist.relation(&w.gs).expect("relation builds");
        group.bench_function(&w.name, |b| {
            b.iter(|| {
                entangle::check_refinement(&w.gs, &w.dist.graph, &ri, &hinted_opts())
                    .expect("verifies")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
