//! The tensor analysis: shapes, dtypes and const-folded scalars per e-class.

use std::collections::HashMap;

use entangle_egraph::{Analysis, EGraph, ENode, Id, Symbol};
use entangle_ir::{infer_output, DType, Dim, Op, Shape};
use entangle_symbolic::{SymCtx, SymExpr};

/// Per-e-class metadata: what the checker knows about the tensors (or
/// scalars) in the class.
///
/// This mirrors the paper's captured-graph tensors, which "do not carry
/// actual data values; instead, they contain only metadata such as shape and
/// data type information", with scalars being concrete or symbolic (§5).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Meta {
    /// Tensor shape, if known.
    pub shape: Option<Shape>,
    /// Tensor dtype, if known.
    pub dtype: Option<DType>,
    /// Scalar value (concrete or symbolic), if the class is a scalar.
    pub scalar: Option<SymExpr>,
}

impl Meta {
    /// Metadata for a scalar class.
    pub fn scalar(e: SymExpr) -> Meta {
        Meta {
            scalar: Some(e),
            ..Meta::default()
        }
    }

    /// Metadata for a tensor class.
    pub fn tensor(shape: Shape, dtype: DType) -> Meta {
        Meta {
            shape: Some(shape),
            dtype: Some(dtype),
            scalar: None,
        }
    }

    /// Nothing known.
    pub fn unknown() -> Meta {
        Meta::default()
    }

    /// The rank of the tensor, if its shape is known.
    pub fn rank(&self) -> Option<usize> {
        self.shape.as_ref().map(Shape::rank)
    }
}

/// The analysis attached to checker e-graphs: propagates shapes bottom-up
/// via the IR's shape inference, registers leaf tensors, and carries the
/// symbolic-scalar context for lemma conditions.
#[derive(Debug, Default)]
pub struct TensorAnalysis {
    /// Decision procedure for symbolic scalars (§5).
    pub ctx: SymCtx,
    /// Known metadata for leaf tensors by name.
    pub leaves: HashMap<Symbol, (Shape, DType)>,
}

impl TensorAnalysis {
    /// Creates an analysis with a pre-populated symbolic context.
    pub fn with_ctx(ctx: SymCtx) -> TensorAnalysis {
        TensorAnalysis {
            ctx,
            leaves: HashMap::new(),
        }
    }

    /// Registers a leaf tensor's metadata (called by the checker for every
    /// `G_d` tensor before building expressions).
    pub fn register_leaf(&mut self, name: &str, shape: Shape, dtype: DType) {
        self.leaves.insert(Symbol::new(name), (shape, dtype));
    }
}

impl Analysis for TensorAnalysis {
    type Data = Meta;

    fn make(egraph: &EGraph<Self>, enode: &ENode) -> Meta {
        match enode {
            ENode::Int(i) => Meta::scalar(SymExpr::constant(*i)),
            ENode::Sym(e) => Meta::scalar(e.clone()),
            ENode::Op(sym, ch) if ch.is_empty() => match egraph.analysis.leaves.get(sym) {
                Some((shape, dtype)) => Meta::tensor(shape.clone(), *dtype),
                None => Meta::unknown(),
            },
            ENode::Op(sym, ch) => {
                let metas: Vec<Meta> = ch.iter().map(|&c| egraph[c].data.clone()).collect();
                match decode_op(sym.as_str(), &metas) {
                    Some((op, tensor_count)) => {
                        let inputs: Option<Vec<(Shape, DType)>> = metas[..tensor_count]
                            .iter()
                            .map(|m| Some((m.shape.clone()?, m.dtype?)))
                            .collect();
                        match inputs {
                            Some(inputs) => match infer_output(&op, &inputs) {
                                Ok((shape, dtype)) => Meta::tensor(shape, dtype),
                                Err(_) => Meta::unknown(),
                            },
                            None => Meta::unknown(),
                        }
                    }
                    None => Meta::unknown(),
                }
            }
        }
    }

    fn merge(a: &mut Meta, b: Meta) -> (bool, bool) {
        let mut a_changed = false;
        let mut b_changed = false;
        // Prefer known over unknown; on conflict keep `a` (shapes of truly
        // equivalent tensors agree, but symbolic forms may differ
        // syntactically — keeping one is sound for condition checks).
        if a.shape.is_none() && b.shape.is_some() {
            a.shape.clone_from(&b.shape);
            a.dtype = b.dtype;
            a_changed = true;
        } else if a.shape.is_some() && b.shape.is_none() {
            b_changed = true;
        }
        if a.scalar.is_none() && b.scalar.is_some() {
            a.scalar.clone_from(&b.scalar);
            a_changed = true;
        } else if a.scalar.is_some() && b.scalar.is_none() {
            b_changed = true;
        }
        (a_changed, b_changed)
    }
}

/// Every operator name [`decode_op`] can decode — the e-graph-level
/// operator vocabulary. A rewrite whose pattern mentions an operator
/// outside this list can never match a term built by the checker (the
/// `entangle-rules` RL01 *dead rule* diagnostic). Kept in sync with the
/// `decode_op` match arms by `tests::vocabulary_matches_decode_op`.
pub const OP_VOCABULARY: &[&str] = &[
    "add",
    "sub",
    "mul",
    "div",
    "maximum",
    "neg",
    "exp",
    "sqrt",
    "rsqrt",
    "tanh",
    "gelu",
    "silu",
    "relu",
    "sigmoid",
    "step",
    "gelu_grad",
    "silu_grad",
    "ones_like",
    "cos",
    "sin",
    "identity",
    "sum_all",
    "mean_all",
    "matmul",
    "embedding",
    "embedding_grad",
    "rms_norm",
    "mse_loss",
    "cross_entropy",
    "layer_norm",
    "rope",
    "scalar_mul",
    "sum_dim",
    "mean_dim",
    "softmax",
    "transpose",
    "slice",
    "concat",
    "pad",
    "attention",
    "reshape",
    "permute",
];

/// Reconstructs an [`Op`] from its e-graph head symbol and the metadata of
/// its children; returns the op and the number of leading tensor children.
///
/// The e-graph encoding is: tensor children first, then attribute scalars
/// (n-ary concat and the collectives are lowered to binary `concat`/`add`
/// chains before entering the e-graph, so arities here are fixed except for
/// `reshape`/`permute`, whose trailing children are all attributes).
pub fn decode_op(name: &str, metas: &[Meta]) -> Option<(Op, usize)> {
    let scalar_at = |i: usize| -> Option<SymExpr> { metas.get(i)?.scalar.clone() };
    let int_at = |i: usize| -> Option<i64> { scalar_at(i)?.as_const() };
    let usize_at = |i: usize| -> Option<usize> {
        let v = int_at(i)?;
        usize::try_from(v).ok()
    };
    let dim_at = |i: usize| -> Option<Dim> { Some(Dim(scalar_at(i)?)) };

    let op = match name {
        "add" => (Op::Add, 2),
        "sub" => (Op::Sub, 2),
        "mul" => (Op::Mul, 2),
        "div" => (Op::Div, 2),
        "maximum" => (Op::Maximum, 2),
        "neg" => (Op::Neg, 1),
        "exp" => (Op::Exp, 1),
        "sqrt" => (Op::Sqrt, 1),
        "rsqrt" => (Op::Rsqrt, 1),
        "tanh" => (Op::Tanh, 1),
        "gelu" => (Op::Gelu, 1),
        "silu" => (Op::Silu, 1),
        "relu" => (Op::Relu, 1),
        "sigmoid" => (Op::Sigmoid, 1),
        "step" => (Op::Step, 1),
        "gelu_grad" => (Op::GeluGrad, 1),
        "silu_grad" => (Op::SiluGrad, 1),
        "ones_like" => (Op::OnesLike, 1),
        "cos" => (Op::Cos, 1),
        "sin" => (Op::Sin, 1),
        "identity" => (Op::Identity, 1),
        "sum_all" => (Op::SumAll, 1),
        "mean_all" => (Op::MeanAll, 1),
        "matmul" => (Op::Matmul, 2),
        "embedding" => (Op::Embedding, 2),
        "embedding_grad" => (
            Op::EmbeddingGrad {
                vocab: usize_at(2)?,
            },
            2,
        ),
        "rms_norm" => (Op::RmsNorm, 2),
        "mse_loss" => (Op::MseLoss, 2),
        "cross_entropy" => (Op::CrossEntropy, 2),
        "layer_norm" => (Op::LayerNorm, 3),
        "rope" => (Op::Rope, 3),
        "scalar_mul" => (
            Op::ScalarMul {
                numer: int_at(1)?,
                denom: int_at(2)?,
            },
            1,
        ),
        "sum_dim" => (
            Op::SumDim {
                dim: usize_at(1)?,
                keepdim: int_at(2)? != 0,
            },
            1,
        ),
        "mean_dim" => (
            Op::MeanDim {
                dim: usize_at(1)?,
                keepdim: int_at(2)? != 0,
            },
            1,
        ),
        "softmax" => (Op::Softmax { dim: usize_at(1)? }, 1),
        "transpose" => (
            Op::Transpose {
                d0: usize_at(1)?,
                d1: usize_at(2)?,
            },
            1,
        ),
        "slice" => (
            Op::Slice {
                dim: usize_at(1)?,
                start: dim_at(2)?,
                end: dim_at(3)?,
            },
            1,
        ),
        "concat" => (Op::Concat { dim: usize_at(2)? }, 2),
        "pad" => (
            Op::Pad {
                dim: usize_at(1)?,
                before: dim_at(2)?,
                after: dim_at(3)?,
            },
            1,
        ),
        "attention" => (
            Op::Attention {
                heads: usize_at(3)?,
                causal: int_at(4)? != 0,
            },
            3,
        ),
        "reshape" => {
            let dims: Option<Vec<Dim>> = (1..metas.len()).map(dim_at).collect();
            (Op::Reshape { shape: dims? }, 1)
        }
        "permute" => {
            let perm: Option<Vec<usize>> = (1..metas.len()).map(usize_at).collect();
            (Op::Permute { perm: perm? }, 1)
        }
        _ => return None,
    };
    Some(op)
}

/// Convenience accessors used by lemma conditions and dynamic appliers.
pub mod cond {
    use super::*;

    /// The metadata of an e-class.
    pub fn meta(eg: &EGraph<TensorAnalysis>, id: Id) -> Meta {
        eg[id].data.clone()
    }

    /// The shape of an e-class, if known.
    pub fn shape(eg: &EGraph<TensorAnalysis>, id: Id) -> Option<Shape> {
        eg[id].data.shape.clone()
    }

    /// The rank, if the shape is known.
    pub fn rank(eg: &EGraph<TensorAnalysis>, id: Id) -> Option<usize> {
        eg[id].data.rank()
    }

    /// The scalar value (concrete or symbolic) of a class.
    pub fn scalar(eg: &EGraph<TensorAnalysis>, id: Id) -> Option<SymExpr> {
        eg[id].data.scalar.clone()
    }

    /// The concrete integer value of a class.
    pub fn int(eg: &EGraph<TensorAnalysis>, id: Id) -> Option<i64> {
        scalar(eg, id)?.as_const()
    }

    /// The size of dimension `d` of a tensor class.
    pub fn dim_size(eg: &EGraph<TensorAnalysis>, id: Id, d: usize) -> Option<SymExpr> {
        let s = shape(eg, id)?;
        (d < s.rank()).then(|| s.dim(d).0.clone())
    }

    /// Proves `a == b` via the symbolic context (exact for constants).
    pub fn sym_eq(eg: &EGraph<TensorAnalysis>, a: &SymExpr, b: &SymExpr) -> bool {
        eg.analysis.ctx.check_eq(a, b).is_proved()
    }

    /// Proves `a <= b`.
    pub fn sym_le(eg: &EGraph<TensorAnalysis>, a: &SymExpr, b: &SymExpr) -> bool {
        eg.analysis
            .ctx
            .check(a, entangle_symbolic::Rel::Le, b)
            .is_proved()
    }

    /// Adds an integer scalar node.
    pub fn add_int(eg: &mut EGraph<TensorAnalysis>, v: i64) -> Id {
        eg.add(ENode::Int(v))
    }

    /// Adds a scalar node: an `Int` when constant, a `Sym` otherwise.
    pub fn add_scalar(eg: &mut EGraph<TensorAnalysis>, e: SymExpr) -> Id {
        match e.as_const() {
            Some(v) => eg.add(ENode::Int(v)),
            None => eg.add(ENode::Sym(e)),
        }
    }

    /// Adds an operator node.
    pub fn add_op(eg: &mut EGraph<TensorAnalysis>, name: &str, children: Vec<Id>) -> Id {
        eg.add(ENode::op(name, children))
    }
}
