//! The ENTANGLE lemma corpus.
//!
//! Lemmas are the rewrite rules the checker saturates with (§4.2.1): each
//! states that under a condition `C`, an expression `p_m` can be rewritten to
//! an equivalent `p_n`. The paper's implementation devotes ~4,100 lines of
//! Rust to lemmas for PyTorch's ATen library (plus per-model additions for
//! fused vLLM kernels and HLO operators, §6.5); this crate is that corpus
//! for the reproduction's operator vocabulary.
//!
//! Three kinds of lemma, matching §5 "Writing Lemmas":
//!
//! - **universal** — `lhs => rhs` pattern pairs, one line each (e.g.
//!   `gelu-of-concat`);
//! - **conditioned** — gated on shape/dimension facts resolved through the
//!   class analysis and, for symbolic scalars, the
//!   [`entangle_symbolic::SymCtx`] decision procedure (e.g.
//!   `slice-of-concat`, the paper's Listing 4 example);
//! - **dynamic** — the right-hand side is computed from the matched
//!   bindings (`|egraph, subst| { ... }`), e.g. `rope-seq-concat`, which
//!   must slice the `cos`/`sin` tables at the sequence seam (the lemma that
//!   catches Bug 1).
//!
//! Generative lemmas are *constrained* per §4.3.2: they only fire when their
//! target subterm already exists as an e-node, which keeps saturation from
//! blowing up without sacrificing the rewrites refinement proofs need.
//!
//! Every lemma carries metadata — category (`c`lean-op / `v`LLM-style fused
//! / `h`LO-style / general), lines of code, operator-count complexity, and
//! the models that required it — which is exactly the data behind the
//! paper's Figures 5 and 6.
//!
//! # Examples
//!
//! ```
//! use entangle_lemmas::{registry, Category};
//!
//! let lemmas = registry();
//! assert!(lemmas.len() >= 60);
//! let clean = lemmas.iter().filter(|l| l.category == Category::Clean).count();
//! assert!(clean >= 8);
//! // Every lemma has a unique name.
//! let mut names: Vec<_> = lemmas.iter().map(|l| l.name.as_str()).collect();
//! names.sort();
//! names.dedup();
//! assert_eq!(names.len(), lemmas.len());
//! ```

#![forbid(unsafe_code)]

mod analysis;
mod corpus;

pub use analysis::{cond, decode_op, Meta, TensorAnalysis, OP_VOCABULARY};
pub use corpus::{registry, rewrites_of, Category, Lemma};

/// Prefix of *synthetic* leaf names minted by canonicalization lemmas
/// (e.g. the shape-keyed ones-tensor representative `~ones[2, 3]`). These
/// leaves unify e-classes but denote no `G_d` tensor, so the checker's
/// clean-expression extraction must exclude them.
pub const SYNTHETIC_LEAF_PREFIX: char = '~';

#[cfg(test)]
mod tests;
