use entangle_egraph::{EGraph, RecExpr, Runner};
use entangle_ir::{DType, Shape};

use crate::{registry, rewrites_of, Category, TensorAnalysis};

fn eg_with(leaves: &[(&str, &[i64])]) -> EGraph<TensorAnalysis> {
    eg_with_typed(leaves, &[])
}

fn eg_with_typed(
    f32_leaves: &[(&str, &[i64])],
    i64_leaves: &[(&str, &[i64])],
) -> EGraph<TensorAnalysis> {
    let mut a = TensorAnalysis::default();
    for (n, dims) in f32_leaves {
        a.register_leaf(n, Shape::of(dims), DType::F32);
    }
    for (n, dims) in i64_leaves {
        a.register_leaf(n, Shape::of(dims), DType::I64);
    }
    EGraph::with_analysis(a)
}

fn prove_equiv(eg: EGraph<TensorAnalysis>, lhs: &str, rhs: &str) -> bool {
    let mut eg = eg;
    let l = eg.add_expr(&lhs.parse::<RecExpr>().unwrap());
    let r = eg.add_expr(&rhs.parse::<RecExpr>().unwrap());
    let mut runner = Runner::new(eg).with_iter_limit(12).with_node_limit(20_000);
    runner.run(&rewrites_of(&registry()));
    runner.egraph.find(l) == runner.egraph.find(r)
}

#[test]
fn registry_sanity() {
    let lemmas = registry();
    assert!(lemmas.len() >= 60, "corpus has {} lemmas", lemmas.len());
    let mut names: Vec<&str> = lemmas.iter().map(|l| l.name.as_str()).collect();
    names.sort();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate lemma names");
    // Ids are the positions.
    for (i, l) in lemmas.iter().enumerate() {
        assert_eq!(l.id, i);
    }
    // All four categories are populated.
    for cat in [
        Category::Clean,
        Category::General,
        Category::Vllm,
        Category::Hlo,
    ] {
        assert!(
            lemmas.iter().any(|l| l.category == cat),
            "category {cat:?} empty"
        );
    }
    // Complexity and LOC are plausible (Figure 5: most lemmas < 40 LOC).
    assert!(lemmas.iter().all(|l| l.loc >= 1 && l.loc <= 40));
    assert!(lemmas.iter().all(|l| l.complexity >= 1));
}

#[test]
fn figure2_block_matmul() {
    // A = [4,8] split into A1,A2 = [4,4] along dim 1;
    // B = [8,4] split into B1,B2 = [4,4] along dim 0.
    let eg = eg_with(&[
        ("A1", &[4, 4]),
        ("A2", &[4, 4]),
        ("B1", &[4, 4]),
        ("B2", &[4, 4]),
    ]);
    assert!(prove_equiv(
        eg,
        "(matmul (concat A1 A2 1) (concat B1 B2 0))",
        "(add (matmul A1 B1) (matmul A2 B2))"
    ));
}

#[test]
fn column_parallel_linear() {
    let eg = eg_with(&[("X", &[2, 8]), ("W1", &[8, 4]), ("W2", &[8, 4])]);
    assert!(prove_equiv(
        eg,
        "(matmul X (concat W1 W2 1))",
        "(concat (matmul X W1) (matmul X W2) 1)"
    ));
}

#[test]
fn mlp_tensor_parallel_end_to_end() {
    // gelu(X·[W1a|W1b]) · [W2a; W2b] == gelu(X·W1a)·W2a + gelu(X·W1b)·W2b
    let eg = eg_with(&[
        ("X", &[2, 8]),
        ("W1a", &[8, 16]),
        ("W1b", &[8, 16]),
        ("W2a", &[16, 8]),
        ("W2b", &[16, 8]),
    ]);
    assert!(prove_equiv(
        eg,
        "(matmul (gelu (matmul X (concat W1a W1b 1))) (concat W2a W2b 0))",
        "(add (matmul (gelu (matmul X W1a)) W2a) (matmul (gelu (matmul X W1b)) W2b))"
    ));
}

#[test]
fn batched_matmul_respects_rank_mapping() {
    // [B,S,K] x [K,N] with the concat on the rhs n-dim: output concat dim
    // must be 2 (not 1).
    let eg = eg_with(&[("X", &[2, 3, 8]), ("Wa", &[8, 4]), ("Wb", &[8, 4])]);
    assert!(prove_equiv(
        eg,
        "(matmul X (concat Wa Wb 1))",
        "(concat (matmul X Wa) (matmul X Wb) 2)"
    ));
    let eg = eg_with(&[("X", &[2, 3, 8]), ("Wa", &[8, 4]), ("Wb", &[8, 4])]);
    assert!(!prove_equiv(
        eg,
        "(matmul X (concat Wa Wb 1))",
        "(concat (matmul X Wa) (matmul X Wb) 1)"
    ));
}

#[test]
fn contraction_split_requires_matching_seams() {
    // A split 6|2 against B split 4|4 must NOT produce the block identity.
    let eg = eg_with(&[
        ("A1", &[4, 6]),
        ("A2", &[4, 2]),
        ("B1", &[4, 4]),
        ("B2", &[4, 4]),
    ]);
    assert!(!prove_equiv(
        eg,
        "(matmul (concat A1 A2 1) (concat B1 B2 0))",
        "(add (matmul A1 B1) (matmul A2 B2))"
    ));
}

#[test]
fn unary_distributes_over_concat() {
    let eg = eg_with(&[("X1", &[2, 4]), ("X2", &[2, 4])]);
    assert!(prove_equiv(
        eg,
        "(gelu (concat X1 X2 0))",
        "(concat (gelu X1) (gelu X2) 0)"
    ));
    let eg = eg_with(&[("X1", &[2, 4]), ("X2", &[2, 4])]);
    assert!(prove_equiv(
        eg,
        "(silu (concat X1 X2 1))",
        "(concat (silu X1) (silu X2) 1)"
    ));
}

#[test]
fn rms_norm_concat_needs_non_last_dim() {
    let eg = eg_with(&[("X1", &[2, 8]), ("X2", &[2, 8]), ("W", &[8])]);
    assert!(prove_equiv(
        eg,
        "(rms_norm (concat X1 X2 0) W)",
        "(concat (rms_norm X1 W) (rms_norm X2 W) 0)"
    ));
    // Concat on the normalized (last) dim must NOT distribute.
    let eg = eg_with(&[("X1", &[2, 4]), ("X2", &[2, 4]), ("W", &[4]), ("W8", &[8])]);
    assert!(!prove_equiv(
        eg,
        "(rms_norm (concat X1 X2 1) W8)",
        "(concat (rms_norm X1 W) (rms_norm X2 W) 1)"
    ));
}

#[test]
fn softmax_concat_other_dim() {
    let eg = eg_with(&[("X1", &[2, 4]), ("X2", &[2, 4])]);
    assert!(prove_equiv(
        eg,
        "(softmax (concat X1 X2 0) 1)",
        "(concat (softmax X1 1) (softmax X2 1) 0)"
    ));
}

#[test]
fn slice_of_concat_cases() {
    // Within the first part.
    let eg = eg_with(&[("A", &[4, 2]), ("B", &[4, 2])]);
    assert!(prove_equiv(
        eg,
        "(slice (concat A B 0) 0 1 3)",
        "(slice A 0 1 3)"
    ));
    // Within the second part, shifted.
    let eg = eg_with(&[("A", &[4, 2]), ("B", &[4, 2])]);
    assert!(prove_equiv(
        eg,
        "(slice (concat A B 0) 0 5 7)",
        "(slice B 0 1 3)"
    ));
    // Across the seam.
    let eg = eg_with(&[("A", &[4, 2]), ("B", &[4, 2])]);
    assert!(prove_equiv(
        eg,
        "(slice (concat A B 0) 0 2 6)",
        "(concat (slice A 0 2 4) (slice B 0 0 2) 0)"
    ));
    // Different dims push inside.
    let eg = eg_with(&[("A", &[4, 2]), ("B", &[4, 2])]);
    assert!(prove_equiv(
        eg,
        "(slice (concat A B 0) 1 0 1)",
        "(concat (slice A 1 0 1) (slice B 1 0 1) 0)"
    ));
}

#[test]
fn slice_merge_and_full_identity() {
    let eg = eg_with(&[("X", &[8, 2])]);
    assert!(prove_equiv(
        eg,
        "(concat (slice X 0 0 3) (slice X 0 3 8) 0)",
        "X"
    ));
    let eg = eg_with(&[("X", &[8, 2])]);
    assert!(prove_equiv(eg, "(slice X 0 0 8)", "X"));
    // Partial coverage must not collapse to X.
    let eg = eg_with(&[("X", &[8, 2])]);
    assert!(!prove_equiv(
        eg,
        "(concat (slice X 0 0 3) (slice X 0 3 7) 0)",
        "X"
    ));
}

#[test]
fn slices_cover_concat_constrained() {
    // The Figure 2 reduce-scatter pattern: D1, D2 are slices of S covering
    // it; S must become equivalent to concat(D1, D2).
    let eg = eg_with(&[("C1", &[4, 4]), ("C2", &[4, 4])]);
    assert!(prove_equiv(
        eg,
        "(add C1 C2)",
        "(concat (slice (add C1 C2) 0 0 2) (slice (add C1 C2) 0 2 4) 0)"
    ));
}

#[test]
fn sequence_parallel_through_matmul() {
    // X sharded on rows (sequence); matmul of a shard == slice of the full
    // product, provided the full product exists (constrained lemma).
    let eg = eg_with(&[("X", &[8, 4]), ("W", &[4, 4])]);
    assert!(prove_equiv(
        eg,
        "(concat (matmul (slice X 0 0 4) W) (matmul (slice X 0 4 8) W) 0)",
        "(matmul X W)"
    ));
}

#[test]
fn rope_sequence_split() {
    let eg = eg_with(&[
        ("X1", &[2, 4, 8]),
        ("X2", &[2, 4, 8]),
        ("COS", &[8, 8]),
        ("SIN", &[8, 8]),
    ]);
    assert!(prove_equiv(
        eg,
        "(rope (concat X1 X2 1) COS SIN)",
        "(concat (rope X1 (slice COS 0 0 4) (slice SIN 0 0 4)) (rope X2 (slice COS 0 4 8) (slice SIN 0 4 8)) 1)"
    ));
    // Wrong offsets on the second shard's tables — Bug 1 — must not verify.
    let eg = eg_with(&[
        ("X1", &[2, 4, 8]),
        ("X2", &[2, 4, 8]),
        ("COS", &[8, 8]),
        ("SIN", &[8, 8]),
    ]);
    assert!(!prove_equiv(
        eg,
        "(rope (concat X1 X2 1) COS SIN)",
        "(concat (rope X1 (slice COS 0 0 4) (slice SIN 0 0 4)) (rope X2 (slice COS 0 0 4) (slice SIN 0 0 4)) 1)"
    ));
}

#[test]
fn attention_head_split() {
    let eg = eg_with(&[
        ("Q1", &[2, 4, 8]),
        ("Q2", &[2, 4, 8]),
        ("K1", &[2, 4, 8]),
        ("K2", &[2, 4, 8]),
        ("V1", &[2, 4, 8]),
        ("V2", &[2, 4, 8]),
    ]);
    assert!(prove_equiv(
        eg,
        "(attention (concat Q1 Q2 2) (concat K1 K2 2) (concat V1 V2 2) 4 1)",
        "(concat (attention Q1 K1 V1 2 1) (attention Q2 K2 V2 2 1) 2)"
    ));
}

#[test]
fn embedding_lemmas() {
    let eg = eg_with_typed(&[("W", &[100, 8])], &[("I1", &[2, 4]), ("I2", &[2, 4])]);
    assert!(prove_equiv(
        eg,
        "(embedding W (concat I1 I2 1))",
        "(concat (embedding W I1) (embedding W I2) 1)"
    ));
}

#[test]
fn scalar_mul_algebra() {
    // Correctly scaled auxiliary loss: two 1/2-scaled replicas sum to the
    // original.
    let eg = eg_with(&[("AUX", &[])]);
    assert!(prove_equiv(
        eg,
        "(add (scalar_mul AUX 1 2) (scalar_mul AUX 1 2))",
        "AUX"
    ));
    // Missing the scaling (Bug 2): the sum is 2·AUX, not AUX.
    let eg = eg_with(&[("AUX", &[])]);
    assert!(!prove_equiv(eg, "(add AUX AUX)", "AUX"));
    // Composition reduces fractions.
    let eg = eg_with(&[("X", &[4])]);
    assert!(prove_equiv(eg, "(scalar_mul (scalar_mul X 2 3) 3 2)", "X"));
}

#[test]
fn gradient_accumulation_identity() {
    // MSE over the full batch == properly scaled sum of microbatch losses.
    let eg = eg_with(&[
        ("P1", &[2, 4]),
        ("P2", &[2, 4]),
        ("T1", &[2, 4]),
        ("T2", &[2, 4]),
    ]);
    assert!(prove_equiv(
        eg,
        "(mse_loss (concat P1 P2 0) (concat T1 T2 0))",
        "(scalar_mul (add (mse_loss P1 T1) (mse_loss P2 T2)) 1 2)"
    ));
    // Unscaled accumulation (Bug 6) is NOT the sequential loss.
    let eg = eg_with(&[
        ("P1", &[2, 4]),
        ("P2", &[2, 4]),
        ("T1", &[2, 4]),
        ("T2", &[2, 4]),
    ]);
    assert!(!prove_equiv(
        eg,
        "(mse_loss (concat P1 P2 0) (concat T1 T2 0))",
        "(add (mse_loss P1 T1) (mse_loss P2 T2))"
    ));
}

#[test]
fn binary_over_concats_needs_aligned_seams() {
    let eg = eg_with(&[
        ("A", &[2, 4]),
        ("B", &[2, 4]),
        ("C", &[2, 4]),
        ("D", &[2, 4]),
    ]);
    assert!(prove_equiv(
        eg,
        "(add (concat A B 0) (concat C D 0))",
        "(concat (add A C) (add B D) 0)"
    ));
    // Misaligned seams (3|1 vs 2|2) must not split.
    let eg = eg_with(&[
        ("A", &[3, 4]),
        ("B", &[1, 4]),
        ("C", &[2, 4]),
        ("D", &[2, 4]),
    ]);
    assert!(!prove_equiv(
        eg,
        "(add (concat A B 0) (concat C D 0))",
        "(concat (add A C) (add B D) 0)"
    ));
}

#[test]
fn broadcast_mul_gate_split() {
    // Expert outputs concatenated on hidden dim times a broadcast gate.
    let eg = eg_with(&[("H1", &[2, 3, 4]), ("H2", &[2, 3, 4]), ("G", &[2, 3, 1])]);
    assert!(prove_equiv(
        eg,
        "(mul (concat H1 H2 2) G)",
        "(concat (mul H1 G) (mul H2 G) 2)"
    ));
}

#[test]
fn transpose_lemmas() {
    let eg = eg_with(&[("X", &[4, 6])]);
    assert!(prove_equiv(eg, "(transpose (transpose X 0 1) 0 1)", "X"));
    let eg = eg_with(&[("A", &[2, 6]), ("B", &[2, 6])]);
    assert!(prove_equiv(
        eg,
        "(transpose (concat A B 0) 0 1)",
        "(concat (transpose A 0 1) (transpose B 0 1) 1)"
    ));
}

#[test]
fn pad_slice_roundtrip() {
    let eg = eg_with(&[("X", &[6, 2])]);
    assert!(prove_equiv(eg, "(slice (pad X 0 2 3) 0 2 8)", "X"));
    // Mismatched offsets (Bug 3's shape-preserving fault) do not collapse.
    let eg = eg_with(&[("X", &[6, 2])]);
    assert!(!prove_equiv(eg, "(slice (pad X 0 2 3) 0 1 7)", "X"));
}

#[test]
fn decode_op_roundtrip() {
    use crate::analysis::Meta;
    use entangle_ir::Op;
    use entangle_symbolic::SymExpr;

    let t = Meta::tensor(Shape::of(&[2, 4]), DType::F32);
    let s = |v: i64| Meta::scalar(SymExpr::constant(v));

    let (op, n) = crate::decode_op("matmul", &[t.clone(), t.clone()]).unwrap();
    assert_eq!(op, Op::Matmul);
    assert_eq!(n, 2);

    let (op, n) = crate::decode_op("slice", &[t.clone(), s(1), s(0), s(2)]).unwrap();
    assert_eq!(
        op,
        Op::Slice {
            dim: 1,
            start: entangle_ir::Dim::from(0),
            end: entangle_ir::Dim::from(2)
        }
    );
    assert_eq!(n, 1);

    let (op, _) =
        crate::decode_op("attention", &[t.clone(), t.clone(), t.clone(), s(4), s(1)]).unwrap();
    assert_eq!(
        op,
        Op::Attention {
            heads: 4,
            causal: true
        }
    );

    assert!(crate::decode_op("unknown_op", std::slice::from_ref(&t)).is_none());
    // Missing scalar attrs fail gracefully.
    assert!(crate::decode_op("slice", &[t.clone(), t.clone(), s(0), s(2)]).is_none());
}

#[test]
fn analysis_infers_shapes_through_expressions() {
    let mut eg = eg_with(&[("X", &[2, 8]), ("W", &[8, 4])]);
    let id = eg.add_expr(&"(gelu (matmul X W))".parse::<RecExpr>().unwrap());
    let meta = &eg[id].data;
    assert_eq!(meta.shape, Some(Shape::of(&[2, 4])));
    assert_eq!(meta.dtype, Some(DType::F32));
    // Unknown leaves stay unknown.
    let u = eg.add_expr(&"(gelu MYSTERY)".parse::<RecExpr>().unwrap());
    assert_eq!(eg[u].data.shape, None);
}

#[test]
fn vocabulary_matches_decode_op() {
    use crate::{decode_op, Meta, OP_VOCABULARY};
    use entangle_symbolic::SymExpr;
    // Every vocabulary name must decode under at least one small palette of
    // child metadata (tensor children first, then integer attributes) —
    // i.e. the list has no entry `decode_op` does not actually know.
    let tensor_f32 = Meta::tensor(Shape::of(&[4, 4]), DType::F32);
    let tensor_i64 = Meta::tensor(Shape::of(&[4, 4]), DType::I64);
    let int0 = Meta::scalar(SymExpr::constant(0));
    let int1 = Meta::scalar(SymExpr::constant(1));
    for name in OP_VOCABULARY {
        let mut decoded = false;
        'palettes: for tensors in 0..=3usize {
            for attrs in 0..=4usize {
                for ints in [&int0, &int1] {
                    for tensor in [&tensor_f32, &tensor_i64] {
                        let mut metas = vec![tensor.clone(); tensors];
                        metas.extend(std::iter::repeat_n(ints.clone(), attrs));
                        if decode_op(name, &metas).is_some() {
                            decoded = true;
                            break 'palettes;
                        }
                    }
                }
            }
        }
        assert!(decoded, "vocabulary op {name:?} never decodes");
    }
    // And the duals the corpus relies on are present.
    for required in ["scalar_mul", "concat", "slice", "matmul", "attention"] {
        assert!(OP_VOCABULARY.contains(&required));
    }
}

mod condition_gating {
    //! Negative tests: conditioned lemmas must NOT fire when their side
    //! conditions fail — each case here is a soundness bug if it flips.

    use super::*;

    #[test]
    fn attention_head_split_needs_head_boundary() {
        // Hidden 8 with 4 heads has head_dim 2; a 3|5 split does not land
        // on a head boundary and must not split.
        let eg = eg_with(&[
            ("Q1", &[2, 4, 3]),
            ("Q2", &[2, 4, 5]),
            ("K1", &[2, 4, 3]),
            ("K2", &[2, 4, 5]),
            ("V1", &[2, 4, 3]),
            ("V2", &[2, 4, 5]),
        ]);
        assert!(!prove_equiv(
            eg,
            "(attention (concat Q1 Q2 2) (concat K1 K2 2) (concat V1 V2 2) 4 1)",
            "(concat (attention Q1 K1 V1 2 1) (attention Q2 K2 V2 2 1) 2)"
        ));
    }

    #[test]
    fn attention_head_split_needs_matching_kv_seams() {
        // q split 4|4 but k/v split 2|6: outputs must not be equated.
        let eg = eg_with(&[
            ("Q1", &[2, 4, 4]),
            ("Q2", &[2, 4, 4]),
            ("K1", &[2, 4, 2]),
            ("K2", &[2, 4, 6]),
            ("V1", &[2, 4, 2]),
            ("V2", &[2, 4, 6]),
        ]);
        assert!(!prove_equiv(
            eg,
            "(attention (concat Q1 Q2 2) (concat K1 K2 2) (concat V1 V2 2) 4 1)",
            "(concat (attention Q1 K1 V1 2 1) (attention Q2 K2 V2 2 1) 2)"
        ));
    }

    #[test]
    fn rope_hidden_split_needs_even_boundary() {
        // A 3|5 hidden split breaks the interleaved pairs.
        let eg = eg_with(&[
            ("X1", &[2, 4, 3]),
            ("X2", &[2, 4, 5]),
            ("C1", &[4, 3]),
            ("C2", &[4, 5]),
            ("S1", &[4, 3]),
            ("S2", &[4, 5]),
        ]);
        assert!(!prove_equiv(
            eg,
            "(rope (concat X1 X2 2) (concat C1 C2 1) (concat S1 S2 1))",
            "(concat (rope X1 C1 S1) (rope X2 C2 S2) 2)"
        ));
    }

    #[test]
    fn matmul_lhs_split_never_fires_on_contraction_dim() {
        // Splitting only the contraction dim of the left operand is wrong.
        let eg = eg_with(&[("A1", &[4, 2]), ("A2", &[4, 2]), ("B", &[4, 4])]);
        assert!(!prove_equiv(
            eg,
            "(matmul (concat A1 A2 1) B)",
            "(concat (matmul A1 B) (matmul A2 B) 1)"
        ));
    }

    #[test]
    fn matmul_batch_split_needs_broadcastable_other() {
        // Both operands carry a real batch dim; splitting only one is wrong.
        let eg = eg_with(&[("A1", &[1, 4, 4]), ("A2", &[1, 4, 4]), ("B", &[2, 4, 4])]);
        assert!(!prove_equiv(
            eg,
            "(matmul (concat A1 A2 0) B)",
            "(concat (matmul A1 B) (matmul A2 B) 0)"
        ));
    }

    #[test]
    fn broadcast_mul_needs_size_one_axis() {
        // The gate has a real (non-1) dim along the split axis.
        let eg = eg_with(&[("H1", &[2, 3, 4]), ("H2", &[2, 3, 4]), ("G", &[2, 3, 8])]);
        assert!(!prove_equiv(
            eg,
            "(mul (concat H1 H2 2) G)",
            "(concat (mul H1 G) (mul H2 G) 2)"
        ));
    }

    #[test]
    fn softmax_does_not_distribute_over_its_own_dim() {
        let eg = eg_with(&[("X1", &[2, 4]), ("X2", &[2, 4])]);
        assert!(!prove_equiv(
            eg,
            "(softmax (concat X1 X2 1) 1)",
            "(concat (softmax X1 1) (softmax X2 1) 1)"
        ));
    }

    #[test]
    fn scalar_mul_one_requires_nonzero() {
        let eg = eg_with(&[("X", &[4])]);
        assert!(!prove_equiv(eg, "(scalar_mul X 0 0)", "X"));
    }

    #[test]
    fn unknown_shapes_block_conditioned_lemmas() {
        // Leaves without registered metadata: shape conditions cannot be
        // proved, so conditioned lemmas stay silent (completeness loss,
        // never a soundness loss).
        let eg = eg_with(&[]); // nothing registered
        assert!(!prove_equiv(
            eg,
            "(rms_norm (concat U1 U2 0) W)",
            "(concat (rms_norm U1 W) (rms_norm U2 W) 0)"
        ));
    }

    #[test]
    fn sum_dim_reindexes_concat_axis() {
        // Reducing dim 0 (no keepdim) shifts a dim-1 concat down to dim 0.
        let eg = eg_with(&[("A", &[3, 2, 5]), ("B", &[3, 4, 5])]);
        assert!(prove_equiv(
            eg,
            "(sum_dim (concat A B 1) 0 0)",
            "(concat (sum_dim A 0 0) (sum_dim B 0 0) 0)"
        ));
        // With keepdim the axis stays put.
        let eg = eg_with(&[("A", &[3, 2, 5]), ("B", &[3, 4, 5])]);
        assert!(prove_equiv(
            eg,
            "(sum_dim (concat A B 1) 0 1)",
            "(concat (sum_dim A 0 1) (sum_dim B 0 1) 1)"
        ));
    }

    #[test]
    fn mean_all_weights_by_numel() {
        let eg = eg_with(&[("A", &[2, 3]), ("B", &[6, 3])]);
        assert!(prove_equiv(
            eg,
            "(mean_all (concat A B 0))",
            "(add (scalar_mul (mean_all A) 1 4) (scalar_mul (mean_all B) 3 4))"
        ));
    }

    #[test]
    fn mean_dim_distributes_over_other_dims_only() {
        // Mean over the last dim distributes over a batch concat.
        let eg = eg_with(&[("A", &[2, 4]), ("B", &[3, 4])]);
        assert!(prove_equiv(
            eg,
            "(mean_dim (concat A B 0) 1 1)",
            "(concat (mean_dim A 1 1) (mean_dim B 1 1) 0)"
        ));
        // Mean over the concat dim itself must NOT distribute (weighted!).
        let eg = eg_with(&[("A", &[2, 4]), ("B", &[6, 4])]);
        assert!(!prove_equiv(
            eg,
            "(mean_dim (concat A B 0) 0 0)",
            "(concat (mean_dim A 0 0) (mean_dim B 0 0) 0)"
        ));
    }

    #[test]
    fn binary_concat_split_allows_broadcast_on_other_axes() {
        // [2,6] x [2,1] parts: seams on dim 0 align; dim 1 broadcasts.
        let eg = eg_with(&[
            ("A", &[2, 6]),
            ("B", &[2, 6]),
            ("C", &[2, 1]),
            ("D", &[2, 1]),
        ]);
        assert!(prove_equiv(
            eg,
            "(mul (concat A B 0) (concat C D 0))",
            "(concat (mul A C) (mul B D) 0)"
        ));
        // But a size-1 axis cannot be the concat seam itself.
        let eg = eg_with(&[
            ("A", &[2, 6]),
            ("B", &[2, 6]),
            ("C", &[1, 6]),
            ("D", &[1, 6]),
        ]);
        assert!(!prove_equiv(
            eg,
            "(mul (concat A B 0) (concat C D 0))",
            "(concat (mul A C) (mul B D) 0)"
        ));
    }

    #[test]
    fn aligned_concat_requires_bigger_first_operand() {
        // The comm-swapped order (smaller-rank concat first) must NOT fire
        // with the smaller operand's axis as the output dim — the
        // regression test for the soundness bug the harness caught.
        let eg = eg_with(&[
            ("E1", &[2, 8, 4]),
            ("E2", &[2, 8, 4]),
            ("P1", &[8, 4]),
            ("P2", &[8, 4]),
        ]);
        // Correct direction: rank-3 concat (dim 2? no—dim aligning): the
        // canonical use is bias add: [B,S,Ha|Hb] + [Ha|Hb].
        let eg2 = eg_with(&[
            ("X1", &[2, 8, 4]),
            ("X2", &[2, 8, 4]),
            ("B1", &[4]),
            ("B2", &[4]),
        ]);
        assert!(prove_equiv(
            eg2,
            "(add (concat X1 X2 2) (concat B1 B2 0))",
            "(concat (add X1 B1) (add X2 B2) 2)"
        ));
        // Swapped operands must not produce a dim-0 concat of rank-3 sums.
        assert!(!prove_equiv(
            eg,
            "(add (concat P1 P2 0) (concat E1 E2 1))",
            "(concat (add P1 E1) (add P2 E2) 0)"
        ));
    }

    #[test]
    fn ones_like_canonicalization_unifies_seeds() {
        let eg = eg_with(&[("L1", &[]), ("L2", &[])]);
        assert!(prove_equiv(eg, "(ones_like L1)", "(ones_like L2)"));
        // Different shapes stay apart.
        let eg = eg_with(&[("A", &[2]), ("B", &[3])]);
        assert!(!prove_equiv(eg, "(ones_like A)", "(ones_like B)"));
    }

    #[test]
    fn scalar_linearity_family() {
        let eg = eg_with(&[("A", &[2, 4]), ("B", &[4, 3])]);
        assert!(prove_equiv(
            eg,
            "(matmul A (scalar_mul B 2 3))",
            "(scalar_mul (matmul A B) 2 3)"
        ));
        let eg = eg_with(&[("X", &[4])]);
        assert!(prove_equiv(eg, "(neg X)", "(scalar_mul X -1 1)"));
        let eg = eg_with(&[("X", &[2, 4])]);
        assert!(prove_equiv(
            eg,
            "(sum_dim (scalar_mul X 3 2) 0 0)",
            "(scalar_mul (sum_dim X 0 0) 3 2)"
        ));
    }

    #[test]
    fn multiway_slices_cover() {
        // Four adjacent slices of X must stitch back to X (the world-size-4
        // reduce-scatter shape).
        let eg = eg_with(&[("X", &[8, 2])]);
        assert!(prove_equiv(
            eg,
            "(concat (concat (concat (slice X 0 0 2) (slice X 0 2 4) 0) (slice X 0 4 6) 0) (slice X 0 6 8) 0)",
            "X"
        ));
    }

    #[test]
    fn scalar_mul_normalization() {
        let eg = eg_with(&[("X", &[4])]);
        assert!(prove_equiv(eg, "(scalar_mul X 2 8)", "(scalar_mul X 1 4)"));
        let eg = eg_with(&[("X", &[4])]);
        assert!(!prove_equiv(eg, "(scalar_mul X 2 8)", "(scalar_mul X 1 2)"));
    }
}

mod concrete_validation {
    //! Randomized lemma validation against the runtime — the reproduction's
    //! version of §5's lemma checking.

    use entangle_ir::{Dim, Op};
    use entangle_runtime::{eval_op, random_value, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sl(x: &Value, dim: usize, lo: i64, hi: i64) -> Value {
        eval_op(
            &Op::Slice {
                dim,
                start: Dim::from(lo),
                end: Dim::from(hi),
            },
            &[x],
        )
        .unwrap()
    }

    fn cat(a: &Value, b: &Value, dim: usize) -> Value {
        eval_op(&Op::Concat { dim }, &[a, b]).unwrap()
    }

    #[test]
    fn validate_unary_concat_lemmas() {
        let mut rng = StdRng::seed_from_u64(11);
        for op in [
            Op::Gelu,
            Op::Silu,
            Op::Relu,
            Op::Tanh,
            Op::Exp,
            Op::Neg,
            Op::Sigmoid,
        ] {
            let a = random_value(&mut rng, &[3, 4]);
            let b = random_value(&mut rng, &[2, 4]);
            let lhs = eval_op(&op, &[&cat(&a, &b, 0)]).unwrap();
            let rhs = cat(
                &eval_op(&op, &[&a]).unwrap(),
                &eval_op(&op, &[&b]).unwrap(),
                0,
            );
            assert!(lhs.allclose(&rhs, 1e-12), "{op} over concat");
        }
    }

    #[test]
    fn validate_matmul_block_lemmas() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = random_value(&mut rng, &[5, 6]);
        let b = random_value(&mut rng, &[6, 7]);
        let full = eval_op(&Op::Matmul, &[&a, &b]).unwrap();
        // Contraction split.
        let lhs = eval_op(
            &Op::Add,
            &[
                &eval_op(&Op::Matmul, &[&sl(&a, 1, 0, 3), &sl(&b, 0, 0, 3)]).unwrap(),
                &eval_op(&Op::Matmul, &[&sl(&a, 1, 3, 6), &sl(&b, 0, 3, 6)]).unwrap(),
            ],
        )
        .unwrap();
        assert!(lhs.allclose(&full, 1e-9));
        // Column split.
        let cols = cat(
            &eval_op(&Op::Matmul, &[&a, &sl(&b, 1, 0, 4)]).unwrap(),
            &eval_op(&Op::Matmul, &[&a, &sl(&b, 1, 4, 7)]).unwrap(),
            1,
        );
        assert!(cols.allclose(&full, 1e-9));
    }

    #[test]
    fn validate_rms_norm_concat() {
        let mut rng = StdRng::seed_from_u64(13);
        let x1 = random_value(&mut rng, &[2, 8]);
        let x2 = random_value(&mut rng, &[3, 8]);
        let w = random_value(&mut rng, &[8]);
        let lhs = eval_op(&Op::RmsNorm, &[&cat(&x1, &x2, 0), &w]).unwrap();
        let rhs = cat(
            &eval_op(&Op::RmsNorm, &[&x1, &w]).unwrap(),
            &eval_op(&Op::RmsNorm, &[&x2, &w]).unwrap(),
            0,
        );
        assert!(lhs.allclose(&rhs, 1e-12));
    }

    #[test]
    fn validate_rope_seq_split() {
        let mut rng = StdRng::seed_from_u64(14);
        let (s, h) = (6, 4);
        let x = random_value(&mut rng, &[2, s, h]);
        let cos = random_value(&mut rng, &[s, h]);
        let sin = random_value(&mut rng, &[s, h]);
        let full = eval_op(&Op::Rope, &[&x, &cos, &sin]).unwrap();
        let part = cat(
            &eval_op(
                &Op::Rope,
                &[&sl(&x, 1, 0, 3), &sl(&cos, 0, 0, 3), &sl(&sin, 0, 0, 3)],
            )
            .unwrap(),
            &eval_op(
                &Op::Rope,
                &[&sl(&x, 1, 3, 6), &sl(&cos, 0, 3, 6), &sl(&sin, 0, 3, 6)],
            )
            .unwrap(),
            1,
        );
        assert!(part.allclose(&full, 1e-12));
        // And the buggy offsets really do differ numerically.
        let buggy = cat(
            &eval_op(
                &Op::Rope,
                &[&sl(&x, 1, 0, 3), &sl(&cos, 0, 0, 3), &sl(&sin, 0, 0, 3)],
            )
            .unwrap(),
            &eval_op(
                &Op::Rope,
                &[&sl(&x, 1, 3, 6), &sl(&cos, 0, 0, 3), &sl(&sin, 0, 0, 3)],
            )
            .unwrap(),
            1,
        );
        assert!(!buggy.allclose(&full, 1e-6));
    }

    #[test]
    fn validate_mse_weighted_split() {
        let mut rng = StdRng::seed_from_u64(15);
        let p1 = random_value(&mut rng, &[2, 3]);
        let p2 = random_value(&mut rng, &[4, 3]);
        let t1 = random_value(&mut rng, &[2, 3]);
        let t2 = random_value(&mut rng, &[4, 3]);
        let full = eval_op(&Op::MseLoss, &[&cat(&p1, &p2, 0), &cat(&t1, &t2, 0)]).unwrap();
        let l1 = eval_op(&Op::MseLoss, &[&p1, &t1]).unwrap().as_scalar();
        let l2 = eval_op(&Op::MseLoss, &[&p2, &t2]).unwrap().as_scalar();
        let weighted = (6.0 * l1 + 12.0 * l2) / 18.0;
        assert!((full.as_scalar() - weighted).abs() < 1e-12);
    }

    #[test]
    fn validate_softmax_concat_other_dim() {
        let mut rng = StdRng::seed_from_u64(16);
        let a = random_value(&mut rng, &[2, 5]);
        let b = random_value(&mut rng, &[3, 5]);
        let lhs = eval_op(&Op::Softmax { dim: 1 }, &[&cat(&a, &b, 0)]).unwrap();
        let rhs = cat(
            &eval_op(&Op::Softmax { dim: 1 }, &[&a]).unwrap(),
            &eval_op(&Op::Softmax { dim: 1 }, &[&b]).unwrap(),
            0,
        );
        assert!(lhs.allclose(&rhs, 1e-12));
    }
}

#[test]
#[should_panic(expected = "duplicate lemma name registered")]
fn registry_rejects_duplicate_names() {
    let mut b = crate::corpus::Builder::new_for_tests();
    b.uni(
        "dup-name",
        "(add ?a ?b)",
        "(add ?b ?a)",
        Category::Clean,
        &[],
    );
    b.uni(
        "dup-name",
        "(mul ?a ?b)",
        "(mul ?b ?a)",
        Category::Clean,
        &[],
    );
}
