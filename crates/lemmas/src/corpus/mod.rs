//! Lemma registry: the full ordered corpus with per-lemma metadata.

use entangle_egraph::{PatternAst, Rewrite};

use crate::analysis::TensorAnalysis;

mod clean;
mod elementwise;
mod fused;
mod matmul;
mod norm;
mod reduction;

/// Lemma category, matching the x-axis annotations of the paper's Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Operators that can appear in *clean* expressions (slice, concat,
    /// transpose, identity, pad) — marked `c` in Figure 6.
    Clean,
    /// General ATen-style lemmas (unmarked in Figure 6).
    General,
    /// Fused kernels in the style of vLLM's (attention, SiLU) — marked `v`.
    Vllm,
    /// HLO-flavoured operators used by the NeuronX Llama-3 path (RoPE,
    /// RMSNorm) — marked `h`.
    Hlo,
}

impl Category {
    /// The single-letter Figure 6 tag.
    pub fn tag(self) -> char {
        match self {
            Category::Clean => 'c',
            Category::General => ' ',
            Category::Vllm => 'v',
            Category::Hlo => 'h',
        }
    }
}

/// A lemma: a rewrite rule plus the metadata reported in §6.5–6.6.
#[derive(Clone)]
pub struct Lemma {
    /// Stable index in the registry (the Figure 6 x-axis).
    pub id: usize,
    /// Unique lemma name.
    pub name: String,
    /// Category tag.
    pub category: Category,
    /// Source lines used to define the lemma (Figure 5b's CDF).
    pub loc: usize,
    /// Number of operators appearing in the lemma (Figure 5a's complexity).
    pub complexity: usize,
    /// Models that required adding this lemma beyond the base ATen set
    /// (empty slice = base corpus); drives Figure 5a's per-model counts.
    pub models: Vec<&'static str>,
    /// The rewrite rule itself.
    pub rewrite: Rewrite<TensorAnalysis>,
}

impl std::fmt::Debug for Lemma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lemma#{} {} [{}]",
            self.id,
            self.name,
            self.category.tag()
        )
    }
}

/// Counts operator applications in a pattern (the paper's complexity
/// measure: "the number of operators appearing in the lemma").
pub(crate) fn pattern_ops(ast: &PatternAst) -> usize {
    match ast {
        PatternAst::Op(_, ch) if !ch.is_empty() => 1 + ch.iter().map(pattern_ops).sum::<usize>(),
        _ => 0,
    }
}

pub(crate) struct Builder {
    lemmas: Vec<Lemma>,
}

impl Builder {
    fn new() -> Builder {
        Builder { lemmas: Vec::new() }
    }

    /// An empty builder for registration-invariant tests.
    #[cfg(test)]
    pub(crate) fn new_for_tests() -> Builder {
        Builder::new()
    }

    /// Registers a lemma, assigning the next id.
    ///
    /// # Panics
    ///
    /// Panics when a lemma with the same name is already registered: a
    /// duplicate would silently shadow the earlier lemma in every
    /// name-keyed consumer (Figure 6 stats, the audit, certificates, the
    /// backoff schedule), so the registry rejects it outright.
    pub(crate) fn push(
        &mut self,
        rewrite: Rewrite<TensorAnalysis>,
        category: Category,
        loc: usize,
        complexity: usize,
        models: &[&'static str],
    ) {
        assert!(
            !self.lemmas.iter().any(|l| l.name == rewrite.name()),
            "duplicate lemma name registered: {:?}",
            rewrite.name()
        );
        self.lemmas.push(Lemma {
            id: self.lemmas.len(),
            name: rewrite.name().to_owned(),
            category,
            loc,
            complexity,
            models: models.to_vec(),
            rewrite,
        });
    }

    /// Universal lemma: complexity derived from both pattern sides.
    pub(crate) fn uni(
        &mut self,
        name: &str,
        lhs: &str,
        rhs: &str,
        category: Category,
        models: &[&'static str],
    ) {
        let rw = Rewrite::parse(name, lhs, rhs).unwrap_or_else(|e| panic!("lemma {name}: {e}"));
        let complexity = pattern_ops(rw.searcher().ast())
            + pattern_ops(
                &rhs.parse::<entangle_egraph::Pattern>()
                    .expect("rhs parses")
                    .ast()
                    .clone(),
            );
        // Universal lemmas are one-to-two-liners in the DSL (§5).
        self.push(rw, category, 2, complexity, models);
    }
}

/// Builds the full lemma corpus in its canonical order.
///
/// The order is stable: lemma ids index the Figure 6 heatmap columns.
pub fn registry() -> Vec<Lemma> {
    let mut b = Builder::new();
    clean::install(&mut b);
    elementwise::install(&mut b);
    matmul::install(&mut b);
    reduction::install(&mut b);
    norm::install(&mut b);
    fused::install(&mut b);
    b.lemmas
}

/// Extracts the plain rewrites from a lemma slice (what the runner takes).
pub fn rewrites_of(lemmas: &[Lemma]) -> Vec<Rewrite<TensorAnalysis>> {
    lemmas.iter().map(|l| l.rewrite.clone()).collect()
}
