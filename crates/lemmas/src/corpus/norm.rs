//! Normalization lemmas. `layer_norm` is part of the base ATen corpus;
//! `rms_norm` lemmas are in the HLO category (`h`) — they were added for the
//! Transformers-NeuronX Llama-3 path, mirroring the paper's §6.5 example
//! lemma `RMSNorm(concat(X₁, X₂, 0), W) = concat(RMSNorm(X₁, W),
//! RMSNorm(X₂, W), 0)`.

use entangle_egraph::{ENode, Rewrite, Var};

use crate::analysis::cond::{int, rank};
use crate::corpus::{Builder, Category};

fn v(name: &str) -> Var {
    Var::new(name)
}

pub(crate) fn install(b: &mut Builder) {
    // layer_norm normalizes the last dim: it distributes over any other dim.
    let rw = Rewrite::parse_if(
        "layer_norm-of-concat",
        "(layer_norm (concat ?x0 ?x1 ?d) ?w ?b)",
        "(concat (layer_norm ?x0 ?w ?b) (layer_norm ?x1 ?w ?b) ?d)",
        |eg, _id, subst| {
            matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x0")])),
                (Some(d), Some(r)) if d != r as i64 - 1
            )
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 12, 5, &[]);

    let rw = Rewrite::parse_if(
        "layer_norm-of-slice",
        "(layer_norm (slice ?x ?d ?lo ?hi) ?w ?b)",
        "(slice (layer_norm ?x ?w ?b) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let dim_ok = matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x")])),
                (Some(d), Some(r)) if d != r as i64 - 1
            );
            dim_ok
                && eg
                    .lookup(&ENode::op(
                        "layer_norm",
                        vec![subst[v("x")], subst[v("w")], subst[v("b")]],
                    ))
                    .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 14, 3, &[]);

    let rw = Rewrite::parse_if(
        "slice-of-layer_norm",
        "(slice (layer_norm ?x ?w ?b) ?d ?lo ?hi)",
        "(layer_norm (slice ?x ?d ?lo ?hi) ?w ?b)",
        |eg, _id, subst| {
            matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x")])),
                (Some(d), Some(r)) if d != r as i64 - 1
            )
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 12, 3, &[]);

    // The paper's §6.5 example, verbatim (HLO category, added for Llama-3).
    let rw = Rewrite::parse_if(
        "rms_norm-of-concat",
        "(rms_norm (concat ?x0 ?x1 ?d) ?w)",
        "(concat (rms_norm ?x0 ?w) (rms_norm ?x1 ?w) ?d)",
        |eg, _id, subst| {
            matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x0")])),
                (Some(d), Some(r)) if d != r as i64 - 1
            )
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 12, 5, &["llama3", "qwen2"]);

    let rw = Rewrite::parse_if(
        "rms_norm-of-slice",
        "(rms_norm (slice ?x ?d ?lo ?hi) ?w)",
        "(slice (rms_norm ?x ?w) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let dim_ok = matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x")])),
                (Some(d), Some(r)) if d != r as i64 - 1
            );
            dim_ok
                && eg
                    .lookup(&ENode::op("rms_norm", vec![subst[v("x")], subst[v("w")]]))
                    .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 14, 3, &["llama3", "qwen2"]);

    let rw = Rewrite::parse_if(
        "slice-of-rms_norm",
        "(slice (rms_norm ?x ?w) ?d ?lo ?hi)",
        "(rms_norm (slice ?x ?d ?lo ?hi) ?w)",
        |eg, _id, subst| {
            matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x")])),
                (Some(d), Some(r)) if d != r as i64 - 1
            )
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 12, 3, &["llama3", "qwen2"]);
}
