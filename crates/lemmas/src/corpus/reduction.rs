//! Reduction and loss lemmas: sums, means, softmax, MSE, cross-entropy and
//! rational scaling. The scaling lemmas are the algebra behind the
//! auxiliary-loss (Bug 2) and gradient-accumulation (Bug 6) detections:
//! `scalar_mul` is *not* a clean operator, so a distributed loss that can
//! only be related to the sequential one through a leftover scale factor
//! fails refinement.

use entangle_egraph::{Rewrite, Var};
use entangle_symbolic::SymExpr;

use crate::analysis::cond::{add_op, add_scalar, int, rank, shape};
use crate::corpus::{Builder, Category};

fn v(name: &str) -> Var {
    Var::new(name)
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

/// Reduces `n/d` to lowest terms (fractions in relations are canonical).
fn reduced(n: i64, d: i64) -> (i64, i64) {
    let g = gcd(n, d).max(1);
    (n / g, d / g)
}

pub(crate) fn install(b: &mut Builder) {
    // Summing over the concatenated dim adds the per-part sums (this is
    // what all-reduce ultimately is).
    b.uni(
        "sum_dim-of-concat-same",
        "(sum_dim (concat ?a ?b ?d) ?d ?k)",
        "(add (sum_dim ?a ?d ?k) (sum_dim ?b ?d ?k))",
        Category::General,
        &[],
    );

    // Summing over another dim distributes over the concat, with the concat
    // dim re-indexed when the reduced dim disappears.
    let rw = Rewrite::parse_dyn(
        "sum_dim-of-concat-other",
        "(sum_dim (concat ?a ?b ?d1) ?d2 ?k)",
        |eg, _id, subst| {
            let (Some(d1), Some(d2), Some(k)) = (
                int(eg, subst[v("d1")]),
                int(eg, subst[v("d2")]),
                int(eg, subst[v("k")]),
            ) else {
                return vec![];
            };
            if d1 == d2 {
                return vec![];
            }
            let (d2c, kc) = (subst[v("d2")], subst[v("k")]);
            let sa = add_op(eg, "sum_dim", vec![subst[v("a")], d2c, kc]);
            let sb = add_op(eg, "sum_dim", vec![subst[v("b")], d2c, kc]);
            let dout = if k == 0 && d2 < d1 { d1 - 1 } else { d1 };
            let doutc = add_scalar(eg, SymExpr::constant(dout));
            vec![add_op(eg, "concat", vec![sa, sb, doutc])]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 18, 4, &[]);

    // Mean over a dim untouched by the concat distributes (the reduced-dim
    // case is a weighted sum and is intentionally *not* a lemma — that is
    // how unscaled accumulations get caught).
    let rw = Rewrite::parse_dyn(
        "mean_dim-of-concat-other",
        "(mean_dim (concat ?a ?b ?d1) ?d2 ?k)",
        |eg, _id, subst| {
            let (Some(d1), Some(d2), Some(k)) = (
                int(eg, subst[v("d1")]),
                int(eg, subst[v("d2")]),
                int(eg, subst[v("k")]),
            ) else {
                return vec![];
            };
            if d1 == d2 {
                return vec![];
            }
            let (d2c, kc) = (subst[v("d2")], subst[v("k")]);
            let ma = add_op(eg, "mean_dim", vec![subst[v("a")], d2c, kc]);
            let mb = add_op(eg, "mean_dim", vec![subst[v("b")], d2c, kc]);
            let dout = if k == 0 && d2 < d1 { d1 - 1 } else { d1 };
            let doutc = add_scalar(eg, SymExpr::constant(dout));
            vec![add_op(eg, "concat", vec![ma, mb, doutc])]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 18, 4, &["llama3"]);

    // Slicing along a non-reduced dim commutes with mean_dim (dims shift
    // when the reduction dropped an earlier axis).
    let rw = Rewrite::parse_dyn(
        "mean_dim-of-slice",
        "(mean_dim (slice ?x ?d ?lo ?hi) ?d2 ?k)",
        |eg, _id, subst| {
            let (Some(d), Some(d2), Some(k)) = (
                int(eg, subst[v("d")]),
                int(eg, subst[v("d2")]),
                int(eg, subst[v("k")]),
            ) else {
                return vec![];
            };
            if d == d2 {
                return vec![];
            }
            // Constrained: the full-tensor mean must already exist.
            let target = entangle_egraph::ENode::op(
                "mean_dim",
                vec![subst[v("x")], subst[v("d2")], subst[v("k")]],
            );
            if eg.lookup(&target).is_none() {
                return vec![];
            }
            let m = add_op(
                eg,
                "mean_dim",
                vec![subst[v("x")], subst[v("d2")], subst[v("k")]],
            );
            let dout = if k == 0 && d2 < d { d - 1 } else { d };
            let doutc = add_scalar(eg, SymExpr::constant(dout));
            vec![add_op(
                eg,
                "slice",
                vec![m, doutc, subst[v("lo")], subst[v("hi")]],
            )]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 24, 3, &["llama3"]);

    b.uni(
        "sum_all-of-concat",
        "(sum_all (concat ?a ?b ?d))",
        "(add (sum_all ?a) (sum_all ?b))",
        Category::General,
        &[],
    );

    // Mean of a concat is the numel-weighted mean of the parts.
    let rw = Rewrite::parse_dyn(
        "mean_all-of-concat",
        "(mean_all (concat ?a ?b ?d))",
        |eg, _id, subst| {
            let (Some(sa), Some(sb)) = (shape(eg, subst[v("a")]), shape(eg, subst[v("b")])) else {
                return vec![];
            };
            let (Some(na), Some(nb)) = (sa.numel(), sb.numel()) else {
                return vec![];
            };
            let n = na + nb;
            let ma = add_op(eg, "mean_all", vec![subst[v("a")]]);
            let mb = add_op(eg, "mean_all", vec![subst[v("b")]]);
            let (na_r, nda) = reduced(na, n);
            let (nb_r, ndb) = reduced(nb, n);
            let (nac, nca) = (
                add_scalar(eg, SymExpr::constant(na_r)),
                add_scalar(eg, SymExpr::constant(nda)),
            );
            let (nbc, ncb) = (
                add_scalar(eg, SymExpr::constant(nb_r)),
                add_scalar(eg, SymExpr::constant(ndb)),
            );
            let wa = add_op(eg, "scalar_mul", vec![ma, nac, nca]);
            let wb = add_op(eg, "scalar_mul", vec![mb, nbc, ncb]);
            vec![add_op(eg, "add", vec![wa, wb])]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 20, 6, &[]);

    // Softmax along a dim untouched by the concat distributes.
    let rw = Rewrite::parse_if(
        "softmax-of-concat",
        "(softmax (concat ?a ?b ?d1) ?d2)",
        "(concat (softmax ?a ?d2) (softmax ?b ?d2) ?d1)",
        |eg, _id, subst| {
            matches!(
                (int(eg, subst[v("d1")]), int(eg, subst[v("d2")])),
                (Some(d1), Some(d2)) if d1 != d2
            )
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 10, 5, &[]);

    let rw = Rewrite::parse_if(
        "softmax-of-slice",
        "(softmax (slice ?x ?d ?lo ?hi) ?d2)",
        "(slice (softmax ?x ?d2) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let same_dim = matches!(
                (int(eg, subst[v("d")]), int(eg, subst[v("d2")])),
                (Some(d), Some(d2)) if d != d2
            );
            same_dim
                && eg
                    .lookup(&entangle_egraph::ENode::op(
                        "softmax",
                        vec![subst[v("x")], subst[v("d2")]],
                    ))
                    .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 12, 3, &[]);

    // MSE over a batch concat is the numel-weighted sum of part losses —
    // the gradient-accumulation identity (Bug 6).
    let rw = Rewrite::parse_dyn(
        "mse-of-concat",
        "(mse_loss (concat ?p0 ?p1 ?d) (concat ?t0 ?t1 ?d))",
        |eg, _id, subst| {
            let (Some(sp0), Some(sp1), Some(st0)) = (
                shape(eg, subst[v("p0")]),
                shape(eg, subst[v("p1")]),
                shape(eg, subst[v("t0")]),
            ) else {
                return vec![];
            };
            if sp0 != st0 {
                return vec![]; // prediction/target seams must align
            }
            let (Some(n0), Some(n1)) = (sp0.numel(), sp1.numel()) else {
                return vec![];
            };
            let n = n0 + n1;
            let l0 = add_op(eg, "mse_loss", vec![subst[v("p0")], subst[v("t0")]]);
            let l1 = add_op(eg, "mse_loss", vec![subst[v("p1")], subst[v("t1")]]);
            let (n0_r, d0) = reduced(n0, n);
            let (n1_r, d1) = reduced(n1, n);
            let (n0c, d0c) = (
                add_scalar(eg, SymExpr::constant(n0_r)),
                add_scalar(eg, SymExpr::constant(d0)),
            );
            let (n1c, d1c) = (
                add_scalar(eg, SymExpr::constant(n1_r)),
                add_scalar(eg, SymExpr::constant(d1)),
            );
            let w0 = add_op(eg, "scalar_mul", vec![l0, n0c, d0c]);
            let w1 = add_op(eg, "scalar_mul", vec![l1, n1c, d1c]);
            vec![add_op(eg, "add", vec![w0, w1])]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 24, 6, &["regression"]);

    // Cross-entropy over a batch concat: row-weighted sum of part losses
    // (valid when the concat is not on the vocab dim).
    let rw = Rewrite::parse_dyn(
        "cross_entropy-of-concat",
        "(cross_entropy (concat ?l0 ?l1 ?d) (concat ?t0 ?t1 ?d))",
        |eg, _id, subst| {
            let (Some(d), Some(rl)) = (int(eg, subst[v("d")]), rank(eg, subst[v("l0")])) else {
                return vec![];
            };
            if d == rl as i64 - 1 {
                return vec![]; // vocab-dim split is not batch accumulation
            }
            let (Some(sl0), Some(sl1)) = (shape(eg, subst[v("l0")]), shape(eg, subst[v("l1")]))
            else {
                return vec![];
            };
            let (Some(v0), Some(v1)) = (sl0.dim(rl - 1).as_const(), sl1.dim(rl - 1).as_const())
            else {
                return vec![];
            };
            let (Some(n0), Some(n1)) = (sl0.numel(), sl1.numel()) else {
                return vec![];
            };
            let (r0, r1) = (n0 / v0, n1 / v1); // row counts
            let c0 = add_op(eg, "cross_entropy", vec![subst[v("l0")], subst[v("t0")]]);
            let c1 = add_op(eg, "cross_entropy", vec![subst[v("l1")], subst[v("t1")]]);
            let (r0_r, e0) = reduced(r0, r0 + r1);
            let (r1_r, e1) = reduced(r1, r0 + r1);
            let (r0c, e0c) = (
                add_scalar(eg, SymExpr::constant(r0_r)),
                add_scalar(eg, SymExpr::constant(e0)),
            );
            let (r1c, e1c) = (
                add_scalar(eg, SymExpr::constant(r1_r)),
                add_scalar(eg, SymExpr::constant(e1)),
            );
            let w0 = add_op(eg, "scalar_mul", vec![c0, r0c, e0c]);
            let w1 = add_op(eg, "scalar_mul", vec![c1, r1c, e1c]);
            vec![add_op(eg, "add", vec![w0, w1])]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 28, 6, &["gpt"]);

    // ----- rational scaling algebra -----

    let rw = Rewrite::parse_dyn(
        "scalar_mul-compose",
        "(scalar_mul (scalar_mul ?x ?a ?b) ?c ?e)",
        |eg, _id, subst| {
            let (Some(a), Some(bb), Some(c), Some(e)) = (
                int(eg, subst[v("a")]),
                int(eg, subst[v("b")]),
                int(eg, subst[v("c")]),
                int(eg, subst[v("e")]),
            ) else {
                return vec![];
            };
            let (mut n, mut d) = (a * c, bb * e);
            let g = gcd(n, d).max(1);
            n /= g;
            d /= g;
            let nc = add_scalar(eg, SymExpr::constant(n));
            let dc = add_scalar(eg, SymExpr::constant(d));
            vec![add_op(eg, "scalar_mul", vec![subst[v("x")], nc, dc])]
        },
    )
    .expect("parses")
    // Static sketch for the rule analyzer: the applier mints a fresh
    // gcd-reduced fraction (?fn ?fd are unbound on purpose).
    .with_rhs_hint("(scalar_mul ?x ?fn ?fd)")
    .expect("hint parses");
    b.push(rw, Category::General, 14, 2, &[]);

    // Fractions in relations are canonical: 2/8 rewrites to 1/4, so scale
    // factors produced by different derivation paths meet in one e-class.
    let rw = Rewrite::parse_dyn(
        "scalar_mul-normalize",
        "(scalar_mul ?x ?n ?m)",
        |eg, _id, subst| {
            let (Some(n), Some(m)) = (int(eg, subst[v("n")]), int(eg, subst[v("m")])) else {
                return vec![];
            };
            let g = gcd(n, m);
            if g <= 1 {
                return vec![];
            }
            let nc = add_scalar(eg, SymExpr::constant(n / g));
            let mc = add_scalar(eg, SymExpr::constant(m / g));
            vec![add_op(eg, "scalar_mul", vec![subst[v("x")], nc, mc])]
        },
    )
    .expect("parses")
    .with_rhs_hint("(scalar_mul ?x ?fn ?fd)")
    .expect("hint parses");
    b.push(rw, Category::General, 12, 1, &[]);

    let rw = Rewrite::parse_if(
        "scalar_mul-one",
        "(scalar_mul ?x ?n ?n)",
        "?x",
        |eg, _id, subst| int(eg, subst[v("n")]).is_some_and(|n| n != 0),
    )
    .expect("parses");
    b.push(rw, Category::General, 6, 1, &[]);

    b.uni(
        "scalar_mul-distribute",
        "(scalar_mul (add ?x ?y) ?n ?m)",
        "(add (scalar_mul ?x ?n ?m) (scalar_mul ?y ?n ?m))",
        Category::General,
        &[],
    );
    b.uni(
        "scalar_mul-factor",
        "(add (scalar_mul ?x ?n ?m) (scalar_mul ?y ?n ?m))",
        "(scalar_mul (add ?x ?y) ?n ?m)",
        Category::General,
        &[],
    );

    // Adding two scalings of the *same* tensor sums the fractions — how a
    // correctly 1/T-scaled auxiliary loss collapses back to the sequential
    // loss after its all-reduce (Bug 2's correct variant).
    let rw = Rewrite::parse_dyn(
        "scalar_mul-add-same",
        "(add (scalar_mul ?x ?a ?b) (scalar_mul ?x ?c ?e))",
        |eg, _id, subst| {
            let (Some(a), Some(bb), Some(c), Some(e)) = (
                int(eg, subst[v("a")]),
                int(eg, subst[v("b")]),
                int(eg, subst[v("c")]),
                int(eg, subst[v("e")]),
            ) else {
                return vec![];
            };
            let (mut n, mut d) = (a * e + c * bb, bb * e);
            let g = gcd(n, d).max(1);
            n /= g;
            d /= g;
            let nc = add_scalar(eg, SymExpr::constant(n));
            let dc = add_scalar(eg, SymExpr::constant(d));
            vec![add_op(eg, "scalar_mul", vec![subst[v("x")], nc, dc])]
        },
    )
    .expect("parses")
    .with_rhs_hint("(scalar_mul ?x ?fn ?fd)")
    .expect("hint parses");
    b.push(rw, Category::General, 16, 3, &["bytedance-moe"]);

    // x + x = 2x: makes a missing 1/T scale visible as a leftover
    // (non-clean) scalar_mul.
    b.uni(
        "add-self",
        "(add ?x ?x)",
        "(scalar_mul ?x 2 1)",
        Category::General,
        &["bytedance-moe"],
    );

    // ----- linearity: scalar_mul commutes with linear operators -----
    // Backward graphs produced by autodiff are full of `(2/N)·(…)` factors
    // that must float to a canonical position to meet their distributed
    // counterparts.

    b.uni(
        "matmul-scalar-rhs",
        "(matmul ?a (scalar_mul ?b ?n ?m))",
        "(scalar_mul (matmul ?a ?b) ?n ?m)",
        Category::General,
        &["dp-training"],
    );
    b.uni(
        "matmul-scalar-lhs",
        "(matmul (scalar_mul ?a ?n ?m) ?b)",
        "(scalar_mul (matmul ?a ?b) ?n ?m)",
        Category::General,
        &["dp-training"],
    );
    b.uni(
        "mul-scalar-left",
        "(mul (scalar_mul ?x ?n ?m) ?y)",
        "(scalar_mul (mul ?x ?y) ?n ?m)",
        Category::General,
        &["dp-training"],
    );
    b.uni(
        "sum_dim-of-scalar_mul",
        "(sum_dim (scalar_mul ?x ?n ?m) ?d ?k)",
        "(scalar_mul (sum_dim ?x ?d ?k) ?n ?m)",
        Category::General,
        &["dp-training"],
    );
    b.uni(
        "sum_all-of-scalar_mul",
        "(sum_all (scalar_mul ?x ?n ?m))",
        "(scalar_mul (sum_all ?x) ?n ?m)",
        Category::General,
        &["dp-training"],
    );
    b.uni(
        "neg-as-scalar-mul",
        "(neg ?x)",
        "(scalar_mul ?x -1 1)",
        Category::General,
        &["dp-training"],
    );
    b.uni(
        "sub-as-add-neg",
        "(sub ?a ?b)",
        "(add ?a (neg ?b))",
        Category::General,
        &["dp-training"],
    );

    // ones_like is input-oblivious: every ones_like with the same output
    // shape denotes the same constant tensor. Canonicalize through a
    // shape-keyed representative so autodiff gradient seeds taken from
    // different tensors (e.g. the full loss vs a replica loss) unify.
    let rw = Rewrite::parse_dyn("ones_like-canonical", "(ones_like ?x)", |eg, _id, subst| {
        let Some(s) = shape(eg, subst[v("x")]) else {
            return vec![];
        };
        vec![add_op(eg, &format!("~ones{s}"), vec![])]
    })
    .expect("parses");
    b.push(rw, Category::General, 10, 1, &["dp-training"]);

    // Multiplying by a ones-tensor that broadcasts away is the identity —
    // autodiff's scalar gradient seed (`ones_like(loss)`) and reduction
    // expansions hinge on this.
    let rw = Rewrite::parse_if(
        "mul-ones-like",
        "(mul ?x (ones_like ?y))",
        "?x",
        |eg, _id, subst| {
            let (Some(sx), Some(sy)) = (shape(eg, subst[v("x")]), shape(eg, subst[v("y")])) else {
                return false;
            };
            // ones_like(y) must broadcast into x's shape without growing it.
            sx.broadcast(&sy).as_ref() == Some(&sx)
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 12, 2, &["dp-training"]);
}
