//! Element-wise lemmas: unary and binary operators distribute over the
//! clean rearrangement operators. These carry most sequence-parallel and
//! data-layout proofs.

use entangle_egraph::{Rewrite, Var};

use crate::analysis::cond::{int, rank, shape};
use crate::analysis::TensorAnalysis;
use crate::corpus::{Builder, Category};

fn v(name: &str) -> Var {
    Var::new(name)
}

/// Unary ops that distribute elementwise over concat and slice. SiLU is
/// installed separately under the vLLM category (it entered the corpus with
/// Qwen2), and GELU is attributed to GPT.
const UNARY_BASE: &[&str] = &[
    "neg",
    "exp",
    "sqrt",
    "rsqrt",
    "tanh",
    "relu",
    "sigmoid",
    "cos",
    "sin",
    "step",
    "ones_like",
];

fn unary_family(b: &mut Builder, op: &str, category: Category, models: &[&'static str]) {
    b.uni(
        &format!("{op}-of-concat"),
        &format!("({op} (concat ?a ?b ?d))"),
        &format!("(concat ({op} ?a) ({op} ?b) ?d)"),
        category,
        models,
    );
    // Pushing a slice inside is always sound for elementwise ops.
    b.uni(
        &format!("slice-of-{op}"),
        &format!("(slice ({op} ?x) ?d ?lo ?hi)"),
        &format!("({op} (slice ?x ?d ?lo ?hi))"),
        category,
        models,
    );
    // Pulling a slice out is generative (mints the full-tensor term), so it
    // is *constrained*: it only fires when the full-tensor application
    // already exists as an e-node (§4.3.2).
    let name = format!("{op}-of-slice");
    let lhs = format!("({op} (slice ?x ?d ?lo ?hi))");
    let rhs = format!("(slice ({op} ?x) ?d ?lo ?hi)");
    let opname = op.to_owned();
    let rw = Rewrite::parse_if(
        &name,
        &lhs,
        &rhs,
        move |eg: &entangle_egraph::EGraph<TensorAnalysis>, _id, subst| {
            let target = entangle_egraph::ENode::op(&opname, vec![subst[v("x")]]);
            eg.lookup(&target).is_some()
        },
    )
    .expect("parses");
    b.push(rw, category, 6, 2, models);
}

fn binary_family(b: &mut Builder, op: &'static str, models: &[&'static str]) {
    // Two concats with aligned seams split into per-part applications.
    let rw = Rewrite::parse_if(
        &format!("{op}-of-concats"),
        &format!("({op} (concat ?a ?b ?d) (concat ?c ?e ?d))"),
        &format!("(concat ({op} ?a ?c) ({op} ?b ?e) ?d)"),
        |eg, _id, subst| {
            // Seams must align on the shared concat axis; the parts may
            // broadcast against each other on *other* axes (e.g.
            // [2,6] x [2,1]), but a size-1 broadcast axis cannot also be
            // the concat seam.
            let (Some(d), Some(sa), Some(sc)) = (
                int(eg, subst[v("d")]),
                shape(eg, subst[v("a")]),
                shape(eg, subst[v("c")]),
            ) else {
                return false;
            };
            let d = d as usize;
            sa.rank() == sc.rank()
                && d < sa.rank()
                && sa.dim(d) == sc.dim(d)
                && sa.broadcast(&sc).is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 18, 5, models);

    // Slice pushes into both operands of an equal-shape binary op.
    let rw = Rewrite::parse_if(
        &format!("slice-of-{op}"),
        &format!("(slice ({op} ?x ?y) ?d ?lo ?hi)"),
        &format!("({op} (slice ?x ?d ?lo ?hi) (slice ?y ?d ?lo ?hi))"),
        |eg, _id, subst| match (shape(eg, subst[v("x")]), shape(eg, subst[v("y")])) {
            (Some(sx), Some(sy)) => sx == sy,
            _ => false,
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 12, 4, models);

    // Pulling a shared slice out is constrained on the full-tensor term.
    let rw = Rewrite::parse_if(
        &format!("{op}-of-slices"),
        &format!("({op} (slice ?x ?d ?lo ?hi) (slice ?y ?d ?lo ?hi))"),
        &format!("(slice ({op} ?x ?y) ?d ?lo ?hi)"),
        move |eg, _id, subst| {
            let same = match (shape(eg, subst[v("x")]), shape(eg, subst[v("y")])) {
                (Some(sx), Some(sy)) => sx == sy,
                _ => false,
            };
            same && eg
                .lookup(&entangle_egraph::ENode::op(
                    op,
                    vec![subst[v("x")], subst[v("y")]],
                ))
                .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 14, 4, models);
}

/// Broadcast-aware distribution: splitting the bigger operand along a dim
/// the smaller one broadcasts over.
fn broadcast_family(b: &mut Builder, op: &'static str) {
    let broadcast_ok = move |eg: &entangle_egraph::EGraph<TensorAnalysis>,
                             subst: &entangle_egraph::Subst,
                             big: &str,
                             small: &str|
          -> bool {
        let (Some(d), Some(rbig), Some(sm)) = (
            int(eg, subst[v("d")]),
            rank(eg, subst[v(big)]),
            shape(eg, subst[v(small)]),
        ) else {
            return false;
        };
        // Right-aligned broadcast: the small operand either lacks dim `d`
        // or has size 1 there — splitting the big operand along `d` then
        // applies the small operand unchanged to both parts.
        let aligned = d - (rbig as i64 - sm.rank() as i64);
        aligned < 0 || sm.dim(aligned as usize).as_const() == Some(1)
    };
    let rw = Rewrite::parse_if(
        &format!("{op}-concat-broadcast-left"),
        &format!("({op} (concat ?a ?b ?d) ?c)"),
        &format!("(concat ({op} ?a ?c) ({op} ?b ?c) ?d)"),
        move |eg, _id, subst| broadcast_ok(eg, subst, "a", "c"),
    )
    .expect("parses");
    b.push(rw, Category::General, 14, 4, &["bytedance-moe"]);

    let rw = Rewrite::parse_if(
        &format!("{op}-concat-broadcast-right"),
        &format!("({op} ?c (concat ?a ?b ?d))"),
        &format!("(concat ({op} ?c ?a) ({op} ?c ?b) ?d)"),
        move |eg, _id, subst| broadcast_ok(eg, subst, "a", "c"),
    )
    .expect("parses");
    b.push(rw, Category::General, 14, 4, &["bytedance-moe"]);
}

pub(crate) fn install(b: &mut Builder) {
    for op in UNARY_BASE {
        unary_family(b, op, Category::General, &[]);
    }
    unary_family(b, "gelu", Category::General, &["gpt"]);
    unary_family(b, "gelu_grad", Category::General, &["gpt"]);
    unary_family(b, "silu", Category::Vllm, &["qwen2", "llama3"]);
    unary_family(b, "silu_grad", Category::Vllm, &["qwen2", "llama3"]);

    // scalar_mul behaves like a unary op with two attribute scalars.
    b.uni(
        "scalar_mul-of-concat",
        "(scalar_mul (concat ?a ?b ?d) ?n ?m)",
        "(concat (scalar_mul ?a ?n ?m) (scalar_mul ?b ?n ?m) ?d)",
        Category::General,
        &[],
    );
    b.uni(
        "slice-of-scalar_mul",
        "(slice (scalar_mul ?x ?n ?m) ?d ?lo ?hi)",
        "(scalar_mul (slice ?x ?d ?lo ?hi) ?n ?m)",
        Category::General,
        &[],
    );
    let rw = Rewrite::parse_if(
        "scalar_mul-of-slice",
        "(scalar_mul (slice ?x ?d ?lo ?hi) ?n ?m)",
        "(slice (scalar_mul ?x ?n ?m) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let target = entangle_egraph::ENode::op(
                "scalar_mul",
                vec![subst[v("x")], subst[v("n")], subst[v("m")]],
            );
            eg.lookup(&target).is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 6, 2, &[]);

    for op in ["add", "sub", "mul", "div", "maximum"] {
        binary_family(b, op, &[]);
    }
    broadcast_family(b, "mul");
    broadcast_family(b, "add");

    // Concats on *different* dims of operands with different ranks still
    // split when the dims are the same right-aligned broadcast axis — e.g.
    // a hidden-sharded activation `[B,S,H/t]` plus a hidden-sharded bias
    // `[H/t]` (the Qwen2 QKV-bias pattern).
    for op in ["add", "mul"] {
        let rw = Rewrite::parse_if(
            &format!("{op}-of-concats-aligned"),
            &format!("({op} (concat ?a ?b ?d) (concat ?c ?e ?d2))"),
            &format!("(concat ({op} ?a ?c) ({op} ?b ?e) ?d)"),
            |eg, _id, subst| {
                let (Some(d), Some(d2), Some(ra), Some(sc)) = (
                    int(eg, subst[v("d")]),
                    int(eg, subst[v("d2")]),
                    rank(eg, subst[v("a")]),
                    shape(eg, subst[v("c")]),
                ) else {
                    return false;
                };
                let rc = sc.rank() as i64;
                // The first operand must be the strictly higher-rank one:
                // the rewrite emits ?d (the first operand's axis) as the
                // output concat dim, which is only the broadcast-result
                // axis when rank(a) > rank(c). (add-comm also presents the
                // swapped operand order; without this check the rule would
                // emit the smaller operand's axis — unsound.)
                if (ra as i64) <= rc {
                    return false;
                }
                if d == d2 || ra as i64 - d != rc - d2 {
                    return false;
                }
                // Seams align and the smaller operand broadcasts over the
                // leading dims (guaranteed when its rank is smaller and all
                // its other dims match — checked by shape equality on the
                // concat axis; remaining mismatches would fail shape
                // inference upstream).
                let (Some(sa), Some(sc_dim)) = (
                    shape(eg, subst[v("a")]),
                    sc.dims().get(d2 as usize).cloned(),
                ) else {
                    return false;
                };
                sa.dims().get(d as usize) == Some(&sc_dim)
            },
        )
        .expect("parses");
        b.push(rw, Category::General, 22, 5, &["qwen2"]);
    }

    // Add is associative and commutative — the algebra of distributed
    // reductions (expert-parallel partial sums, gradient accumulation).
    // Like concat, free association over n-way reduction trees saturates
    // into ~2^n subset classes, so association is *constrained* to regroup
    // only toward subterms that already exist (§4.3.2).
    let rw = Rewrite::parse_if(
        "add-assoc",
        "(add (add ?a ?b) ?c)",
        "(add ?a (add ?b ?c))",
        |eg, _id, subst| {
            eg.lookup(&entangle_egraph::ENode::op(
                "add",
                vec![subst[v("b")], subst[v("c")]],
            ))
            .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 8, 3, &[]);
    let rw = Rewrite::parse_if(
        "add-assoc-left",
        "(add ?a (add ?b ?c))",
        "(add (add ?a ?b) ?c)",
        |eg, _id, subst| {
            eg.lookup(&entangle_egraph::ENode::op(
                "add",
                vec![subst[v("a")], subst[v("b")]],
            ))
            .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 8, 3, &[]);
    b.uni(
        "add-comm",
        "(add ?a ?b)",
        "(add ?b ?a)",
        Category::General,
        &[],
    );
    b.uni(
        "mul-comm",
        "(mul ?a ?b)",
        "(mul ?b ?a)",
        Category::General,
        &[],
    );
}
