//! Clean-operator lemmas (`c` in Figure 6): the slice/concat/transpose/pad
//! algebra. These are the most frequently applied lemmas in the paper's
//! heatmap — every distribution strategy moves data with them.

use entangle_egraph::{ENode, Rewrite, Var};
use entangle_symbolic::SymExpr;

use crate::analysis::cond::{add_op, add_scalar, dim_size, int, scalar, sym_eq, sym_le};
use crate::corpus::{Builder, Category};

fn v(name: &str) -> Var {
    Var::new(name)
}

pub(crate) fn install(b: &mut Builder) {
    // Adjacent slices of the same tensor merge back into one slice.
    b.uni(
        "concat-of-slices-merge",
        "(concat (slice ?x ?d ?a ?b) (slice ?x ?d ?b ?c) ?d)",
        "(slice ?x ?d ?a ?c)",
        Category::Clean,
        &[],
    );

    // A slice covering the whole dimension is the tensor itself.
    let rw = Rewrite::parse_if(
        "slice-full-identity",
        "(slice ?x ?d ?a ?b)",
        "?x",
        |eg, _id, subst| {
            let (Some(d), Some(a), Some(bb)) = (
                int(eg, subst[v("d")]),
                scalar(eg, subst[v("a")]),
                scalar(eg, subst[v("b")]),
            ) else {
                return false;
            };
            let Some(size) = dim_size(eg, subst[v("x")], d as usize) else {
                return false;
            };
            sym_eq(eg, &a, &SymExpr::zero()) && sym_eq(eg, &bb, &size)
        },
    )
    .expect("parses");
    b.push(rw, Category::Clean, 10, 1, &[]);

    // Slice of slice composes by offset arithmetic (symbolic-capable).
    let rw = Rewrite::parse_dyn(
        "slice-of-slice",
        "(slice (slice ?x ?d ?a ?b) ?d ?e ?f)",
        |eg, _id, subst| {
            let x = subst[v("x")];
            let d = subst[v("d")];
            let (Some(a), Some(e), Some(f)) = (
                scalar(eg, subst[v("a")]),
                scalar(eg, subst[v("e")]),
                scalar(eg, subst[v("f")]),
            ) else {
                return vec![];
            };
            let lo = add_scalar(eg, a.clone() + e);
            let hi = add_scalar(eg, a + f);
            vec![add_op(eg, "slice", vec![x, d, lo, hi])]
        },
    )
    .expect("parses");
    b.push(rw, Category::Clean, 14, 2, &[]);

    // The paper's Listing 4 conditioned lemma: slice of concat. Cases on
    // whether the slice crosses the concat seam, decided symbolically.
    let rw = Rewrite::parse_dyn(
        "slice-of-concat",
        "(slice (concat ?t1 ?t2 ?d1) ?d2 ?lo ?hi)",
        |eg, _id, subst| {
            let (t1, t2) = (subst[v("t1")], subst[v("t2")]);
            let (d1c, d2c) = (subst[v("d1")], subst[v("d2")]);
            let (loc, hic) = (subst[v("lo")], subst[v("hi")]);
            let (Some(d1), Some(d2)) = (int(eg, d1c), int(eg, d2c)) else {
                return vec![];
            };
            if d1 != d2 {
                // Slice along a different dim pushes into both parts.
                let s1 = add_op(eg, "slice", vec![t1, d2c, loc, hic]);
                let s2 = add_op(eg, "slice", vec![t2, d2c, loc, hic]);
                return vec![add_op(eg, "concat", vec![s1, s2, d1c])];
            }
            let (Some(lo), Some(hi)) = (scalar(eg, loc), scalar(eg, hic)) else {
                return vec![];
            };
            let Some(seam) = dim_size(eg, t1, d1 as usize) else {
                return vec![];
            };
            if sym_le(eg, &hi, &seam) {
                // Entirely within the first part.
                return vec![add_op(eg, "slice", vec![t1, d1c, loc, hic])];
            }
            if sym_le(eg, &seam, &lo) {
                // Entirely within the second part, shifted by the seam.
                let lo2 = add_scalar(eg, lo - seam.clone());
                let hi2 = add_scalar(eg, hi - seam);
                return vec![add_op(eg, "slice", vec![t2, d1c, lo2, hi2])];
            }
            if sym_le(eg, &lo, &seam) && sym_le(eg, &seam, &hi) {
                // Crosses the seam: a slice from each part.
                let seam_id = add_scalar(eg, seam.clone());
                let zero = add_scalar(eg, SymExpr::zero());
                let hi2 = add_scalar(eg, hi - seam);
                let s1 = add_op(eg, "slice", vec![t1, d1c, loc, seam_id]);
                let s2 = add_op(eg, "slice", vec![t2, d1c, zero, hi2]);
                return vec![add_op(eg, "concat", vec![s1, s2, d1c])];
            }
            vec![]
        },
    )
    .expect("parses");
    b.push(rw, Category::Clean, 34, 4, &[]);

    // Concat is associative. Free association over an n-way shard chain
    // saturates into ~2^n subset classes, so both directions are
    // *constrained* (§4.3.2): they only fire when the regrouped subterm
    // already exists as an e-node — which is exactly when a proof needs it.
    let rw = Rewrite::parse_if(
        "concat-assoc-left",
        "(concat (concat ?a ?b ?d) ?c ?d)",
        "(concat ?a (concat ?b ?c ?d) ?d)",
        |eg, _id, subst| {
            eg.lookup(&ENode::op(
                "concat",
                vec![subst[v("b")], subst[v("c")], subst[v("d")]],
            ))
            .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::Clean, 8, 4, &[]);
    let rw = Rewrite::parse_if(
        "concat-assoc-right",
        "(concat ?a (concat ?b ?c ?d) ?d)",
        "(concat (concat ?a ?b ?d) ?c ?d)",
        |eg, _id, subst| {
            eg.lookup(&ENode::op(
                "concat",
                vec![subst[v("a")], subst[v("b")], subst[v("d")]],
            ))
            .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::Clean, 8, 4, &[]);

    b.uni(
        "transpose-involution",
        "(transpose (transpose ?x ?i ?j) ?i ?j)",
        "?x",
        Category::Clean,
        &[],
    );

    // Transpose distributes over concat with the dim remapped.
    let rw = Rewrite::parse_dyn(
        "transpose-of-concat",
        "(transpose (concat ?a ?b ?d) ?i ?j)",
        |eg, _id, subst| {
            let (Some(d), Some(i), Some(j)) = (
                int(eg, subst[v("d")]),
                int(eg, subst[v("i")]),
                int(eg, subst[v("j")]),
            ) else {
                return vec![];
            };
            let d2 = if d == i {
                j
            } else if d == j {
                i
            } else {
                d
            };
            let (ic, jc) = (subst[v("i")], subst[v("j")]);
            let ta = add_op(eg, "transpose", vec![subst[v("a")], ic, jc]);
            let tb = add_op(eg, "transpose", vec![subst[v("b")], ic, jc]);
            let d2c = add_scalar(eg, SymExpr::constant(d2));
            vec![add_op(eg, "concat", vec![ta, tb, d2c])]
        },
    )
    .expect("parses");
    b.push(rw, Category::Clean, 16, 4, &[]);

    // Transpose commutes with slice (dim remapped).
    let rw = Rewrite::parse_dyn(
        "transpose-of-slice",
        "(transpose (slice ?x ?d ?a ?b) ?i ?j)",
        |eg, _id, subst| {
            let (Some(d), Some(i), Some(j)) = (
                int(eg, subst[v("d")]),
                int(eg, subst[v("i")]),
                int(eg, subst[v("j")]),
            ) else {
                return vec![];
            };
            let d2 = if d == i {
                j
            } else if d == j {
                i
            } else {
                d
            };
            let tx = add_op(
                eg,
                "transpose",
                vec![subst[v("x")], subst[v("i")], subst[v("j")]],
            );
            let d2c = add_scalar(eg, SymExpr::constant(d2));
            vec![add_op(
                eg,
                "slice",
                vec![tx, d2c, subst[v("a")], subst[v("b")]],
            )]
        },
    )
    .expect("parses");
    b.push(rw, Category::Clean, 16, 3, &[]);

    b.uni("identity-elim", "(identity ?x)", "?x", Category::Clean, &[]);

    // Slicing the padding back off recovers (a slice of) the original —
    // the algebra behind Bug 3's pad/slice mismatch.
    let rw = Rewrite::parse_dyn(
        "slice-of-pad",
        "(slice (pad ?x ?d ?before ?after) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let x = subst[v("x")];
            let dc = subst[v("d")];
            let (Some(d), Some(before), Some(lo), Some(hi)) = (
                int(eg, dc),
                scalar(eg, subst[v("before")]),
                scalar(eg, subst[v("lo")]),
                scalar(eg, subst[v("hi")]),
            ) else {
                return vec![];
            };
            let Some(size) = dim_size(eg, x, d as usize) else {
                return vec![];
            };
            let inner_end = before.clone() + size;
            // Only rewrite when the slice stays inside the un-padded region.
            if sym_le(eg, &before, &lo) && sym_le(eg, &hi, &inner_end) {
                let lo2 = add_scalar(eg, lo - before.clone());
                let hi2 = add_scalar(eg, hi - before);
                return vec![add_op(eg, "slice", vec![x, dc, lo2, hi2])];
            }
            vec![]
        },
    )
    .expect("parses");
    b.push(rw, Category::Clean, 22, 3, &[]);

    // Constrained generative lemma (§4.3.2): a tensor equals the concat of
    // already-existing slices that cover it. This is what lets the checker
    // report the `concat(D1, D2)` mapping for `C` in Figure 2 — the
    // reduce-scatter shards exist as slice e-nodes, and this lemma stitches
    // them together.
    let rw = Rewrite::parse_dyn("slices-cover-concat", "?x", |eg, _id, subst| {
        let x = subst[v("x")];
        // Only tensor classes with known shapes can be covered by slices;
        // this guard also keeps the rule from scanning the (huge) parent
        // lists of scalar attribute classes like `0`.
        if crate::analysis::cond::shape(eg, x).is_none() {
            return vec![];
        }
        // Collect existing slice parents of x: (dim, start, end) triples.
        let parents = eg.parent_nodes(x);
        let mut slices: Vec<(i64, SymExpr, SymExpr, ENode)> = Vec::new();
        for node in parents {
            let ENode::Op(sym, ch) = &node else { continue };
            if sym.as_str() != "slice" || ch.len() != 4 || eg.find(ch[0]) != eg.find(x) {
                continue;
            }
            let (Some(d), Some(a), Some(bb)) =
                (int(eg, ch[1]), scalar(eg, ch[2]), scalar(eg, ch[3]))
            else {
                continue;
            };
            slices.push((d, a, bb, node.clone()));
        }
        // Chain adjacent slices from 0 to the full size (depth-first, since
        // several slices may share a start), emitting a left-folded concat
        // for each complete cover — reduce-scatter at world size n leaves n
        // shard slices to stitch.
        let mut out = Vec::new();
        let dims: Vec<i64> = {
            let mut ds: Vec<i64> = slices.iter().map(|(d, ..)| *d).collect();
            ds.sort_unstable();
            ds.dedup();
            ds
        };
        for d in dims {
            let Some(size) = dim_size(eg, x, d as usize) else {
                continue;
            };
            let group: Vec<&(i64, SymExpr, SymExpr, ENode)> =
                slices.iter().filter(|(sd, ..)| *sd == d).collect();
            // DFS over chains; cap work to keep the rule cheap.
            let mut stack: Vec<(SymExpr, Vec<usize>)> = vec![(SymExpr::zero(), Vec::new())];
            let mut emitted = 0usize;
            let mut steps = 0usize;
            while let Some((cursor, chain)) = stack.pop() {
                steps += 1;
                if steps > 256 || emitted >= 4 {
                    break;
                }
                if !chain.is_empty() && sym_eq(eg, &cursor, &size) {
                    if chain.len() >= 2 {
                        let mut acc = eg.add(group[chain[0]].3.clone());
                        let dc = add_scalar(eg, SymExpr::constant(d));
                        for &i in &chain[1..] {
                            let next = eg.add(group[i].3.clone());
                            acc = add_op(eg, "concat", vec![acc, next, dc]);
                        }
                        out.push(acc);
                        emitted += 1;
                    }
                    continue;
                }
                for (i, (_, a, bb, _)) in group.iter().enumerate() {
                    if chain.contains(&i) {
                        continue;
                    }
                    if sym_eq(eg, a, &cursor) {
                        let mut next = chain.clone();
                        next.push(i);
                        stack.push((bb.clone(), next));
                    }
                }
            }
        }
        out
    })
    .expect("parses");
    b.push(rw, Category::Clean, 38, 2, &[]);
}
