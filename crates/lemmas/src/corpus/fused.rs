//! Lemmas for fused kernels: multi-head attention (vLLM/FlashAttention
//! style, category `v`) and rotary position embedding (HLO style, category
//! `h`). `rope-seq-concat` and `rope-of-seq-slices` are the lemmas whose
//! *failure to fire* localizes Bug 1 (wrong RoPE offsets under SP).

use entangle_egraph::{ENode, Rewrite, Var};
use entangle_symbolic::SymExpr;

use crate::analysis::cond::{add_op, add_scalar, dim_size, int, rank, sym_eq};
use crate::corpus::{Builder, Category};

fn v(name: &str) -> Var {
    Var::new(name)
}

pub(crate) fn install(b: &mut Builder) {
    // Head-parallel attention: splitting q/k/v on the hidden dim splits the
    // heads proportionally. The backbone of tensor-parallel attention.
    let rw = Rewrite::parse_dyn(
        "attention-head-split",
        "(attention (concat ?q0 ?q1 ?d) (concat ?k0 ?k1 ?d) (concat ?v0 ?v1 ?d) ?h ?c)",
        |eg, _id, subst| {
            let (q0, q1) = (subst[v("q0")], subst[v("q1")]);
            let (k0, v0) = (subst[v("k0")], subst[v("v0")]);
            let (k1, v1) = (subst[v("k1")], subst[v("v1")]);
            let (Some(d), Some(h), Some(r)) =
                (int(eg, subst[v("d")]), int(eg, subst[v("h")]), rank(eg, q0))
            else {
                return vec![];
            };
            if d != r as i64 - 1 || h <= 0 {
                return vec![];
            }
            let (Some(s0), Some(s1)) = (
                dim_size(eg, q0, d as usize).and_then(|e| e.as_const()),
                dim_size(eg, q1, d as usize).and_then(|e| e.as_const()),
            ) else {
                return vec![];
            };
            // k/v splits must match the q split.
            for (a, bq) in [(k0, q0), (v0, q0), (k1, q1), (v1, q1)] {
                let (Some(sa), Some(sq)) =
                    (dim_size(eg, a, d as usize), dim_size(eg, bq, d as usize))
                else {
                    return vec![];
                };
                if !sym_eq(eg, &sa, &sq) {
                    return vec![];
                }
            }
            let hidden = s0 + s1;
            if hidden % h != 0 {
                return vec![];
            }
            let hd = hidden / h; // head dim
            if s0 % hd != 0 || s1 % hd != 0 {
                return vec![]; // split must land on a head boundary
            }
            let (h0, h1) = (s0 / hd, s1 / hd);
            let cc = subst[v("c")];
            let (h0c, h1c) = (
                add_scalar(eg, SymExpr::constant(h0)),
                add_scalar(eg, SymExpr::constant(h1)),
            );
            let a0 = add_op(eg, "attention", vec![q0, k0, v0, h0c, cc]);
            let a1 = add_op(eg, "attention", vec![q1, k1, v1, h1c, cc]);
            vec![add_op(eg, "concat", vec![a0, a1, subst[v("d")]])]
        },
    )
    .expect("parses");
    b.push(rw, Category::Vllm, 36, 9, &["gpt", "qwen2", "llama3"]);

    // Batch-parallel attention: splitting all of q/k/v on a batch dim
    // (anything left of the sequence dim) splits the outputs.
    let rw = Rewrite::parse_dyn(
        "attention-batch-split",
        "(attention (concat ?q0 ?q1 ?d) (concat ?k0 ?k1 ?d) (concat ?v0 ?v1 ?d) ?h ?c)",
        |eg, _id, subst| {
            let (q0, q1) = (subst[v("q0")], subst[v("q1")]);
            let (Some(d), Some(r)) = (int(eg, subst[v("d")]), rank(eg, q0)) else {
                return vec![];
            };
            if d >= r as i64 - 2 {
                return vec![]; // sequence/hidden splits are not batch splits
            }
            for other in [subst[v("k0")], subst[v("v0")]] {
                let (Some(sa), Some(sq)) = (
                    dim_size(eg, other, d as usize),
                    dim_size(eg, q0, d as usize),
                ) else {
                    return vec![];
                };
                if !sym_eq(eg, &sa, &sq) {
                    return vec![];
                }
            }
            let (hc, cc) = (subst[v("h")], subst[v("c")]);
            let a0 = add_op(
                eg,
                "attention",
                vec![q0, subst[v("k0")], subst[v("v0")], hc, cc],
            );
            let a1 = add_op(
                eg,
                "attention",
                vec![q1, subst[v("k1")], subst[v("v1")], hc, cc],
            );
            vec![add_op(eg, "concat", vec![a0, a1, subst[v("d")]])]
        },
    )
    .expect("parses");
    b.push(rw, Category::Vllm, 28, 9, &["gpt", "qwen2"]);

    // Attention over identically batch-sliced q/k/v is a slice of the full
    // attention (constrained on the full application existing).
    let rw = Rewrite::parse_if(
        "attention-of-batch-slices",
        "(attention (slice ?q ?d ?lo ?hi) (slice ?k ?d ?lo ?hi) (slice ?vv ?d ?lo ?hi) ?h ?c)",
        "(slice (attention ?q ?k ?vv ?h ?c) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let dim_ok = matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("q")])),
                (Some(d), Some(r)) if d < r as i64 - 2
            );
            dim_ok
                && eg
                    .lookup(&ENode::op(
                        "attention",
                        vec![
                            subst[v("q")],
                            subst[v("k")],
                            subst[v("vv")],
                            subst[v("h")],
                            subst[v("c")],
                        ],
                    ))
                    .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::Vllm, 16, 5, &["gpt", "qwen2"]);

    // ----- RoPE (HLO category; Llama-3 / ByteDance model path) -----

    // A batch split leaves the cos/sin tables alone.
    let rw = Rewrite::parse_if(
        "rope-batch-concat",
        "(rope (concat ?x0 ?x1 ?d) ?cos ?sin)",
        "(concat (rope ?x0 ?cos ?sin) (rope ?x1 ?cos ?sin) ?d)",
        |eg, _id, subst| {
            matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x0")])),
                (Some(d), Some(r)) if d < r as i64 - 2
            )
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 12, 5, &["llama3", "bytedance-moe"]);

    // A *sequence* split must slice the tables at the same seam — each SP
    // rank takes a different part of the pre-computed cos and sin tensors.
    let rw = Rewrite::parse_dyn(
        "rope-seq-concat",
        "(rope (concat ?x0 ?x1 ?d) ?cos ?sin)",
        |eg, _id, subst| {
            let (x0, x1) = (subst[v("x0")], subst[v("x1")]);
            let (cos, sin) = (subst[v("cos")], subst[v("sin")]);
            let (Some(d), Some(r)) = (int(eg, subst[v("d")]), rank(eg, x0)) else {
                return vec![];
            };
            if d != r as i64 - 2 {
                return vec![];
            }
            let (Some(s0), Some(s1)) = (dim_size(eg, x0, d as usize), dim_size(eg, x1, d as usize))
            else {
                return vec![];
            };
            let zero = add_scalar(eg, SymExpr::zero());
            let seam = add_scalar(eg, s0.clone());
            let total = add_scalar(eg, s0 + s1);
            let d0 = add_scalar(eg, SymExpr::zero()); // tables are [S, H]
            let cos0 = add_op(eg, "slice", vec![cos, d0, zero, seam]);
            let sin0 = add_op(eg, "slice", vec![sin, d0, zero, seam]);
            let cos1 = add_op(eg, "slice", vec![cos, d0, seam, total]);
            let sin1 = add_op(eg, "slice", vec![sin, d0, seam, total]);
            let r0 = add_op(eg, "rope", vec![x0, cos0, sin0]);
            let r1 = add_op(eg, "rope", vec![x1, cos1, sin1]);
            vec![add_op(eg, "concat", vec![r0, r1, subst[v("d")]])]
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 32, 9, &["llama3", "bytedance-moe"]);

    // RoPE on a sequence-sliced input with *matching* table slices is a
    // slice of the full RoPE. The buggy SP implementation (Bug 1) slices
    // the tables at the wrong offset, so this pattern — which requires the
    // same ?lo/?hi on the input and both tables — never fires, and the RoPE
    // operator is reported unmappable.
    let rw = Rewrite::parse_if(
        "rope-of-seq-slices",
        "(rope (slice ?x ?d ?lo ?hi) (slice ?cos 0 ?lo ?hi) (slice ?sin 0 ?lo ?hi))",
        "(slice (rope ?x ?cos ?sin) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let dim_ok = matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x")])),
                (Some(d), Some(r)) if d == r as i64 - 2
            );
            dim_ok
                && eg
                    .lookup(&ENode::op(
                        "rope",
                        vec![subst[v("x")], subst[v("cos")], subst[v("sin")]],
                    ))
                    .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 18, 5, &["llama3", "bytedance-moe"]);

    // A *hidden*-dim split (tensor-parallel head sharding) splits the
    // tables at the same (even) boundary — valid under the interleaved-pair
    // rope convention.
    let rw = Rewrite::parse_if(
        "rope-hidden-concat",
        "(rope (concat ?x0 ?x1 ?d) (concat ?c0 ?c1 1) (concat ?s0 ?s1 1))",
        "(concat (rope ?x0 ?c0 ?s0) (rope ?x1 ?c1 ?s1) ?d)",
        |eg, _id, subst| {
            let (Some(d), Some(r)) = (int(eg, subst[v("d")]), rank(eg, subst[v("x0")])) else {
                return false;
            };
            if d != r as i64 - 1 {
                return false;
            }
            // Seams must align between x and both tables, and land on an
            // even (pair) boundary.
            let (Some(sx), Some(sc), Some(ss)) = (
                dim_size(eg, subst[v("x0")], d as usize),
                dim_size(eg, subst[v("c0")], 1),
                dim_size(eg, subst[v("s0")], 1),
            ) else {
                return false;
            };
            let even = sx.as_const().is_some_and(|s| s % 2 == 0);
            even && sym_eq(eg, &sx, &sc) && sym_eq(eg, &sx, &ss)
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 24, 9, &["llama3", "qwen2", "gpt"]);

    // RoPE over hidden-sliced input with matching table slices is a slice
    // of the full rope (constrained; even boundaries).
    let rw = Rewrite::parse_if(
        "rope-of-hidden-slices",
        "(rope (slice ?x ?d ?a ?b) (slice ?cos 1 ?a ?b) (slice ?sin 1 ?a ?b))",
        "(slice (rope ?x ?cos ?sin) ?d ?a ?b)",
        |eg, _id, subst| {
            let dim_ok = matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x")])),
                (Some(d), Some(r)) if d == r as i64 - 1
            );
            let even = matches!(
                (int(eg, subst[v("a")]), int(eg, subst[v("b")])),
                (Some(a), Some(bb)) if a % 2 == 0 && bb % 2 == 0
            );
            dim_ok
                && even
                && eg
                    .lookup(&ENode::op(
                        "rope",
                        vec![subst[v("x")], subst[v("cos")], subst[v("sin")]],
                    ))
                    .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 20, 5, &["llama3", "qwen2", "gpt"]);

    // RoPE on a batch-sliced input keeps the tables whole.
    let rw = Rewrite::parse_if(
        "rope-of-batch-slice",
        "(rope (slice ?x ?d ?lo ?hi) ?cos ?sin)",
        "(slice (rope ?x ?cos ?sin) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let dim_ok = matches!(
                (int(eg, subst[v("d")]), rank(eg, subst[v("x")])),
                (Some(d), Some(r)) if d < r as i64 - 2
            );
            dim_ok
                && eg
                    .lookup(&ENode::op(
                        "rope",
                        vec![subst[v("x")], subst[v("cos")], subst[v("sin")]],
                    ))
                    .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::Hlo, 14, 3, &["llama3", "bytedance-moe"]);
}
