//! Matmul lemmas: the block-matrix identities of the paper's running
//! example (Figure 2), generalized to batched matmul. These carry tensor-
//! parallel proofs (column/row-parallel linear layers).

use entangle_egraph::{ENode, Rewrite, Var};
use entangle_symbolic::SymExpr;

use crate::analysis::cond::{add_op, add_scalar, int, rank, shape, sym_eq};
use crate::analysis::TensorAnalysis;
use crate::corpus::{Builder, Category};

type EG = entangle_egraph::EGraph<TensorAnalysis>;

fn v(name: &str) -> Var {
    Var::new(name)
}

/// For `matmul(a, b)`: the output rank and the mapping of an `a`-dim (or
/// `b`-dim) to the output dim. Output rank is `max(ra, rb)`, right-aligned.
fn out_dim(d: i64, r_in: usize, ra: usize, rb: usize) -> i64 {
    let rout = ra.max(rb) as i64;
    d + rout - r_in as i64
}

/// Is splitting operand dim `d` of the `r_split`-rank operand compatible
/// with the other operand (rank `r_other`, shape `other`)? True for the
/// m/n dim (index `r_split - 2` or `r_split - 1` respectively — checked by
/// the caller) and for batch dims the other operand broadcasts over.
fn batch_split_ok(eg: &EG, d: i64, r_split: usize, other: entangle_egraph::Id) -> bool {
    let Some(so) = shape(eg, other) else {
        return false;
    };
    let r_other = so.rank();
    // Align batch dims right-to-left, skipping the last two matrix dims.
    let aligned = d - (r_split as i64 - r_other as i64);
    aligned < 0 || so.dim(aligned as usize).as_const() == Some(1)
}

pub(crate) fn install(b: &mut Builder) {
    // Splitting the left operand along its m dim or a broadcast batch dim:
    // (matmul (concat ?a0 ?a1 ?d) ?b) => (concat (matmul ?a0 ?b) (matmul ?a1 ?b) ?d')
    let rw = Rewrite::parse_dyn(
        "matmul-concat-lhs",
        "(matmul (concat ?a0 ?a1 ?d) ?b)",
        |eg, _id, subst| {
            let (a0, a1, bb) = (subst[v("a0")], subst[v("a1")], subst[v("b")]);
            let (Some(d), Some(ra)) = (int(eg, subst[v("d")]), rank(eg, a0)) else {
                return vec![];
            };
            let Some(rb) = rank(eg, bb) else {
                return vec![];
            };
            // The contraction dim (ra-1) cannot be split on one side only.
            if d == ra as i64 - 1 {
                return vec![];
            }
            if d < ra as i64 - 2 && !batch_split_ok(eg, d, ra, bb) {
                return vec![];
            }
            let m0 = add_op(eg, "matmul", vec![a0, bb]);
            let m1 = add_op(eg, "matmul", vec![a1, bb]);
            let dout = add_scalar(eg, SymExpr::constant(out_dim(d, ra, ra, rb)));
            vec![add_op(eg, "concat", vec![m0, m1, dout])]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 22, 4, &[]);

    // Splitting the right operand along its n dim or a broadcast batch dim.
    let rw = Rewrite::parse_dyn(
        "matmul-concat-rhs",
        "(matmul ?a (concat ?b0 ?b1 ?d))",
        |eg, _id, subst| {
            let (a, b0, b1) = (subst[v("a")], subst[v("b0")], subst[v("b1")]);
            let (Some(d), Some(rb)) = (int(eg, subst[v("d")]), rank(eg, b0)) else {
                return vec![];
            };
            let Some(ra) = rank(eg, a) else {
                return vec![];
            };
            // The contraction dim (rb-2) cannot be split on one side only.
            if d == rb as i64 - 2 {
                return vec![];
            }
            if d < rb as i64 - 2 && !batch_split_ok(eg, d, rb, a) {
                return vec![];
            }
            let m0 = add_op(eg, "matmul", vec![a, b0]);
            let m1 = add_op(eg, "matmul", vec![a, b1]);
            let dout = add_scalar(eg, SymExpr::constant(out_dim(d, rb, ra, rb)));
            vec![add_op(eg, "concat", vec![m0, m1, dout])]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 22, 4, &[]);

    // The block contraction: splitting *both* operands along the shared k
    // dim sums the partial products — Figure 2's key step, and the fact
    // row-parallel linear layers (with their trailing all-reduce) rely on.
    let rw = Rewrite::parse_dyn(
        "matmul-concat-contraction",
        "(matmul (concat ?a0 ?a1 ?da) (concat ?b0 ?b1 ?db))",
        |eg, _id, subst| {
            let (a0, a1) = (subst[v("a0")], subst[v("a1")]);
            let (b0, b1) = (subst[v("b0")], subst[v("b1")]);
            let (Some(da), Some(db), Some(ra), Some(rb)) = (
                int(eg, subst[v("da")]),
                int(eg, subst[v("db")]),
                rank(eg, a0),
                rank(eg, b0),
            ) else {
                return vec![];
            };
            if da != ra as i64 - 1 || db != rb as i64 - 2 {
                return vec![];
            }
            // The split points must agree: |k of a0| == |k of b0|.
            let (Some(ka), Some(kb)) = (
                shape(eg, a0).map(|s| s.dim(da as usize).0.clone()),
                shape(eg, b0).map(|s| s.dim(db as usize).0.clone()),
            ) else {
                return vec![];
            };
            if !sym_eq(eg, &ka, &kb) {
                return vec![];
            }
            let m0 = add_op(eg, "matmul", vec![a0, b0]);
            let m1 = add_op(eg, "matmul", vec![a1, b1]);
            vec![add_op(eg, "add", vec![m0, m1])]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 26, 5, &["gpt"]);

    // Slice of a matmul output pushes into the corresponding operand.
    let rw = Rewrite::parse_dyn(
        "slice-of-matmul",
        "(slice (matmul ?a ?b) ?d ?lo ?hi)",
        |eg, _id, subst| {
            let (a, bb) = (subst[v("a")], subst[v("b")]);
            let (loc, hic) = (subst[v("lo")], subst[v("hi")]);
            let (Some(d), Some(ra), Some(rb)) = (int(eg, subst[v("d")]), rank(eg, a), rank(eg, bb))
            else {
                return vec![];
            };
            let rout = ra.max(rb) as i64;
            if d == rout - 2 {
                // m dim: slice the left operand's m dim.
                let da = add_scalar(eg, SymExpr::constant(ra as i64 - 2));
                let sa = add_op(eg, "slice", vec![a, da, loc, hic]);
                return vec![add_op(eg, "matmul", vec![sa, bb])];
            }
            if d == rout - 1 {
                // n dim: slice the right operand's n dim.
                let db = add_scalar(eg, SymExpr::constant(rb as i64 - 1));
                let sb = add_op(eg, "slice", vec![bb, db, loc, hic]);
                return vec![add_op(eg, "matmul", vec![a, sb])];
            }
            // Batch dim: push into whichever operand actually has it (the
            // other operand must broadcast over it).
            let da = d - (rout - ra as i64);
            let mut out = Vec::new();
            if da >= 0 && batch_split_ok(eg, d, rout as usize, bb) {
                let dac = add_scalar(eg, SymExpr::constant(da));
                let sa = add_op(eg, "slice", vec![a, dac, loc, hic]);
                out.push(add_op(eg, "matmul", vec![sa, bb]));
            }
            let dbv = d - (rout - rb as i64);
            if dbv >= 0 && batch_split_ok(eg, d, rout as usize, a) {
                let dbc = add_scalar(eg, SymExpr::constant(dbv));
                let sb = add_op(eg, "slice", vec![bb, dbc, loc, hic]);
                out.push(add_op(eg, "matmul", vec![a, sb]));
            }
            out
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 30, 4, &[]);

    // Reverse: matmul of a sliced operand is a slice of the full matmul —
    // *constrained* on the full matmul already existing. This is the lemma
    // sequence parallelism leans on (activations arrive as slices of a
    // reduce-scattered tensor).
    let rw = Rewrite::parse_dyn(
        "matmul-of-sliced-lhs",
        "(matmul (slice ?a ?d ?lo ?hi) ?b)",
        |eg, _id, subst| {
            let (a, bb) = (subst[v("a")], subst[v("b")]);
            let (Some(d), Some(ra), Some(rb)) = (int(eg, subst[v("d")]), rank(eg, a), rank(eg, bb))
            else {
                return vec![];
            };
            if d == ra as i64 - 1 {
                return vec![]; // contraction dim
            }
            if d < ra as i64 - 2 && !batch_split_ok(eg, d, ra, bb) {
                return vec![];
            }
            if eg.lookup(&ENode::op("matmul", vec![a, bb])).is_none() {
                return vec![]; // constrained: full product must exist
            }
            let m = add_op(eg, "matmul", vec![a, bb]);
            let dout = add_scalar(eg, SymExpr::constant(out_dim(d, ra, ra, rb)));
            vec![add_op(
                eg,
                "slice",
                vec![m, dout, subst[v("lo")], subst[v("hi")]],
            )]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 24, 3, &[]);

    let rw = Rewrite::parse_dyn(
        "matmul-of-sliced-rhs",
        "(matmul ?a (slice ?b ?d ?lo ?hi))",
        |eg, _id, subst| {
            let (a, bb) = (subst[v("a")], subst[v("b")]);
            let (Some(d), Some(ra), Some(rb)) = (int(eg, subst[v("d")]), rank(eg, a), rank(eg, bb))
            else {
                return vec![];
            };
            if d == rb as i64 - 2 {
                return vec![]; // contraction dim
            }
            if d < rb as i64 - 2 && !batch_split_ok(eg, d, rb, a) {
                return vec![];
            }
            if eg.lookup(&ENode::op("matmul", vec![a, bb])).is_none() {
                return vec![];
            }
            let m = add_op(eg, "matmul", vec![a, bb]);
            let dout = add_scalar(eg, SymExpr::constant(out_dim(d, rb, ra, rb)));
            vec![add_op(
                eg,
                "slice",
                vec![m, dout, subst[v("lo")], subst[v("hi")]],
            )]
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 24, 3, &[]);

    // Embedding lemmas: a gather distributes over its index tensor.
    b.uni(
        "embedding-of-concat-ids",
        "(embedding ?w (concat ?i0 ?i1 ?d))",
        "(concat (embedding ?w ?i0) (embedding ?w ?i1) ?d)",
        Category::General,
        &["gpt"],
    );
    let rw = Rewrite::parse_if(
        "embedding-of-sliced-ids",
        "(embedding ?w (slice ?i ?d ?lo ?hi))",
        "(slice (embedding ?w ?i) ?d ?lo ?hi)",
        |eg, _id, subst| {
            eg.lookup(&ENode::op("embedding", vec![subst[v("w")], subst[v("i")]]))
                .is_some()
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 8, 3, &["gpt"]);
    // The scatter-add gradient of embedding distributes over a shared
    // batch/sequence split of ids and upstream grads — how SP weight
    // gradients recombine in backward graphs.
    let rw = Rewrite::parse_if(
        "embedding_grad-of-concats",
        "(embedding_grad (concat ?i0 ?i1 ?d) (concat ?g0 ?g1 ?d2) ?v)",
        "(add (embedding_grad ?i0 ?g0 ?v) (embedding_grad ?i1 ?g1 ?v))",
        |eg, _id, subst| {
            let (Some(d), Some(d2), Some(ri)) = (
                int(eg, subst[v("d")]),
                int(eg, subst[v("d2")]),
                rank(eg, subst[v("i0")]),
            ) else {
                return false;
            };
            // The grad has one extra trailing dim; the splits must be the
            // same axis and land on the same seam.
            if d != d2 || d >= ri as i64 {
                return false;
            }
            match (shape(eg, subst[v("i0")]), shape(eg, subst[v("g0")])) {
                (Some(si), Some(sg)) => si.dim(d as usize) == sg.dim(d as usize),
                _ => false,
            }
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 20, 4, &["gpt"]);

    let rw = Rewrite::parse_if(
        "slice-of-embedding",
        "(slice (embedding ?w ?i) ?d ?lo ?hi)",
        "(embedding ?w (slice ?i ?d ?lo ?hi))",
        |eg, _id, subst| {
            // Valid only when slicing an index dim, not the appended hidden
            // dim.
            match (int(eg, subst[v("d")]), rank(eg, subst[v("i")])) {
                (Some(d), Some(ri)) => d < ri as i64,
                _ => false,
            }
        },
    )
    .expect("parses");
    b.push(rw, Category::General, 10, 3, &["gpt"]);
}
