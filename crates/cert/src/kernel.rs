//! The trusted kernel: engine-independent certificate validation.
//!
//! Validation never consults the saturation e-graph that produced the
//! certificate. Every proof step is an equation between two *concrete
//! terms*; the kernel checks it by pattern matching and substitution over
//! those terms, re-inferring shapes and dtypes at every step. Two step
//! kinds go beyond pure term rewriting:
//!
//! - *Given* facts are only trusted when they restate a `G_d` operator
//!   definition (the kernel re-encodes the operator itself) or connect two
//!   already-accepted mappings of one `G_s` tensor.
//! - Conditioned and dynamic lemmas (whose right-hand sides are computed
//!   by closures) are *replayed* in a tiny scratch e-graph seeded with
//!   exactly the step's two terms; the replay must fire the lemma's own
//!   condition/applier and reproduce the target term without performing a
//!   single union, so the scratch graph acts as a hash-consed term store,
//!   never as a search engine. Symbolic side conditions are discharged by
//!   `entangle-symbolic` through the lemma's condition closure.

use std::collections::{HashMap, HashSet};

use entangle_egraph::{EGraph, ENode, Id, PatternAst, Proof, ProofStep, RecExpr, Rewrite, Var};
use entangle_ir::{DType, Graph, Op, Shape};
use entangle_lemmas::{decode_op, Meta, TensorAnalysis, SYNTHETIC_LEAF_PREFIX};
use entangle_symbolic::{SymCtx, SymExpr};

use crate::cert::{copy_expr, exprs_eq, term_eq, CertError, Certificate, MappingCert};

/// Accepted mappings per `G_s` tensor name, grown as mapping certificates
/// are validated in order.
type Accepted = HashMap<String, Vec<RecExpr>>;

/// Re-checks a [`Certificate`] against the graph pair, the lemma corpus
/// and the symbolic context.
///
/// The input relation in `cert.inputs` is the certificate's axiom set: the
/// kernel validates that each entry is a well-formed expression over `G_d`
/// tensors with the mapped tensor's shape and dtype, then takes it as
/// given — exactly the paper's trust model for `R_i`. Everything else is
/// re-derived: each [`MappingCert`] must start from the kernel's own
/// encoding of its `G_s` operator over accepted input mappings, every
/// proof step must be justified, and the output relation must consist of
/// accepted mappings over `G_d` *output* tensors only.
///
/// # Errors
///
/// [`CertError::Malformed`] for structurally unusable certificates,
/// [`CertError::Rejected`] when a proof fails validation.
pub fn verify(
    cert: &Certificate,
    gs: &Graph,
    gd: &Graph,
    lemmas: &[Rewrite<TensorAnalysis>],
    ctx: &SymCtx,
) -> Result<(), CertError> {
    let lemma_index: HashMap<&str, &Rewrite<TensorAnalysis>> =
        lemmas.iter().map(|r| (r.name(), r)).collect();

    // R_i: shape-validated axioms.
    let mut accepted: Accepted = HashMap::new();
    for (name, exprs) in &cert.inputs {
        let t = gs.tensor_by_name(name).ok_or_else(|| {
            CertError::Malformed(format!("unknown G_s tensor {name} in certificate inputs"))
        })?;
        for e in exprs {
            match term_meta_at(e, e.root_id(), gd).map_err(|why| CertError::rejected(name, why))? {
                TermMeta::Tensor(shape, dtype) if shape == t.shape && dtype == t.dtype => {}
                TermMeta::Tensor(shape, dtype) => {
                    return Err(CertError::rejected(
                        name,
                        format!(
                            "input mapping {e} has shape {shape} dtype {dtype}, tensor has {} {}",
                            t.shape, t.dtype
                        ),
                    ));
                }
                TermMeta::Scalar => {
                    return Err(CertError::rejected(
                        name,
                        format!("input mapping {e} is a scalar"),
                    ));
                }
            }
            accepted.entry(name.clone()).or_default().push(e.clone());
        }
    }

    // Mapping certificates, in derivation order.
    for mc in &cert.mappings {
        check_mapping(mc, gs, gd, &lemma_index, ctx, &accepted)?;
        accepted
            .entry(mc.tensor.clone())
            .or_default()
            .push(mc.expr.clone());
    }

    // R_o: accepted mappings over G_d outputs, covering every G_s output.
    let gd_outputs: HashSet<&str> = gd
        .outputs()
        .iter()
        .map(|&t| gd.tensor(t).name.as_str())
        .collect();
    for (name, e) in &cert.outputs {
        let t = gs.tensor_by_name(name).ok_or_else(|| {
            CertError::Malformed(format!("unknown G_s tensor {name} in certificate outputs"))
        })?;
        if !gs.outputs().contains(&t.id) {
            return Err(CertError::rejected(name, "not a G_s output tensor"));
        }
        if !accepted
            .get(name)
            .is_some_and(|ms| ms.iter().any(|m| exprs_eq(m, e)))
        {
            return Err(CertError::rejected(
                name,
                format!("output mapping {e} was never accepted"),
            ));
        }
        for sym in e.leaf_symbols() {
            if !gd_outputs.contains(sym.as_str()) {
                return Err(CertError::rejected(
                    name,
                    format!("output mapping {e} uses non-output G_d tensor {sym}"),
                ));
            }
        }
    }
    for &t in gs.outputs() {
        let name = &gs.tensor(t).name;
        if !cert.outputs.iter().any(|(n, _)| n == name) {
            return Err(CertError::rejected(
                name,
                "G_s output has no mapping in the certificate's output relation",
            ));
        }
    }
    Ok(())
}

/// Validates a single [`MappingCert`] against an explicitly supplied
/// accepted-mapping set (`G_s` input tensor name → accepted expressions).
///
/// This is the entry point the checker's template instantiation uses: an
/// instantiated mapping is kernel-checked *eagerly*, before it may enter
/// the relation, under exactly the rules [`verify`] applies per mapping —
/// the proof must start from the kernel's own operator encoding, every
/// step must be justified, and the result must re-infer to the `G_s`
/// tensor's shape and dtype.
///
/// # Errors
///
/// [`CertError::Malformed`] for an unknown operator,
/// [`CertError::Rejected`] when the chain fails validation.
pub fn verify_mapping(
    mc: &MappingCert,
    gs: &Graph,
    gd: &Graph,
    lemmas: &[Rewrite<TensorAnalysis>],
    ctx: &SymCtx,
    accepted: &HashMap<String, Vec<RecExpr>>,
) -> Result<(), CertError> {
    let lemma_index: HashMap<&str, &Rewrite<TensorAnalysis>> =
        lemmas.iter().map(|r| (r.name(), r)).collect();
    check_mapping(mc, gs, gd, &lemma_index, ctx, accepted)
}

fn check_mapping(
    mc: &MappingCert,
    gs: &Graph,
    gd: &Graph,
    lemmas: &HashMap<&str, &Rewrite<TensorAnalysis>>,
    ctx: &SymCtx,
    accepted: &Accepted,
) -> Result<(), CertError> {
    let node = gs
        .node_by_name(&mc.operator)
        .ok_or_else(|| CertError::Malformed(format!("unknown G_s operator {}", mc.operator)))?;
    if gs.tensor(node.output).name != mc.tensor {
        return Err(CertError::rejected(
            &mc.tensor,
            format!("operator {} does not produce this tensor", mc.operator),
        ));
    }
    if node.inputs.len() != mc.inputs.len() {
        return Err(CertError::rejected(
            &mc.tensor,
            format!(
                "operator {} takes {} inputs, certificate supplies {}",
                mc.operator,
                node.inputs.len(),
                mc.inputs.len()
            ),
        ));
    }
    for (i, e) in mc.inputs.iter().enumerate() {
        let in_name = &gs.tensor(node.inputs[i]).name;
        if !accepted
            .get(in_name)
            .is_some_and(|ms| ms.iter().any(|m| exprs_eq(m, e)))
        {
            return Err(CertError::rejected(
                &mc.tensor,
                format!("input {i} ({in_name}) uses an unaccepted mapping {e}"),
            ));
        }
    }
    // The proof must start at the kernel's own encoding of the operator.
    let base = encode_op_term(&node.op, &mc.inputs, gd)
        .map_err(|why| CertError::rejected(&mc.tensor, why))?;
    validate_chain(
        &mc.proof,
        (&base, base.root_id()),
        (&mc.expr, mc.expr.root_id()),
        gd,
        lemmas,
        ctx,
        accepted,
    )
    .map_err(|why| CertError::rejected(&mc.tensor, why))?;
    // The certified expression must re-infer to the G_s tensor's metadata.
    let ts = gs.tensor(node.output);
    match term_meta_at(&mc.expr, mc.expr.root_id(), gd)
        .map_err(|why| CertError::rejected(&mc.tensor, why))?
    {
        TermMeta::Tensor(shape, dtype) if shape == ts.shape && dtype == ts.dtype => Ok(()),
        TermMeta::Tensor(shape, dtype) => Err(CertError::rejected(
            &mc.tensor,
            format!(
                "certified expression has shape {shape} dtype {dtype}, tensor has {} {}",
                ts.shape, ts.dtype
            ),
        )),
        TermMeta::Scalar => Err(CertError::rejected(
            &mc.tensor,
            "certified expression is a scalar",
        )),
    }
}

/// Validates that `proof` is a connected chain from `from` to `to`, with
/// every step justified and shape/dtype preserved across each step.
#[allow(clippy::too_many_arguments)]
fn validate_chain(
    proof: &Proof,
    from: (&RecExpr, Id),
    to: (&RecExpr, Id),
    gd: &Graph,
    lemmas: &HashMap<&str, &Rewrite<TensorAnalysis>>,
    ctx: &SymCtx,
    accepted: &Accepted,
) -> Result<(), String> {
    validate_chain_from(proof, from, None, to, gd, lemmas, ctx, accepted)
}

/// [`validate_chain`] with an optionally pre-computed meta for `from` —
/// congruence steps infer the whole `before` term once and hand each child
/// its slot's meta instead of re-inferring the full term per child.
#[allow(clippy::too_many_arguments)]
fn validate_chain_from(
    proof: &Proof,
    from: (&RecExpr, Id),
    from_meta: Option<TermMeta>,
    to: (&RecExpr, Id),
    gd: &Graph,
    lemmas: &HashMap<&str, &Rewrite<TensorAnalysis>>,
    ctx: &SymCtx,
    accepted: &Accepted,
) -> Result<(), String> {
    if proof.steps.is_empty() {
        return if term_eq(from.0, from.1, to.0, to.1) {
            Ok(())
        } else {
            Err("empty proof between distinct terms".to_owned())
        };
    }
    let first = proof.steps.first().expect("non-empty");
    if !term_eq(from.0, from.1, first.before(), first.before().root_id()) {
        return Err(format!(
            "proof starts at {} instead of the required term",
            first.before()
        ));
    }
    let mut cur_meta = match from_meta {
        Some(m) => m,
        None => term_meta_at(from.0, from.1, gd)?,
    };
    for (k, step) in proof.steps.iter().enumerate() {
        if k > 0 && !exprs_eq(proof.steps[k - 1].after(), step.before()) {
            return Err(format!("step {k} does not chain from the previous step"));
        }
        let after = step.after();
        let after_meta =
            term_meta_at(after, after.root_id(), gd).map_err(|why| format!("step {k}: {why}"))?;
        if after_meta != cur_meta {
            return Err(format!("step {k} changes the term's shape or dtype"));
        }
        cur_meta = after_meta;
        check_step(step, gd, lemmas, ctx, accepted).map_err(|why| format!("step {k}: {why}"))?;
    }
    let last = proof.steps.last().expect("non-empty");
    if !term_eq(last.after(), last.after().root_id(), to.0, to.1) {
        return Err("proof does not reach the required term".to_owned());
    }
    Ok(())
}

fn check_step(
    step: &ProofStep,
    gd: &Graph,
    lemmas: &HashMap<&str, &Rewrite<TensorAnalysis>>,
    ctx: &SymCtx,
    accepted: &Accepted,
) -> Result<(), String> {
    match step {
        ProofStep::Given {
            fact,
            before,
            after,
        } => check_given(fact, before, after, gd, accepted),
        ProofStep::Congruence {
            before,
            after,
            children,
        } => {
            let (ENode::Op(sb, cb), ENode::Op(sa, ca)) = (before.root(), after.root()) else {
                return Err("congruence step between non-operator terms".to_owned());
            };
            if sb != sa || cb.len() != ca.len() || cb.len() != children.len() {
                return Err("congruence step operator/arity mismatch".to_owned());
            }
            let before_metas = term_metas(before, gd)?;
            for (i, child) in children.iter().enumerate() {
                let from_meta = meta_term(&before_metas[cb[i].index()])
                    .map_err(|why| format!("argument {i}: {why}"))?;
                validate_chain_from(
                    child,
                    (before, cb[i]),
                    Some(from_meta),
                    (after, ca[i]),
                    gd,
                    lemmas,
                    ctx,
                    accepted,
                )
                .map_err(|why| format!("argument {i}: {why}"))?;
            }
            Ok(())
        }
        ProofStep::Rule {
            name,
            forward,
            subst,
            before,
            after,
        } => {
            let rw = lemmas
                .get(name.as_str())
                .ok_or_else(|| format!("unknown lemma {name}"))?;
            let (lhs_t, rhs_t) = if *forward {
                (before, after)
            } else {
                (after, before)
            };
            if rw.rhs().is_some() && !rw.has_condition() {
                check_universal(rw, subst, lhs_t, rhs_t)
            } else {
                replay(rw, subst, lhs_t, rhs_t, gd, ctx)
            }
        }
    }
}

fn check_given(
    fact: &str,
    before: &RecExpr,
    after: &RecExpr,
    gd: &Graph,
    accepted: &Accepted,
) -> Result<(), String> {
    if let Some(op_name) = fact.strip_prefix("G_d definition of ") {
        let node = gd
            .node_by_name(op_name)
            .ok_or_else(|| format!("no G_d operator named {op_name}"))?;
        let mut leaf = RecExpr::default();
        leaf.add(ENode::leaf(&gd.tensor(node.output).name));
        let input_leaves: Vec<RecExpr> = node
            .inputs
            .iter()
            .map(|&t| {
                let mut e = RecExpr::default();
                e.add(ENode::leaf(&gd.tensor(t).name));
                e
            })
            .collect();
        let app = encode_op_term(&node.op, &input_leaves, gd)?;
        let matches = (exprs_eq(before, &leaf) && exprs_eq(after, &app))
            || (exprs_eq(before, &app) && exprs_eq(after, &leaf));
        if matches {
            Ok(())
        } else {
            Err(format!("terms do not restate the definition of {op_name}"))
        }
    } else if let Some(tname) = fact.strip_prefix("mappings of G_s tensor ") {
        let ms = accepted
            .get(tname)
            .ok_or_else(|| format!("no accepted mappings for G_s tensor {tname}"))?;
        if ms.iter().any(|m| exprs_eq(m, before)) && ms.iter().any(|m| exprs_eq(m, after)) {
            Ok(())
        } else {
            Err(format!(
                "terms are not both accepted mappings of G_s tensor {tname}"
            ))
        }
    } else {
        Err(format!("unrecognized given fact {fact:?}"))
    }
}

/// Pure validation of an unconditional pattern→pattern lemma: match the
/// LHS pattern against the source term, require the bindings to agree with
/// the recorded substitution, and require the RHS instantiation to be the
/// target term. Capture is impossible by construction: pattern variables
/// bind whole subterms and the term language has no binders.
fn check_universal(
    rw: &Rewrite<TensorAnalysis>,
    recorded: &[(String, RecExpr)],
    lhs_t: &RecExpr,
    rhs_t: &RecExpr,
) -> Result<(), String> {
    let mut sigma: Vec<(Var, Id)> = Vec::new();
    if !match_term(rw.searcher().ast(), lhs_t, lhs_t.root_id(), &mut sigma) {
        return Err(format!(
            "lemma {} does not match the step's source term",
            rw.name()
        ));
    }
    subst_agrees(&sigma, lhs_t, recorded, rw.name())?;
    let rhs_pat = rw.rhs().expect("universal lemma has a pattern rhs");
    if pattern_is_term(rhs_pat.ast(), &sigma, lhs_t, rhs_t, rhs_t.root_id()) {
        Ok(())
    } else {
        Err(format!(
            "lemma {} does not rewrite the source to the step's target term",
            rw.name()
        ))
    }
}

/// Matches a pattern against a concrete subterm, binding variables to
/// subterm slots; nonlinear variables must bind structurally equal terms.
pub(crate) fn match_term(
    pat: &PatternAst,
    expr: &RecExpr,
    at: Id,
    sigma: &mut Vec<(Var, Id)>,
) -> bool {
    match pat {
        PatternAst::Var(v) => {
            if let Some(&(_, prev)) = sigma.iter().find(|(pv, _)| pv == v) {
                term_eq(expr, prev, expr, at)
            } else {
                sigma.push((*v, at));
                true
            }
        }
        PatternAst::Int(i) => matches!(expr.node(at), ENode::Int(j) if j == i),
        PatternAst::Op(sym, args) => match expr.node(at) {
            ENode::Op(s, ch) => {
                s == sym
                    && ch.len() == args.len()
                    && args
                        .iter()
                        .zip(ch)
                        .all(|(p, &c)| match_term(p, expr, c, sigma))
            }
            _ => false,
        },
    }
}

/// Checks that a pattern instantiated under `sigma` (bindings into
/// `bind_expr`) is structurally the subterm of `expr` at `at`.
fn pattern_is_term(
    pat: &PatternAst,
    sigma: &[(Var, Id)],
    bind_expr: &RecExpr,
    expr: &RecExpr,
    at: Id,
) -> bool {
    match pat {
        PatternAst::Var(v) => sigma
            .iter()
            .find(|(pv, _)| pv == v)
            .is_some_and(|&(_, bound)| term_eq(bind_expr, bound, expr, at)),
        PatternAst::Int(i) => matches!(expr.node(at), ENode::Int(j) if j == i),
        PatternAst::Op(sym, args) => match expr.node(at) {
            ENode::Op(s, ch) => {
                s == sym
                    && ch.len() == args.len()
                    && args
                        .iter()
                        .zip(ch)
                        .all(|(p, &c)| pattern_is_term(p, sigma, bind_expr, expr, c))
            }
            _ => false,
        },
    }
}

/// Requires the matcher-derived bindings and the certificate's recorded
/// substitution to agree exactly (same variables, structurally equal
/// terms) — a corrupted substitution is a rejected certificate.
fn subst_agrees(
    sigma: &[(Var, Id)],
    bind_expr: &RecExpr,
    recorded: &[(String, RecExpr)],
    lemma: &str,
) -> Result<(), String> {
    if sigma.len() != recorded.len() {
        return Err(format!(
            "lemma {lemma}: recorded substitution binds {} variables, match binds {}",
            recorded.len(),
            sigma.len()
        ));
    }
    for (var, bound) in sigma {
        let Some((_, term)) = recorded.iter().find(|(n, _)| n == var.as_str()) else {
            return Err(format!(
                "lemma {lemma}: recorded substitution misses variable ?{}",
                var.as_str()
            ));
        };
        if !term_eq(bind_expr, *bound, term, term.root_id()) {
            return Err(format!(
                "lemma {lemma}: recorded substitution disagrees on ?{}",
                var.as_str()
            ));
        }
    }
    Ok(())
}

/// Replays a conditioned or dynamic lemma in a scratch e-graph seeded with
/// exactly the step's two terms. The lemma's own condition and applier run
/// (discharging symbolic side conditions through the analysis context);
/// the replay is accepted only when some match agreeing with the recorded
/// substitution reproduces the target term, and the scratch graph
/// performed zero unions — structural identity is then id identity, so the
/// graph serves purely as a hash-consed term store.
fn replay(
    rw: &Rewrite<TensorAnalysis>,
    recorded: &[(String, RecExpr)],
    lhs_t: &RecExpr,
    rhs_t: &RecExpr,
    gd: &Graph,
    ctx: &SymCtx,
) -> Result<(), String> {
    let mut analysis = TensorAnalysis::with_ctx(ctx.clone());
    // Only the leaves the two terms mention need analysis entries —
    // registering all of `G_d` here made every replayed step O(|G_d|).
    for e in [lhs_t, rhs_t] {
        for sym in e.leaf_symbols() {
            if let Some(rest) = sym.as_str().strip_prefix(SYNTHETIC_LEAF_PREFIX) {
                let dims = parse_ones_shape(rest)
                    .ok_or_else(|| format!("unparsable synthetic leaf {sym}"))?;
                analysis.register_leaf(sym.as_str(), Shape::of(&dims), DType::F32);
            } else if let Some(t) = gd.tensor_by_name(sym.as_str()) {
                analysis.register_leaf(&t.name, t.shape.clone(), t.dtype);
            }
        }
    }
    let mut scratch = EGraph::with_analysis(analysis);
    let lhs_id = scratch.add_expr(lhs_t);
    let rhs_id = scratch.add_expr(rhs_t);
    let matches = rw
        .searcher()
        .search_eclass(&scratch, lhs_id)
        .ok_or_else(|| format!("lemma {} does not match the step's source term", rw.name()))?;
    for subst in &matches.substs {
        let agrees = {
            let bound: Vec<(Var, RecExpr)> = subst
                .iter()
                .map(|(v, id)| (v, scratch.term_of(id)))
                .collect();
            bound.len() == recorded.len()
                && bound.iter().all(|(v, t)| {
                    recorded
                        .iter()
                        .any(|(n, rt)| n == v.as_str() && exprs_eq(t, rt))
                })
        };
        if !agrees {
            continue;
        }
        let Some(produced) = rw.apply_match(&mut scratch, lhs_id, subst) else {
            continue; // condition rejected this match
        };
        if scratch.union_count() != 0 {
            return Err(format!(
                "lemma {} performed unions during replay",
                rw.name()
            ));
        }
        if produced.contains(&rhs_id) {
            return Ok(());
        }
    }
    Err(format!(
        "no match of lemma {} agreeing with the recorded substitution reproduces the target term",
        rw.name()
    ))
}

/// What a term denotes, for per-step re-inference.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TermMeta {
    /// A tensor with a concrete metadata.
    Tensor(Shape, DType),
    /// A (concrete or symbolic) scalar.
    Scalar,
}

/// Infers shape/dtype metadata for every slot of a term, mirroring the
/// relation builder's inference plus the synthetic canonicalization
/// leaves (`~ones[...]`) the reduction lemmas mint.
fn term_metas(expr: &RecExpr, gd: &Graph) -> Result<Vec<Meta>, String> {
    let mut metas: Vec<Meta> = Vec::with_capacity(expr.len());
    for node in expr.nodes() {
        let meta = match node {
            ENode::Int(i) => Meta::scalar(SymExpr::constant(*i)),
            ENode::Sym(e) => Meta::scalar(e.clone()),
            ENode::Op(sym, ch) if ch.is_empty() => {
                let name = sym.as_str();
                if let Some(rest) = name.strip_prefix(SYNTHETIC_LEAF_PREFIX) {
                    let dims = parse_ones_shape(rest)
                        .ok_or_else(|| format!("unparsable synthetic leaf {name}"))?;
                    Meta::tensor(Shape::of(&dims), DType::F32)
                } else {
                    let t = gd
                        .tensor_by_name(name)
                        .ok_or_else(|| format!("unknown G_d tensor {name}"))?;
                    Meta::tensor(t.shape.clone(), t.dtype)
                }
            }
            ENode::Op(sym, ch) => {
                let child_metas: Vec<Meta> = ch.iter().map(|c| metas[c.index()].clone()).collect();
                let (op, tensor_count) = decode_op(sym.as_str(), &child_metas)
                    .ok_or_else(|| format!("unknown operator {sym}"))?;
                let inputs: Result<Vec<_>, String> = child_metas[..tensor_count]
                    .iter()
                    .map(|m| {
                        Ok((
                            m.shape
                                .clone()
                                .ok_or_else(|| "tensor operand lacks shape".to_owned())?,
                            m.dtype
                                .ok_or_else(|| "tensor operand lacks dtype".to_owned())?,
                        ))
                    })
                    .collect();
                let (shape, dtype) =
                    entangle_ir::infer_output(&op, &inputs?).map_err(|e| e.to_string())?;
                Meta::tensor(shape, dtype)
            }
        };
        metas.push(meta);
    }
    Ok(metas)
}

/// Converts one inferred slot meta into the [`TermMeta`] summary.
fn meta_term(m: &Meta) -> Result<TermMeta, String> {
    match (&m.shape, m.dtype) {
        (Some(s), Some(d)) => Ok(TermMeta::Tensor(s.clone(), d)),
        _ if m.scalar.is_some() => Ok(TermMeta::Scalar),
        _ => Err("uninferable term".to_owned()),
    }
}

/// Infers what the subterm at `at` denotes.
pub(crate) fn term_meta_at(expr: &RecExpr, at: Id, gd: &Graph) -> Result<TermMeta, String> {
    let metas = term_metas(expr, gd)?;
    meta_term(&metas[at.index()])
}

/// Pure mirror of the checker's operator encoding (`encode_op`):
/// collectives lower to binary `add`/`concat` chains and `slice`s of them,
/// everything else applies the operator with its attribute scalars
/// appended. Shard bounds for `reduce_scatter` are re-derived from the
/// inferred (concrete) reduced shape.
pub(crate) fn encode_op_term(op: &Op, inputs: &[RecExpr], gd: &Graph) -> Result<RecExpr, String> {
    let mut out = RecExpr::default();
    let ids: Vec<Id> = inputs.iter().map(|e| copy_expr(e, &mut out)).collect();
    match op {
        Op::AllReduce => {
            fold_binary(&mut out, "add", &ids)?;
        }
        Op::Concat { dim } | Op::AllGather { dim } => {
            fold_binary_with_attr(&mut out, "concat", &ids, *dim as i64)?;
        }
        Op::ReduceScatter { dim, rank, world } => {
            let summed = fold_binary(&mut out, "add", &ids)?;
            let TermMeta::Tensor(shape, _) = term_meta_at(&out, summed, gd)? else {
                return Err("reduce_scatter over a scalar".to_owned());
            };
            if *dim >= shape.rank() {
                return Err("reduce_scatter dim out of range".to_owned());
            }
            let size = shape
                .dim(*dim)
                .0
                .as_const()
                .ok_or_else(|| "reduce_scatter over symbolic dims".to_owned())?;
            let chunk = size / *world as i64;
            let d = out.add(ENode::Int(*dim as i64));
            let lo = out.add(ENode::Int(*rank as i64 * chunk));
            let hi = out.add(ENode::Int((*rank as i64 + 1) * chunk));
            out.add(ENode::op("slice", vec![summed, d, lo, hi]));
        }
        other => {
            let mut children = ids.clone();
            for attr in other.attr_scalars() {
                children.push(match attr.as_const() {
                    Some(v) => out.add(ENode::Int(v)),
                    None => out.add(ENode::Sym(attr)),
                });
            }
            out.add(ENode::op(other.name(), children));
        }
    }
    Ok(out)
}

/// Left-folds a binary operator chain; the resulting root is the last
/// slot added, so a single input leaves its copied root as the term root.
fn fold_binary(out: &mut RecExpr, name: &str, ids: &[Id]) -> Result<Id, String> {
    let Some((&first, rest)) = ids.split_first() else {
        return Err("collective needs inputs".to_owned());
    };
    let mut acc = first;
    for &next in rest {
        acc = out.add(ENode::op(name, vec![acc, next]));
    }
    Ok(acc)
}

fn fold_binary_with_attr(
    out: &mut RecExpr,
    name: &str,
    ids: &[Id],
    attr: i64,
) -> Result<Id, String> {
    let Some((&first, rest)) = ids.split_first() else {
        return Err("collective needs inputs".to_owned());
    };
    let mut acc = first;
    for &next in rest {
        let d = out.add(ENode::Int(attr));
        acc = out.add(ENode::op(name, vec![acc, next, d]));
    }
    Ok(acc)
}

/// Decodes the shape from a synthetic canonicalization leaf name, e.g.
/// `ones[2, 3]` (the `~` prefix already stripped). Mirrors the lint
/// auditor's ground evaluator.
fn parse_ones_shape(rest: &str) -> Option<Vec<i64>> {
    let body = rest
        .strip_prefix("ones")?
        .strip_prefix('[')?
        .strip_suffix(']')?;
    let body = body.trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',')
        .map(|p| p.trim().parse::<i64>().ok())
        .collect()
}
