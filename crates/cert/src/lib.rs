//! Proof-carrying refinement: rewrite certificates and the trusted kernel
//! that re-checks them.
//!
//! `check_refinement`'s verdict rests on ~4k lines of from-scratch e-graph
//! engine. Translation-validation style checkers re-establish trust by
//! making the *search* untrusted and re-checking its output with a small,
//! independent kernel — the approach of production graph verifiers and
//! GPUVerify-style equivalence checkers. This crate is that kernel for
//! ENTANGLE:
//!
//! - [`Certificate`]: everything the checker claimed — the input relation
//!   `R_i` it started from, one [`MappingCert`] per derived mapping (with a
//!   step-by-step [`Proof`] extracted from the saturation e-graph), and the
//!   output relation `R_o` it returned.
//! - [`verify`]: the trusted kernel. No union-find, no hash-consing during
//!   validation — each proof step is checked by *term* matching,
//!   substitution and per-step shape/dtype re-inference; symbolic side
//!   conditions are discharged through `entangle-symbolic`. Only registered
//!   lemmas, `G_d` operator definitions and already-accepted mappings may
//!   justify a step.
//! - [`to_json`] / [`from_json`]: a JSON interchange format so certificates
//!   can be shipped and audited out-of-process (`entangle certify`).
//!
//! The trusted computing base deliberately excludes the saturation engine:
//! see DESIGN.md ("Certificates and the trusted kernel") for the exact
//! boundary.

#![forbid(unsafe_code)]

mod cert;
mod instantiate;
mod json;
mod kernel;

#[cfg(test)]
mod tests;

pub use cert::{exprs_eq, term_eq, CertError, Certificate, MappingCert};
pub use instantiate::{retarget_proof, retarget_slice_bounds};
pub use json::{from_json, to_json};
pub use kernel::{verify, verify_mapping};
