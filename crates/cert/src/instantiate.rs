//! Substitution-based certificate instantiation.
//!
//! The checker's per-template memo stores one solved representative per
//! repeated structure class; other members differ from it only in the
//! integer slice bounds the template key abstracted to `$b{i}`
//! placeholders. Instantiating the representative's certificate for a
//! member is a *value substitution*: rewrite each bound through the
//! `representative value → member value` map, everywhere a slice bound
//! can syntactically occur — child positions 2 and 3 of a 4-argument
//! `slice` application — and nowhere else (a dim or scale that happens to
//! share a value with a bound must not move).
//!
//! Recorded rule substitutions cannot be retargeted the same way: a
//! binding `?d → 2` does not say whether the 2 was a dim or a bound, and
//! guessing wrong would forge evidence. Instead the substitution is
//! *re-derived* by matching the lemma's searcher pattern against the
//! retargeted source term — the exact check the kernel itself performs —
//! so the instantiated proof carries bindings that are correct by
//! construction or fail closed.
//!
//! Nothing here extends the trusted computing base: an instantiated
//! mapping is only admitted after [`crate::verify_mapping`] re-validates
//! the full chain in the kernel, and a rejection simply sends the checker
//! back to a concrete saturation run.

use std::collections::HashMap;

use entangle_egraph::{ENode, Id, Proof, ProofStep, RecExpr, Rewrite, Var};
use entangle_lemmas::TensorAnalysis;

use crate::kernel::match_term;

/// Rewrites every integer slice bound in `expr` through `map`; values
/// without an entry (and integers in non-bound positions) pass through.
pub fn retarget_slice_bounds(expr: &RecExpr, map: &HashMap<i64, i64>) -> RecExpr {
    let mut out = RecExpr::new();
    copy_retargeted(expr, expr.root_id(), false, map, &mut out);
    out
}

fn copy_retargeted(
    e: &RecExpr,
    at: Id,
    bound_pos: bool,
    map: &HashMap<i64, i64>,
    out: &mut RecExpr,
) -> Id {
    match e.node(at) {
        ENode::Int(v) => {
            let v = if bound_pos {
                *map.get(v).unwrap_or(v)
            } else {
                *v
            };
            out.add(ENode::Int(v))
        }
        ENode::Sym(s) => out.add(ENode::Sym(s.clone())),
        ENode::Op(sym, ch) => {
            let slice_bounds = sym.as_str() == "slice" && ch.len() == 4;
            let ch: Vec<Id> = ch
                .iter()
                .enumerate()
                .map(|(i, &c)| copy_retargeted(e, c, slice_bounds && i >= 2, map, out))
                .collect();
            out.add(ENode::Op(*sym, ch))
        }
    }
}

/// Instantiates a proof chain for new slice-bound values: every step term
/// is retargeted through `map`, and each rule step's recorded substitution
/// is re-derived by matching the lemma's searcher against the retargeted
/// source term.
///
/// # Errors
///
/// Returns a message when a rule step names an unregistered lemma or its
/// searcher no longer matches the retargeted term — the caller treats any
/// error as "fall back to a concrete solve".
pub fn retarget_proof(
    proof: &Proof,
    map: &HashMap<i64, i64>,
    lemmas: &[Rewrite<TensorAnalysis>],
) -> Result<Proof, String> {
    let index: HashMap<&str, &Rewrite<TensorAnalysis>> =
        lemmas.iter().map(|r| (r.name(), r)).collect();
    retarget_chain(proof, map, &index)
}

fn retarget_chain(
    proof: &Proof,
    map: &HashMap<i64, i64>,
    index: &HashMap<&str, &Rewrite<TensorAnalysis>>,
) -> Result<Proof, String> {
    let steps = proof
        .steps
        .iter()
        .map(|s| retarget_step(s, map, index))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Proof { steps })
}

fn retarget_step(
    step: &ProofStep,
    map: &HashMap<i64, i64>,
    index: &HashMap<&str, &Rewrite<TensorAnalysis>>,
) -> Result<ProofStep, String> {
    match step {
        ProofStep::Given {
            fact,
            before,
            after,
        } => Ok(ProofStep::Given {
            fact: fact.clone(),
            before: retarget_slice_bounds(before, map),
            after: retarget_slice_bounds(after, map),
        }),
        ProofStep::Congruence {
            before,
            after,
            children,
        } => Ok(ProofStep::Congruence {
            before: retarget_slice_bounds(before, map),
            after: retarget_slice_bounds(after, map),
            children: children
                .iter()
                .map(|p| retarget_chain(p, map, index))
                .collect::<Result<Vec<_>, _>>()?,
        }),
        ProofStep::Rule {
            name,
            forward,
            subst: _,
            before,
            after,
        } => {
            let before = retarget_slice_bounds(before, map);
            let after = retarget_slice_bounds(after, map);
            let rw = index
                .get(name.as_str())
                .ok_or_else(|| format!("instantiation names unregistered lemma {name}"))?;
            // Rule steps apply at term roots (subterm rewrites arrive
            // congruence-wrapped), so the searcher must match the whole
            // retargeted source term.
            let source = if *forward { &before } else { &after };
            let mut sigma: Vec<(Var, Id)> = Vec::new();
            if !match_term(rw.searcher().ast(), source, source.root_id(), &mut sigma) {
                return Err(format!(
                    "lemma {name} no longer matches the retargeted source term"
                ));
            }
            let subst = sigma
                .into_iter()
                .map(|(v, id)| (v.as_str().to_owned(), source.extract_subtree(id)))
                .collect();
            Ok(ProofStep::Rule {
                name: name.clone(),
                forward: *forward,
                subst,
                before,
                after,
            })
        }
    }
}
