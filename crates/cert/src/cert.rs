//! Certificate data model and structural term utilities.

use std::fmt;

use entangle_egraph::{ENode, Id, Proof, RecExpr};

/// One certified `R_o` mapping: the checker's claim that `G_s` tensor
/// `tensor` (produced by operator `operator`) is computed by the clean
/// expression `expr` over `G_d` tensors, together with the rewrite chain
/// proving it.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingCert {
    /// The `G_s` tensor this mapping is for (the operator's output).
    pub tensor: String,
    /// The `G_s` operator node whose encoding the proof starts from.
    pub operator: String,
    /// The accepted mapping chosen for each of the operator's inputs, in
    /// operator order. The proof's start term is the operator applied to
    /// exactly these expressions (with collectives lowered).
    pub inputs: Vec<RecExpr>,
    /// The clean expression over `G_d` tensors being certified.
    pub expr: RecExpr,
    /// Rewrite chain from the encoded operator application to `expr`.
    pub proof: Proof,
}

/// A refinement certificate: the full derivation `check_refinement`
/// performed, re-checkable by [`crate::verify`] without trusting the
/// saturation engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Certificate {
    /// Name of the sequential graph `G_s`.
    pub gs: String,
    /// Name of the distributed graph `G_d`.
    pub gd: String,
    /// The input relation `R_i` the derivation started from, as
    /// `(G_s tensor name, mappings)` sorted by `G_s` tensor id. These are
    /// the certificate's axioms: the kernel validates their shapes but
    /// takes their correctness as given, exactly as the paper does.
    pub inputs: Vec<(String, Vec<RecExpr>)>,
    /// One certificate per derived mapping, in derivation (topological)
    /// order — a mapping may only reference inputs accepted earlier.
    pub mappings: Vec<MappingCert>,
    /// The output relation `R_o`, as `(G_s tensor name, expression)`
    /// sorted by `G_s` tensor id. Every entry must be an accepted mapping
    /// whose leaves are all `G_d` *outputs* (Listing 1, line 9).
    pub outputs: Vec<(String, RecExpr)>,
}

impl Certificate {
    /// Total number of proof steps across all mappings (including
    /// congruence sub-proofs).
    pub fn total_steps(&self) -> usize {
        self.mappings.iter().map(|m| m.proof.size()).sum()
    }
}

/// Why the kernel refused a certificate.
#[derive(Debug, Clone, PartialEq)]
pub enum CertError {
    /// The certificate is structurally unusable: unknown tensor or
    /// operator names, unserializable terms, malformed JSON.
    Malformed(String),
    /// A mapping's proof failed validation.
    Rejected {
        /// The `G_s` tensor whose mapping was refused (empty for failures
        /// in the output relation).
        tensor: String,
        /// What the kernel could not validate.
        reason: String,
    },
}

impl CertError {
    pub(crate) fn rejected(tensor: &str, reason: impl Into<String>) -> CertError {
        CertError::Rejected {
            tensor: tensor.to_owned(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Malformed(what) => write!(f, "malformed certificate: {what}"),
            CertError::Rejected { tensor, reason } if tensor.is_empty() => {
                write!(f, "certificate rejected: {reason}")
            }
            CertError::Rejected { tensor, reason } => {
                write!(f, "certificate rejected for {tensor}: {reason}")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// Structural equality of two subterms, insensitive to how the trees are
/// laid out in their [`RecExpr`] slot vectors (proof extraction shares
/// repeated subterms; independently built terms do not).
pub fn term_eq(a: &RecExpr, ai: Id, b: &RecExpr, bi: Id) -> bool {
    match (a.node(ai), b.node(bi)) {
        (ENode::Int(x), ENode::Int(y)) => x == y,
        (ENode::Sym(x), ENode::Sym(y)) => x == y,
        (ENode::Op(sa, ca), ENode::Op(sb, cb)) => {
            sa == sb
                && ca.len() == cb.len()
                && ca.iter().zip(cb).all(|(&x, &y)| term_eq(a, x, b, y))
        }
        _ => false,
    }
}

/// Structural equality of two whole terms.
pub fn exprs_eq(a: &RecExpr, b: &RecExpr) -> bool {
    term_eq(a, a.root_id(), b, b.root_id())
}

/// Copies the subtree of `src` rooted at `at` into `dst`, returning the
/// new root slot.
pub(crate) fn copy_subtree(src: &RecExpr, at: Id, dst: &mut RecExpr) -> Id {
    let node = src.node(at).map_children(|c| copy_subtree(src, c, dst));
    dst.add(node)
}

/// Copies a whole term into `dst`, returning the new root slot.
pub(crate) fn copy_expr(src: &RecExpr, dst: &mut RecExpr) -> Id {
    copy_subtree(src, src.root_id(), dst)
}
