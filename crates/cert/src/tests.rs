//! Unit tests: a hand-built refinement with a complete certificate, the
//! kernel's rejection behavior, and the JSON round-trip.

use entangle_egraph::{Proof, ProofStep, RecExpr};
use entangle_ir::{DType, Graph, GraphBuilder, Op};
use entangle_lemmas::{registry, rewrites_of, TensorAnalysis};
use entangle_symbolic::SymCtx;

use crate::cert::{exprs_eq, CertError, Certificate, MappingCert};
use crate::json::{from_json, to_json};
use crate::kernel::verify;

fn e(s: &str) -> RecExpr {
    s.parse().expect("parses")
}

/// `G_s`: y = relu(x) over a [4, 4] input.
fn gs() -> Graph {
    let mut b = GraphBuilder::new("gs");
    let x = b.input("x", &[4, 4], DType::F32);
    let y = b.apply("y", Op::Relu, &[x]).expect("infers");
    b.mark_output(y);
    b.finish().expect("valid")
}

/// `G_d`: the same computation row-sharded over two workers.
fn gd() -> Graph {
    let mut b = GraphBuilder::new("gd");
    let x0 = b.input("x0", &[2, 4], DType::F32);
    let x1 = b.input("x1", &[2, 4], DType::F32);
    let y0 = b.apply("y0", Op::Relu, &[x0]).expect("infers");
    let y1 = b.apply("y1", Op::Relu, &[x1]).expect("infers");
    b.mark_output(y0);
    b.mark_output(y1);
    b.finish().expect("valid")
}

fn lemmas() -> Vec<entangle_egraph::Rewrite<TensorAnalysis>> {
    rewrites_of(&registry())
}

/// A complete, correct certificate for the row-sharded relu refinement:
///
/// ```text
/// relu(concat(x0, x1, 0))           -- encoding of y over R_i
///   ≡ concat(relu(x0), relu(x1), 0) -- lemma relu-of-concat
///   ≡ concat(y0, y1, 0)             -- congruence + G_d definitions
/// ```
fn good_certificate() -> Certificate {
    let proof = Proof {
        steps: vec![
            ProofStep::Rule {
                name: "relu-of-concat".to_owned(),
                forward: true,
                subst: vec![
                    ("a".to_owned(), e("x0")),
                    ("b".to_owned(), e("x1")),
                    ("d".to_owned(), e("0")),
                ],
                before: e("(relu (concat x0 x1 0))"),
                after: e("(concat (relu x0) (relu x1) 0)"),
            },
            ProofStep::Congruence {
                before: e("(concat (relu x0) (relu x1) 0)"),
                after: e("(concat y0 y1 0)"),
                children: vec![
                    Proof {
                        steps: vec![ProofStep::Given {
                            fact: "G_d definition of y0".to_owned(),
                            before: e("(relu x0)"),
                            after: e("y0"),
                        }],
                    },
                    Proof {
                        steps: vec![ProofStep::Given {
                            fact: "G_d definition of y1".to_owned(),
                            before: e("(relu x1)"),
                            after: e("y1"),
                        }],
                    },
                    Proof::default(),
                ],
            },
        ],
    };
    Certificate {
        gs: "gs".to_owned(),
        gd: "gd".to_owned(),
        inputs: vec![("x".to_owned(), vec![e("(concat x0 x1 0)")])],
        mappings: vec![MappingCert {
            tensor: "y".to_owned(),
            operator: "y".to_owned(),
            inputs: vec![e("(concat x0 x1 0)")],
            expr: e("(concat y0 y1 0)"),
            proof,
        }],
        outputs: vec![("y".to_owned(), e("(concat y0 y1 0)"))],
    }
}

fn check(cert: &Certificate) -> Result<(), CertError> {
    verify(cert, &gs(), &gd(), &lemmas(), &SymCtx::default())
}

#[test]
fn accepts_a_correct_certificate() {
    check(&good_certificate()).expect("kernel accepts the hand-built proof");
}

#[test]
fn rejects_a_wrong_lemma_name() {
    let mut cert = good_certificate();
    let ProofStep::Rule { name, .. } = &mut cert.mappings[0].proof.steps[0] else {
        panic!("first step is a rule");
    };
    *name = "sigmoid-of-concat".to_owned();
    let err = check(&cert).expect_err("wrong lemma must be rejected");
    assert!(matches!(err, CertError::Rejected { .. }), "{err}");
}

#[test]
fn rejects_a_nonexistent_lemma() {
    let mut cert = good_certificate();
    let ProofStep::Rule { name, .. } = &mut cert.mappings[0].proof.steps[0] else {
        panic!("first step is a rule");
    };
    *name = "no-such-lemma".to_owned();
    let err = check(&cert).expect_err("unknown lemma must be rejected");
    assert!(err.to_string().contains("unknown lemma"), "{err}");
}

#[test]
fn rejects_a_corrupted_substitution() {
    let mut cert = good_certificate();
    let ProofStep::Rule { subst, .. } = &mut cert.mappings[0].proof.steps[0] else {
        panic!("first step is a rule");
    };
    subst[0].1 = e("x1");
    let err = check(&cert).expect_err("corrupted substitution must be rejected");
    assert!(err.to_string().contains("substitution"), "{err}");
}

#[test]
fn rejects_a_truncated_chain() {
    let mut cert = good_certificate();
    cert.mappings[0].proof.steps.pop();
    let err = check(&cert).expect_err("truncated proof must be rejected");
    assert!(err.to_string().contains("does not reach"), "{err}");
}

#[test]
fn rejects_a_forged_given_fact() {
    let mut cert = good_certificate();
    cert.mappings[0].proof = Proof {
        steps: vec![ProofStep::Given {
            fact: "trust me".to_owned(),
            before: e("(relu (concat x0 x1 0))"),
            after: e("(concat y0 y1 0)"),
        }],
    };
    let err = check(&cert).expect_err("unrecognized facts must be rejected");
    assert!(err.to_string().contains("unrecognized given fact"), "{err}");
}

#[test]
fn rejects_an_output_over_gd_inputs() {
    let mut cert = good_certificate();
    // Sneak a mapping of y over G_d *inputs* in through R_i (shapes line
    // up, so it is accepted as an axiom), then claim it as the output: the
    // kernel still rejects it, because R_o may only use G_d output tensors.
    cert.inputs
        .push(("y".to_owned(), vec![e("(concat x0 x1 0)")]));
    cert.outputs[0].1 = e("(concat x0 x1 0)");
    let err = check(&cert).expect_err("R_o over G_d inputs must be rejected");
    assert!(err.to_string().contains("non-output G_d tensor"), "{err}");
}

#[test]
fn rejects_an_unproven_output_mapping() {
    let mut cert = good_certificate();
    cert.outputs[0].1 = e("(concat y1 y0 0)");
    let err = check(&cert).expect_err("unproven output mapping must be rejected");
    assert!(err.to_string().contains("never accepted"), "{err}");
}

#[test]
fn rejects_a_missing_output_mapping() {
    let mut cert = good_certificate();
    cert.outputs.clear();
    let err = check(&cert).expect_err("uncovered G_s output must be rejected");
    assert!(err.to_string().contains("no mapping"), "{err}");
}

#[test]
fn rejects_an_unaccepted_mapping_input() {
    let mut cert = good_certificate();
    cert.mappings[0].inputs[0] = e("(concat x1 x0 0)");
    let err = check(&cert).expect_err("unaccepted input mapping must be rejected");
    assert!(err.to_string().contains("unaccepted"), "{err}");
}

#[test]
fn empty_proof_requires_identical_terms() {
    let mut cert = good_certificate();
    cert.mappings[0].proof = Proof::default();
    let err = check(&cert).expect_err("reflexivity cannot bridge distinct terms");
    assert!(err.to_string().contains("empty proof"), "{err}");
}

#[test]
fn term_eq_is_layout_insensitive() {
    // The same term with and without shared subterm slots.
    let shared = e("(add (relu x0) (relu x0))");
    let mut expanded = RecExpr::default();
    let a = {
        let x = expanded.add(entangle_egraph::ENode::leaf("x0"));
        expanded.add(entangle_egraph::ENode::op("relu", vec![x]))
    };
    let b = {
        let x = expanded.add(entangle_egraph::ENode::leaf("x0"));
        expanded.add(entangle_egraph::ENode::op("relu", vec![x]))
    };
    expanded.add(entangle_egraph::ENode::op("add", vec![a, b]));
    assert!(exprs_eq(&shared, &expanded));
    assert!(!exprs_eq(&shared, &e("(add (relu x0) (relu x1))")));
}

#[test]
fn json_round_trips_bytewise() {
    let cert = good_certificate();
    let text = to_json(&cert).expect("serializes");
    let back = from_json(&text).expect("parses");
    assert_eq!(back, cert);
    let again = to_json(&back).expect("serializes");
    assert_eq!(text, again, "serialization is byte-stable");
}

#[test]
fn json_rejects_bad_documents() {
    assert!(from_json("not json").is_err());
    assert!(from_json("{}").is_err(), "missing version");
    assert!(
        from_json(
            r#"{"version": 2, "gs": "a", "gd": "b", "inputs": [], "mappings": [], "outputs": []}"#
        )
        .is_err(),
        "unknown version"
    );
}

#[test]
fn verified_json_round_trip() {
    let text = to_json(&good_certificate()).expect("serializes");
    let back = from_json(&text).expect("parses");
    check(&back).expect("re-parsed certificate still verifies");
}
