//! JSON interchange for certificates, built on `entangle-ir`'s
//! dependency-free [`Json`] codec.
//!
//! Terms are encoded structurally rather than as s-expressions, because
//! synthetic canonicalization leaves (`~ones[2, 3]`) contain characters an
//! s-expression reader cannot round-trip: a string is an atom (leaf
//! operator), a number is an integer scalar, and an array `[head, args..]`
//! is an operator application. Symbolic-scalar slots ([`ENode::Sym`])
//! cannot appear in certified expressions (the model zoo is fully
//! concrete) and are refused at emit time.
//!
//! The top-level object is versioned:
//!
//! ```json
//! {
//!   "version": 1,
//!   "gs": "...", "gd": "...",
//!   "inputs":   [{"tensor": "x", "exprs": [TERM, ...]}, ...],
//!   "mappings": [{"tensor": "y", "operator": "n0",
//!                 "inputs": [TERM, ...], "expr": TERM,
//!                 "proof": [STEP, ...]}, ...],
//!   "outputs":  [{"tensor": "y", "expr": TERM}, ...]
//! }
//! ```
//!
//! with steps tagged by `"kind"`: `"rule"` (name, forward, subst, before,
//! after), `"congruence"` (before, after, children — one sub-proof per
//! argument), or `"given"` (fact, before, after).

use entangle_egraph::{ENode, Id, Proof, ProofStep, RecExpr};
use entangle_ir::json::{parse, to_string_pretty, Json};

use crate::cert::{CertError, Certificate, MappingCert};

/// Serializes a certificate to pretty-printed JSON.
///
/// # Errors
///
/// [`CertError::Malformed`] if a term contains a symbolic scalar slot,
/// which the interchange format cannot represent.
pub fn to_json(cert: &Certificate) -> Result<String, CertError> {
    let inputs = cert
        .inputs
        .iter()
        .map(|(name, exprs)| {
            let es = exprs.iter().map(term_to_json).collect::<Result<_, _>>()?;
            Ok(Json::Obj(vec![
                ("tensor".to_owned(), Json::Str(name.clone())),
                ("exprs".to_owned(), Json::Arr(es)),
            ]))
        })
        .collect::<Result<Vec<_>, CertError>>()?;
    let mappings = cert
        .mappings
        .iter()
        .map(mapping_to_json)
        .collect::<Result<Vec<_>, CertError>>()?;
    let outputs = cert
        .outputs
        .iter()
        .map(|(name, e)| {
            Ok(Json::Obj(vec![
                ("tensor".to_owned(), Json::Str(name.clone())),
                ("expr".to_owned(), term_to_json(e)?),
            ]))
        })
        .collect::<Result<Vec<_>, CertError>>()?;
    let doc = Json::Obj(vec![
        ("version".to_owned(), Json::Int(1)),
        ("gs".to_owned(), Json::Str(cert.gs.clone())),
        ("gd".to_owned(), Json::Str(cert.gd.clone())),
        ("inputs".to_owned(), Json::Arr(inputs)),
        ("mappings".to_owned(), Json::Arr(mappings)),
        ("outputs".to_owned(), Json::Arr(outputs)),
    ]);
    Ok(to_string_pretty(&doc))
}

/// Parses a certificate from its JSON interchange form.
///
/// # Errors
///
/// [`CertError::Malformed`] on any structural problem (this is the only
/// error path — semantic validation is [`crate::verify`]'s job).
pub fn from_json(text: &str) -> Result<Certificate, CertError> {
    let doc = parse(text).map_err(CertError::Malformed)?;
    match doc.get("version") {
        Some(Json::Int(1)) => {}
        Some(v) => {
            return Err(CertError::Malformed(format!(
                "unsupported certificate version {v:?}"
            )))
        }
        None => return Err(CertError::Malformed("missing version field".to_owned())),
    }
    let gs = str_field(&doc, "gs")?;
    let gd = str_field(&doc, "gd")?;
    let inputs = arr_field(&doc, "inputs")?
        .iter()
        .map(|entry| {
            let name = str_field(entry, "tensor")?;
            let exprs = arr_field(entry, "exprs")?
                .iter()
                .map(term_from_json)
                .collect::<Result<_, _>>()?;
            Ok((name, exprs))
        })
        .collect::<Result<Vec<_>, CertError>>()?;
    let mappings = arr_field(&doc, "mappings")?
        .iter()
        .map(mapping_from_json)
        .collect::<Result<Vec<_>, CertError>>()?;
    let outputs = arr_field(&doc, "outputs")?
        .iter()
        .map(|entry| {
            let name = str_field(entry, "tensor")?;
            let expr = term_from_json(req(entry, "expr")?)?;
            Ok((name, expr))
        })
        .collect::<Result<Vec<_>, CertError>>()?;
    Ok(Certificate {
        gs,
        gd,
        inputs,
        mappings,
        outputs,
    })
}

fn mapping_to_json(mc: &MappingCert) -> Result<Json, CertError> {
    let inputs = mc
        .inputs
        .iter()
        .map(term_to_json)
        .collect::<Result<_, _>>()?;
    Ok(Json::Obj(vec![
        ("tensor".to_owned(), Json::Str(mc.tensor.clone())),
        ("operator".to_owned(), Json::Str(mc.operator.clone())),
        ("inputs".to_owned(), Json::Arr(inputs)),
        ("expr".to_owned(), term_to_json(&mc.expr)?),
        ("proof".to_owned(), proof_to_json(&mc.proof)?),
    ]))
}

fn mapping_from_json(v: &Json) -> Result<MappingCert, CertError> {
    Ok(MappingCert {
        tensor: str_field(v, "tensor")?,
        operator: str_field(v, "operator")?,
        inputs: arr_field(v, "inputs")?
            .iter()
            .map(term_from_json)
            .collect::<Result<_, _>>()?,
        expr: term_from_json(req(v, "expr")?)?,
        proof: proof_from_json(req(v, "proof")?)?,
    })
}

fn proof_to_json(proof: &Proof) -> Result<Json, CertError> {
    let steps = proof
        .steps
        .iter()
        .map(step_to_json)
        .collect::<Result<_, _>>()?;
    Ok(Json::Arr(steps))
}

fn proof_from_json(v: &Json) -> Result<Proof, CertError> {
    let Json::Arr(items) = v else {
        return Err(CertError::Malformed(format!(
            "proof must be an array, found {}",
            v.kind()
        )));
    };
    let steps = items.iter().map(step_from_json).collect::<Result<_, _>>()?;
    Ok(Proof { steps })
}

fn step_to_json(step: &ProofStep) -> Result<Json, CertError> {
    match step {
        ProofStep::Rule {
            name,
            forward,
            subst,
            before,
            after,
        } => {
            let bindings = subst
                .iter()
                .map(|(var, term)| {
                    Ok(Json::Obj(vec![
                        ("var".to_owned(), Json::Str(var.clone())),
                        ("term".to_owned(), term_to_json(term)?),
                    ]))
                })
                .collect::<Result<_, CertError>>()?;
            Ok(Json::Obj(vec![
                ("kind".to_owned(), Json::Str("rule".to_owned())),
                ("name".to_owned(), Json::Str(name.clone())),
                ("forward".to_owned(), Json::Bool(*forward)),
                ("subst".to_owned(), Json::Arr(bindings)),
                ("before".to_owned(), term_to_json(before)?),
                ("after".to_owned(), term_to_json(after)?),
            ]))
        }
        ProofStep::Congruence {
            before,
            after,
            children,
        } => {
            let kids = children
                .iter()
                .map(proof_to_json)
                .collect::<Result<_, _>>()?;
            Ok(Json::Obj(vec![
                ("kind".to_owned(), Json::Str("congruence".to_owned())),
                ("before".to_owned(), term_to_json(before)?),
                ("after".to_owned(), term_to_json(after)?),
                ("children".to_owned(), Json::Arr(kids)),
            ]))
        }
        ProofStep::Given {
            fact,
            before,
            after,
        } => Ok(Json::Obj(vec![
            ("kind".to_owned(), Json::Str("given".to_owned())),
            ("fact".to_owned(), Json::Str(fact.clone())),
            ("before".to_owned(), term_to_json(before)?),
            ("after".to_owned(), term_to_json(after)?),
        ])),
    }
}

fn step_from_json(v: &Json) -> Result<ProofStep, CertError> {
    match req(v, "kind")? {
        Json::Str(k) if k == "rule" => {
            let subst = arr_field(v, "subst")?
                .iter()
                .map(|b| {
                    let var = str_field(b, "var")?;
                    let term = term_from_json(req(b, "term")?)?;
                    Ok((var, term))
                })
                .collect::<Result<_, CertError>>()?;
            let forward = match req(v, "forward")? {
                Json::Bool(b) => *b,
                other => {
                    return Err(CertError::Malformed(format!(
                        "forward must be a bool, found {}",
                        other.kind()
                    )))
                }
            };
            Ok(ProofStep::Rule {
                name: str_field(v, "name")?,
                forward,
                subst,
                before: term_from_json(req(v, "before")?)?,
                after: term_from_json(req(v, "after")?)?,
            })
        }
        Json::Str(k) if k == "congruence" => {
            let children = arr_field(v, "children")?
                .iter()
                .map(proof_from_json)
                .collect::<Result<_, _>>()?;
            Ok(ProofStep::Congruence {
                before: term_from_json(req(v, "before")?)?,
                after: term_from_json(req(v, "after")?)?,
                children,
            })
        }
        Json::Str(k) if k == "given" => Ok(ProofStep::Given {
            fact: str_field(v, "fact")?,
            before: term_from_json(req(v, "before")?)?,
            after: term_from_json(req(v, "after")?)?,
        }),
        other => Err(CertError::Malformed(format!(
            "unknown proof step kind {other:?}"
        ))),
    }
}

/// Encodes a term structurally: leaves as strings, integers as numbers,
/// applications as `[head, args...]` arrays.
fn term_to_json(expr: &RecExpr) -> Result<Json, CertError> {
    subterm_to_json(expr, expr.root_id())
}

fn subterm_to_json(expr: &RecExpr, at: Id) -> Result<Json, CertError> {
    match expr.node(at) {
        ENode::Int(i) => Ok(Json::Int(*i)),
        ENode::Sym(e) => Err(CertError::Malformed(format!(
            "symbolic scalar {e} cannot be serialized; certificates require concrete shapes"
        ))),
        ENode::Op(sym, ch) if ch.is_empty() => Ok(Json::Str(sym.as_str().to_owned())),
        ENode::Op(sym, ch) => {
            let mut items = Vec::with_capacity(ch.len() + 1);
            items.push(Json::Str(sym.as_str().to_owned()));
            for &c in ch {
                items.push(subterm_to_json(expr, c)?);
            }
            Ok(Json::Arr(items))
        }
    }
}

fn term_from_json(v: &Json) -> Result<RecExpr, CertError> {
    let mut expr = RecExpr::default();
    subterm_from_json(v, &mut expr)?;
    Ok(expr)
}

fn subterm_from_json(v: &Json, expr: &mut RecExpr) -> Result<Id, CertError> {
    match v {
        Json::Int(i) => Ok(expr.add(ENode::Int(*i))),
        Json::Str(s) => Ok(expr.add(ENode::leaf(s))),
        Json::Arr(items) => {
            let Some(Json::Str(head)) = items.first() else {
                return Err(CertError::Malformed(
                    "term application must start with an operator string".to_owned(),
                ));
            };
            if items.len() < 2 {
                return Err(CertError::Malformed(format!(
                    "term application of {head} has no arguments; encode leaves as strings"
                )));
            }
            let children = items[1..]
                .iter()
                .map(|c| subterm_from_json(c, expr))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(expr.add(ENode::op(head, children)))
        }
        other => Err(CertError::Malformed(format!(
            "terms are strings, numbers or arrays, found {}",
            other.kind()
        ))),
    }
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, CertError> {
    v.get(key)
        .ok_or_else(|| CertError::Malformed(format!("missing field {key}")))
}

fn str_field(v: &Json, key: &str) -> Result<String, CertError> {
    match req(v, key)? {
        Json::Str(s) => Ok(s.clone()),
        other => Err(CertError::Malformed(format!(
            "field {key} must be a string, found {}",
            other.kind()
        ))),
    }
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], CertError> {
    match req(v, key)? {
        Json::Arr(items) => Ok(items),
        other => Err(CertError::Malformed(format!(
            "field {key} must be an array, found {}",
            other.kind()
        ))),
    }
}
