//! Cost-based term extraction from e-classes.

use std::collections::HashMap;

use crate::egraph::{Analysis, EGraph};
use crate::node::{ENode, RecExpr};
use crate::unionfind::Id;

/// A cost model over e-nodes.
///
/// `cost` receives the node and the best costs of its children; returning
/// [`f64::INFINITY`] excludes the node (and any term through it). The
/// refinement checker uses an infinite-cost model over non-clean operators to
/// extract *clean expressions only*.
pub trait CostFunction {
    /// Cost of `enode` given its children's best costs.
    fn cost(&self, enode: &ENode, child_costs: &[f64]) -> f64;
}

/// AST size, excluding scalar attribute leaves — the "smallest number of
/// nested expressions" measure the paper uses when pruning equivalent
/// expressions (§4.3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl CostFunction for AstSize {
    fn cost(&self, enode: &ENode, child_costs: &[f64]) -> f64 {
        let own = match enode {
            ENode::Int(_) | ENode::Sym(_) => 0.0,
            ENode::Op(_, _) => 1.0,
        };
        own + child_costs.iter().sum::<f64>()
    }
}

impl<F> CostFunction for F
where
    F: Fn(&ENode, &[f64]) -> f64,
{
    fn cost(&self, enode: &ENode, child_costs: &[f64]) -> f64 {
        self(enode, child_costs)
    }
}

/// Extracts minimum-cost terms per e-class.
///
/// Costs are computed by fixpoint iteration, so cyclic e-classes (which
/// equality saturation routinely creates) are handled: a class only gets a
/// finite cost if some finite-cost term exists.
///
/// # Examples
///
/// ```
/// use entangle_egraph::{AstSize, EGraph, Extractor, RecExpr, Rewrite, Runner};
///
/// let mut eg = EGraph::<()>::default();
/// let id = eg.add_expr(&"(add x 0)".parse::<RecExpr>().unwrap());
/// let rw: Rewrite<()> = Rewrite::parse("add-zero", "(add ?x 0)", "?x").unwrap();
/// let mut runner = Runner::new(eg);
/// runner.run(&[rw]);
/// let extractor = Extractor::new(&runner.egraph, AstSize);
/// let (cost, best) = extractor.find_best(id).unwrap();
/// assert_eq!(best.to_string(), "x");
/// assert_eq!(cost, 1.0);
/// ```
pub struct Extractor<'a, A: Analysis, C: CostFunction> {
    egraph: &'a EGraph<A>,
    cost_fn: C,
    best: HashMap<Id, (f64, ENode)>,
}

impl<'a, A: Analysis, C: CostFunction> Extractor<'a, A, C> {
    /// Computes best costs for every class of `egraph` under `cost_fn`.
    pub fn new(egraph: &'a EGraph<A>, cost_fn: C) -> Self {
        let mut ex = Extractor {
            egraph,
            cost_fn,
            best: HashMap::new(),
        };
        ex.fixpoint();
        ex
    }

    fn fixpoint(&mut self) {
        let ids = self.egraph.class_ids();
        loop {
            let mut changed = false;
            for &id in &ids {
                for node in &self.egraph[id].nodes {
                    let Some(cost) = self.node_cost(node) else {
                        continue;
                    };
                    match self.best.get(&id) {
                        Some((c, _)) if *c <= cost => {}
                        _ => {
                            self.best.insert(id, (cost, node.clone()));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn node_cost(&self, node: &ENode) -> Option<f64> {
        let mut child_costs = Vec::with_capacity(node.children().len());
        for &c in node.children() {
            let (cost, _) = self.best.get(&self.egraph.find(c))?;
            child_costs.push(*cost);
        }
        let cost = self.cost_fn.cost(node, &child_costs);
        if cost.is_finite() {
            Some(cost)
        } else {
            None
        }
    }

    /// The best cost for a class, if any finite-cost term exists.
    pub fn best_cost(&self, id: Id) -> Option<f64> {
        self.best.get(&self.egraph.find(id)).map(|(c, _)| *c)
    }

    /// The minimum-cost term for a class, if one exists.
    pub fn find_best(&self, id: Id) -> Option<(f64, RecExpr)> {
        let id = self.egraph.find(id);
        let (cost, _) = self.best.get(&id)?;
        let mut expr = RecExpr::new();
        let root = self.build(id, &mut expr)?;
        debug_assert_eq!(root, expr.root_id());
        Some((*cost, expr))
    }

    fn build(&self, id: Id, out: &mut RecExpr) -> Option<Id> {
        let (_, node) = self.best.get(&self.egraph.find(id))?;
        let mut children = Vec::with_capacity(node.children().len());
        for &c in node.children() {
            children.push(self.build(c, out)?);
        }
        let mapped = match node {
            ENode::Op(sym, _) => ENode::Op(*sym, children),
            other => other.clone(),
        };
        Some(out.add(mapped))
    }
}
