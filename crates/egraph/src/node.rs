//! E-nodes and recursive expressions, with the s-expression surface syntax
//! used throughout the paper (Listing 4).

use std::fmt;
use std::str::FromStr;

use entangle_symbolic::SymExpr;

use crate::symbol::Symbol;
use crate::unionfind::Id;

/// A node of the expression language.
///
/// The language is deliberately untyped at this layer: an operator is a
/// symbol applied to children, scalars are inline leaves. Tensor leaves
/// (the `A₁`, `B₂`, `C` of the paper's figures) are nullary [`ENode::Op`]s
/// whose symbol is the tensor's name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ENode {
    /// A concrete integer scalar (dimension indices, slice bounds, …).
    Int(i64),
    /// A symbolic integer scalar (§5 "Handling Symbolic Scalars").
    Sym(SymExpr),
    /// An operator applied to child e-classes; nullary ops are leaves.
    Op(Symbol, Vec<Id>),
}

impl ENode {
    /// A tensor/operator leaf with no children.
    pub fn leaf(name: &str) -> ENode {
        ENode::Op(Symbol::new(name), Vec::new())
    }

    /// An operator node.
    pub fn op(name: &str, children: Vec<Id>) -> ENode {
        ENode::Op(Symbol::new(name), children)
    }

    /// The operator symbol, if this is an `Op` node.
    pub fn op_symbol(&self) -> Option<Symbol> {
        match self {
            ENode::Op(s, _) => Some(*s),
            _ => None,
        }
    }

    /// The children of this node (empty for scalars and leaves).
    pub fn children(&self) -> &[Id] {
        match self {
            ENode::Op(_, ch) => ch,
            _ => &[],
        }
    }

    /// Mutable access to the children.
    pub fn children_mut(&mut self) -> &mut [Id] {
        match self {
            ENode::Op(_, ch) => ch,
            _ => &mut [],
        }
    }

    /// Returns a copy with every child id replaced by `f(child)`.
    pub fn map_children<F: FnMut(Id) -> Id>(&self, mut f: F) -> ENode {
        match self {
            ENode::Op(s, ch) => ENode::Op(*s, ch.iter().map(|&c| f(c)).collect()),
            other => other.clone(),
        }
    }

    /// `true` if the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// The concrete integer value, if this is an `Int` node.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ENode::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for ENode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ENode::Int(i) => write!(f, "{i}"),
            ENode::Sym(s) => write!(f, "{{{s}}}"),
            ENode::Op(sym, ch) if ch.is_empty() => write!(f, "{sym}"),
            ENode::Op(sym, ch) => {
                write!(f, "({sym}")?;
                for c in ch {
                    write!(f, " {c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A recursive expression: a flattened tree of [`ENode`]s in postorder, with
/// children referring to earlier slots.
///
/// The last node is the root. This mirrors `egg::RecExpr` and is the currency
/// between the parser, the e-graph, and the extractor.
///
/// # Examples
///
/// ```
/// use entangle_egraph::RecExpr;
///
/// let e: RecExpr = "(concat (slice X 0 0 16) (slice X 0 16 32) 0)".parse().unwrap();
/// assert_eq!(e.to_string(), "(concat (slice X 0 0 16) (slice X 0 16 32) 0)");
/// assert_eq!(e.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RecExpr {
    nodes: Vec<ENode>,
}

impl RecExpr {
    /// An empty expression (no root).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node whose children must already be present, returning its
    /// slot as an [`Id`].
    ///
    /// # Panics
    ///
    /// Panics if a child id is out of bounds (children must be added first).
    pub fn add(&mut self, node: ENode) -> Id {
        for child in node.children() {
            assert!(
                child.index() < self.nodes.len(),
                "RecExpr::add: child {child} out of bounds"
            );
        }
        self.nodes.push(node);
        Id::from_index(self.nodes.len() - 1)
    }

    /// The nodes in postorder.
    pub fn nodes(&self) -> &[ENode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the expression has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node.
    ///
    /// # Panics
    ///
    /// Panics on an empty expression.
    pub fn root(&self) -> &ENode {
        self.nodes
            .last()
            .expect("RecExpr::root on empty expression")
    }

    /// Id of the root slot.
    pub fn root_id(&self) -> Id {
        Id::from_index(self.nodes.len() - 1)
    }

    /// The node in a given slot.
    pub fn node(&self, id: Id) -> &ENode {
        &self.nodes[id.index()]
    }

    /// All distinct leaf operator symbols (tensor names) in the expression.
    pub fn leaf_symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for n in &self.nodes {
            if let ENode::Op(s, ch) = n {
                if ch.is_empty() && !out.contains(s) {
                    out.push(*s);
                }
            }
        }
        out
    }

    /// Builds a sub-`RecExpr` rooted at `id`.
    pub fn extract_subtree(&self, id: Id) -> RecExpr {
        let mut out = RecExpr::new();
        let root = self.copy_into(id, &mut out);
        debug_assert_eq!(root, out.root_id());
        out
    }

    fn copy_into(&self, id: Id, out: &mut RecExpr) -> Id {
        let node = self.node(id).map_children(|c| self.copy_into(c, out));
        out.add(node)
    }

    /// Counts nodes, excluding scalar attribute leaves — the "number of
    /// nested expressions" size used for simplest-representative pruning.
    pub fn ast_size(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n, ENode::Int(_) | ENode::Sym(_)))
            .count()
    }

    fn fmt_node(&self, id: Id, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let node = self.node(id);
        match node {
            ENode::Int(i) => write!(f, "{i}"),
            ENode::Sym(s) => write!(f, "{{{s}}}"),
            ENode::Op(sym, ch) if ch.is_empty() => write!(f, "{sym}"),
            ENode::Op(sym, ch) => {
                write!(f, "({sym}")?;
                for c in ch {
                    write!(f, " ")?;
                    self.fmt_node(*c, f)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for RecExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            return write!(f, "()");
        }
        self.fmt_node(self.root_id(), f)
    }
}

/// Error parsing an s-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    message: String,
}

impl ParseExprError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseExprError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid s-expression: {}", self.message)
    }
}

impl std::error::Error for ParseExprError {}

/// A parsed s-expression token tree, shared by the expression and pattern
/// parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

pub(crate) fn parse_sexp(input: &str) -> Result<Sexp, ParseExprError> {
    let tokens = tokenize(input);
    let mut pos = 0;
    let sexp = parse_tokens(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(ParseExprError::new(format!(
            "trailing tokens after expression in {input:?}"
        )));
    }
    Ok(sexp)
}

fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in input.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

fn parse_tokens(tokens: &[String], pos: &mut usize) -> Result<Sexp, ParseExprError> {
    let Some(tok) = tokens.get(*pos) else {
        return Err(ParseExprError::new("unexpected end of input"));
    };
    *pos += 1;
    match tok.as_str() {
        "(" => {
            let mut items = Vec::new();
            loop {
                match tokens.get(*pos).map(String::as_str) {
                    Some(")") => {
                        *pos += 1;
                        return Ok(Sexp::List(items));
                    }
                    Some(_) => items.push(parse_tokens(tokens, pos)?),
                    None => return Err(ParseExprError::new("unclosed parenthesis")),
                }
            }
        }
        ")" => Err(ParseExprError::new("unexpected ')'")),
        atom => Ok(Sexp::Atom(atom.to_owned())),
    }
}

fn build_expr(sexp: &Sexp, out: &mut RecExpr) -> Result<Id, ParseExprError> {
    match sexp {
        Sexp::Atom(a) => {
            if let Ok(i) = a.parse::<i64>() {
                Ok(out.add(ENode::Int(i)))
            } else if a.starts_with('?') {
                Err(ParseExprError::new(format!(
                    "pattern variable {a} not allowed in a ground expression"
                )))
            } else {
                Ok(out.add(ENode::leaf(a)))
            }
        }
        Sexp::List(items) => {
            let Some(Sexp::Atom(head)) = items.first() else {
                return Err(ParseExprError::new("list must start with an operator atom"));
            };
            if head.starts_with('?') || head.parse::<i64>().is_ok() {
                return Err(ParseExprError::new(format!(
                    "invalid operator name {head:?}"
                )));
            }
            let mut children = Vec::with_capacity(items.len() - 1);
            for item in &items[1..] {
                children.push(build_expr(item, out)?);
            }
            Ok(out.add(ENode::op(head, children)))
        }
    }
}

impl FromStr for RecExpr {
    type Err = ParseExprError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let sexp = parse_sexp(s)?;
        let mut expr = RecExpr::new();
        build_expr(&sexp, &mut expr)?;
        Ok(expr)
    }
}
