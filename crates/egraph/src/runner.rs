//! Equality saturation driver with resource limits and per-rule statistics.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::egraph::{Analysis, EGraph};
use crate::rewrite::Rewrite;

/// Why a saturation run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No rewrite changed the e-graph in the last iteration.
    Saturated,
    /// The iteration limit was reached.
    IterationLimit,
    /// The node limit was reached.
    NodeLimit,
    /// The time limit was reached.
    TimeLimit,
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Number of iterations performed.
    pub iterations: usize,
    /// E-nodes at the end of the run.
    pub egraph_nodes: usize,
    /// E-classes at the end of the run.
    pub egraph_classes: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Per-rule count of e-graph-changing applications.
    pub applications: HashMap<String, u64>,
}

/// Runs equality saturation over an e-graph.
///
/// # Examples
///
/// ```
/// use entangle_egraph::{EGraph, RecExpr, Rewrite, Runner};
///
/// let comm: Rewrite<()> = Rewrite::parse("add-comm", "(add ?a ?b)", "(add ?b ?a)").unwrap();
/// let mut eg = EGraph::<()>::default();
/// let ab = eg.add_expr(&"(add a b)".parse::<RecExpr>().unwrap());
/// let ba = eg.add_expr(&"(add b a)".parse::<RecExpr>().unwrap());
/// let mut runner = Runner::new(eg);
/// let report = runner.run(&[comm]);
/// assert_eq!(runner.egraph.find(ab), runner.egraph.find(ba));
/// assert!(report.applications["add-comm"] >= 1);
/// ```
pub struct Runner<A: Analysis> {
    /// The e-graph being saturated; public so callers can inspect and reuse it.
    pub egraph: EGraph<A>,
    iter_limit: usize,
    node_limit: usize,
    time_limit: Duration,
}

impl<A: Analysis> Runner<A> {
    /// Wraps an e-graph with default limits (30 iterations, 50 000 nodes,
    /// 10 s).
    pub fn new(egraph: EGraph<A>) -> Self {
        Runner {
            egraph,
            iter_limit: 30,
            node_limit: 50_000,
            time_limit: Duration::from_secs(10),
        }
    }

    /// Sets the iteration limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    /// Sets the e-node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Runs the rewrites to saturation or a limit.
    ///
    /// Each iteration searches *all* rules against the frozen e-graph, then
    /// applies all matches, then rebuilds — the standard egg schedule, which
    /// keeps rule application order-independent.
    pub fn run(&mut self, rewrites: &[Rewrite<A>]) -> RunReport {
        let start = Instant::now();
        let mut applications: HashMap<String, u64> = HashMap::new();
        let mut iterations = 0;
        let stop_reason = loop {
            if iterations >= self.iter_limit {
                break StopReason::IterationLimit;
            }
            if self.egraph.total_nodes() > self.node_limit {
                break StopReason::NodeLimit;
            }
            if start.elapsed() > self.time_limit {
                break StopReason::TimeLimit;
            }
            iterations += 1;
            // Search phase against the frozen graph.
            let matches: Vec<_> = rewrites.iter().map(|rw| rw.search(&self.egraph)).collect();
            // Apply phase.
            let unions_before = self.egraph.union_count();
            for (rw, ms) in rewrites.iter().zip(&matches) {
                let changed = rw.apply(&mut self.egraph, ms);
                if changed > 0 {
                    *applications.entry(rw.name().to_owned()).or_insert(0) += changed as u64;
                }
            }
            self.egraph.rebuild();
            if self.egraph.union_count() == unions_before {
                break StopReason::Saturated;
            }
        };
        RunReport {
            stop_reason,
            iterations,
            egraph_nodes: self.egraph.total_nodes(),
            egraph_classes: self.egraph.num_classes(),
            elapsed: start.elapsed(),
            applications,
        }
    }
}
