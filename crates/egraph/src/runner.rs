//! Equality saturation driver with resource limits and per-rule statistics.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use crate::egraph::{Analysis, EGraph};
use crate::rewrite::Rewrite;

/// Default per-iteration match budget for throttled rules (see
/// [`BackoffSchedule`]). The throttled set is the generative-cycle
/// *drivers* — rules whose match volume explodes combinatorially when
/// they misbehave — so the budget is deliberately tight: any sizable
/// per-iteration match volume from a driver is the blowup signature, and
/// the budget doubles with each ban, so well-behaved bursts recover.
/// Swept on the MoE/TP-SP2 workload (`bench_rules`): 16/16 gives the
/// best end-to-end time, and the budget's escalation keeps the shallow
/// zoo workloads at noise level.
pub const DEFAULT_MATCH_BUDGET: u64 = 16;

/// Default ban length (iterations) for a rule that first exceeds its match
/// budget; doubles on every repeat offense, egg-style.
pub const DEFAULT_BAN_LENGTH: usize = 16;

/// A static backoff schedule: a set of rule names eligible for
/// match-budget throttling, typically the members of a generative rewrite
/// cycle found by `entangle-rules`' interaction-graph analysis.
///
/// Scheduling is egg's `BackoffScheduler` idea driven by a *static* rule
/// classification instead of runtime heuristics: a throttled rule whose
/// search exceeds `match_budget << times_banned` substitutions is banned
/// (its search is skipped entirely) for `ban_length << times_banned`
/// iterations. Rules outside the set — in particular every rule classified
/// *simplifying* — are never throttled.
///
/// The schedule cannot change verdicts: the runner only reports
/// [`StopReason::Saturated`] after a full iteration in which **no** rule
/// was banned and no union happened, so the final e-graph is closed under
/// the whole rule set exactly as with the unthrottled schedule (see
/// [`Runner::run`]). It is also deterministic — ban state depends only on
/// match counts, never on wall clock.
#[derive(Debug, Clone, Default)]
pub struct BackoffSchedule {
    throttled: HashSet<String>,
    match_budget: u64,
    ban_length: usize,
}

impl BackoffSchedule {
    /// A schedule throttling the given rule names with the default budget
    /// and ban length.
    pub fn new(throttled: impl IntoIterator<Item = String>) -> Self {
        BackoffSchedule {
            throttled: throttled.into_iter().collect(),
            match_budget: DEFAULT_MATCH_BUDGET,
            ban_length: DEFAULT_BAN_LENGTH,
        }
    }

    /// Overrides the per-iteration match budget.
    pub fn with_match_budget(mut self, budget: u64) -> Self {
        self.match_budget = budget.max(1);
        self
    }

    /// Overrides the initial ban length (iterations).
    pub fn with_ban_length(mut self, len: usize) -> Self {
        self.ban_length = len.max(1);
        self
    }

    /// `true` when `rule` is eligible for throttling.
    pub fn is_throttled(&self, rule: &str) -> bool {
        self.throttled.contains(rule)
    }

    /// Number of throttled rules.
    pub fn len(&self) -> usize {
        self.throttled.len()
    }

    /// `true` when no rule is throttled (the schedule is a no-op).
    pub fn is_empty(&self) -> bool {
        self.throttled.is_empty()
    }
}

/// Per-rule backoff state during one run.
#[derive(Debug, Clone, Copy, Default)]
struct BackoffState {
    throttled: bool,
    /// Rule search is skipped while `iteration <= banned_until`.
    banned_until: usize,
    times_banned: u32,
}

/// Why a saturation run stopped.
///
/// The distinction matters downstream: `Saturated` means the lemma corpus
/// has nothing more to say (a subsequent mapping failure is a genuine
/// refinement bug under the paper's assumptions), while the three limit
/// reasons mean the search *gave up* — raising the corresponding limit may
/// still find a mapping. The checker surfaces this in its trace report and
/// in `RefinementError` context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No rewrite changed the e-graph in the last iteration.
    Saturated,
    /// The iteration limit was reached.
    IterLimit,
    /// The node limit was reached.
    NodeLimit,
    /// The time limit was reached.
    TimeLimit,
}

impl StopReason {
    /// A stable lower-kebab name (trace attribute / JSON value).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Saturated => "saturated",
            StopReason::IterLimit => "iter-limit",
            StopReason::NodeLimit => "node-limit",
            StopReason::TimeLimit => "time-limit",
        }
    }

    /// `true` when the run ended because a resource limit cut the search
    /// short rather than because the rules were exhausted.
    pub fn is_limit(&self) -> bool {
        !matches!(self, StopReason::Saturated)
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-rule telemetry for one run, aggregated over its iterations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleReport {
    /// Total matches found by the searcher (substitutions, not classes).
    pub matches: u64,
    /// E-graph-changing applications (the Figure 6 counts).
    pub applications: u64,
    /// Cumulative search-phase time.
    pub search_us: u64,
    /// Cumulative apply-phase time.
    pub apply_us: u64,
}

/// Telemetry for one saturation iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationReport {
    /// Start offset from the beginning of the run (µs).
    pub start_us: u64,
    /// Search-phase time (all rules, frozen graph).
    pub search_us: u64,
    /// Apply-phase time (all rules).
    pub apply_us: u64,
    /// Rebuild (congruence-closure restoration) time.
    pub rebuild_us: u64,
    /// E-nodes after the iteration.
    pub nodes: usize,
    /// E-classes after the iteration.
    pub classes: usize,
    /// Hash-cons memo entries after the iteration.
    pub memo: usize,
    /// Unions performed by this iteration.
    pub unions: u64,
}

/// Saturation telemetry attached to every [`RunReport`]: the per-iteration
/// growth curve and per-rule search/apply cost. Collection is unconditional
/// and sink-free — identical code runs whether or not anyone is tracing, so
/// instrumentation cannot perturb the search.
#[derive(Debug, Clone, Default)]
pub struct SaturationReport {
    /// One entry per iteration, in order.
    pub iterations: Vec<IterationReport>,
    /// Per-rule totals, keyed by rule name.
    pub rules: HashMap<String, RuleReport>,
    /// E-classes actually visited by rule search, summed over every
    /// (rule, iteration) search call.
    pub searched_classes: u64,
    /// E-classes the per-symbol index fast path (and the operator-presence
    /// prefilter) let search skip, summed the same way. The skip rate
    /// `skipped / (searched + skipped)` is the e-matching fast-path win.
    pub skipped_classes: u64,
}

impl SaturationReport {
    /// Rules sorted by cumulative apply time, heaviest first (ties broken
    /// by name for determinism).
    pub fn rules_by_apply_time(&self) -> Vec<(&str, &RuleReport)> {
        let mut rules: Vec<(&str, &RuleReport)> =
            self.rules.iter().map(|(k, v)| (k.as_str(), v)).collect();
        rules.sort_by(|a, b| {
            b.1.apply_us
                .cmp(&a.1.apply_us)
                .then_with(|| b.1.search_us.cmp(&a.1.search_us))
                .then_with(|| a.0.cmp(b.0))
        });
        rules
    }

    /// Merges another run's telemetry (iterations appended, rules and
    /// class counters summed).
    pub fn merge(&mut self, other: &SaturationReport) {
        self.iterations.extend(other.iterations.iter().cloned());
        self.searched_classes += other.searched_classes;
        self.skipped_classes += other.skipped_classes;
        for (name, r) in &other.rules {
            let e = self.rules.entry(name.clone()).or_default();
            e.matches += r.matches;
            e.applications += r.applications;
            e.search_us += r.search_us;
            e.apply_us += r.apply_us;
        }
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Number of iterations performed.
    pub iterations: usize,
    /// E-nodes at the end of the run.
    pub egraph_nodes: usize,
    /// E-classes at the end of the run.
    pub egraph_classes: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Per-rule count of e-graph-changing applications.
    pub applications: HashMap<String, u64>,
    /// Per-iteration and per-rule telemetry.
    pub saturation: SaturationReport,
}

/// Runs equality saturation over an e-graph.
///
/// # Examples
///
/// ```
/// use entangle_egraph::{EGraph, RecExpr, Rewrite, Runner};
///
/// let comm: Rewrite<()> = Rewrite::parse("add-comm", "(add ?a ?b)", "(add ?b ?a)").unwrap();
/// let mut eg = EGraph::<()>::default();
/// let ab = eg.add_expr(&"(add a b)".parse::<RecExpr>().unwrap());
/// let ba = eg.add_expr(&"(add b a)".parse::<RecExpr>().unwrap());
/// let mut runner = Runner::new(eg);
/// let report = runner.run(&[comm]);
/// assert_eq!(runner.egraph.find(ab), runner.egraph.find(ba));
/// assert!(report.applications["add-comm"] >= 1);
/// assert!(report.saturation.rules["add-comm"].matches >= 1);
/// ```
pub struct Runner<A: Analysis> {
    /// The e-graph being saturated; public so callers can inspect and reuse it.
    pub egraph: EGraph<A>,
    iter_limit: usize,
    node_limit: usize,
    time_limit: Duration,
    backoff: Option<BackoffSchedule>,
}

impl<A: Analysis> Runner<A> {
    /// Wraps an e-graph with default limits (30 iterations, 50 000 nodes,
    /// 10 s).
    pub fn new(egraph: EGraph<A>) -> Self {
        Runner {
            egraph,
            iter_limit: 30,
            node_limit: 50_000,
            time_limit: Duration::from_secs(10),
            backoff: None,
        }
    }

    /// Sets the iteration limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    /// Sets the e-node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Installs a [`BackoffSchedule`]. `None` (the default) is the
    /// unthrottled standard schedule.
    pub fn with_backoff(mut self, schedule: Option<BackoffSchedule>) -> Self {
        self.backoff = schedule;
        self
    }

    /// Runs the rewrites to saturation or a limit.
    ///
    /// Each iteration searches *all* rules against the frozen e-graph, then
    /// applies all matches, then rebuilds — the standard egg schedule, which
    /// keeps rule application order-independent.
    ///
    /// With a [`BackoffSchedule`] installed, throttled rules whose search
    /// exceeds the match budget are banned — their search is skipped — for
    /// a cooldown that doubles on repeat offenses. An iteration that
    /// performs no union does **not** end the run while any rule is banned:
    /// all bans are lifted and the loop continues, so `Saturated` still
    /// certifies a fixpoint of the *full* rule set and the verdict is
    /// unchanged from the unthrottled schedule.
    pub fn run(&mut self, rewrites: &[Rewrite<A>]) -> RunReport {
        let start = Instant::now();
        let mut applications: HashMap<String, u64> = HashMap::new();
        let mut saturation = SaturationReport::default();
        // Indexed alongside `rewrites` to avoid hashing rule names in the
        // hot loop; folded into the name-keyed map at the end.
        let mut per_rule: Vec<RuleReport> = vec![RuleReport::default(); rewrites.len()];
        // Per-rule memo of already-applied match fingerprints: the standard
        // schedule re-finds every prior match each iteration, and skipping
        // re-application turns the apply phase from quadratic in iteration
        // count to linear (see [`Rewrite::apply_deduped`]).
        let mut applied_memo: Vec<std::collections::HashSet<u64>> =
            vec![std::collections::HashSet::new(); rewrites.len()];
        let mut backoff: Vec<BackoffState> = rewrites
            .iter()
            .map(|rw| BackoffState {
                throttled: self
                    .backoff
                    .as_ref()
                    .is_some_and(|s| s.is_throttled(rw.name())),
                ..BackoffState::default()
            })
            .collect();
        let mut iterations = 0;
        let stop_reason = loop {
            if iterations >= self.iter_limit {
                break StopReason::IterLimit;
            }
            if self.egraph.total_nodes() > self.node_limit {
                break StopReason::NodeLimit;
            }
            if start.elapsed() > self.time_limit {
                break StopReason::TimeLimit;
            }
            iterations += 1;
            let iter_start = start.elapsed();
            // Search phase against the frozen graph. Banned rules are
            // skipped outright — that skip, not apply dedup, is where the
            // backoff win comes from.
            let mut search_us = 0u64;
            let mut any_banned = false;
            let mut matches = Vec::with_capacity(rewrites.len());
            for ((rw, stats), bo) in rewrites.iter().zip(per_rule.iter_mut()).zip(&mut backoff) {
                if bo.throttled && iterations <= bo.banned_until {
                    any_banned = true;
                    matches.push(Vec::new());
                    continue;
                }
                let t0 = Instant::now();
                let (ms, visited, skipped) = rw.search_with_stats(&self.egraph);
                let dt = t0.elapsed().as_micros() as u64;
                stats.search_us += dt;
                search_us += dt;
                let found: u64 = ms.iter().map(|m| m.substs.len() as u64).sum();
                stats.matches += found;
                saturation.searched_classes += visited;
                saturation.skipped_classes += skipped;
                if bo.throttled {
                    let budget = self
                        .backoff
                        .as_ref()
                        .map_or(u64::MAX, |s| s.match_budget << bo.times_banned.min(16));
                    if found > budget {
                        let ban = self
                            .backoff
                            .as_ref()
                            .map_or(0, |s| s.ban_length << bo.times_banned.min(16));
                        bo.banned_until = iterations + ban;
                        bo.times_banned += 1;
                    }
                }
                matches.push(ms);
            }
            // Apply phase.
            let unions_before = self.egraph.union_count();
            let mut apply_us = 0u64;
            for (i, (rw, ms)) in rewrites.iter().zip(&matches).enumerate() {
                let t0 = Instant::now();
                let changed = rw.apply_deduped(&mut self.egraph, ms, &mut applied_memo[i]);
                let dt = t0.elapsed().as_micros() as u64;
                per_rule[i].apply_us += dt;
                apply_us += dt;
                if changed > 0 {
                    per_rule[i].applications += changed as u64;
                    *applications.entry(rw.name().to_owned()).or_insert(0) += changed as u64;
                }
            }
            let t0 = Instant::now();
            self.egraph.rebuild();
            let rebuild_us = t0.elapsed().as_micros() as u64;
            let unions = (self.egraph.union_count() - unions_before) as u64;
            saturation.iterations.push(IterationReport {
                start_us: iter_start.as_micros() as u64,
                search_us,
                apply_us,
                rebuild_us,
                nodes: self.egraph.total_nodes(),
                classes: self.egraph.num_classes(),
                memo: self.egraph.memo_size(),
                unions,
            });
            if unions == 0 {
                if any_banned {
                    // A quiet iteration under bans proves nothing: lift
                    // every ban and force a full confirmation iteration
                    // before Saturated may be reported.
                    for bo in &mut backoff {
                        bo.banned_until = 0;
                    }
                    continue;
                }
                break StopReason::Saturated;
            }
        };
        // Every searched rule is reported (even with zero matches), so the
        // key set is deterministic and "this rule burned search time without
        // ever matching" is visible telemetry.
        for (rw, stats) in rewrites.iter().zip(per_rule) {
            let e = saturation.rules.entry(rw.name().to_owned()).or_default();
            e.matches += stats.matches;
            e.applications += stats.applications;
            e.search_us += stats.search_us;
            e.apply_us += stats.apply_us;
        }
        RunReport {
            stop_reason,
            iterations,
            egraph_nodes: self.egraph.total_nodes(),
            egraph_classes: self.egraph.num_classes(),
            elapsed: start.elapsed(),
            applications,
            saturation,
        }
    }
}
