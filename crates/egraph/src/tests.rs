use crate::*;

fn expr(s: &str) -> RecExpr {
    s.parse().expect("parse")
}

#[test]
fn parse_roundtrip() {
    for s in [
        "x",
        "42",
        "-3",
        "(matmul A B)",
        "(concat (slice X 0 0 16) (slice X 0 16 32) 0)",
        "(add (matmul A1 B1) (matmul A2 B2))",
    ] {
        assert_eq!(expr(s).to_string(), s);
    }
}

#[test]
fn parse_errors() {
    assert!("(".parse::<RecExpr>().is_err());
    assert!(")".parse::<RecExpr>().is_err());
    assert!("(f a) b".parse::<RecExpr>().is_err());
    assert!("(?x a)".parse::<RecExpr>().is_err());
    assert!("?x".parse::<RecExpr>().is_err()); // vars not allowed in ground exprs
    assert!("((f) a)".parse::<RecExpr>().is_err());
}

#[test]
fn hashcons_dedup() {
    let mut eg = EGraph::<()>::default();
    let a1 = eg.add(ENode::leaf("a"));
    let a2 = eg.add(ENode::leaf("a"));
    assert_eq!(a1, a2);
    let f1 = eg.add(ENode::op("f", vec![a1]));
    let f2 = eg.add(ENode::op("f", vec![a2]));
    assert_eq!(f1, f2);
    assert_eq!(eg.total_nodes(), 2);
}

#[test]
fn union_and_congruence() {
    let mut eg = EGraph::<()>::default();
    let x = eg.add(ENode::leaf("x"));
    let y = eg.add(ENode::leaf("y"));
    let fx = eg.add(ENode::op("f", vec![x]));
    let fy = eg.add(ENode::op("f", vec![y]));
    let gfx = eg.add(ENode::op("g", vec![fx]));
    let gfy = eg.add(ENode::op("g", vec![fy]));
    assert_ne!(eg.find(gfx), eg.find(gfy));
    eg.union(x, y);
    eg.rebuild();
    assert_eq!(eg.find(fx), eg.find(fy));
    assert_eq!(
        eg.find(gfx),
        eg.find(gfy),
        "congruence must propagate upward"
    );
}

#[test]
fn deep_congruence_chain() {
    let mut eg = EGraph::<()>::default();
    let mut a = eg.add(ENode::leaf("a"));
    let mut b = eg.add(ENode::leaf("b"));
    let (a0, b0) = (a, b);
    for _ in 0..20 {
        a = eg.add(ENode::op("f", vec![a]));
        b = eg.add(ENode::op("f", vec![b]));
    }
    eg.union(a0, b0);
    eg.rebuild();
    assert_eq!(eg.find(a), eg.find(b));
}

#[test]
fn lookup_does_not_insert() {
    let mut eg = EGraph::<()>::default();
    let x = eg.add(ENode::leaf("x"));
    assert_eq!(eg.lookup(&ENode::leaf("x")), Some(x));
    assert_eq!(eg.lookup(&ENode::op("f", vec![x])), None);
    let n = eg.total_nodes();
    let _ = eg.lookup(&ENode::op("g", vec![x]));
    assert_eq!(eg.total_nodes(), n);
}

#[test]
fn lookup_expr_constrained() {
    let mut eg = EGraph::<()>::default();
    eg.add_expr(&expr("(f (g a))"));
    assert!(eg.lookup_expr(&expr("(f (g a))")).is_some());
    assert!(eg.lookup_expr(&expr("(g a)")).is_some());
    assert!(eg.lookup_expr(&expr("(f a)")).is_none());
}

#[test]
fn pattern_matching_basics() {
    let mut eg = EGraph::<()>::default();
    eg.add_expr(&expr("(matmul A B)"));
    eg.add_expr(&expr("(matmul C D)"));
    let pat: Pattern = "(matmul ?x ?y)".parse().unwrap();
    let matches = pat.search(&eg);
    assert_eq!(matches.len(), 2);
    // Nonlinear pattern: ?x repeated must match the same class.
    let pat2: Pattern = "(matmul ?x ?x)".parse().unwrap();
    assert_eq!(pat2.search(&eg).len(), 0);
    eg.add_expr(&expr("(matmul E E)"));
    assert_eq!(pat2.search(&eg).len(), 1);
}

#[test]
fn pattern_with_int_literal() {
    let mut eg = EGraph::<()>::default();
    eg.add_expr(&expr("(concat A B 0)"));
    eg.add_expr(&expr("(concat C D 1)"));
    let pat: Pattern = "(concat ?a ?b 0)".parse().unwrap();
    assert_eq!(pat.search(&eg).len(), 1);
    let pat_any: Pattern = "(concat ?a ?b ?d)".parse().unwrap();
    assert_eq!(pat_any.search(&eg).len(), 2);
}

#[test]
fn rewrite_block_matmul() {
    // The paper's Figure 2 derivation.
    let lemma: Rewrite<()> = Rewrite::parse(
        "matmul-block",
        "(matmul (concat ?a0 ?a1 1) (concat ?b0 ?b1 0))",
        "(add (matmul ?a0 ?b0) (matmul ?a1 ?b1))",
    )
    .unwrap();
    let mut eg = EGraph::<()>::default();
    let l = eg.add_expr(&expr("(matmul (concat A1 A2 1) (concat B1 B2 0))"));
    let r = eg.add_expr(&expr("(add (matmul A1 B1) (matmul A2 B2))"));
    let mut runner = Runner::new(eg);
    let report = runner.run(&[lemma]);
    assert_eq!(runner.egraph.find(l), runner.egraph.find(r));
    assert_eq!(report.stop_reason, StopReason::Saturated);
}

#[test]
fn conditional_rewrite_only_fires_when_condition_holds() {
    // slice of concat commutes only when dims differ; encode dims as Int
    // children and check them in the condition.
    let rw: Rewrite<()> = Rewrite::parse_if(
        "slice-dim-guard",
        "(slice (concat ?a ?b ?d1) ?d2 ?lo ?hi)",
        "(concat (slice ?a ?d2 ?lo ?hi) (slice ?b ?d2 ?lo ?hi) ?d1)",
        |eg, _id, subst| {
            let d1 = subst[Var::new("d1")];
            let d2 = subst[Var::new("d2")];
            let get = |id| eg[id].nodes.iter().find_map(|n| n.as_int());
            match (get(d1), get(d2)) {
                (Some(a), Some(b)) => a != b,
                _ => false,
            }
        },
    )
    .unwrap();

    let mut eg = EGraph::<()>::default();
    let same = eg.add_expr(&expr("(slice (concat A B 0) 0 0 4)"));
    let diff = eg.add_expr(&expr("(slice (concat A B 0) 1 0 4)"));
    let mut runner = Runner::new(eg);
    runner.run(&[rw]);
    let eg = &runner.egraph;
    let same_rhs = eg.lookup_expr(&expr("(concat (slice A 0 0 4) (slice B 0 0 4) 0)"));
    assert!(same_rhs.is_none() || eg.find(same_rhs.unwrap()) != eg.find(same));
    let diff_rhs = eg
        .lookup_expr(&expr("(concat (slice A 1 0 4) (slice B 1 0 4) 0)"))
        .expect("rhs must have been added");
    assert_eq!(eg.find(diff_rhs), eg.find(diff));
}

#[test]
fn dynamic_applier() {
    // x * 2 → x + x, built dynamically.
    let rw: Rewrite<()> = Rewrite::parse_dyn("mul2-to-add", "(mul ?x 2)", |eg, _id, subst| {
        let x = subst[Var::new("x")];
        vec![eg.add(ENode::op("add", vec![x, x]))]
    })
    .unwrap();
    let mut eg = EGraph::<()>::default();
    let l = eg.add_expr(&expr("(mul a 2)"));
    let mut runner = Runner::new(eg);
    runner.run(&[rw]);
    let r = runner.egraph.lookup_expr(&expr("(add a a)")).unwrap();
    assert_eq!(runner.egraph.find(l), runner.egraph.find(r));
}

#[test]
fn saturation_with_commutativity_and_assoc_terminates() {
    let rules: Vec<Rewrite<()>> = vec![
        Rewrite::parse("comm", "(add ?a ?b)", "(add ?b ?a)").unwrap(),
        Rewrite::parse("assoc", "(add (add ?a ?b) ?c)", "(add ?a (add ?b ?c))").unwrap(),
    ];
    let mut eg = EGraph::<()>::default();
    let l = eg.add_expr(&expr("(add (add a b) (add c d))"));
    let r = eg.add_expr(&expr("(add (add d c) (add b a))"));
    let mut runner = Runner::new(eg).with_iter_limit(10).with_node_limit(10_000);
    let report = runner.run(&rules);
    assert_eq!(runner.egraph.find(l), runner.egraph.find(r));
    assert!(report.iterations <= 10);
}

#[test]
fn extraction_picks_smallest() {
    let rules: Vec<Rewrite<()>> = vec![
        Rewrite::parse("add-zero", "(add ?x 0)", "?x").unwrap(),
        Rewrite::parse("mul-one", "(mul ?x 1)", "?x").unwrap(),
    ];
    let mut eg = EGraph::<()>::default();
    let id = eg.add_expr(&expr("(mul (add y 0) 1)"));
    let mut runner = Runner::new(eg);
    runner.run(&rules);
    let ex = Extractor::new(&runner.egraph, AstSize);
    let (cost, best) = ex.find_best(id).unwrap();
    assert_eq!(best.to_string(), "y");
    assert_eq!(cost, 1.0);
}

#[test]
fn extraction_with_infinite_costs() {
    // Only `concat`, `slice` and leaves are allowed; `matmul` is forbidden.
    let cost = |node: &ENode, children: &[f64]| -> f64 {
        let own = match node {
            ENode::Int(_) | ENode::Sym(_) => 0.0,
            ENode::Op(sym, ch) => {
                if ch.is_empty() {
                    1.0
                } else {
                    match sym.as_str() {
                        "concat" | "slice" | "add" => 1.0,
                        _ => f64::INFINITY,
                    }
                }
            }
        };
        own + children.iter().sum::<f64>()
    };
    let mut eg = EGraph::<()>::default();
    let m = eg.add_expr(&expr("(matmul A B)"));
    let c = eg.add_expr(&expr("(add C1 C2)"));
    // matmul(A,B) == add(C1,C2): the clean side must be extracted.
    eg.union(m, c);
    eg.rebuild();
    let ex = Extractor::new(&eg, cost);
    let (_, best) = ex.find_best(m).unwrap();
    assert_eq!(best.to_string(), "(add C1 C2)");

    // A class with no clean representative extracts to None.
    let lone = eg.add_expr(&expr("(matmul X Y)"));
    let ex = Extractor::new(&eg, cost);
    assert!(ex.find_best(lone).is_none());
}

#[test]
fn extraction_handles_cycles() {
    // After union(x, f(x)) the class is cyclic; extraction must still
    // terminate and produce the leaf.
    let mut eg = EGraph::<()>::default();
    let x = eg.add(ENode::leaf("x"));
    let fx = eg.add(ENode::op("f", vec![x]));
    eg.union(x, fx);
    eg.rebuild();
    let ex = Extractor::new(&eg, AstSize);
    let (cost, best) = ex.find_best(fx).unwrap();
    assert_eq!(best.to_string(), "x");
    assert_eq!(cost, 1.0);
}

#[test]
fn runner_node_limit_respected() {
    // An explosive rule: f(x) → f(g(x)) (unconstrained generative rewrite,
    // exactly the §4.3.2 blow-up scenario — each firing mints a fresh
    // g-chain class, so the graph grows without bound).
    let rw: Rewrite<()> = Rewrite::parse("explode", "(f ?x)", "(f (g ?x))").unwrap();
    let mut eg = EGraph::<()>::default();
    eg.add_expr(&expr("(f a)"));
    let mut runner = Runner::new(eg).with_node_limit(200).with_iter_limit(1000);
    let report = runner.run(&[rw]);
    assert_eq!(report.stop_reason, StopReason::NodeLimit);
}

#[test]
fn application_counts_reported() {
    let rules: Vec<Rewrite<()>> = vec![
        Rewrite::parse("comm", "(add ?a ?b)", "(add ?b ?a)").unwrap(),
        Rewrite::parse("never", "(zzz ?a)", "(zzz ?a)").unwrap(),
    ];
    let mut eg = EGraph::<()>::default();
    eg.add_expr(&expr("(add p q)"));
    let mut runner = Runner::new(eg);
    let report = runner.run(&rules);
    assert!(report.applications.get("comm").copied().unwrap_or(0) >= 1);
    assert_eq!(report.applications.get("never"), None);
}

#[test]
fn subst_binding_semantics() {
    let mut eg = EGraph::<()>::default();
    let a = eg.add(ENode::leaf("a"));
    let b = eg.add(ENode::leaf("b"));
    let mut s = Subst::new();
    s.insert(Var::new("x"), a);
    assert_eq!(s.get(Var::new("x")), Some(a));
    assert_eq!(s.get(Var::new("y")), None);
    s.insert(Var::new("x"), b);
    assert_eq!(s.get(Var::new("x")), Some(b));
    assert_eq!(s[Var::new("x")], b);
}

#[test]
fn equivs_checks_without_mutation() {
    let mut eg = EGraph::<()>::default();
    let l = eg.add_expr(&expr("(f a)"));
    let r = eg.add_expr(&expr("(g a)"));
    assert!(!eg.equivs(&expr("(f a)"), &expr("(g a)")));
    eg.union(l, r);
    eg.rebuild();
    assert!(eg.equivs(&expr("(f a)"), &expr("(g a)")));
    assert!(!eg.equivs(&expr("(f a)"), &expr("(h a)")));
}

#[test]
fn symbol_interning() {
    let a = Symbol::new("hello");
    let b = Symbol::new("hello");
    let c = Symbol::new("world");
    assert_eq!(a, b);
    assert_ne!(a, c);
    assert_eq!(a.as_str(), "hello");
    assert_eq!(format!("{c}"), "world");
}

#[test]
fn recexpr_subtree_and_leaves() {
    let e = expr("(concat (matmul A B) (matmul A C) 0)");
    let leaves: Vec<_> = e.leaf_symbols().iter().map(|s| s.as_str()).collect();
    assert_eq!(leaves, vec!["A", "B", "C"]);
    // concat + 2 matmul + 4 leaf occurrences (RecExpr does not hash-cons,
    // so `A` appears twice); the Int is excluded.
    assert_eq!(e.ast_size(), 7);
}

#[test]
fn bare_var_pattern_matches_every_class() {
    let mut eg = EGraph::<()>::default();
    eg.add_expr(&expr("(f a)"));
    eg.add_expr(&expr("(g b)"));
    let pat: Pattern = "?x".parse().unwrap();
    // Classes: a, b, (f a), (g b).
    assert_eq!(pat.search(&eg).len(), 4);
}

#[test]
fn pattern_matching_through_unions() {
    // After a union, a pattern must match via either representative.
    let mut eg = EGraph::<()>::default();
    let fa = eg.add_expr(&expr("(f a)"));
    let b = eg.add_expr(&expr("b"));
    eg.union(fa, b);
    eg.rebuild();
    let pat: Pattern = "(g (f ?x))".parse().unwrap();
    let gb = eg.add_expr(&expr("(g b)"));
    // (g b) contains (g [class of f a]) by congruence of the union.
    let matches = pat.search(&eg);
    assert_eq!(matches.len(), 1);
    assert_eq!(eg.find(matches[0].eclass), eg.find(gb));
}

#[test]
fn rewrite_rejects_unbound_rhs_vars() {
    assert!(Rewrite::<()>::parse("bad", "(f ?x)", "(g ?y)").is_err());
    assert!(Rewrite::<()>::parse("ok", "(f ?x)", "(g ?x)").is_ok());
}

#[test]
fn runner_respects_time_limit() {
    let rw: Rewrite<()> = Rewrite::parse("explode", "(f ?x)", "(f (g ?x))").unwrap();
    let mut eg = EGraph::<()>::default();
    eg.add_expr(&expr("(f a)"));
    let mut runner = Runner::new(eg)
        .with_node_limit(usize::MAX)
        .with_iter_limit(usize::MAX)
        .with_time_limit(std::time::Duration::from_millis(50));
    let report = runner.run(&[rw]);
    assert_eq!(report.stop_reason, StopReason::TimeLimit);
}

#[test]
fn extractor_prefers_cheap_scalar_free_size() {
    // AstSize ignores scalar attribute leaves: (slice x 0 0 4) costs 2.
    let mut eg = EGraph::<()>::default();
    let id = eg.add_expr(&expr("(slice x 0 0 4)"));
    let ex = Extractor::new(&eg, AstSize);
    assert_eq!(ex.best_cost(id), Some(2.0));
}

#[test]
fn sym_scalar_nodes_roundtrip() {
    use entangle_symbolic::SymExpr;
    let mut eg = EGraph::<()>::default();
    let mut ctx = entangle_symbolic::SymCtx::new();
    let n = ctx.var("n");
    let s1 = eg.add(ENode::Sym(n.clone()));
    let s2 = eg.add(ENode::Sym(n.clone()));
    // Structurally identical symbolic scalars hash-cons together.
    assert_eq!(s1, s2);
    let other = eg.add(ENode::Sym(n + SymExpr::constant(1)));
    assert_ne!(s1, other);
}

#[test]
fn lookup_instantiation_is_pure() {
    let mut eg = EGraph::<()>::default();
    let x = eg.add(ENode::leaf("x"));
    let pat: Pattern = "(h ?a)".parse().unwrap();
    let mut s = Subst::new();
    s.insert(Var::new("a"), x);
    let before = eg.total_nodes();
    assert!(pat.ast().lookup_instantiation(&eg, &s).is_none());
    assert_eq!(eg.total_nodes(), before, "lookup must not insert");
    let h = pat.ast().instantiate(&mut eg, &s);
    assert_eq!(pat.ast().lookup_instantiation(&eg, &s), Some(h));
}

mod analysis_tests {
    use super::*;

    /// A constant-folding analysis over an `add/mul/Int` toy language.
    #[derive(Default)]
    struct ConstFold;

    impl Analysis for ConstFold {
        type Data = Option<i64>;

        fn make(egraph: &EGraph<Self>, enode: &ENode) -> Option<i64> {
            match enode {
                ENode::Int(i) => Some(*i),
                ENode::Op(sym, ch) if ch.len() == 2 => {
                    let a = *egraph[ch[0]].data.as_ref()?;
                    let b = *egraph[ch[1]].data.as_ref()?;
                    match sym.as_str() {
                        "add" => Some(a + b),
                        "mul" => Some(a * b),
                        _ => None,
                    }
                }
                _ => None,
            }
        }

        fn merge(a: &mut Option<i64>, b: Option<i64>) -> (bool, bool) {
            match (&a, b) {
                (None, Some(v)) => {
                    *a = Some(v);
                    (true, false)
                }
                (Some(x), Some(y)) => {
                    assert_eq!(*x, y, "constant-folding merge conflict");
                    (false, false)
                }
                (_, None) => (false, true),
            }
        }

        fn modify(egraph: &mut EGraph<Self>, id: Id) {
            if let Some(v) = *egraph.data_mut(id) {
                let c = egraph.add(ENode::Int(v));
                egraph.union(id, c);
            }
        }
    }

    #[test]
    fn const_fold_analysis() {
        let mut eg = EGraph::<ConstFold>::default();
        let id = eg.add_expr(&"(add (mul 3 4) 5)".parse().unwrap());
        eg.rebuild();
        assert_eq!(eg[id].data, Some(17));
        // The folded constant node is unioned in by `modify`.
        let seventeen = eg.lookup(&ENode::Int(17)).unwrap();
        assert_eq!(eg.find(seventeen), eg.find(id));
    }

    #[test]
    fn analysis_data_propagates_through_unions() {
        let mut eg = EGraph::<ConstFold>::default();
        let x = eg.add(ENode::leaf("x"));
        let expr_id = eg.add_expr(&"(add x 1)".parse().unwrap());
        assert_eq!(eg[expr_id].data, None);
        // Learn that x == 41.
        let c = eg.add(ENode::Int(41));
        eg.union(x, c);
        eg.rebuild();
        assert_eq!(eg[expr_id].data, Some(42));
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random sequences of adds and unions keep the e-graph congruent.
    fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
        proptest::collection::vec((0u8..4, 0u8..8, 0u8..8), 1..40)
    }

    proptest! {
        #[test]
        fn random_unions_maintain_congruence(ops in arb_ops()) {
            let mut eg = EGraph::<()>::default();
            let mut ids: Vec<Id> = (0..4).map(|i| eg.add(ENode::leaf(&format!("l{i}")))).collect();
            for (kind, a, b) in ops {
                let x = ids[a as usize % ids.len()];
                let y = ids[b as usize % ids.len()];
                match kind {
                    0 => ids.push(eg.add(ENode::op("f", vec![x]))),
                    1 => ids.push(eg.add(ENode::op("g", vec![x, y]))),
                    2 => {
                        eg.union(x, y);
                        eg.rebuild();
                    }
                    _ => ids.push(eg.add(ENode::op("h", vec![y]))),
                }
            }
            eg.rebuild();
            // Congruence invariant: identical canonical nodes are in the
            // same class.
            let mut seen: std::collections::HashMap<ENode, Id> = Default::default();
            for class in eg.classes() {
                for node in &class.nodes {
                    let canon = node.map_children(|c| eg.find(c));
                    if let Some(prev) = seen.insert(canon, eg.find(class.id)) {
                        prop_assert_eq!(prev, eg.find(class.id));
                    }
                }
            }
        }

        #[test]
        fn extraction_cost_is_optimal_for_trees(depth in 1usize..5) {
            // Build a perfect binary tree, union the root with a single leaf,
            // and check extraction returns cost 1.
            let mut eg = EGraph::<()>::default();
            let mut layer: Vec<Id> = (0..(1 << depth))
                .map(|i| eg.add(ENode::leaf(&format!("t{i}"))))
                .collect();
            while layer.len() > 1 {
                layer = layer
                    .chunks(2)
                    .map(|p| eg.add(ENode::op("add", vec![p[0], p[1]])))
                    .collect();
            }
            let root = layer[0];
            let cheap = eg.add(ENode::leaf("cheap"));
            eg.union(root, cheap);
            eg.rebuild();
            let ex = Extractor::new(&eg, AstSize);
            let (cost, best) = ex.find_best(root).unwrap();
            prop_assert_eq!(cost, 1.0);
            prop_assert_eq!(best.to_string(), "cheap");
        }
    }
}

mod explain_tests {
    use super::*;

    #[test]
    fn explain_returns_rule_chain() {
        let rules: Vec<Rewrite<()>> = vec![
            Rewrite::parse("add-zero", "(add ?x 0)", "?x").unwrap(),
            Rewrite::parse("mul-one", "(mul ?x 1)", "?x").unwrap(),
        ];
        let mut eg = EGraph::<()>::default();
        let l = eg.add_expr(&expr("(mul (add y 0) 1)"));
        let r = eg.add_expr(&expr("y"));
        assert_eq!(eg.explain(l, r), None, "not yet proven");
        let mut runner = Runner::new(eg);
        runner.run(&rules);
        let reasons = runner.egraph.explain(l, r).expect("proven");
        assert!(!reasons.is_empty());
        assert!(reasons
            .iter()
            .all(|r| matches!(r, Justification::Rule { .. } | Justification::Congruence)));
        assert!(reasons
            .iter()
            .any(|r| matches!(r, Justification::Rule { name, .. } if name == "mul-one")));
    }

    #[test]
    fn term_of_is_faithful_to_caller_terms() {
        let mut eg = EGraph::<()>::default();
        let l = eg.add_expr(&expr("(add q 0)"));
        assert_eq!(eg.term_of(l).to_string(), "(add q 0)");
        let rules: Vec<Rewrite<()>> = vec![Rewrite::parse("add-zero", "(add ?x 0)", "?x").unwrap()];
        let mut runner = Runner::new(eg);
        runner.run(&rules);
        // Even after `q` joined the class, the id renders the literal term
        // it was created with, not a class representative.
        assert_eq!(runner.egraph.term_of(l).to_string(), "(add q 0)");
    }

    /// Asserts the proof is a connected chain and returns its endpoints.
    fn chain_endpoints(proof: &Proof) -> (RecExpr, RecExpr) {
        assert!(!proof.is_empty());
        for w in proof.steps.windows(2) {
            assert_eq!(w[0].after(), w[1].before(), "steps must chain");
        }
        for step in &proof.steps {
            if let ProofStep::Congruence { children, .. } = step {
                for child in children {
                    if !child.is_empty() {
                        chain_endpoints(child);
                    }
                }
            }
        }
        (
            proof.steps.first().unwrap().before().clone(),
            proof.steps.last().unwrap().after().clone(),
        )
    }

    #[test]
    fn explain_equivalence_chains_terms() {
        let rules: Vec<Rewrite<()>> = vec![
            Rewrite::parse("add-zero", "(add ?x 0)", "?x").unwrap(),
            Rewrite::parse("mul-one", "(mul ?x 1)", "?x").unwrap(),
        ];
        let mut eg = EGraph::<()>::default();
        let l = eg.add_expr(&expr("(mul (add y 0) 1)"));
        let r = eg.add_expr(&expr("y"));
        assert!(eg.explain_equivalence(l, r).is_none(), "not yet proven");
        let mut runner = Runner::new(eg);
        runner.run(&rules);
        let eg = &runner.egraph;
        let proof = eg.explain_equivalence(l, r).expect("proven");
        let (start, end) = chain_endpoints(&proof);
        assert_eq!(start, eg.term_of(l));
        assert_eq!(end, eg.term_of(r));
        assert!(proof
            .steps
            .iter()
            .any(|s| matches!(s, ProofStep::Rule { name, .. } if name == "mul-one")));
    }

    #[test]
    fn explain_equivalence_congruence_carries_child_proofs() {
        let rules: Vec<Rewrite<()>> = vec![Rewrite::parse("add-zero", "(add ?x 0)", "?x").unwrap()];
        let mut eg = EGraph::<()>::default();
        let l = eg.add_expr(&expr("(f (add y 0))"));
        let r = eg.add_expr(&expr("(f y)"));
        let mut runner = Runner::new(eg);
        runner.run(&rules);
        let eg = &runner.egraph;
        let proof = eg.explain_equivalence(l, r).expect("congruent");
        let (start, end) = chain_endpoints(&proof);
        assert_eq!(start, eg.term_of(l));
        assert_eq!(end, eg.term_of(r));
        // Somewhere in the chain a congruence step must justify the
        // argument rewrite with a nested add-zero proof.
        fn has_rule(proof: &Proof, rule: &str) -> bool {
            proof.steps.iter().any(|s| match s {
                ProofStep::Rule { name, .. } => name == rule,
                ProofStep::Congruence { children, .. } => {
                    children.iter().any(|c| has_rule(c, rule))
                }
                _ => false,
            })
        }
        assert!(has_rule(&proof, "add-zero"), "{proof}");
    }

    #[test]
    fn explain_equivalence_records_substitutions() {
        let rules: Vec<Rewrite<()>> =
            vec![Rewrite::parse("add-comm", "(add ?a ?b)", "(add ?b ?a)").unwrap()];
        let mut eg = EGraph::<()>::default();
        let l = eg.add_expr(&expr("(add u v)"));
        let r = eg.add_expr(&expr("(add v u)"));
        let mut runner = Runner::new(eg);
        runner.run(&rules);
        let proof = runner.egraph.explain_equivalence(l, r).expect("proven");
        let step = proof
            .steps
            .iter()
            .find_map(|s| match s {
                ProofStep::Rule { name, subst, .. } if name == "add-comm" => Some(subst),
                _ => None,
            })
            .expect("rule step present");
        let mut bound: Vec<(&str, String)> = step
            .iter()
            .map(|(v, t)| (v.as_str(), t.to_string()))
            .collect();
        bound.sort();
        assert!(
            bound == [("a", "u".to_owned()), ("b", "v".to_owned())]
                || bound == [("a", "v".to_owned()), ("b", "u".to_owned())]
        );
    }

    #[test]
    fn explain_includes_congruence_steps() {
        let mut eg = EGraph::<()>::default();
        let x = eg.add(ENode::leaf("x"));
        let y = eg.add(ENode::leaf("y"));
        let fx = eg.add(ENode::op("f", vec![x]));
        let fy = eg.add(ENode::op("f", vec![y]));
        eg.union_with(x, y, Justification::Given("axiom x=y".to_owned()));
        eg.rebuild();
        let reasons = eg.explain(fx, fy).expect("congruent");
        assert!(reasons.contains(&Justification::Congruence), "{reasons:?}");
    }

    #[test]
    fn explain_identity_is_empty() {
        let mut eg = EGraph::<()>::default();
        let x = eg.add(ENode::leaf("x"));
        assert_eq!(eg.explain(x, x), Some(vec![]));
    }

    #[test]
    fn explain_carries_given_facts() {
        let mut eg = EGraph::<()>::default();
        let a = eg.add(ENode::leaf("a"));
        let b = eg.add(ENode::leaf("b"));
        let c = eg.add(ENode::leaf("c"));
        eg.union_with(a, b, Justification::Given("def b".to_owned()));
        eg.union_with(b, c, Justification::Given("def c".to_owned()));
        eg.rebuild();
        let reasons = eg.explain(a, c).unwrap();
        assert_eq!(
            reasons,
            vec![
                Justification::Given("def b".to_owned()),
                Justification::Given("def c".to_owned())
            ]
        );
    }

    #[test]
    fn explain_survives_many_unions() {
        // Chains through re-rooted trees stay connected and acyclic.
        let mut eg = EGraph::<()>::default();
        let ids: Vec<Id> = (0..20)
            .map(|i| eg.add(ENode::leaf(&format!("n{i}"))))
            .collect();
        // Union in a scattered order.
        for (i, j) in [(0, 5), (7, 3), (5, 7), (10, 0), (12, 10), (19, 12), (3, 19)] {
            eg.union_with(ids[i], ids[j], Justification::Given(format!("{i}-{j}")));
        }
        eg.rebuild();
        for (i, j) in [(0usize, 19usize), (5, 12), (7, 10)] {
            let r = eg.explain(ids[i], ids[j]).expect("same tree");
            assert!(!r.is_empty());
        }
        assert_eq!(eg.explain(ids[0], ids[1]), None);
    }
}

mod backoff_tests {
    use super::expr;
    use crate::*;

    fn comm_assoc() -> Vec<Rewrite<()>> {
        vec![
            Rewrite::parse("comm", "(add ?a ?b)", "(add ?b ?a)").unwrap(),
            Rewrite::parse("assoc", "(add (add ?a ?b) ?c)", "(add ?a (add ?b ?c))").unwrap(),
        ]
    }

    fn run(schedule: Option<BackoffSchedule>) -> (Runner<()>, RunReport) {
        let mut eg = EGraph::<()>::default();
        eg.add_expr(&expr("(add (add a b) (add c d))"));
        eg.add_expr(&expr("(add (add d c) (add b a))"));
        let mut runner = Runner::new(eg)
            .with_iter_limit(64)
            .with_node_limit(100_000)
            .with_backoff(schedule);
        let report = runner.run(&comm_assoc());
        (runner, report)
    }

    /// The verdict contract: a throttled run only reports `Saturated`
    /// after a full iteration with every rule active and no union, so the
    /// final e-graph is closed under the whole rule set — identical to
    /// the unthrottled fixpoint.
    #[test]
    fn throttled_saturation_reaches_the_unthrottled_fixpoint() {
        let (base, base_report) = run(None);
        // An aggressive schedule: everything throttled, one match allowed.
        let schedule = BackoffSchedule::new(["comm".to_owned(), "assoc".to_owned()])
            .with_match_budget(1)
            .with_ban_length(1);
        let (throttled, report) = run(Some(schedule));

        assert_eq!(base_report.stop_reason, StopReason::Saturated);
        assert_eq!(report.stop_reason, StopReason::Saturated);
        assert_eq!(base.egraph.total_nodes(), throttled.egraph.total_nodes());
        assert_eq!(
            base.egraph.classes().count(),
            throttled.egraph.classes().count()
        );
        for (l, r) in [
            ("(add (add a b) (add c d))", "(add (add d c) (add b a))"),
            ("(add a b)", "(add b a)"),
        ] {
            let eg = &throttled.egraph;
            let (l, r) = (
                eg.lookup_expr(&expr(l)).expect("lhs present"),
                eg.lookup_expr(&expr(r)).expect("rhs present"),
            );
            assert_eq!(eg.find(l), eg.find(r));
        }
    }

    /// Bans actually skip search: the throttled run searches strictly
    /// fewer substitutions than the unthrottled one, while still reaching
    /// saturation (the previous test pins the fixpoint).
    #[test]
    fn bans_skip_search() {
        let (_, base) = run(None);
        let schedule = BackoffSchedule::new(["comm".to_owned()])
            .with_match_budget(1)
            .with_ban_length(2);
        let (_, throttled) = run(Some(schedule));
        assert!(
            throttled.saturation.rules["comm"].matches < base.saturation.rules["comm"].matches,
            "banned iterations must not search ({} vs {})",
            throttled.saturation.rules["comm"].matches,
            base.saturation.rules["comm"].matches,
        );
        // The throttled run needs extra iterations (bans defer work and a
        // final full-activity pass confirms saturation).
        assert!(throttled.iterations >= base.iterations);
    }

    /// Rules outside the schedule are never throttled, whatever their
    /// match volume.
    #[test]
    fn schedule_membership_is_exact() {
        let schedule = BackoffSchedule::new(["comm".to_owned()]);
        assert!(schedule.is_throttled("comm"));
        assert!(!schedule.is_throttled("assoc"));
        assert_eq!(schedule.len(), 1);
        assert!(!schedule.is_empty());
        assert!(BackoffSchedule::default().is_empty());
    }
}
