//! Rewrite rules (the paper's *lemmas*) and their appliers.

use std::fmt;
use std::sync::Arc;

use crate::egraph::{Analysis, EGraph};
use crate::node::ParseExprError;
use crate::pattern::{Pattern, Subst};
use crate::unionfind::Id;

/// The right-hand side of a rewrite: given a matched e-class and bindings,
/// produce the e-classes to union with it.
///
/// [`Pattern`] implements this by instantiation. Conditioned lemmas
/// (Listing 4, lines 10–21) use [`Rewrite::parse_dyn`], whose closure plays
/// the role of the paper's `|egraph, subst| { ... }` block.
pub trait Applier<A: Analysis>: Send + Sync {
    /// Applies to one match; returns ids to union with `eclass`.
    fn apply_one(&self, egraph: &mut EGraph<A>, eclass: Id, subst: &Subst) -> Vec<Id>;
}

impl<A: Analysis> Applier<A> for Pattern {
    fn apply_one(&self, egraph: &mut EGraph<A>, _eclass: Id, subst: &Subst) -> Vec<Id> {
        vec![self.ast().instantiate(egraph, subst)]
    }
}

/// A dynamic applier backed by a closure.
pub struct DynApplier<A: Analysis> {
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&mut EGraph<A>, Id, &Subst) -> Vec<Id> + Send + Sync>,
}

impl<A: Analysis> Applier<A> for DynApplier<A> {
    fn apply_one(&self, egraph: &mut EGraph<A>, eclass: Id, subst: &Subst) -> Vec<Id> {
        (self.f)(egraph, eclass, subst)
    }
}

/// A side condition gating a conditional rewrite.
///
/// Receives the e-graph (read-only), the matched e-class and the bindings.
pub type Condition<A> = Arc<dyn Fn(&EGraph<A>, Id, &Subst) -> bool + Send + Sync>;

/// A named rewrite rule: searcher pattern + optional condition + applier.
///
/// # Examples
///
/// A universal lemma in the paper's exact surface syntax:
///
/// ```
/// use entangle_egraph::Rewrite;
///
/// let rw: Rewrite<()> = Rewrite::parse(
///     "matmul-first-concat-commutative",
///     "(matmul (concat ?A0 ?A1 0) ?B)",
///     "(concat (matmul ?A0 ?B) (matmul ?A1 ?B) 0)",
/// ).unwrap();
/// assert_eq!(rw.name(), "matmul-first-concat-commutative");
/// ```
pub struct Rewrite<A: Analysis> {
    name: String,
    searcher: Pattern,
    condition: Option<Condition<A>>,
    applier: Arc<dyn Applier<A>>,
    /// The right-hand side as a pattern, when the applier is one (universal
    /// and conditioned lemmas); `None` for dynamic appliers. Lets proof
    /// checkers validate rule steps by pure pattern matching.
    rhs: Option<Pattern>,
    /// Static *sketch* of a dynamic applier's output, for rule analysis
    /// only ([`Rewrite::with_rhs_hint`]). Never used to apply or prove
    /// anything; variables not bound by the left-hand side stand for
    /// values the applier mints (folded scalar constants, synthetic
    /// leaves).
    rhs_hint: Option<Pattern>,
}

impl<A: Analysis> Clone for Rewrite<A> {
    fn clone(&self) -> Self {
        Rewrite {
            name: self.name.clone(),
            searcher: self.searcher.clone(),
            condition: self.condition.clone(),
            applier: self.applier.clone(),
            rhs: self.rhs.clone(),
            rhs_hint: self.rhs_hint.clone(),
        }
    }
}

impl<A: Analysis> fmt::Debug for Rewrite<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rewrite({} : {})", self.name, self.searcher)
    }
}

impl<A: Analysis> Rewrite<A> {
    /// Parses a *universal* lemma `lhs => rhs` (both sides are patterns).
    ///
    /// # Errors
    ///
    /// Returns an error when either side fails to parse or the right-hand
    /// side uses a variable not bound by the left.
    pub fn parse(name: &str, lhs: &str, rhs: &str) -> Result<Self, ParseExprError> {
        let searcher: Pattern = lhs.parse()?;
        let applier: Pattern = rhs.parse()?;
        let bound = searcher.vars();
        for v in applier.vars() {
            if !bound.contains(&v) {
                return Err(ParseExprError::new(format!(
                    "rewrite {name}: rhs variable {v} not bound by lhs"
                )));
            }
        }
        Ok(Rewrite {
            name: name.to_owned(),
            searcher,
            condition: None,
            rhs: Some(applier.clone()),
            rhs_hint: None,
            applier: Arc::new(applier),
        })
    }

    /// Parses a *conditioned* lemma: `lhs => rhs` gated by `condition`.
    pub fn parse_if(
        name: &str,
        lhs: &str,
        rhs: &str,
        condition: impl Fn(&EGraph<A>, Id, &Subst) -> bool + Send + Sync + 'static,
    ) -> Result<Self, ParseExprError> {
        let mut rw = Self::parse(name, lhs, rhs)?;
        rw.condition = Some(Arc::new(condition));
        Ok(rw)
    }

    /// Parses a lemma whose right-hand side is computed dynamically — the
    /// paper's `|egraph, subst| { ... }` form. The closure returns the ids
    /// to union with the matched class (empty = does not apply).
    pub fn parse_dyn(
        name: &str,
        lhs: &str,
        applier: impl Fn(&mut EGraph<A>, Id, &Subst) -> Vec<Id> + Send + Sync + 'static,
    ) -> Result<Self, ParseExprError> {
        Ok(Rewrite {
            name: name.to_owned(),
            searcher: lhs.parse()?,
            condition: None,
            rhs: None,
            rhs_hint: None,
            applier: Arc::new(DynApplier {
                f: Arc::new(applier),
            }),
        })
    }

    /// Adds (or replaces) a condition on an existing rewrite.
    pub fn with_condition(
        mut self,
        condition: impl Fn(&EGraph<A>, Id, &Subst) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.condition = Some(Arc::new(condition));
        self
    }

    /// The rule's name (lemma id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The left-hand-side pattern.
    pub fn searcher(&self) -> &Pattern {
        &self.searcher
    }

    /// The right-hand side as a pattern, when the applier is one (`None`
    /// for dynamic appliers).
    pub fn rhs(&self) -> Option<&Pattern> {
        self.rhs.as_ref()
    }

    /// Attaches a static right-hand-side sketch to a dynamic rewrite, for
    /// the `entangle-rules` corpus analysis. Unlike [`Rewrite::parse`],
    /// variables not bound by the left-hand side are allowed: they stand
    /// for values the applier computes (e.g. a gcd-reduced scalar).
    ///
    /// # Errors
    ///
    /// Returns an error when the sketch fails to parse.
    pub fn with_rhs_hint(mut self, hint: &str) -> Result<Self, ParseExprError> {
        self.rhs_hint = Some(hint.parse()?);
        Ok(self)
    }

    /// The static sketch attached via [`Rewrite::with_rhs_hint`], if any.
    pub fn rhs_hint(&self) -> Option<&Pattern> {
        self.rhs_hint.as_ref()
    }

    /// `true` when the rewrite is gated by a side condition.
    pub fn has_condition(&self) -> bool {
        self.condition.is_some()
    }

    /// Searches the e-graph for matches of the left-hand side.
    pub fn search(&self, egraph: &EGraph<A>) -> Vec<crate::pattern::SearchMatches> {
        self.searcher.search(egraph)
    }

    /// Like [`Rewrite::search`], also reporting `(visited, skipped)` class
    /// counts from the per-symbol e-matching fast path.
    pub fn search_with_stats(
        &self,
        egraph: &EGraph<A>,
    ) -> (Vec<crate::pattern::SearchMatches>, u64, u64) {
        self.searcher.search_with_stats(egraph)
    }

    /// Applies the rule to a single match *without* unioning: checks the
    /// condition, runs the applier, and returns the ids it produced
    /// (`None` when the condition rejects the match).
    ///
    /// This is the instrumentation hook for lemma auditing — the produced
    /// right-hand sides can be inspected (extracted, evaluated) while they
    /// are still distinct classes from the matched left-hand side.
    pub fn apply_match(
        &self,
        egraph: &mut EGraph<A>,
        eclass: Id,
        subst: &Subst,
    ) -> Option<Vec<Id>> {
        if let Some(cond) = &self.condition {
            if !cond(egraph, eclass, subst) {
                return None;
            }
        }
        Some(self.applier.apply_one(egraph, eclass, subst))
    }

    /// Applies previously found matches; returns the number of unions that
    /// changed the e-graph (the per-lemma count behind Figure 6).
    pub fn apply(
        &self,
        egraph: &mut EGraph<A>,
        matches: &[crate::pattern::SearchMatches],
    ) -> usize {
        let mut changed = 0;
        for m in matches {
            for subst in &m.substs {
                if let Some(cond) = &self.condition {
                    if !cond(egraph, m.eclass, subst) {
                        continue;
                    }
                }
                let produced = self.applier.apply_one(egraph, m.eclass, subst);
                if produced.is_empty() {
                    continue;
                }
                // Union each produced id with the *instantiated left-hand
                // side* rather than the matched class id: both endpoints
                // are then term-faithful (the LHS instantiation is the
                // literal term the lemma matched, modulo canonical
                // bindings), which is what proof extraction needs. The
                // instantiation lands in `m.eclass`'s class, so the unions
                // are semantically identical.
                let lhs = self.searcher.ast().instantiate(egraph, subst);
                for id in produced {
                    let (_, did) = egraph.union_with(
                        lhs,
                        id,
                        crate::explain::Justification::Rule {
                            name: self.name.clone(),
                            subst: subst.clone(),
                        },
                    );
                    if did {
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// Like [`Rewrite::apply`], with a cross-iteration memo of
    /// already-applied matches. The standard schedule re-searches the whole
    /// e-graph every iteration, so every match found in iteration `k` is
    /// found again in iterations `k+1..`; re-applying it is a pure no-op
    /// (the right-hand side is already present and the union is already
    /// made) that still pays condition evaluation, instantiation, and
    /// hash-cons lookups. `applied` carries fingerprints of matches this
    /// rule has successfully applied — under canonical class ids, so a
    /// fingerprint survives unions of its bindings — and those are skipped.
    ///
    /// Only *successful* applications are memoized: a match rejected by its
    /// condition, or whose dynamic applier produced nothing, is retried in
    /// later iterations (both can start succeeding as analysis data and the
    /// e-graph grow). Skipping is therefore behavior-preserving: the final
    /// e-graph, the per-rule `applications` counts, and the saturation
    /// fixpoint are identical to [`Rewrite::apply`] — only wasted work is
    /// removed.
    pub fn apply_deduped(
        &self,
        egraph: &mut EGraph<A>,
        matches: &[crate::pattern::SearchMatches],
        applied: &mut std::collections::HashSet<u64>,
    ) -> usize {
        use std::hash::{Hash, Hasher};
        let mut changed = 0;
        for m in matches {
            for subst in &m.substs {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                egraph.find(m.eclass).hash(&mut h);
                for (var, id) in subst.iter() {
                    var.hash(&mut h);
                    egraph.find(id).hash(&mut h);
                }
                let fp = h.finish();
                if applied.contains(&fp) {
                    continue;
                }
                if let Some(cond) = &self.condition {
                    if !cond(egraph, m.eclass, subst) {
                        continue;
                    }
                }
                let produced = self.applier.apply_one(egraph, m.eclass, subst);
                if produced.is_empty() {
                    continue;
                }
                applied.insert(fp);
                // Union each produced id with the *instantiated left-hand
                // side* rather than the matched class id: both endpoints
                // are then term-faithful (the LHS instantiation is the
                // literal term the lemma matched, modulo canonical
                // bindings), which is what proof extraction needs. The
                // instantiation lands in `m.eclass`'s class, so the unions
                // are semantically identical.
                let lhs = self.searcher.ast().instantiate(egraph, subst);
                for id in produced {
                    let (_, did) = egraph.union_with(
                        lhs,
                        id,
                        crate::explain::Justification::Rule {
                            name: self.name.clone(),
                            subst: subst.clone(),
                        },
                    );
                    if did {
                        changed += 1;
                    }
                }
            }
        }
        changed
    }
}
