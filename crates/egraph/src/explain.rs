//! Explanations: a proof graph recording *why* classes were unioned, and
//! term-level proof extraction for certificate checking.
//!
//! Equality saturation proves `a ≡ b` as a by-product of many small unions.
//! The paper leans on the resulting relation being "a certificate of
//! soundness" (§3.3); this module makes the certificate *checkable*: every
//! state-changing union carries a [`Justification`] (the lemma that fired
//! together with its substitution, congruence during rebuilding, or a
//! caller-supplied fact), and [`crate::EGraph::explain_equivalence`]
//! extracts a step-by-step [`Proof`] connecting two concrete terms that an
//! engine-independent kernel (`entangle-cert`) can re-check.
//!
//! The implementation is an append-only labeled edge list over *term
//! faithful* ids (ids whose creation node is recorded verbatim by the
//! e-graph, see `EGraph::term_of`). Ids in one union-find class are always
//! connected, so a breadth-first search finds a justification path.
//! Congruence edges recurse into per-child sub-proofs; restricting the
//! search to edges *older* than the congruence edge guarantees termination,
//! because the children were already equivalent when the edge was recorded.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::node::RecExpr;
use crate::pattern::Subst;
use crate::unionfind::Id;

/// Why a union happened.
#[derive(Debug, Clone, PartialEq)]
pub enum Justification {
    /// A rewrite rule (lemma) fired; carries the rule name and the pattern
    /// substitution it fired under.
    Rule {
        /// The rewrite's registered name (a stable lemma id).
        name: String,
        /// The match bindings the rule fired under.
        subst: Subst,
    },
    /// Congruence closure during rebuilding: equal children imply equal
    /// applications.
    Congruence,
    /// A caller-supplied fact (e.g. "this is the definition of a `G_d`
    /// operator" or "these are two mappings of the same tensor").
    Given(String),
}

impl fmt::Display for Justification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Justification::Rule { name, .. } => write!(f, "lemma {name}"),
            Justification::Congruence => write!(f, "congruence"),
            Justification::Given(what) => write!(f, "given: {what}"),
        }
    }
}

/// One step of a [`Proof`]: an equation between two concrete terms together
/// with its justification. `before` and `after` are full terms; a checker
/// needs no e-graph state to validate a step.
#[derive(Debug, Clone, PartialEq)]
pub enum ProofStep {
    /// `before` rewrites to `after` by the named lemma. `forward` is
    /// `false` when the lemma was traversed right-to-left; `subst` renders
    /// the recorded pattern substitution as terms (variable name, without
    /// the `?`, paired with the bound subterm).
    Rule {
        /// The lemma's registered name.
        name: String,
        /// `true` for LHS→RHS, `false` for RHS→LHS.
        forward: bool,
        /// The substitution the lemma fired under, as terms.
        subst: Vec<(String, RecExpr)>,
        /// The term before this step.
        before: RecExpr,
        /// The term after this step.
        after: RecExpr,
    },
    /// The same operator applied to pairwise-equal arguments;
    /// `children[i]` proves the i-th argument pair equal.
    Congruence {
        /// The term before this step.
        before: RecExpr,
        /// The term after this step.
        after: RecExpr,
        /// Sub-proofs, one per argument position.
        children: Vec<Proof>,
    },
    /// A caller-supplied fact; the checker decides which facts it trusts.
    Given {
        /// The fact string recorded at union time.
        fact: String,
        /// The term before this step.
        before: RecExpr,
        /// The term after this step.
        after: RecExpr,
    },
}

impl ProofStep {
    /// The term on the left of this step's equation.
    pub fn before(&self) -> &RecExpr {
        match self {
            ProofStep::Rule { before, .. }
            | ProofStep::Congruence { before, .. }
            | ProofStep::Given { before, .. } => before,
        }
    }

    /// The term on the right of this step's equation.
    pub fn after(&self) -> &RecExpr {
        match self {
            ProofStep::Rule { after, .. }
            | ProofStep::Congruence { after, .. }
            | ProofStep::Given { after, .. } => after,
        }
    }
}

/// A step-by-step rewrite chain connecting two terms: step `k`'s `after`
/// equals step `k+1`'s `before`. Produced by
/// [`crate::EGraph::explain_equivalence`]; re-checked by the
/// `entangle-cert` trusted kernel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Proof {
    /// The chain of steps, in order.
    pub steps: Vec<ProofStep>,
}

impl Proof {
    /// Number of top-level steps (an empty proof states reflexivity).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the proof is the trivial reflexivity chain.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total step count including congruence sub-proofs.
    pub fn size(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                ProofStep::Congruence { children, .. } => {
                    1 + children.iter().map(Proof::size).sum::<usize>()
                }
                _ => 1,
            })
            .sum()
    }
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i == 0 {
                writeln!(f, "  {}", step.before())?;
            }
            let why = match step {
                ProofStep::Rule { name, forward, .. } => {
                    format!("lemma {name}{}", if *forward { "" } else { " (reversed)" })
                }
                ProofStep::Congruence { .. } => "congruence".to_owned(),
                ProofStep::Given { fact, .. } => format!("given: {fact}"),
            };
            writeln!(f, "    ≡ [{why}]")?;
            writeln!(f, "  {}", step.after())?;
        }
        Ok(())
    }
}

/// The proof graph: an append-only list of labeled undirected edges between
/// term-faithful ids. Every state-changing union (and every alias bridging
/// an uncanonical node form to its class) records one edge, so ids in one
/// union-find class are always edge-connected.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProofGraph {
    edges: Vec<(Id, Id, Justification)>,
    /// Edge indices incident to each id.
    adj: Vec<Vec<usize>>,
}

impl ProofGraph {
    pub(crate) fn make_set(&mut self) {
        self.adj.push(Vec::new());
    }

    pub(crate) fn union(&mut self, a: Id, b: Id, why: Justification) {
        let idx = self.edges.len();
        self.adj[a.index()].push(idx);
        if b != a {
            self.adj[b.index()].push(idx);
        }
        self.edges.push((a, b, why));
    }

    pub(crate) fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub(crate) fn edge(&self, i: usize) -> (Id, Id, &Justification) {
        let (a, b, ref j) = self.edges[i];
        (a, b, j)
    }

    /// Shortest path `a → b` using only edges with index `< limit`, as
    /// `(edge index, forward?)` steps. Congruence sub-proofs recurse with
    /// the congruence edge's own index as the limit: the children were
    /// already equivalent when that edge was recorded, so an all-older
    /// path exists and the limit strictly decreases.
    pub(crate) fn path(&self, a: Id, b: Id, limit: usize) -> Option<Vec<(usize, bool)>> {
        if a == b {
            return Some(Vec::new());
        }
        let mut prev: HashMap<Id, (Id, usize, bool)> = HashMap::new();
        prev.insert(a, (a, usize::MAX, true));
        let mut queue = VecDeque::from([a]);
        while let Some(u) = queue.pop_front() {
            for &ei in &self.adj[u.index()] {
                if ei >= limit {
                    continue;
                }
                let (x, y, _) = self.edges[ei];
                let (v, forward) = if x == u { (y, true) } else { (x, false) };
                if prev.contains_key(&v) {
                    continue;
                }
                prev.insert(v, (u, ei, forward));
                if v == b {
                    let mut steps = Vec::new();
                    let mut cur = b;
                    while cur != a {
                        let (p, ei, fwd) = prev[&cur];
                        steps.push((ei, fwd));
                        cur = p;
                    }
                    steps.reverse();
                    return Some(steps);
                }
                queue.push_back(v);
            }
        }
        None
    }
}
