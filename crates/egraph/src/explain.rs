//! Explanations: a proof forest recording *why* classes were unioned.
//!
//! Equality saturation proves `a ≡ b` as a by-product of many small unions.
//! The paper leans on the resulting relation being "a certificate of
//! soundness" (§3.3); this module makes the certificate inspectable: every
//! union carries a [`Reason`] (the lemma that fired, congruence during
//! rebuilding, or a caller-supplied fact), and [`crate::EGraph::explain`]
//! returns the chain of reasons connecting two ids.
//!
//! The implementation is the classic *proof forest* (as in egg's
//! explanations): an undirected tree per equivalence class, maintained by
//! re-rooting one side on each union, so any two equivalent ids are
//! connected by exactly one path.

use crate::unionfind::Id;

/// Why a union happened.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Reason {
    /// A rewrite rule (lemma) fired; carries the rule name.
    Rule(String),
    /// Congruence closure during rebuilding: equal children imply equal
    /// applications.
    Congruence,
    /// A caller-supplied fact (e.g. "this is the definition of a `G_d`
    /// operator" or "these are two mappings of the same tensor").
    Given(String),
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reason::Rule(name) => write!(f, "lemma {name}"),
            Reason::Congruence => write!(f, "congruence"),
            Reason::Given(what) => write!(f, "given: {what}"),
        }
    }
}

/// The proof forest: `parent[i]` is the edge from `i` toward its tree root,
/// labeled with the union's reason.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProofForest {
    parent: Vec<Option<(Id, Reason)>>,
}

impl ProofForest {
    pub(crate) fn make_set(&mut self) {
        self.parent.push(None);
    }

    /// Records the union of (original, pre-canonical) ids `a` and `b`:
    /// re-roots `b`'s tree at `b`, then hangs it under `a`.
    pub(crate) fn union(&mut self, a: Id, b: Id, reason: Reason) {
        self.reroot(b);
        debug_assert!(self.parent[b.index()].is_none());
        self.parent[b.index()] = Some((a, reason));
    }

    /// Makes `x` the root of its tree by reversing the edges on its
    /// root-path.
    fn reroot(&mut self, x: Id) {
        // Collect the path x -> root.
        let mut path = vec![x];
        while let Some((p, _)) = &self.parent[path.last().unwrap().index()] {
            path.push(*p);
        }
        // Reverse each edge along the path.
        for w in path.windows(2) {
            let (child, parent) = (w[0], w[1]);
            let (_, reason) = self.parent[child.index()].take().expect("edge exists");
            self.parent[parent.index()] = Some((child, reason));
        }
    }

    fn path_to_root(&self, mut x: Id) -> Vec<(Id, Option<Reason>)> {
        let mut path = vec![(x, None)];
        while let Some((p, r)) = &self.parent[x.index()] {
            path.push((*p, Some(r.clone())));
            x = *p;
        }
        path
    }

    /// The reasons along the unique path between `a` and `b`, if they are
    /// in the same tree.
    pub(crate) fn explain(&self, a: Id, b: Id) -> Option<Vec<Reason>> {
        if a == b {
            return Some(Vec::new());
        }
        let pa = self.path_to_root(a);
        let pb = self.path_to_root(b);
        if pa.last().map(|(id, _)| *id) != pb.last().map(|(id, _)| *id) {
            return None; // different trees: never unioned
        }
        // Trim the common suffix (paths share the tail up to the LCA).
        let mut ia = pa.len();
        let mut ib = pb.len();
        while ia > 1 && ib > 1 && pa[ia - 2].0 == pb[ib - 2].0 {
            ia -= 1;
            ib -= 1;
        }
        // a -> LCA reasons, then LCA -> b reasons (reversed side).
        let mut reasons: Vec<Reason> = pa[1..ia].iter().filter_map(|(_, r)| r.clone()).collect();
        reasons.extend(pb[1..ib].iter().rev().filter_map(|(_, r)| r.clone()));
        Some(reasons)
    }
}
