//! The e-graph data structure with deferred rebuilding and class analyses.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::explain::{ProofForest, Reason};
use crate::node::{ENode, RecExpr};
use crate::symbol::Symbol;
use crate::unionfind::{Id, UnionFind};

/// Per-e-class semilattice data, computed bottom-up and merged on union.
///
/// This mirrors `egg::Analysis`. The checker uses it to attach tensor shapes
/// and const-folded scalar values to classes, which lemma conditions consult.
pub trait Analysis: Sized + 'static {
    /// The data attached to each e-class.
    type Data: Clone + PartialEq + fmt::Debug;

    /// Computes the data for a freshly added node from its children's data.
    fn make(egraph: &EGraph<Self>, enode: &ENode) -> Self::Data;

    /// Merges `b` into `a` when two classes are unioned.
    ///
    /// Returns `(a_changed, b_changed)`: whether the merged value differs
    /// from the original `a` (resp. `b`). Changed classes have their parents
    /// re-analyzed during rebuild.
    fn merge(a: &mut Self::Data, b: Self::Data) -> (bool, bool);

    /// Optional hook run after a class's data is created or updated, with
    /// mutable access to the e-graph (e.g. to materialize a const-folded
    /// scalar node).
    fn modify(_egraph: &mut EGraph<Self>, _id: Id) {}
}

/// The trivial analysis: no data.
impl Analysis for () {
    type Data = ();
    fn make(_egraph: &EGraph<Self>, _enode: &ENode) {}
    fn merge(_a: &mut (), _b: ()) -> (bool, bool) {
        (false, false)
    }
}

/// An equivalence class of e-nodes.
#[derive(Debug, Clone)]
pub struct EClass<D> {
    /// Canonical id of this class.
    pub id: Id,
    /// The nodes in this class (children canonical as of the last rebuild).
    pub nodes: Vec<ENode>,
    /// The analysis data.
    pub data: D,
    /// Parent nodes: `(node, class-of-node)` pairs that reference this class.
    pub(crate) parents: Vec<(ENode, Id)>,
}

impl<D> EClass<D> {
    /// Iterates over the nodes in this class.
    pub fn iter(&self) -> impl Iterator<Item = &ENode> {
        self.nodes.iter()
    }

    /// Number of nodes in this class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the class holds no nodes (never the case after `add`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A congruence-closed e-graph.
///
/// Follows the `egg` design: adds are hash-consed through `memo`; unions are
/// recorded in a union-find and invariants are restored in batch by
/// [`EGraph::rebuild`].
///
/// # Examples
///
/// ```
/// use entangle_egraph::{EGraph, ENode};
///
/// let mut eg = EGraph::<()>::default();
/// let x = eg.add(ENode::leaf("x"));
/// let y = eg.add(ENode::leaf("y"));
/// let fx = eg.add(ENode::op("f", vec![x]));
/// let fy = eg.add(ENode::op("f", vec![y]));
/// assert_ne!(eg.find(fx), eg.find(fy));
/// eg.union(x, y);
/// eg.rebuild();
/// // Congruence: x ≡ y ⇒ f(x) ≡ f(y).
/// assert_eq!(eg.find(fx), eg.find(fy));
/// ```
pub struct EGraph<A: Analysis> {
    unionfind: UnionFind,
    memo: HashMap<ENode, Id>,
    classes: HashMap<Id, EClass<A::Data>>,
    /// Classes whose parents need congruence repair.
    pending: Vec<Id>,
    /// Classes whose data changed and whose parents need re-analysis.
    analysis_pending: Vec<Id>,
    /// Monotonic counter of successful (state-changing) unions.
    union_count: usize,
    /// Operator symbols ever added (presence index for search prefiltering;
    /// never shrinks, which only costs precision, not correctness).
    op_index: HashSet<Symbol>,
    /// Why unions happened (the proof forest behind [`EGraph::explain`]).
    proof: ProofForest,
    /// User context available to analyses and conditions.
    pub analysis: A,
}

impl<A: Analysis + Default> Default for EGraph<A> {
    fn default() -> Self {
        Self::with_analysis(A::default())
    }
}

impl<A: Analysis> EGraph<A> {
    /// Creates an empty e-graph with the given analysis context.
    pub fn with_analysis(analysis: A) -> Self {
        EGraph {
            unionfind: UnionFind::default(),
            memo: HashMap::new(),
            classes: HashMap::new(),
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            union_count: 0,
            op_index: HashSet::new(),
            proof: ProofForest::default(),
            analysis,
        }
    }

    /// Total number of e-nodes across all classes.
    pub fn total_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Number of canonical e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Count of state-changing unions performed so far; useful for
    /// saturation detection.
    pub fn union_count(&self) -> usize {
        self.union_count
    }

    /// `true` if any non-leaf node with this operator symbol was ever added
    /// — a cheap presence test letting rule search skip inapplicable rules.
    pub fn has_op(&self, sym: Symbol) -> bool {
        self.op_index.contains(&sym)
    }

    /// The canonical id of `id`.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find_immutable(id)
    }

    /// Iterates over canonical classes.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<A::Data>> {
        self.classes.values()
    }

    /// Canonical class ids (snapshot).
    pub fn class_ids(&self) -> Vec<Id> {
        self.classes.keys().copied().collect()
    }

    /// Adds a node (hash-consed) and returns its class.
    pub fn add(&mut self, enode: ENode) -> Id {
        let enode = enode.map_children(|c| self.find(c));
        if let Some(&id) = self.memo.get(&enode) {
            return self.find(id);
        }
        let id = self.unionfind.make_set();
        self.proof.make_set();
        if let ENode::Op(sym, ch) = &enode {
            if !ch.is_empty() {
                self.op_index.insert(*sym);
            }
        }
        let data = A::make(self, &enode);
        let class = EClass {
            id,
            nodes: vec![enode.clone()],
            data,
            parents: Vec::new(),
        };
        for &child in enode.children() {
            self.classes
                .get_mut(&child)
                .expect("child class must exist")
                .parents
                .push((enode.clone(), id));
        }
        self.classes.insert(id, class);
        self.memo.insert(enode, id);
        A::modify(self, id);
        id
    }

    /// Adds every node of a [`RecExpr`], returning the root's class.
    pub fn add_expr(&mut self, expr: &RecExpr) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let mapped = node.map_children(|c| ids[c.index()]);
            ids.push(self.add(mapped));
        }
        *ids.last().expect("add_expr on empty RecExpr")
    }

    /// Looks up a node without inserting it.
    ///
    /// Children are canonicalized first. Returns the canonical class if the
    /// node is already represented.
    pub fn lookup(&self, enode: &ENode) -> Option<Id> {
        let canonical = enode.map_children(|c| self.find(c));
        self.memo.get(&canonical).map(|&id| self.find(id))
    }

    /// Looks up a whole expression without inserting; `None` if any node is
    /// absent. Used by *constrained lemmas* (§4.3.2): a generative rewrite
    /// only fires when its target already exists.
    pub fn lookup_expr(&self, expr: &RecExpr) -> Option<Id> {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let mapped = node.map_children(|c| ids[c.index()]);
            ids.push(self.lookup(&mapped)?);
        }
        ids.last().copied()
    }

    /// Accesses a class by (possibly non-canonical) id.
    ///
    /// # Panics
    ///
    /// Panics if the id was never created by this e-graph.
    pub fn class(&self, id: Id) -> &EClass<A::Data> {
        let id = self.find(id);
        self.classes.get(&id).expect("class must exist")
    }

    /// Mutable access to a class's data.
    pub fn data_mut(&mut self, id: Id) -> &mut A::Data {
        let id = self.find(id);
        &mut self.classes.get_mut(&id).expect("class must exist").data
    }

    /// The parent nodes of a class: every e-node (in some class) that has
    /// this class as a child. Used by constrained generative lemmas
    /// (§4.3.2) that must only fire when their target subterms already
    /// exist.
    pub fn parent_nodes(&self, id: Id) -> Vec<ENode> {
        self.class(id)
            .parents
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Unions two classes; returns `(root, changed)`.
    ///
    /// Invariants are *not* restored until [`EGraph::rebuild`] is called.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        self.union_with(a, b, Reason::Given("union".to_owned()))
    }

    /// Like [`EGraph::union`], recording why the classes are equal; the
    /// reason is replayed by [`EGraph::explain`].
    pub fn union_with(&mut self, a: Id, b: Id, reason: Reason) -> (Id, bool) {
        let (oa, ob) = (a, b);
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return (a, false);
        }
        self.proof.union(oa, ob, reason);
        self.union_count += 1;
        // Union by parent-list size: keep the bigger class as root so fewer
        // parent links need to move.
        let (root, other) = {
            let pa = self.classes[&a].parents.len();
            let pb = self.classes[&b].parents.len();
            if pa >= pb {
                (a, b)
            } else {
                (b, a)
            }
        };
        self.unionfind.union(root, other);
        let merged = self.classes.remove(&other).expect("class must exist");
        let class = self.classes.get_mut(&root).expect("class must exist");
        class.id = root;
        class.nodes.extend(merged.nodes);
        class.parents.extend(merged.parents);
        let (root_changed, _other_changed) = A::merge(&mut class.data, merged.data);
        self.pending.push(root);
        if root_changed {
            self.analysis_pending.push(root);
        }
        A::modify(self, root);
        (root, true)
    }

    /// Restores congruence closure and re-propagates analysis data.
    ///
    /// Must be called after a batch of unions before searching again; the
    /// [`crate::Runner`] does this automatically once per iteration.
    pub fn rebuild(&mut self) {
        loop {
            let mut made_progress = false;
            while let Some(id) = self.pending.pop() {
                made_progress = true;
                self.repair(id);
            }
            while let Some(id) = self.analysis_pending.pop() {
                made_progress = true;
                self.repair_analysis(id);
            }
            if !made_progress {
                break;
            }
        }
        debug_assert!(self.check_memo_canonical());
    }

    fn repair(&mut self, id: Id) {
        let id = self.find(id);
        let Some(class) = self.classes.get_mut(&id) else {
            return; // merged away by a union triggered from repair
        };
        let parents = std::mem::take(&mut class.parents);
        // First pass: remove stale memo entries.
        for (pnode, _) in &parents {
            self.memo.remove(pnode);
        }
        // Second pass: re-canonicalize, detect congruent duplicates.
        let mut seen: HashMap<ENode, Id> = HashMap::with_capacity(parents.len());
        for (pnode, pid) in parents {
            let canonical = pnode.map_children(|c| self.find(c));
            let pid = self.find(pid);
            if let Some(&existing) = seen.get(&canonical) {
                let (_, _) = self.union_with(existing, pid, Reason::Congruence);
            } else if let Some(&memo_id) = self.memo.get(&canonical) {
                let memo_id = self.find(memo_id);
                if memo_id != pid {
                    let (_, _) = self.union_with(memo_id, pid, Reason::Congruence);
                }
                seen.insert(canonical, self.find(pid));
            } else {
                self.memo.insert(canonical.clone(), pid);
                seen.insert(canonical, pid);
            }
        }
        let id = self.find(id);
        if let Some(class) = self.classes.get_mut(&id) {
            let existing = std::mem::take(&mut class.parents);
            let mut merged: Vec<(ENode, Id)> = existing;
            for (n, p) in seen {
                if !merged.iter().any(|(mn, _)| *mn == n) {
                    merged.push((n, p));
                }
            }
            class.parents = merged;
            // Dedup the class's own nodes under the new canonicalization.
            let canon_nodes: HashSet<ENode> = class
                .nodes
                .iter()
                .map(|n| n.map_children(|c| self.unionfind.find_immutable(c)))
                .collect();
            let class = self.classes.get_mut(&id).expect("class must exist");
            class.nodes = canon_nodes.into_iter().collect();
            class.nodes.sort();
        }
    }

    fn repair_analysis(&mut self, id: Id) {
        let id = self.find(id);
        let Some(class) = self.classes.get(&id) else {
            return;
        };
        let parents: Vec<(ENode, Id)> = class.parents.clone();
        for (pnode, pid) in parents {
            let pid = self.find(pid);
            let new_data = A::make(self, &pnode.map_children(|c| self.find(c)));
            let class = self.classes.get_mut(&pid).expect("class must exist");
            let (changed, _) = A::merge(&mut class.data, new_data);
            if changed {
                self.analysis_pending.push(pid);
                A::modify(self, pid);
            }
        }
    }

    /// Debug invariant (hashcons completeness): the canonical form of every
    /// node in every class resolves through the memo back to that class.
    ///
    /// Note the memo may retain *stale* keys (non-canonical forms left over
    /// from earlier unions); those are unreachable — every lookup
    /// canonicalizes its query first — and therefore harmless. This mirrors
    /// egg's behaviour.
    fn check_memo_canonical(&self) -> bool {
        self.classes.iter().all(|(id, class)| {
            class.nodes.iter().all(|n| {
                let canon = n.map_children(|c| self.find(c));
                self.memo.get(&canon).map(|&m| self.find(m)) == Some(*id)
            })
        })
    }

    /// Explains why two ids are equivalent: the chain of union reasons
    /// (lemma names, congruence steps, caller-given facts) connecting them.
    /// Returns `None` when the ids were never proven equal.
    ///
    /// # Examples
    ///
    /// ```
    /// use entangle_egraph::{EGraph, RecExpr, Reason, Rewrite, Runner};
    ///
    /// let rw: Rewrite<()> = Rewrite::parse("add-zero", "(add ?x 0)", "?x").unwrap();
    /// let mut eg = EGraph::<()>::default();
    /// let l = eg.add_expr(&"(add q 0)".parse::<RecExpr>().unwrap());
    /// let r = eg.add_expr(&"q".parse::<RecExpr>().unwrap());
    /// let mut runner = Runner::new(eg);
    /// runner.run(&[rw]);
    /// let reasons = runner.egraph.explain(l, r).unwrap();
    /// assert!(reasons.contains(&Reason::Rule("add-zero".to_owned())));
    /// ```
    pub fn explain(&self, a: Id, b: Id) -> Option<Vec<Reason>> {
        if self.find(a) != self.find(b) {
            return None;
        }
        self.proof.explain(a, b)
    }

    /// Checks whether two expressions are currently known equivalent.
    pub fn equivs(&self, a: &RecExpr, b: &RecExpr) -> bool {
        match (self.lookup_expr(a), self.lookup_expr(b)) {
            (Some(x), Some(y)) => self.find(x) == self.find(y),
            _ => false,
        }
    }
}

impl<A: Analysis> fmt::Debug for EGraph<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EGraph {{ classes: {}, nodes: {} }}",
            self.num_classes(),
            self.total_nodes()
        )?;
        let mut ids: Vec<_> = self.classes.keys().collect();
        ids.sort();
        for id in ids {
            let class = &self.classes[id];
            write!(f, "  {id}: ")?;
            for n in &class.nodes {
                write!(f, "{n} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl<A: Analysis> std::ops::Index<Id> for EGraph<A> {
    type Output = EClass<A::Data>;
    fn index(&self, id: Id) -> &Self::Output {
        self.class(id)
    }
}
